//! Least-squares problems with analytically known constants.
//!
//! The paper's theory (Theorems 1–3) is stated in terms of the Lipschitz
//! constant `L` of `∇F`, the gradient-noise variance `σ²` and the optimality
//! gap `F(x₁) − F_inf`. On deep networks those constants are unknowable; on
//! a least-squares problem they are exact, which lets the benchmark harness
//! validate the theory quantitatively (Figure 6, Theorem 2's τ*).

use rand::rngs::StdRng;
use rand::SeedableRng;
use tensor::Tensor;

/// Specification of a synthetic linear-regression task
/// `y = X·w* + ε,  ε ~ N(0, label_noise²)`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearRegressionTask {
    /// Number of examples `n`.
    pub samples: usize,
    /// Feature dimensionality `d`.
    pub dim: usize,
    /// Standard deviation of the label noise ε.
    pub label_noise: f32,
    /// Condition-number knob: features are scaled so the j-th coordinate has
    /// standard deviation `1 + (conditioning − 1) · j/(d−1)`.
    pub conditioning: f32,
}

impl LinearRegressionTask {
    /// A well-conditioned default used across the theory experiments.
    pub fn default_task() -> Self {
        LinearRegressionTask {
            samples: 2048,
            dim: 32,
            label_noise: 0.5,
            conditioning: 3.0,
        }
    }

    /// Generates the problem deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `samples == 0`, `dim == 0`, or `conditioning < 1`.
    pub fn generate(&self, seed: u64) -> LinearRegressionProblem {
        assert!(self.samples > 0 && self.dim > 0, "degenerate task");
        assert!(self.conditioning >= 1.0, "conditioning must be >= 1");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Tensor::randn(&[self.samples, self.dim], 1.0, &mut rng);
        // Column scaling to control the spectrum of X'X/n.
        for r in 0..self.samples {
            let row = x.row_mut(r);
            for (j, v) in row.iter_mut().enumerate() {
                let scale =
                    1.0 + (self.conditioning - 1.0) * j as f32 / (self.dim.max(2) - 1) as f32;
                *v *= scale;
            }
        }
        let w_star = Tensor::randn(&[self.dim], 1.0, &mut rng);
        let noise = Tensor::randn(&[self.samples], self.label_noise, &mut rng);
        let y = x.matvec(&w_star).add(&noise);
        LinearRegressionProblem { x, y, w_star }
    }
}

/// A concrete least-squares problem: minimise
/// `F(w) = (1/2n) · ‖X·w − y‖²`.
///
/// # Example
///
/// ```
/// use data::LinearRegressionTask;
///
/// let p = LinearRegressionTask::default_task().generate(3);
/// let l = p.lipschitz();
/// assert!(l > 0.0);
/// // The optimum has a smaller loss than the origin.
/// assert!(p.loss(p.w_star()) < p.loss(&tensor::Tensor::zeros(&[32])));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LinearRegressionProblem {
    x: Tensor,
    y: Tensor,
    w_star: Tensor,
}

impl LinearRegressionProblem {
    /// The `[n, d]` design matrix.
    pub fn design(&self) -> &Tensor {
        &self.x
    }

    /// The `[n]` target vector.
    pub fn targets(&self) -> &Tensor {
        &self.y
    }

    /// The planted parameter vector `w*`.
    pub fn w_star(&self) -> &Tensor {
        &self.w_star
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.x.dims()[0]
    }

    /// Whether the problem is empty (never true for generated problems).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.x.dims()[1]
    }

    /// Full-batch objective `F(w) = (1/2n)·‖Xw − y‖²`.
    ///
    /// # Panics
    ///
    /// Panics if `w` does not have `dim()` elements.
    pub fn loss(&self, w: &Tensor) -> f32 {
        let r = self.residual(w);
        0.5 * r.norm_sq() / self.len() as f32
    }

    /// Full-batch gradient `∇F(w) = Xᵀ(Xw − y)/n`.
    ///
    /// # Panics
    ///
    /// Panics if `w` does not have `dim()` elements.
    pub fn grad(&self, w: &Tensor) -> Tensor {
        let r = self.residual(w); // [n]
        let n = self.len();
        // X^T r / n  — accumulate row-wise to avoid materialising X^T.
        let mut g = Tensor::zeros(&[self.dim()]);
        for i in 0..n {
            g.axpy(r.at(i) / n as f32, &Tensor::from_slice(self.x.row(i)));
        }
        g
    }

    /// Stochastic gradient on the mini-batch given by `indices`.
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty or contains an out-of-bounds index.
    pub fn stochastic_grad(&self, w: &Tensor, indices: &[usize]) -> Tensor {
        assert!(!indices.is_empty(), "empty mini-batch");
        let mut g = Tensor::zeros(&[self.dim()]);
        for &i in indices {
            assert!(i < self.len(), "index {i} out of bounds");
            let row = Tensor::from_slice(self.x.row(i));
            let pred = row.dot(w);
            let r = pred - self.y.at(i);
            g.axpy(r / indices.len() as f32, &row);
        }
        g
    }

    /// The exact Lipschitz constant of `∇F`: the largest eigenvalue of
    /// `XᵀX/n`, computed by power iteration.
    pub fn lipschitz(&self) -> f32 {
        let n = self.len() as f32;
        let d = self.dim();
        let mut v = Tensor::full(&[d], 1.0 / (d as f32).sqrt());
        let mut lambda = 0.0f32;
        for _ in 0..200 {
            // u = X^T (X v) / n
            let xv = self.x.matvec(&v); // [n]
            let mut u = Tensor::zeros(&[d]);
            for i in 0..self.len() {
                u.axpy(xv.at(i) / n, &Tensor::from_slice(self.x.row(i)));
            }
            lambda = u.norm();
            if lambda == 0.0 {
                return 0.0;
            }
            u.scale(1.0 / lambda);
            v = u;
        }
        lambda
    }

    /// Monte-Carlo estimate of the gradient-noise variance bound `σ²` at
    /// `w`: `E‖g(w; ξ) − ∇F(w)‖²` for mini-batches of size `batch`.
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0` or `rounds == 0`.
    pub fn sigma_sq(&self, w: &Tensor, batch: usize, rounds: usize, seed: u64) -> f32 {
        assert!(batch > 0 && rounds > 0, "batch and rounds must be positive");
        use rand::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(seed);
        let full = self.grad(w);
        let all: Vec<usize> = (0..self.len()).collect();
        let mut total = 0.0f32;
        for _ in 0..rounds {
            let batch_idx: Vec<usize> = all.choose_multiple(&mut rng, batch).copied().collect();
            let g = self.stochastic_grad(w, &batch_idx);
            total += g.sub(&full).norm_sq();
        }
        total / rounds as f32
    }

    /// The infimum of the objective, `F_inf = F(ŵ)` where `ŵ` solves the
    /// normal equations; approximated by running gradient descent to high
    /// precision (adequate for the well-conditioned generated problems).
    pub fn f_inf(&self) -> f32 {
        let l = self.lipschitz();
        let mut w = Tensor::zeros(&[self.dim()]);
        let step = 1.0 / l;
        for _ in 0..2000 {
            let g = self.grad(&w);
            if g.norm() < 1e-7 {
                break;
            }
            w.axpy(-step, &g);
        }
        self.loss(&w)
    }

    fn residual(&self, w: &Tensor) -> Tensor {
        assert_eq!(
            w.len(),
            self.dim(),
            "parameter dimension {} does not match problem dimension {}",
            w.len(),
            self.dim()
        );
        self.x.matvec(w).sub(&self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> LinearRegressionProblem {
        LinearRegressionTask {
            samples: 256,
            dim: 8,
            label_noise: 0.1,
            conditioning: 2.0,
        }
        .generate(1)
    }

    #[test]
    fn loss_at_w_star_is_noise_level() {
        let p = small();
        // F(w*) = (1/2n)‖ε‖² ≈ label_noise²/2.
        let loss = p.loss(p.w_star());
        assert!(loss < 0.02, "loss at planted optimum too high: {loss}");
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let p = small();
        let w = Tensor::randn(&[8], 1.0, &mut StdRng::seed_from_u64(2));
        let g = p.grad(&w);
        let eps = 1e-3f32;
        for j in 0..8 {
            let mut wp = w.clone();
            wp.as_mut_slice()[j] += eps;
            let mut wm = w.clone();
            wm.as_mut_slice()[j] -= eps;
            let fd = (p.loss(&wp) - p.loss(&wm)) / (2.0 * eps);
            assert!(
                (fd - g.at(j)).abs() < 2e-2 * (1.0 + fd.abs()),
                "coordinate {j}: fd {fd} vs grad {}",
                g.at(j)
            );
        }
    }

    #[test]
    fn full_batch_stochastic_grad_equals_grad() {
        let p = small();
        let w = Tensor::randn(&[8], 1.0, &mut StdRng::seed_from_u64(3));
        let all: Vec<usize> = (0..p.len()).collect();
        let g1 = p.grad(&w);
        let g2 = p.stochastic_grad(&w, &all);
        assert!(g1.distance(&g2) < 1e-3, "distance {}", g1.distance(&g2));
    }

    #[test]
    fn lipschitz_bounds_gradient_growth() {
        // ‖∇F(w1) − ∇F(w2)‖ <= L ‖w1 − w2‖ for random pairs.
        let p = small();
        let l = p.lipschitz();
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..20 {
            let w1 = Tensor::randn(&[8], 2.0, &mut rng);
            let w2 = Tensor::randn(&[8], 2.0, &mut rng);
            let lhs = p.grad(&w1).distance(&p.grad(&w2));
            let rhs = l * w1.distance(&w2);
            assert!(lhs <= rhs * 1.01 + 1e-5, "{lhs} > L·dist = {rhs}");
        }
    }

    #[test]
    fn gd_with_one_over_l_converges() {
        let p = small();
        let l = p.lipschitz();
        let mut w = Tensor::zeros(&[8]);
        let f0 = p.loss(&w);
        for _ in 0..500 {
            let g = p.grad(&w);
            w.axpy(-1.0 / l, &g);
        }
        let f1 = p.loss(&w);
        assert!(f1 < f0 * 0.05, "GD failed to make progress: {f0} -> {f1}");
        assert!((f1 - p.f_inf()).abs() < 1e-2);
    }

    #[test]
    fn sigma_sq_shrinks_with_batch_size() {
        let p = small();
        let w = Tensor::zeros(&[8]);
        let s1 = p.sigma_sq(&w, 1, 400, 5);
        let s8 = p.sigma_sq(&w, 8, 400, 5);
        assert!(
            s8 < s1 * 0.35,
            "variance should shrink ~linearly in batch: {s1} vs {s8}"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let t = LinearRegressionTask::default_task();
        assert_eq!(t.generate(7), t.generate(7));
        assert_ne!(t.generate(7), t.generate(8));
    }

    use rand::rngs::StdRng;
    use rand::SeedableRng;
}
