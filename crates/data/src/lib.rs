//! Synthetic datasets, worker sharding and batch iteration for the AdaComm
//! reproduction.
//!
//! The paper evaluates on CIFAR-10/CIFAR-100, which are unavailable in this
//! offline environment. Following the substitution policy in `DESIGN.md`,
//! this crate generates seeded synthetic classification problems whose SGD
//! dynamics exercise the same code paths:
//!
//! * [`GaussianMixture`] — a `k`-class Gaussian-mixture classification task
//!   (optionally warped through a random nonlinearity so that linear models
//!   cannot solve it), standing in for CIFAR-10 (`k = 10`) and CIFAR-100
//!   (`k = 100`);
//! * [`LinearRegressionTask`] — a least-squares problem with known optimum,
//!   Lipschitz constant and gradient-noise level, used to validate the
//!   paper's Theorems 1–3 quantitatively.
//!
//! Datasets are sharded across workers exactly as in the paper's setup
//! ("each worker machine is assigned with a partition which will be randomly
//! shuffled after every epoch").
//!
//! # Example
//!
//! ```
//! use data::GaussianMixture;
//!
//! let split = GaussianMixture::cifar10_like().generate(42);
//! let shards = split.train.shard(4);
//! assert_eq!(shards.len(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod dataset;
mod regression;
mod synthetic;

pub use batch::BatchIter;
pub use dataset::{Dataset, TrainTestSplit};
pub use regression::{LinearRegressionProblem, LinearRegressionTask};
pub use synthetic::GaussianMixture;
