//! Shuffled mini-batch iteration over a worker's data shard.

use crate::Dataset;
use rand::seq::SliceRandom;
use rand::Rng;
use tensor::Tensor;

/// An endless source of shuffled mini-batches from one dataset shard.
///
/// Matches the paper's setup: each worker iterates over its own partition,
/// reshuffling at every epoch boundary. The iterator is *endless* because
/// local-update SGD counts iterations, not epochs; call [`BatchIter::next_batch`]
/// as many times as the training loop needs.
///
/// # Example
///
/// ```
/// use data::{BatchIter, GaussianMixture};
/// use rand::SeedableRng;
///
/// let split = GaussianMixture::small_test().generate(1);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(2);
/// let mut batches = BatchIter::new(split.train, 8);
/// let (x, y) = batches.next_batch(&mut rng);
/// assert_eq!(x.dims()[0], 8);
/// assert_eq!(y.len(), 8);
/// ```
#[derive(Debug, Clone)]
pub struct BatchIter {
    data: Dataset,
    batch_size: usize,
    order: Vec<usize>,
    cursor: usize,
    epochs_completed: usize,
}

impl BatchIter {
    /// Creates a batch iterator over `data` with the given batch size.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0` or the dataset is empty.
    pub fn new(data: Dataset, batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        assert!(!data.is_empty(), "cannot iterate an empty dataset");
        let order: Vec<usize> = (0..data.len()).collect();
        BatchIter {
            data,
            batch_size,
            order,
            cursor: 0,
            epochs_completed: 0,
        }
    }

    /// The underlying shard.
    pub fn dataset(&self) -> &Dataset {
        &self.data
    }

    /// Batch size.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Number of epoch boundaries crossed so far.
    pub fn epochs_completed(&self) -> usize {
        self.epochs_completed
    }

    /// Produces the next mini-batch, reshuffling at epoch boundaries.
    ///
    /// If fewer than `batch_size` examples remain in the epoch, the batch
    /// wraps into the freshly reshuffled next epoch so that every batch has
    /// exactly `batch_size` rows (matching constant-batch SGD analyses).
    pub fn next_batch<R: Rng + ?Sized>(&mut self, rng: &mut R) -> (Tensor, Vec<usize>) {
        let mut x = Tensor::zeros(&[self.batch_size, self.data.feature_dim()]);
        let mut y = Vec::new();
        self.next_batch_into(rng, &mut x, &mut y);
        (x, y)
    }

    /// [`BatchIter::next_batch`] into caller-owned buffers — the
    /// allocation-free form the simulator's per-step hot loop uses. `x`
    /// must be `[batch_size, feature_dim]`; `y` is cleared and refilled.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong shape.
    pub fn next_batch_into<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        x: &mut Tensor,
        y: &mut Vec<usize>,
    ) {
        let d = self.data.feature_dim();
        assert_eq!(
            x.dims(),
            &[self.batch_size, d],
            "batch buffer shape mismatch"
        );
        y.clear();
        let rows = x.as_mut_slice();
        for r in 0..self.batch_size {
            if self.cursor == 0 {
                self.order.shuffle(rng);
            }
            let i = self.order[self.cursor];
            self.cursor += 1;
            if self.cursor == self.order.len() {
                self.cursor = 0;
                self.epochs_completed += 1;
            }
            rows[r * d..(r + 1) * d].copy_from_slice(self.data.features().row(i));
            y.push(self.data.labels()[i]);
        }
    }

    /// Iterations per epoch at this batch size (rounded up).
    pub fn batches_per_epoch(&self) -> usize {
        self.data.len().div_ceil(self.batch_size)
    }

    /// Captures the shuffle state (`order`, `cursor`, `epochs_completed`)
    /// for a run checkpoint. The dataset itself is not part of the state:
    /// shards are regenerated deterministically from the scenario seed on
    /// resume.
    pub fn shuffle_state(&self) -> (&[usize], usize, usize) {
        (&self.order, self.cursor, self.epochs_completed)
    }

    /// Restores shuffle state captured by [`BatchIter::shuffle_state`], so
    /// a resumed iterator continues the exact same example sequence.
    ///
    /// Returns an error (leaving the iterator untouched) unless `order` is
    /// a permutation of `0..len` for this shard and `cursor` is in range —
    /// corrupted checkpoints must surface as recoverable failures.
    pub fn restore_shuffle_state(
        &mut self,
        order: Vec<usize>,
        cursor: usize,
        epochs_completed: usize,
    ) -> Result<(), String> {
        let n = self.data.len();
        if order.len() != n {
            return Err(format!(
                "shuffle order has {} entries for a shard of {n}",
                order.len()
            ));
        }
        let mut seen = vec![false; n];
        for &i in &order {
            if i >= n || seen[i] {
                return Err(format!("shuffle order is not a permutation of 0..{n}"));
            }
            seen[i] = true;
        }
        if cursor >= n {
            return Err(format!("cursor {cursor} out of range for shard of {n}"));
        }
        self.order = order;
        self.cursor = cursor;
        self.epochs_completed = epochs_completed;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy(n: usize) -> Dataset {
        let data: Vec<f32> = (0..n).map(|v| v as f32).collect();
        let labels = vec![0usize; n];
        Dataset::new(Tensor::from_vec(data, &[n, 1]).unwrap(), labels, 1)
    }

    #[test]
    fn batches_have_requested_size() {
        let mut it = BatchIter::new(toy(10), 3);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..10 {
            let (x, y) = it.next_batch(&mut rng);
            assert_eq!(x.dims(), &[3, 1]);
            assert_eq!(y.len(), 3);
        }
    }

    #[test]
    fn one_epoch_covers_every_example() {
        let mut it = BatchIter::new(toy(9), 3);
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..3 {
            let (x, _) = it.next_batch(&mut rng);
            for r in 0..3 {
                seen.insert(x.row(r)[0] as usize);
            }
        }
        assert_eq!(seen.len(), 9, "one epoch must touch every example once");
        assert_eq!(it.epochs_completed(), 1);
    }

    #[test]
    fn epochs_reshuffle() {
        let mut it = BatchIter::new(toy(64), 64);
        let mut rng = StdRng::seed_from_u64(2);
        let (a, _) = it.next_batch(&mut rng);
        let (b, _) = it.next_batch(&mut rng);
        assert_ne!(
            a.as_slice(),
            b.as_slice(),
            "consecutive epochs should be differently ordered"
        );
    }

    #[test]
    fn wraps_across_epoch_boundary() {
        let mut it = BatchIter::new(toy(5), 4);
        let mut rng = StdRng::seed_from_u64(3);
        let _ = it.next_batch(&mut rng); // consumes 4 of 5
        let (x, _) = it.next_batch(&mut rng); // 1 remaining + 3 from next epoch
        assert_eq!(x.dims()[0], 4);
        assert_eq!(it.epochs_completed(), 1);
    }

    #[test]
    fn batches_per_epoch_rounds_up() {
        assert_eq!(BatchIter::new(toy(10), 3).batches_per_epoch(), 4);
        assert_eq!(BatchIter::new(toy(9), 3).batches_per_epoch(), 3);
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_rejected() {
        let _ = BatchIter::new(toy(4), 0);
    }

    #[test]
    fn restored_shuffle_state_continues_the_same_sequence() {
        let mut straight = BatchIter::new(toy(10), 3);
        let mut interrupted = BatchIter::new(toy(10), 3);
        let mut rng_a = StdRng::seed_from_u64(9);
        let mut rng_b = StdRng::seed_from_u64(9);
        for _ in 0..4 {
            let _ = straight.next_batch(&mut rng_a);
            let _ = interrupted.next_batch(&mut rng_b);
        }
        let (order, cursor, epochs) = interrupted.shuffle_state();
        let order = order.to_vec();
        let mut resumed = BatchIter::new(toy(10), 3);
        resumed
            .restore_shuffle_state(order, cursor, epochs)
            .unwrap();
        assert_eq!(resumed.epochs_completed(), interrupted.epochs_completed());
        // Clone the RNG mid-stream (same state both sides) and compare the
        // continuation batch-for-batch.
        let mut rng_c = rng_b.clone();
        for _ in 0..7 {
            let (xa, ya) = interrupted.next_batch(&mut rng_b);
            let (xb, yb) = resumed.next_batch(&mut rng_c);
            assert_eq!(xa.as_slice(), xb.as_slice());
            assert_eq!(ya, yb);
        }
    }

    #[test]
    fn corrupt_shuffle_state_is_rejected_not_applied() {
        let mut it = BatchIter::new(toy(5), 2);
        // Wrong length.
        assert!(it.restore_shuffle_state(vec![0, 1, 2], 0, 0).is_err());
        // Duplicate entry (not a permutation).
        assert!(it.restore_shuffle_state(vec![0, 1, 2, 3, 3], 0, 0).is_err());
        // Out-of-range index.
        assert!(it.restore_shuffle_state(vec![0, 1, 2, 3, 9], 0, 0).is_err());
        // Out-of-range cursor.
        assert!(it.restore_shuffle_state(vec![0, 1, 2, 3, 4], 5, 0).is_err());
        // The iterator still works after every rejection.
        let mut rng = StdRng::seed_from_u64(0);
        let (x, _) = it.next_batch(&mut rng);
        assert_eq!(x.dims(), &[2, 1]);
    }
}
