//! Gaussian-mixture classification generators standing in for CIFAR-10/100.

use crate::{Dataset, TrainTestSplit};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};
use tensor::{matmul_nt_into, Tensor};

/// Specification of a synthetic `k`-class Gaussian-mixture classification
/// task.
///
/// Each class has a mean vector drawn uniformly on a sphere of radius
/// `separation`; examples are the class mean plus isotropic Gaussian noise
/// of standard deviation `noise_std`. With `warp = true` the features are
/// additionally passed through a fixed random nonlinearity
/// (`sin` of a random projection mixed back in), which makes the Bayes
/// decision boundary nonlinear so that deeper models have an advantage —
/// mirroring how CIFAR requires nontrivial networks.
///
/// The default presets keep SGD noisy enough that the paper's error-floor
/// phenomenon (higher `τ` ⇒ higher floor at fixed learning rate) is clearly
/// visible.
///
/// # Example
///
/// ```
/// use data::GaussianMixture;
///
/// let split = GaussianMixture::cifar10_like().generate(7);
/// assert_eq!(split.train.num_classes(), 10);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GaussianMixture {
    /// Number of classes `k`.
    pub num_classes: usize,
    /// Feature dimensionality `d`.
    pub dim: usize,
    /// Training examples to generate (split across classes round-robin).
    pub train_size: usize,
    /// Test examples to generate.
    pub test_size: usize,
    /// Radius of the sphere the class means are drawn from.
    pub separation: f32,
    /// Standard deviation of per-example noise.
    pub noise_std: f32,
    /// Whether to warp features through a fixed random nonlinearity.
    pub warp: bool,
    /// Fraction of training labels replaced by uniform random classes.
    ///
    /// Label noise keeps the gradient variance `σ²` bounded away from zero
    /// even when the model could otherwise interpolate the training set —
    /// the regime the paper's error-floor analysis (Theorem 1) lives in.
    pub label_noise: f32,
}

impl GaussianMixture {
    /// CIFAR-10 stand-in: 10 classes, 256 features, 4096 train / 1024 test.
    ///
    /// Dimensions are scaled down from 3×32×32 so that the full figure suite
    /// runs in minutes on a laptop; the error-runtime phenomenology is
    /// unchanged (see `DESIGN.md`).
    pub fn cifar10_like() -> Self {
        GaussianMixture {
            num_classes: 10,
            dim: 256,
            train_size: 4096,
            test_size: 1024,
            separation: 2.6,
            noise_std: 1.8,
            warp: true,
            label_noise: 0.10,
        }
    }

    /// CIFAR-100 stand-in: 100 classes, 256 features, 8192 train / 2048
    /// test.
    pub fn cifar100_like() -> Self {
        GaussianMixture {
            num_classes: 100,
            dim: 256,
            train_size: 8192,
            test_size: 2048,
            separation: 2.6,
            noise_std: 1.7,
            warp: true,
            label_noise: 0.10,
        }
    }

    /// A tiny task for unit tests: 3 classes, 8 features, 96 train / 32
    /// test, linearly separable.
    pub fn small_test() -> Self {
        GaussianMixture {
            num_classes: 3,
            dim: 8,
            train_size: 96,
            test_size: 32,
            separation: 4.0,
            noise_std: 0.5,
            warp: false,
            label_noise: 0.0,
        }
    }

    /// Generates the dataset deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if any size field is zero or `train_size < num_classes`.
    pub fn generate(&self, seed: u64) -> TrainTestSplit {
        assert!(self.num_classes > 0 && self.dim > 0, "degenerate spec");
        assert!(
            self.train_size >= self.num_classes,
            "need at least one training example per class"
        );
        assert!(self.test_size > 0, "need a non-empty test set");
        assert!(
            (0.0..1.0).contains(&self.label_noise),
            "label noise must be in [0, 1), got {}",
            self.label_noise
        );
        let mut rng = StdRng::seed_from_u64(seed);

        // Class means on a sphere of radius `separation`.
        let mut means = Vec::with_capacity(self.num_classes);
        for _ in 0..self.num_classes {
            let mut v = Tensor::randn(&[self.dim], 1.0, &mut rng);
            let norm = v.norm();
            if norm > 0.0 {
                v.scale(self.separation / norm);
            }
            means.push(v);
        }

        // Optional fixed warp: x <- x + sin(P x), with P a random projection.
        let warp_proj = if self.warp {
            Some(Tensor::randn(
                &[self.dim, self.dim],
                1.0 / (self.dim as f32).sqrt(),
                &mut rng,
            ))
        } else {
            None
        };

        // Per-sample the old path drew noise, added the class mean, warped
        // through a `dim x dim` matvec, and only then drew the label RNG
        // values. The matvec made generation GEMM-shaped work executed as
        // latency-bound row-at-a-time dot products — the dominant cost of
        // building a scenario. The batched path below draws the *same RNG
        // stream in the same order* (noise rows and label draws stay
        // interleaved per sample; the warp uses no randomness) and then
        // applies the warp to all rows at once through the packed
        // `a · bᵀ` kernel, whose per-element reduction is the same
        // ascending-index `mul_add` fold as `Tensor::matvec` — datasets
        // are bit-identical to the per-sample path (regression test
        // below).
        let noise_dist = Normal::new(0.0, f64::from(self.noise_std)).expect("validated noise std");
        let make = |n: usize, noisy_labels: bool, rng: &mut StdRng| -> Dataset {
            let mut feats = vec![0.0f32; n * self.dim];
            let mut labels = Vec::with_capacity(n);
            for (i, row) in feats.chunks_exact_mut(self.dim).enumerate() {
                let class = i % self.num_classes;
                let mean = means[class].as_slice();
                for (x, &mu) in row.iter_mut().zip(mean) {
                    // Same element order and float ops as
                    // `means[class].add(&randn(..))`.
                    *x = mu + noise_dist.sample(rng) as f32;
                }
                let label = if noisy_labels && rng.gen::<f32>() < self.label_noise {
                    rng.gen_range(0..self.num_classes)
                } else {
                    class
                };
                labels.push(label);
            }
            if let Some(proj) = &warp_proj {
                // projected[s][i] = sum_j feats[s][j] * proj[i][j] — one
                // GEMM for the whole set, bit-identical to per-row
                // `proj.matvec(x)`.
                let mut projected = vec![0.0f32; n * self.dim];
                matmul_nt_into(
                    &feats,
                    proj.as_slice(),
                    &mut projected,
                    n,
                    self.dim,
                    self.dim,
                );
                for (x, &p) in feats.iter_mut().zip(&projected) {
                    *x += p.sin();
                }
            }
            Dataset::new(
                Tensor::from_vec(feats, &[n, self.dim]).expect("volume matches"),
                labels,
                self.num_classes,
            )
        };

        // Only training labels are corrupted; the test set stays clean so
        // accuracy comparisons remain meaningful.
        let mut train = make(self.train_size, true, &mut rng);
        let test = make(self.test_size, false, &mut rng);
        train.shuffle(&mut rng);
        TrainTestSplit { train, test }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = GaussianMixture::small_test();
        let a = spec.generate(5);
        let b = spec.generate(5);
        assert_eq!(a.train, b.train);
        assert_eq!(a.test, b.test);
    }

    #[test]
    fn different_seeds_differ() {
        let spec = GaussianMixture::small_test();
        assert_ne!(spec.generate(1).train, spec.generate(2).train);
    }

    #[test]
    fn sizes_and_classes_match_spec() {
        let split = GaussianMixture::small_test().generate(3);
        assert_eq!(split.train.len(), 96);
        assert_eq!(split.test.len(), 32);
        assert_eq!(split.train.num_classes(), 3);
        assert_eq!(split.train.feature_dim(), 8);
    }

    #[test]
    fn classes_are_balanced() {
        let split = GaussianMixture::small_test().generate(4);
        let hist = split.train.class_histogram();
        assert_eq!(hist, vec![32, 32, 32]);
    }

    #[test]
    fn unwarped_classes_are_separated() {
        // Nearest-class-mean classification should beat chance comfortably
        // on the linearly separable test preset.
        let spec = GaussianMixture::small_test();
        let split = spec.generate(6);
        // Recompute class means from the training data.
        let d = split.train.feature_dim();
        let k = split.train.num_classes();
        let mut means = vec![Tensor::zeros(&[d]); k];
        let mut counts = vec![0usize; k];
        for i in 0..split.train.len() {
            let label = split.train.labels()[i];
            let row = Tensor::from_slice(split.train.features().row(i));
            means[label].add_assign(&row);
            counts[label] += 1;
        }
        for (m, c) in means.iter_mut().zip(&counts) {
            m.scale(1.0 / *c as f32);
        }
        let mut correct = 0;
        for i in 0..split.test.len() {
            let row = Tensor::from_slice(split.test.features().row(i));
            let (mut best, mut best_d) = (0usize, f32::INFINITY);
            for (c, m) in means.iter().enumerate() {
                let dist = row.distance(m);
                if dist < best_d {
                    best = c;
                    best_d = dist;
                }
            }
            if best == split.test.labels()[i] {
                correct += 1;
            }
        }
        let acc = correct as f64 / split.test.len() as f64;
        assert!(acc > 0.9, "nearest-mean accuracy only {acc}");
    }

    /// The PR 4 per-sample generation loop, kept verbatim as the reference
    /// the batched-warp path must reproduce bit for bit.
    fn reference_generate(spec: &GaussianMixture, seed: u64) -> TrainTestSplit {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut means = Vec::with_capacity(spec.num_classes);
        for _ in 0..spec.num_classes {
            let mut v = Tensor::randn(&[spec.dim], 1.0, &mut rng);
            let norm = v.norm();
            if norm > 0.0 {
                v.scale(spec.separation / norm);
            }
            means.push(v);
        }
        let warp_proj = if spec.warp {
            Some(Tensor::randn(
                &[spec.dim, spec.dim],
                1.0 / (spec.dim as f32).sqrt(),
                &mut rng,
            ))
        } else {
            None
        };
        let make = |n: usize, noisy_labels: bool, rng: &mut StdRng| -> Dataset {
            let mut feats = Vec::with_capacity(n * spec.dim);
            let mut labels = Vec::with_capacity(n);
            for i in 0..n {
                let class = i % spec.num_classes;
                let noise = Tensor::randn(&[spec.dim], spec.noise_std, rng);
                let mut x = means[class].add(&noise);
                if let Some(proj) = &warp_proj {
                    let projected = proj.matvec(&x);
                    let warped = projected.map(f32::sin);
                    x.axpy(1.0, &warped);
                }
                feats.extend_from_slice(x.as_slice());
                let label = if noisy_labels && rng.gen::<f32>() < spec.label_noise {
                    rng.gen_range(0..spec.num_classes)
                } else {
                    class
                };
                labels.push(label);
            }
            Dataset::new(
                Tensor::from_vec(feats, &[n, spec.dim]).expect("volume matches"),
                labels,
                spec.num_classes,
            )
        };
        let mut train = make(spec.train_size, true, &mut rng);
        let test = make(spec.test_size, false, &mut rng);
        train.shuffle(&mut rng);
        TrainTestSplit { train, test }
    }

    #[test]
    fn batched_warp_is_bit_identical_to_per_sample_reference() {
        // Warped (the batched-GEMM path) and unwarped, with label noise,
        // at a non-trivial size: the batched generator must reproduce the
        // PR 4 per-sample loop exactly — same RNG stream, same floats.
        for (mut spec, seed) in [
            (GaussianMixture::small_test(), 11u64),
            (GaussianMixture::small_test(), 12),
        ] {
            spec.warp = true;
            spec.label_noise = 0.25;
            spec.train_size = 64;
            spec.test_size = 16;
            let fast = spec.generate(seed);
            let slow = reference_generate(&spec, seed);
            assert_eq!(fast.train, slow.train, "train split diverged (seed {seed})");
            assert_eq!(fast.test, slow.test, "test split diverged (seed {seed})");
        }
    }

    #[test]
    fn warp_changes_features() {
        let mut spec = GaussianMixture::small_test();
        let plain = spec.generate(9);
        spec.warp = true;
        let warped = spec.generate(9);
        assert_ne!(plain.train, warped.train);
    }

    #[test]
    fn cifar_like_presets_have_expected_shape() {
        let c10 = GaussianMixture::cifar10_like();
        assert_eq!(c10.num_classes, 10);
        let c100 = GaussianMixture::cifar100_like();
        assert_eq!(c100.num_classes, 100);
        assert!(c100.train_size > c10.train_size);
    }
}
