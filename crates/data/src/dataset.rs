//! Labeled dataset container, train/test splitting and worker sharding.

use rand::seq::SliceRandom;
use rand::Rng;
use tensor::Tensor;

/// A labeled classification dataset: a `[n, d]` feature matrix and one class
/// label per row.
///
/// # Example
///
/// ```
/// use data::Dataset;
/// use tensor::Tensor;
///
/// let x = Tensor::from_vec(vec![0.0, 1.0, 2.0, 3.0], &[2, 2]).unwrap();
/// let ds = Dataset::new(x, vec![0, 1], 2);
/// assert_eq!(ds.len(), 2);
/// assert_eq!(ds.feature_dim(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    features: Tensor,
    labels: Vec<usize>,
    num_classes: usize,
}

impl Dataset {
    /// Creates a dataset from a `[n, d]` feature matrix and `n` labels.
    ///
    /// # Panics
    ///
    /// Panics if `features` is not rank-2, the row count differs from
    /// `labels.len()`, or any label is `>= num_classes`.
    pub fn new(features: Tensor, labels: Vec<usize>, num_classes: usize) -> Self {
        assert_eq!(
            features.shape().rank(),
            2,
            "features must be a [n, d] matrix, got shape {}",
            features.shape()
        );
        assert_eq!(
            features.dims()[0],
            labels.len(),
            "feature rows ({}) must match label count ({})",
            features.dims()[0],
            labels.len()
        );
        assert!(num_classes > 0, "need at least one class");
        if let Some(&bad) = labels.iter().find(|&&l| l >= num_classes) {
            panic!("label {bad} out of range for {num_classes} classes");
        }
        Dataset {
            features,
            labels,
            num_classes,
        }
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset holds zero examples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Feature dimensionality `d`.
    pub fn feature_dim(&self) -> usize {
        self.features.dims()[1]
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// The full `[n, d]` feature matrix.
    pub fn features(&self) -> &Tensor {
        &self.features
    }

    /// All labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Copies the rows at `indices` into a dense `([b, d], labels)` batch.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn gather(&self, indices: &[usize]) -> (Tensor, Vec<usize>) {
        let d = self.feature_dim();
        let mut out = Vec::with_capacity(indices.len() * d);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            assert!(i < self.len(), "index {i} out of bounds for {}", self.len());
            out.extend_from_slice(self.features.row(i));
            labels.push(self.labels[i]);
        }
        let x =
            Tensor::from_vec(out, &[indices.len(), d]).expect("internal: gathered volume matches");
        (x, labels)
    }

    /// Returns a new dataset containing the rows at `indices`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let (features, labels) = self.gather(indices);
        Dataset {
            features,
            labels,
            num_classes: self.num_classes,
        }
    }

    /// Splits the dataset row-wise into `m` near-equal shards, one per
    /// worker (the paper's data partitioning). The first `n % m` shards get
    /// one extra example.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0` or `m > self.len()`.
    pub fn shard(&self, m: usize) -> Vec<Dataset> {
        assert!(m > 0, "need at least one shard");
        assert!(
            m <= self.len(),
            "cannot cut {} examples into {m} non-empty shards",
            self.len()
        );
        let n = self.len();
        let base = n / m;
        let extra = n % m;
        let mut shards = Vec::with_capacity(m);
        let mut start = 0;
        for w in 0..m {
            let size = base + usize::from(w < extra);
            let indices: Vec<usize> = (start..start + size).collect();
            shards.push(self.subset(&indices));
            start += size;
        }
        shards
    }

    /// Randomly permutes the dataset rows in place.
    pub fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        let n = self.len();
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(rng);
        let shuffled = self.subset(&order);
        *self = shuffled;
    }

    /// Splits into train/test with `test_fraction` of rows held out (rows
    /// are taken from the end; shuffle first for a random split).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < test_fraction < 1` yields non-empty halves.
    pub fn split(&self, test_fraction: f64) -> TrainTestSplit {
        assert!(
            (0.0..1.0).contains(&test_fraction),
            "test fraction must be in [0, 1), got {test_fraction}"
        );
        let n = self.len();
        let test_n = ((n as f64) * test_fraction).round() as usize;
        let train_n = n - test_n;
        assert!(train_n > 0, "split leaves no training data");
        let train_idx: Vec<usize> = (0..train_n).collect();
        let test_idx: Vec<usize> = (train_n..n).collect();
        TrainTestSplit {
            train: self.subset(&train_idx),
            test: self.subset(&test_idx),
        }
    }

    /// Per-class counts, useful for checking shard balance.
    pub fn class_histogram(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_classes];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }
}

/// A train/test pair produced by [`Dataset::split`] or a generator.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainTestSplit {
    /// Training portion.
    pub train: Dataset,
    /// Held-out test portion.
    pub test: Dataset,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy(n: usize) -> Dataset {
        let data: Vec<f32> = (0..n * 2).map(|v| v as f32).collect();
        let labels: Vec<usize> = (0..n).map(|i| i % 3).collect();
        Dataset::new(Tensor::from_vec(data, &[n, 2]).unwrap(), labels, 3)
    }

    #[test]
    fn gather_preserves_rows() {
        let ds = toy(5);
        let (x, y) = ds.gather(&[4, 0]);
        assert_eq!(x.dims(), &[2, 2]);
        assert_eq!(x.row(0), &[8.0, 9.0]);
        assert_eq!(x.row(1), &[0.0, 1.0]);
        assert_eq!(y, vec![1, 0]);
    }

    #[test]
    fn shard_sizes_are_balanced() {
        let ds = toy(10);
        let shards = ds.shard(3);
        let sizes: Vec<usize> = shards.iter().map(|s| s.len()).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
        let total: usize = sizes.iter().sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn shards_partition_the_data() {
        let ds = toy(7);
        let shards = ds.shard(2);
        let mut all_rows: Vec<Vec<f32>> = Vec::new();
        for s in &shards {
            for r in 0..s.len() {
                all_rows.push(s.features().row(r).to_vec());
            }
        }
        assert_eq!(all_rows.len(), 7);
        for r in 0..7 {
            assert!(all_rows.contains(&ds.features().row(r).to_vec()));
        }
    }

    #[test]
    #[should_panic(expected = "non-empty shards")]
    fn too_many_shards_panics() {
        let _ = toy(2).shard(3);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut ds = toy(20);
        let before = ds.class_histogram();
        ds.shuffle(&mut StdRng::seed_from_u64(1));
        assert_eq!(ds.class_histogram(), before);
        assert_eq!(ds.len(), 20);
    }

    #[test]
    fn shuffle_changes_order() {
        let mut ds = toy(50);
        let first_row = ds.features().row(0).to_vec();
        ds.shuffle(&mut StdRng::seed_from_u64(2));
        // With 50 rows the first row stays put with probability 1/50.
        let moved = ds.features().row(0) != first_row.as_slice();
        assert!(
            moved,
            "shuffle left data unchanged (astronomically unlikely)"
        );
    }

    #[test]
    fn split_fractions() {
        let split = toy(10).split(0.3);
        assert_eq!(split.train.len(), 7);
        assert_eq!(split.test.len(), 3);
    }

    #[test]
    #[should_panic(expected = "label 3 out of range")]
    fn label_validation() {
        let x = Tensor::zeros(&[1, 2]);
        let _ = Dataset::new(x, vec![3], 3);
    }

    #[test]
    fn class_histogram_counts() {
        let ds = toy(9);
        assert_eq!(ds.class_histogram(), vec![3, 3, 3]);
    }
}
