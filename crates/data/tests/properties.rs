//! Property-based tests for dataset invariants.

use data::{BatchIter, Dataset, GaussianMixture, LinearRegressionTask};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tensor::Tensor;

fn toy_dataset(n: usize, d: usize, k: usize) -> Dataset {
    let data: Vec<f32> = (0..n * d).map(|v| (v % 17) as f32).collect();
    let labels: Vec<usize> = (0..n).map(|i| i % k).collect();
    Dataset::new(Tensor::from_vec(data, &[n, d]).unwrap(), labels, k)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn shards_cover_everything(n in 4usize..64, m in 1usize..4) {
        let ds = toy_dataset(n, 3, 2);
        let shards = ds.shard(m.min(n));
        let total: usize = shards.iter().map(Dataset::len).sum();
        prop_assert_eq!(total, n);
        // Shard sizes differ by at most one.
        let sizes: Vec<usize> = shards.iter().map(Dataset::len).collect();
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        prop_assert!(max - min <= 1);
    }

    #[test]
    fn shuffle_preserves_multiset(n in 2usize..40, seed in 0u64..100) {
        let mut ds = toy_dataset(n, 2, 2);
        let mut before: Vec<Vec<f32>> = (0..n).map(|r| ds.features().row(r).to_vec()).collect();
        ds.shuffle(&mut StdRng::seed_from_u64(seed));
        let mut after: Vec<Vec<f32>> = (0..n).map(|r| ds.features().row(r).to_vec()).collect();
        before.sort_by(|a, b| a.partial_cmp(b).unwrap());
        after.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(before, after);
    }

    #[test]
    fn batches_always_full(n in 3usize..30, b in 1usize..10, seed in 0u64..50) {
        let mut it = BatchIter::new(toy_dataset(n, 2, 2), b);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..8 {
            let (x, y) = it.next_batch(&mut rng);
            prop_assert_eq!(x.dims()[0], b);
            prop_assert_eq!(y.len(), b);
        }
    }

    #[test]
    fn batch_labels_match_features(seed in 0u64..30) {
        // Labels yielded by the iterator must be consistent with the rows.
        let split = GaussianMixture::small_test().generate(seed);
        // Build a lookup from row bytes to label.
        let ds = &split.train;
        let mut it = BatchIter::new(ds.clone(), 4);
        let mut rng = StdRng::seed_from_u64(seed);
        let (x, y) = it.next_batch(&mut rng);
        for (r, &label) in y.iter().enumerate().take(4) {
            let row = x.row(r);
            // find the matching row in the source dataset
            let found = (0..ds.len()).find(|&i| ds.features().row(i) == row);
            prop_assert!(found.is_some());
            prop_assert_eq!(ds.labels()[found.unwrap()], label);
        }
    }

    #[test]
    fn regression_grad_norm_zero_only_near_optimum(seed in 0u64..20) {
        let p = LinearRegressionTask {
            samples: 128,
            dim: 4,
            label_noise: 0.1,
            conditioning: 1.5,
        }
        .generate(seed);
        // Gradient at w* is small; gradient far away is large.
        let g_star = p.grad(p.w_star()).norm();
        let far = Tensor::full(&[4], 100.0);
        let g_far = p.grad(&far).norm();
        prop_assert!(g_star < g_far / 10.0, "g* {g_star}, far {g_far}");
    }

    #[test]
    fn lipschitz_positive_and_stable(seed in 0u64..10) {
        let p = LinearRegressionTask::default_task().generate(seed);
        let l = p.lipschitz();
        prop_assert!(l > 0.0 && l.is_finite());
    }
}
