//! Criterion micro-benchmarks for the substrate crates: tensor kernels,
//! layer passes, PASGD rounds, scheduler overhead, and the compression
//! kernels (Top-K select, sign pack/unpack, quantize/dequantize).
//!
//! ```sh
//! cargo bench -p adacomm-bench --bench substrate
//! ```

use adacomm::{AdaComm, CommSchedule, ScheduleContext};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use data::GaussianMixture;
use delay::{CommModel, DelayDistribution, RuntimeModel};
use gradcomp::kernels::{dequantize, pack_signs, quantize_stochastic, top_k_indices, unpack_signs};
use gradcomp::{Compressor, TopK};
use nn::{models, Layer};
use pasgd_sim::{ClusterConfig, MomentumMode, PasgdCluster};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use tensor::Tensor;

fn bench_tensor(c: &mut Criterion) {
    let mut group = c.benchmark_group("tensor");
    group.sample_size(20);
    let mut rng = StdRng::seed_from_u64(0);
    let a = Tensor::randn(&[64, 256], 1.0, &mut rng);
    let b = Tensor::randn(&[256, 64], 1.0, &mut rng);
    group.bench_function("matmul_64x256x64", |bench| {
        bench.iter(|| black_box(a.matmul(&b)))
    });
    let b2 = Tensor::randn(&[64, 256], 1.0, &mut rng);
    group.bench_function("matmul_nt_64x256", |bench| {
        bench.iter(|| black_box(a.matmul_nt(&b2)))
    });
    let x = Tensor::randn(&[16384], 1.0, &mut rng);
    let y = Tensor::randn(&[16384], 1.0, &mut rng);
    group.bench_function("axpy_16k", |bench| {
        bench.iter_batched(
            || x.clone(),
            |mut acc| {
                acc.axpy(0.5, &y);
                black_box(acc)
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("average_4x16k", |bench| {
        let replicas = vec![x.clone(), y.clone(), x.clone(), y.clone()];
        bench.iter(|| black_box(tensor::average(&replicas)))
    });
    group.finish();
}

/// The seed's naive i-k-j kernel, kept verbatim for old-vs-new comparison.
fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let n = b.dims()[1];
    let (a, b) = (a.as_slice(), b.as_slice());
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (kk, &a_ik) in a_row.iter().enumerate() {
            if a_ik == 0.0 {
                continue;
            }
            let b_row = &b[kk * n..(kk + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                *o += a_ik * bv;
            }
        }
    }
    Tensor::from_vec(out, &[m, n]).expect("volume matches")
}

/// The seed's naive dot-product `a · bᵀ` kernel.
fn naive_matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let n = b.dims()[0];
    let (a, b) = (a.as_slice(), b.as_slice());
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (j, o) in out_row.iter_mut().enumerate() {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in a_row.iter().zip(b_row.iter()) {
                acc += av * bv;
            }
            *o = acc;
        }
    }
    Tensor::from_vec(out, &[m, n]).expect("volume matches")
}

/// Old (naive loops) vs new (k-blocked, register-tiled) kernels on the
/// exact shapes the training hot path runs: dense forward/backward and the
/// im2col GEMM. Results are bit-identical; only the wall clock differs.
fn bench_matmul_old_vs_new(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul_old_vs_new");
    group.sample_size(20);
    let mut rng = StdRng::seed_from_u64(17);
    // Dense forward: x[32,256] · W[256,64].
    let x = Tensor::randn(&[32, 256], 1.0, &mut rng);
    let w = Tensor::randn(&[256, 64], 1.0, &mut rng);
    group.bench_function("dense_fwd_32x256x64/old", |b| {
        b.iter(|| black_box(naive_matmul(&x, &w)))
    });
    group.bench_function("dense_fwd_32x256x64/new", |b| {
        b.iter(|| black_box(x.matmul(&w)))
    });
    // Dense input gradient: dy[32,64] · W[256,64]ᵀ.
    let dy = Tensor::randn(&[32, 64], 1.0, &mut rng);
    let w1 = Tensor::randn(&[256, 64], 1.0, &mut rng);
    group.bench_function("dense_bwd_dx_32x64x256/old", |b| {
        b.iter(|| black_box(naive_matmul_nt(&dy, &w1)))
    });
    group.bench_function("dense_bwd_dx_32x64x256/new", |b| {
        b.iter(|| black_box(dy.matmul_nt(&w1)))
    });
    // im2col GEMM of the vgg_like first conv: W[16,144] · col[144,64].
    let wc = Tensor::randn(&[16, 144], 1.0, &mut rng);
    let col = Tensor::randn(&[144, 64], 1.0, &mut rng);
    group.bench_function("im2col_gemm_16x144x64/old", |b| {
        b.iter(|| black_box(naive_matmul(&wc, &col)))
    });
    group.bench_function("im2col_gemm_16x144x64/new", |b| {
        b.iter(|| black_box(wc.matmul(&col)))
    });
    group.finish();
}

// ---- PR 4 register-blocked kernels, kept verbatim for the packed-vs-
// pre-PR5 comparison (4-row x 64-column blocks, runtime-width column
// tail, whole-matrix transpose scratch for the nt entry).

const PR4_MR: usize = 4;
const PR4_NB: usize = 64;

#[allow(clippy::too_many_arguments)]
fn pr4_accumulate_rows<const R: usize>(
    a: &[f32],
    b: &[f32],
    out4: &mut [f32],
    k: usize,
    n: usize,
    a_offset: usize,
    a_row_step: usize,
    a_stride: usize,
) {
    let mut j0 = 0;
    while j0 + PR4_NB <= n {
        let mut acc = [[0.0f32; PR4_NB]; R];
        let mut kk = 0;
        while kk + 4 <= k {
            let b0 = &b[kk * n + j0..kk * n + j0 + PR4_NB];
            let b1 = &b[(kk + 1) * n + j0..(kk + 1) * n + j0 + PR4_NB];
            let b2 = &b[(kk + 2) * n + j0..(kk + 2) * n + j0 + PR4_NB];
            let b3 = &b[(kk + 3) * n + j0..(kk + 3) * n + j0 + PR4_NB];
            for (r, accr) in acc.iter_mut().enumerate() {
                let base = a_offset + r * a_row_step + kk * a_stride;
                let a0 = a[base];
                let a1 = a[base + a_stride];
                let a2 = a[base + 2 * a_stride];
                let a3 = a[base + 3 * a_stride];
                for j in 0..PR4_NB {
                    let mut t = accr[j];
                    t = a0.mul_add(b0[j], t);
                    t = a1.mul_add(b1[j], t);
                    t = a2.mul_add(b2[j], t);
                    t = a3.mul_add(b3[j], t);
                    accr[j] = t;
                }
            }
            kk += 4;
        }
        for kr in kk..k {
            let b_row = &b[kr * n + j0..kr * n + j0 + PR4_NB];
            for (r, accr) in acc.iter_mut().enumerate() {
                let av = a[a_offset + r * a_row_step + kr * a_stride];
                for (o, &bv) in accr.iter_mut().zip(b_row) {
                    *o = av.mul_add(bv, *o);
                }
            }
        }
        for (r, accr) in acc.iter().enumerate() {
            out4[r * n + j0..r * n + j0 + PR4_NB].copy_from_slice(accr);
        }
        j0 += PR4_NB;
    }
    if j0 < n {
        // The runtime-width column tail the packed kernels' constant-width
        // panel dispatch replaced.
        let nb = n - j0;
        let mut acc = [[0.0f32; PR4_NB]; R];
        let mut kk = 0;
        while kk + 4 <= k {
            let b0 = &b[kk * n + j0..kk * n + j0 + nb];
            let b1 = &b[(kk + 1) * n + j0..(kk + 1) * n + j0 + nb];
            let b2 = &b[(kk + 2) * n + j0..(kk + 2) * n + j0 + nb];
            let b3 = &b[(kk + 3) * n + j0..(kk + 3) * n + j0 + nb];
            for (r, accr) in acc.iter_mut().enumerate() {
                let base = a_offset + r * a_row_step + kk * a_stride;
                let a0 = a[base];
                let a1 = a[base + a_stride];
                let a2 = a[base + 2 * a_stride];
                let a3 = a[base + 3 * a_stride];
                for (j, t) in accr[..nb].iter_mut().enumerate() {
                    let mut acc_v = *t;
                    acc_v = a0.mul_add(b0[j], acc_v);
                    acc_v = a1.mul_add(b1[j], acc_v);
                    acc_v = a2.mul_add(b2[j], acc_v);
                    acc_v = a3.mul_add(b3[j], acc_v);
                    *t = acc_v;
                }
            }
            kk += 4;
        }
        for kr in kk..k {
            let b_row = &b[kr * n + j0..kr * n + j0 + nb];
            for (r, accr) in acc.iter_mut().enumerate() {
                let av = a[a_offset + r * a_row_step + kr * a_stride];
                for (o, &bv) in accr[..nb].iter_mut().zip(b_row) {
                    *o = av.mul_add(bv, *o);
                }
            }
        }
        for (r, accr) in acc.iter().enumerate() {
            out4[r * n + j0..r * n + j0 + nb].copy_from_slice(&accr[..nb]);
        }
    }
}

fn pr4_accumulate_row(
    a: &[f32],
    b: &[f32],
    out_row: &mut [f32],
    k: usize,
    n: usize,
    a_stride: usize,
    a_offset: usize,
) {
    let mut kk = 0;
    while kk + 4 <= k {
        let a0 = a[a_offset + kk * a_stride];
        let a1 = a[a_offset + (kk + 1) * a_stride];
        let a2 = a[a_offset + (kk + 2) * a_stride];
        let a3 = a[a_offset + (kk + 3) * a_stride];
        if a0 == 0.0 && a1 == 0.0 && a2 == 0.0 && a3 == 0.0 {
            kk += 4;
            continue;
        }
        let b0 = &b[kk * n..(kk + 1) * n];
        let b1 = &b[(kk + 1) * n..(kk + 2) * n];
        let b2 = &b[(kk + 2) * n..(kk + 3) * n];
        let b3 = &b[(kk + 3) * n..(kk + 4) * n];
        for ((((o, &v0), &v1), &v2), &v3) in out_row.iter_mut().zip(b0).zip(b1).zip(b2).zip(b3) {
            let mut acc = *o;
            acc = a0.mul_add(v0, acc);
            acc = a1.mul_add(v1, acc);
            acc = a2.mul_add(v2, acc);
            acc = a3.mul_add(v3, acc);
            *o = acc;
        }
        kk += 4;
    }
    for kr in kk..k {
        let av = a[a_offset + kr * a_stride];
        if av == 0.0 {
            continue;
        }
        let b_row = &b[kr * n..(kr + 1) * n];
        for (o, &bv) in out_row.iter_mut().zip(b_row) {
            *o = av.mul_add(bv, *o);
        }
    }
}

fn pr4_matmul_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    let mut i = 0;
    while i + PR4_MR <= m {
        let out_rows = &mut out[i * n..(i + PR4_MR) * n];
        pr4_accumulate_rows::<PR4_MR>(a, b, out_rows, k, n, i * k, k, 1);
        i += PR4_MR;
    }
    out[i * n..].fill(0.0);
    for i in i..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        pr4_accumulate_row(a_row, b, out_row, k, n, 1, 0);
    }
}

fn pr4_matmul_nt_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    // The whole-matrix transpose scratch (PR 4 used a reused thread-local;
    // allocating here only shifts the comparison in PR 4's favour).
    let mut bt = vec![0.0f32; k * n];
    for j in 0..n {
        let b_row = &b[j * k..(j + 1) * k];
        for (kk, &v) in b_row.iter().enumerate() {
            bt[kk * n + j] = v;
        }
    }
    pr4_matmul_into(a, &bt, out, m, k, n);
}

/// Packed-panel kernels vs the PR 4 register-blocked ones on the shapes
/// the reproduction actually runs: the dense-layer forward (training and
/// evaluation batch), the classifier head (whose n = 10 hit PR 4's
/// runtime-width tail), and the conv-as-GEMM shape of the full-scale
/// models. Results are bit-identical; only the wall clock differs.
fn bench_matmul_packed_vs_pr4(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul_packed_vs_pr4");
    group.sample_size(20);
    let mut rng = StdRng::seed_from_u64(23);
    let shapes: [(&str, usize, usize, usize); 4] = [
        ("dense_fwd_train_32x256x64", 32, 256, 64),
        ("dense_fwd_eval_256x256x64", 256, 256, 64),
        ("classifier_head_256x64x10", 256, 64, 10),
        ("conv_as_gemm_16x144x1024", 16, 144, 1024),
    ];
    for (name, m, k, n) in shapes {
        let a = Tensor::randn(&[m, k], 1.0, &mut rng);
        let b = Tensor::randn(&[k, n], 1.0, &mut rng);
        let mut out = vec![0.0f32; m * n];
        group.bench_function(&format!("{name}/pr4"), |bench| {
            bench.iter(|| {
                pr4_matmul_into(a.as_slice(), b.as_slice(), &mut out, m, k, n);
                black_box(&mut out);
            })
        });
        group.bench_function(&format!("{name}/packed"), |bench| {
            bench.iter(|| {
                tensor::matmul_into(a.as_slice(), b.as_slice(), &mut out, m, k, n);
                black_box(&mut out);
            })
        });
    }
    // The nt entry (dx = dy · Wᵀ): packed panel-transpose vs PR 4's
    // whole-matrix scratch.
    let dy = Tensor::randn(&[32, 64], 1.0, &mut rng);
    let w = Tensor::randn(&[256, 64], 1.0, &mut rng);
    let mut dx = vec![0.0f32; 32 * 256];
    group.bench_function("dense_bwd_dx_nt_32x64x256/pr4", |bench| {
        bench.iter(|| {
            pr4_matmul_nt_into(dy.as_slice(), w.as_slice(), &mut dx, 32, 64, 256);
            black_box(&mut dx);
        })
    });
    group.bench_function("dense_bwd_dx_nt_32x64x256/packed", |bench| {
        bench.iter(|| {
            tensor::matmul_nt_into(dy.as_slice(), w.as_slice(), &mut dx, 32, 64, 256);
            black_box(&mut dx);
        })
    });
    group.finish();
}

/// Snapshot-per-round averaging (the seed's path: clone every worker's
/// tensors, average tensor-by-tensor) vs the flat-plane path (copy into
/// preallocated planes, accumulate into a reused accumulator).
fn bench_averaging_old_vs_new(c: &mut Criterion) {
    let mut group = c.benchmark_group("averaging_old_vs_new");
    group.sample_size(20);
    let replicas: Vec<nn::Network> = (0..4)
        .map(|s| models::mlp_classifier(256, &[64], 10, s))
        .collect();
    group.bench_function("snapshot_4xmlp", |b| {
        b.iter(|| {
            let snaps: Vec<Vec<Tensor>> =
                replicas.iter().map(nn::Network::params_snapshot).collect();
            black_box(nn::average_params(&snaps))
        })
    });
    let plane_len = replicas[0].param_count();
    group.bench_function("flat_plane_4xmlp", |b| {
        let mut accum = vec![0.0f32; plane_len];
        let mut scratch = vec![0.0f32; plane_len];
        b.iter(|| {
            replicas[0].copy_params_into(&mut accum);
            for r in &replicas[1..] {
                r.copy_params_into(&mut scratch);
                for (a, &s) in accum.iter_mut().zip(&scratch) {
                    *a += s;
                }
            }
            let inv = 1.0 / replicas.len() as f32;
            for a in accum.iter_mut() {
                *a *= inv;
            }
            black_box(accum[0])
        })
    });
    group.finish();
}

fn bench_nn(c: &mut Criterion) {
    let mut group = c.benchmark_group("nn");
    group.sample_size(20);
    let mut rng = StdRng::seed_from_u64(1);
    let x = Tensor::randn(&[32, 256], 1.0, &mut rng);
    let labels: Vec<usize> = (0..32).map(|i| i % 10).collect();
    group.bench_function("mlp_train_step_b32", |bench| {
        let mut net = models::mlp_classifier(256, &[64], 10, 3);
        bench.iter(|| black_box(net.train_step(&x, &labels)))
    });
    let ximg = Tensor::randn(&[8, 256], 1.0, &mut rng);
    group.bench_function("conv_forward_vgg_like_b8", |bench| {
        let mut net = models::vgg_like(1, 16, 10, 3);
        bench.iter(|| black_box(net.stack_mut().forward(&ximg, true)))
    });
    group.bench_function("params_snapshot_mlp", |bench| {
        let net = models::mlp_classifier(256, &[64], 10, 3);
        bench.iter(|| black_box(net.params_snapshot()))
    });
    group.finish();
}

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    let make_cluster = || {
        PasgdCluster::new(
            models::mlp_classifier(8, &[16], 3, 5),
            GaussianMixture::small_test().generate(1),
            RuntimeModel::new(
                DelayDistribution::constant(1.0),
                CommModel::constant(1.0),
                4,
            ),
            ClusterConfig {
                workers: 4,
                batch_size: 8,
                lr: 0.05,
                weight_decay: 0.0,
                momentum: MomentumMode::None,
                averaging: pasgd_sim::AveragingStrategy::FullAverage,
                codec: gradcomp::CodecSpec::Identity,
                seed: 2,
                eval_subset: 48,
                fault: pasgd_sim::FaultConfig::NONE,
            },
        )
    };
    group.bench_function("round_tau8_m4", |bench| {
        bench.iter_batched(
            make_cluster,
            |mut cluster| {
                cluster.run_round(8);
                black_box(cluster.clock())
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("averaging_only_m4", |bench| {
        bench.iter_batched(
            make_cluster,
            |mut cluster| {
                cluster.average_now();
                black_box(cluster.clock())
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_scheduler(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler");
    let ctx = ScheduleContext {
        interval_index: 5,
        wall_clock: 300.0,
        current_loss: 0.4,
        initial_loss: 2.3,
        current_lr: 0.2,
        initial_lr: 0.2,
        degraded_frac: 0.0,
    };
    group.bench_function("adacomm_next_tau", |bench| {
        let mut sched = AdaComm::with_tau0(32);
        bench.iter(|| black_box(sched.next_tau(&ctx)))
    });
    group.finish();
}

fn bench_compress(c: &mut Criterion) {
    let mut group = c.benchmark_group("compress");
    group.sample_size(20);
    let mut rng = StdRng::seed_from_u64(7);
    let x = Tensor::randn(&[16384], 1.0, &mut rng);
    let values = x.as_slice().to_vec();

    group.bench_function("top_k_select_1pct_16k", |bench| {
        bench.iter(|| black_box(top_k_indices(&values, 164)))
    });
    group.bench_function("sign_pack_unpack_16k", |bench| {
        bench.iter(|| {
            let packed = pack_signs(&values);
            black_box(unpack_signs(&packed, values.len(), 0.5))
        })
    });
    group.bench_function("qsgd4_roundtrip_16k", |bench| {
        let norm = x.norm();
        let mut qrng = StdRng::seed_from_u64(8);
        bench.iter(|| {
            let q = quantize_stochastic(&values, norm, 15, &mut qrng);
            black_box(dequantize(&q, norm, 15))
        })
    });
    group.bench_function("topk_codec_1pct_16k", |bench| {
        let codec = TopK::new(0.01);
        let mut crng = StdRng::seed_from_u64(9);
        bench.iter(|| black_box(codec.compress(&x, &mut crng)))
    });
    group.finish();
}

fn bench_delay(c: &mut Criterion) {
    let mut group = c.benchmark_group("delay");
    let model = RuntimeModel::new(
        DelayDistribution::exponential(1.0),
        CommModel::constant(1.0),
        16,
    );
    group.bench_function("sample_round_tau10_m16", |bench| {
        let mut rng = StdRng::seed_from_u64(3);
        bench.iter(|| black_box(model.sample_round(10, &mut rng)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_tensor,
    bench_matmul_old_vs_new,
    bench_matmul_packed_vs_pr4,
    bench_averaging_old_vs_new,
    bench_nn,
    bench_simulator,
    bench_scheduler,
    bench_compress,
    bench_delay
);
criterion_main!(benches);
