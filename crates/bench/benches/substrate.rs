//! Criterion micro-benchmarks for the substrate crates: tensor kernels,
//! layer passes, PASGD rounds, scheduler overhead, and the compression
//! kernels (Top-K select, sign pack/unpack, quantize/dequantize).
//!
//! ```sh
//! cargo bench -p adacomm-bench --bench substrate
//! ```

use adacomm::{AdaComm, CommSchedule, ScheduleContext};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use data::GaussianMixture;
use delay::{CommModel, DelayDistribution, RuntimeModel};
use gradcomp::kernels::{dequantize, pack_signs, quantize_stochastic, top_k_indices, unpack_signs};
use gradcomp::{Compressor, TopK};
use nn::{models, Layer};
use pasgd_sim::{ClusterConfig, MomentumMode, PasgdCluster};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use tensor::Tensor;

fn bench_tensor(c: &mut Criterion) {
    let mut group = c.benchmark_group("tensor");
    group.sample_size(20);
    let mut rng = StdRng::seed_from_u64(0);
    let a = Tensor::randn(&[64, 256], 1.0, &mut rng);
    let b = Tensor::randn(&[256, 64], 1.0, &mut rng);
    group.bench_function("matmul_64x256x64", |bench| {
        bench.iter(|| black_box(a.matmul(&b)))
    });
    let b2 = Tensor::randn(&[64, 256], 1.0, &mut rng);
    group.bench_function("matmul_nt_64x256", |bench| {
        bench.iter(|| black_box(a.matmul_nt(&b2)))
    });
    let x = Tensor::randn(&[16384], 1.0, &mut rng);
    let y = Tensor::randn(&[16384], 1.0, &mut rng);
    group.bench_function("axpy_16k", |bench| {
        bench.iter_batched(
            || x.clone(),
            |mut acc| {
                acc.axpy(0.5, &y);
                black_box(acc)
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("average_4x16k", |bench| {
        let replicas = vec![x.clone(), y.clone(), x.clone(), y.clone()];
        bench.iter(|| black_box(tensor::average(&replicas)))
    });
    group.finish();
}

/// The seed's naive i-k-j kernel, kept verbatim for old-vs-new comparison.
fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let n = b.dims()[1];
    let (a, b) = (a.as_slice(), b.as_slice());
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (kk, &a_ik) in a_row.iter().enumerate() {
            if a_ik == 0.0 {
                continue;
            }
            let b_row = &b[kk * n..(kk + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                *o += a_ik * bv;
            }
        }
    }
    Tensor::from_vec(out, &[m, n]).expect("volume matches")
}

/// The seed's naive dot-product `a · bᵀ` kernel.
fn naive_matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let n = b.dims()[0];
    let (a, b) = (a.as_slice(), b.as_slice());
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (j, o) in out_row.iter_mut().enumerate() {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in a_row.iter().zip(b_row.iter()) {
                acc += av * bv;
            }
            *o = acc;
        }
    }
    Tensor::from_vec(out, &[m, n]).expect("volume matches")
}

/// Old (naive loops) vs new (k-blocked, register-tiled) kernels on the
/// exact shapes the training hot path runs: dense forward/backward and the
/// im2col GEMM. Results are bit-identical; only the wall clock differs.
fn bench_matmul_old_vs_new(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul_old_vs_new");
    group.sample_size(20);
    let mut rng = StdRng::seed_from_u64(17);
    // Dense forward: x[32,256] · W[256,64].
    let x = Tensor::randn(&[32, 256], 1.0, &mut rng);
    let w = Tensor::randn(&[256, 64], 1.0, &mut rng);
    group.bench_function("dense_fwd_32x256x64/old", |b| {
        b.iter(|| black_box(naive_matmul(&x, &w)))
    });
    group.bench_function("dense_fwd_32x256x64/new", |b| {
        b.iter(|| black_box(x.matmul(&w)))
    });
    // Dense input gradient: dy[32,64] · W[256,64]ᵀ.
    let dy = Tensor::randn(&[32, 64], 1.0, &mut rng);
    let w1 = Tensor::randn(&[256, 64], 1.0, &mut rng);
    group.bench_function("dense_bwd_dx_32x64x256/old", |b| {
        b.iter(|| black_box(naive_matmul_nt(&dy, &w1)))
    });
    group.bench_function("dense_bwd_dx_32x64x256/new", |b| {
        b.iter(|| black_box(dy.matmul_nt(&w1)))
    });
    // im2col GEMM of the vgg_like first conv: W[16,144] · col[144,64].
    let wc = Tensor::randn(&[16, 144], 1.0, &mut rng);
    let col = Tensor::randn(&[144, 64], 1.0, &mut rng);
    group.bench_function("im2col_gemm_16x144x64/old", |b| {
        b.iter(|| black_box(naive_matmul(&wc, &col)))
    });
    group.bench_function("im2col_gemm_16x144x64/new", |b| {
        b.iter(|| black_box(wc.matmul(&col)))
    });
    group.finish();
}

/// Snapshot-per-round averaging (the seed's path: clone every worker's
/// tensors, average tensor-by-tensor) vs the flat-plane path (copy into
/// preallocated planes, accumulate into a reused accumulator).
fn bench_averaging_old_vs_new(c: &mut Criterion) {
    let mut group = c.benchmark_group("averaging_old_vs_new");
    group.sample_size(20);
    let replicas: Vec<nn::Network> = (0..4)
        .map(|s| models::mlp_classifier(256, &[64], 10, s))
        .collect();
    group.bench_function("snapshot_4xmlp", |b| {
        b.iter(|| {
            let snaps: Vec<Vec<Tensor>> =
                replicas.iter().map(nn::Network::params_snapshot).collect();
            black_box(nn::average_params(&snaps))
        })
    });
    let plane_len = replicas[0].param_count();
    group.bench_function("flat_plane_4xmlp", |b| {
        let mut accum = vec![0.0f32; plane_len];
        let mut scratch = vec![0.0f32; plane_len];
        b.iter(|| {
            replicas[0].copy_params_into(&mut accum);
            for r in &replicas[1..] {
                r.copy_params_into(&mut scratch);
                for (a, &s) in accum.iter_mut().zip(&scratch) {
                    *a += s;
                }
            }
            let inv = 1.0 / replicas.len() as f32;
            for a in accum.iter_mut() {
                *a *= inv;
            }
            black_box(accum[0])
        })
    });
    group.finish();
}

fn bench_nn(c: &mut Criterion) {
    let mut group = c.benchmark_group("nn");
    group.sample_size(20);
    let mut rng = StdRng::seed_from_u64(1);
    let x = Tensor::randn(&[32, 256], 1.0, &mut rng);
    let labels: Vec<usize> = (0..32).map(|i| i % 10).collect();
    group.bench_function("mlp_train_step_b32", |bench| {
        let mut net = models::mlp_classifier(256, &[64], 10, 3);
        bench.iter(|| black_box(net.train_step(&x, &labels)))
    });
    let ximg = Tensor::randn(&[8, 256], 1.0, &mut rng);
    group.bench_function("conv_forward_vgg_like_b8", |bench| {
        let mut net = models::vgg_like(1, 16, 10, 3);
        bench.iter(|| black_box(net.stack_mut().forward(&ximg, true)))
    });
    group.bench_function("params_snapshot_mlp", |bench| {
        let net = models::mlp_classifier(256, &[64], 10, 3);
        bench.iter(|| black_box(net.params_snapshot()))
    });
    group.finish();
}

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    let make_cluster = || {
        PasgdCluster::new(
            models::mlp_classifier(8, &[16], 3, 5),
            GaussianMixture::small_test().generate(1),
            RuntimeModel::new(
                DelayDistribution::constant(1.0),
                CommModel::constant(1.0),
                4,
            ),
            ClusterConfig {
                workers: 4,
                batch_size: 8,
                lr: 0.05,
                weight_decay: 0.0,
                momentum: MomentumMode::None,
                averaging: pasgd_sim::AveragingStrategy::FullAverage,
                codec: gradcomp::CodecSpec::Identity,
                seed: 2,
                eval_subset: 48,
            },
        )
    };
    group.bench_function("round_tau8_m4", |bench| {
        bench.iter_batched(
            make_cluster,
            |mut cluster| {
                cluster.run_round(8);
                black_box(cluster.clock())
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("averaging_only_m4", |bench| {
        bench.iter_batched(
            make_cluster,
            |mut cluster| {
                cluster.average_now();
                black_box(cluster.clock())
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_scheduler(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler");
    let ctx = ScheduleContext {
        interval_index: 5,
        wall_clock: 300.0,
        current_loss: 0.4,
        initial_loss: 2.3,
        current_lr: 0.2,
        initial_lr: 0.2,
    };
    group.bench_function("adacomm_next_tau", |bench| {
        let mut sched = AdaComm::with_tau0(32);
        bench.iter(|| black_box(sched.next_tau(&ctx)))
    });
    group.finish();
}

fn bench_compress(c: &mut Criterion) {
    let mut group = c.benchmark_group("compress");
    group.sample_size(20);
    let mut rng = StdRng::seed_from_u64(7);
    let x = Tensor::randn(&[16384], 1.0, &mut rng);
    let values = x.as_slice().to_vec();

    group.bench_function("top_k_select_1pct_16k", |bench| {
        bench.iter(|| black_box(top_k_indices(&values, 164)))
    });
    group.bench_function("sign_pack_unpack_16k", |bench| {
        bench.iter(|| {
            let packed = pack_signs(&values);
            black_box(unpack_signs(&packed, values.len(), 0.5))
        })
    });
    group.bench_function("qsgd4_roundtrip_16k", |bench| {
        let norm = x.norm();
        let mut qrng = StdRng::seed_from_u64(8);
        bench.iter(|| {
            let q = quantize_stochastic(&values, norm, 15, &mut qrng);
            black_box(dequantize(&q, norm, 15))
        })
    });
    group.bench_function("topk_codec_1pct_16k", |bench| {
        let codec = TopK::new(0.01);
        let mut crng = StdRng::seed_from_u64(9);
        bench.iter(|| black_box(codec.compress(&x, &mut crng)))
    });
    group.finish();
}

fn bench_delay(c: &mut Criterion) {
    let mut group = c.benchmark_group("delay");
    let model = RuntimeModel::new(
        DelayDistribution::exponential(1.0),
        CommModel::constant(1.0),
        16,
    );
    group.bench_function("sample_round_tau10_m16", |bench| {
        let mut rng = StdRng::seed_from_u64(3);
        bench.iter(|| black_box(model.sample_round(10, &mut rng)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_tensor,
    bench_matmul_old_vs_new,
    bench_averaging_old_vs_new,
    bench_nn,
    bench_simulator,
    bench_scheduler,
    bench_compress,
    bench_delay
);
criterion_main!(benches);
