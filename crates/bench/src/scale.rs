//! The smoke/quick/full experiment-scale switch.

/// How big the reproduction runs should be.
///
/// `Quick` (the default) is sized so that the entire figure suite finishes
/// in minutes on a laptop; `Full` uses longer simulated budgets and larger
/// models (including the convolutional VGG-like/ResNet-like architectures)
/// for closer-to-paper curves; `Smoke` shrinks every heavy simulated
/// budget so CI can exercise the full in-process sweep path — every
/// figure, every scheduler, the run-parallel engine — in seconds. Select
/// with the `ADACOMM_SCALE` environment variable (`smoke`, `quick` or
/// `full`) or a `--smoke`/`--full` CLI flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// CI-sized budgets (curves are too short to read scientifically;
    /// the point is exercising every code path).
    Smoke,
    /// Laptop-sized runs (default).
    Quick,
    /// Longer, closer-to-paper runs.
    Full,
}

impl Scale {
    /// Reads the scale from `--smoke`/`--full` in `args` or the
    /// `ADACOMM_SCALE` environment variable; defaults to [`Scale::Quick`].
    pub fn from_env_and_args() -> Self {
        if std::env::args().any(|a| a == "--full") {
            return Scale::Full;
        }
        if std::env::args().any(|a| a == "--smoke") {
            return Scale::Smoke;
        }
        match std::env::var("ADACOMM_SCALE").as_deref() {
            Ok("full") | Ok("FULL") => Scale::Full,
            Ok("smoke") | Ok("SMOKE") => Scale::Smoke,
            _ => Scale::Quick,
        }
    }

    /// Whether this is the full-size configuration.
    pub fn is_full(&self) -> bool {
        matches!(self, Scale::Full)
    }

    /// Whether this is the CI smoke configuration.
    pub fn is_smoke(&self) -> bool {
        matches!(self, Scale::Smoke)
    }

    /// Monte-Carlo sample count for the analytic figures.
    pub fn mc_samples(&self) -> usize {
        match self {
            Scale::Smoke => 4_000,
            Scale::Quick => 40_000,
            Scale::Full => 400_000,
        }
    }
}

impl std::fmt::Display for Scale {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Scale::Smoke => write!(f, "smoke"),
            Scale::Quick => write!(f, "quick"),
            Scale::Full => write!(f, "full"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_quick() {
        // Cannot touch the process env safely in tests; just check the
        // accessors.
        assert!(!Scale::Quick.is_full());
        assert!(Scale::Full.is_full());
        assert!(Scale::Smoke.is_smoke() && !Scale::Smoke.is_full());
        assert!(Scale::Full.mc_samples() > Scale::Quick.mc_samples());
        assert!(Scale::Quick.mc_samples() > Scale::Smoke.mc_samples());
    }

    #[test]
    fn display_names() {
        assert_eq!(Scale::Smoke.to_string(), "smoke");
        assert_eq!(Scale::Quick.to_string(), "quick");
        assert_eq!(Scale::Full.to_string(), "full");
    }
}
