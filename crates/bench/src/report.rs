//! Plain-text tables, ASCII series plots and CSV output for the figure
//! binaries.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

/// A simple fixed-column text table, printed like the paper's tables.
///
/// # Example
///
/// ```
/// use adacomm_bench::Table;
///
/// let mut t = Table::new(vec!["method".into(), "loss".into()]);
/// t.row(vec!["sync-sgd".into(), "0.0123".into()]);
/// let s = t.render();
/// assert!(s.contains("sync-sgd"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    pub fn new(headers: Vec<String>) -> Self {
        assert!(!headers.is_empty(), "table needs at least one column");
        Table {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the arity differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row has {} cells but the table has {} columns",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Renders the table to a string (headers, rule, rows).
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            cells
                .iter()
                .zip(widths)
                .map(|(cell, w)| format!("{cell:>w$}", w = w))
                .collect::<Vec<_>>()
                .join(" | ")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 3 * (cols - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Writes the table as CSV to `results/<name>.csv` (see [`write_csv`]).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the results directory or the
    /// file cannot be created.
    pub fn save_csv(&self, name: &str) -> io::Result<PathBuf> {
        let mut csv = self.headers.join(",");
        csv.push('\n');
        for row in &self.rows {
            csv.push_str(&row.join(","));
            csv.push('\n');
        }
        write_csv(name, &csv)
    }
}

/// Redirects CSV output into `results/<subdir>/` for the rest of the
/// process — the smoke reproduction writes to `results/smoke/` so a CI
/// exercise never dirties the committed quick-scale CSVs. First call wins;
/// call before any figure runs.
pub fn set_results_subdir(subdir: &str) {
    let _ = results_subdir().set(subdir.to_string());
}

fn results_subdir() -> &'static OnceLock<String> {
    static SUBDIR: OnceLock<String> = OnceLock::new();
    &SUBDIR
}

/// Writes `content` to `results/<name>.csv`, creating the directory if
/// needed, and returns the written path. The path is relative to the
/// workspace root when run via cargo, or to the current directory
/// otherwise. Figures run concurrently in-process write distinct names,
/// so there is no cross-figure contention on these files.
///
/// # Errors
///
/// Returns the underlying I/O error if the directory or file cannot be
/// created.
pub fn write_csv(name: &str, content: &str) -> io::Result<PathBuf> {
    let dir = results_dir();
    fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.csv"));
    fs::write(&path, content)?;
    Ok(path)
}

/// The directory CSVs (and the run store) land in: `results/` at the
/// workspace root, or `results/<subdir>/` after [`set_results_subdir`] —
/// so a `--smoke` run's cache is isolated exactly like its CSVs.
pub fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR points at crates/bench; the workspace root is two
    // levels up. Fall back to ./results when not run through cargo.
    let base = match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(dir) => Path::new(&dir).join("../../results"),
        Err(_) => Path::new("results").to_path_buf(),
    };
    match results_subdir().get() {
        Some(sub) => base.join(sub),
        None => base,
    }
}

/// Renders an ASCII plot of one or more `(x, y)` series on a shared log-y
/// axis — the harness's stand-in for the paper's loss curves. Returns the
/// multi-line plot.
///
/// # Panics
///
/// Panics if `series` is empty or every series is empty.
pub fn ascii_series(series: &[(String, Vec<(f64, f64)>)], width: usize, height: usize) -> String {
    assert!(!series.is_empty(), "nothing to plot");
    let points: Vec<(f64, f64)> = series.iter().flat_map(|(_, s)| s.iter().copied()).collect();
    assert!(!points.is_empty(), "all series are empty");
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &points {
        let ly = y.max(1e-12).log10();
        x_min = x_min.min(x);
        x_max = x_max.max(x);
        y_min = y_min.min(ly);
        y_max = y_max.max(ly);
    }
    if (x_max - x_min).abs() < 1e-12 {
        x_max = x_min + 1.0;
    }
    if (y_max - y_min).abs() < 1e-12 {
        y_max = y_min + 1.0;
    }
    let mut grid = vec![vec![b' '; width]; height];
    let marks = [b'*', b'o', b'+', b'x', b'#', b'@'];
    for (si, (_, s)) in series.iter().enumerate() {
        let mark = marks[si % marks.len()];
        for &(x, y) in s {
            let ly = y.max(1e-12).log10();
            let col = (((x - x_min) / (x_max - x_min)) * (width - 1) as f64).round() as usize;
            let row = (((y_max - ly) / (y_max - y_min)) * (height - 1) as f64).round() as usize;
            grid[row.min(height - 1)][col.min(width - 1)] = mark;
        }
    }
    let mut out = String::new();
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            format!("{:>8.3} ", 10f64.powf(y_max))
        } else if i == height - 1 {
            format!("{:>8.3} ", 10f64.powf(y_min))
        } else {
            " ".repeat(9)
        };
        let _ = writeln!(out, "{label}|{}", String::from_utf8_lossy(row));
    }
    let _ = writeln!(out, "{}+{}", " ".repeat(9), "-".repeat(width));
    let _ = writeln!(
        out,
        "{}{:<10.1}{:>w$.1}",
        " ".repeat(10),
        x_min,
        x_max,
        w = width.saturating_sub(10)
    );
    for (si, (name, _)) in series.iter().enumerate() {
        let _ = writeln!(
            out,
            "          {} = {name}",
            marks[si % marks.len()] as char
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["a".into(), "bb".into()]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["333".into(), "4".into()]);
        let s = t.render();
        assert!(s.contains("333 |  4"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
    }

    #[test]
    #[should_panic(expected = "row has 1 cells")]
    fn arity_checked() {
        let mut t = Table::new(vec!["a".into(), "b".into()]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn ascii_series_contains_marks_and_legend() {
        let s = ascii_series(
            &[
                ("one".into(), vec![(0.0, 1.0), (1.0, 0.1)]),
                ("two".into(), vec![(0.0, 2.0), (1.0, 0.5)]),
            ],
            40,
            10,
        );
        assert!(s.contains('*'));
        assert!(s.contains('o'));
        assert!(s.contains("one"));
        assert!(s.contains("two"));
    }

    #[test]
    fn ascii_handles_flat_series() {
        let s = ascii_series(&[("flat".into(), vec![(0.0, 1.0), (1.0, 1.0)])], 20, 5);
        assert!(s.contains('*'));
    }
}
