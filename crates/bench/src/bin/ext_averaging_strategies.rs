//! Standalone entry point for the `ext_averaging_strategies` reproduction target; the figure
//! body lives in `adacomm_bench::figures` so `reproduce_all` can execute
//! it in-process (and in parallel with the other figures).
//!
//! ```sh
//! cargo run --release -p adacomm-bench --bin ext_averaging_strategies [--full|--smoke]
//! ```

fn main() -> std::io::Result<()> {
    adacomm_bench::figures::run_standalone("ext_averaging_strategies")
}
