//! Extension experiment: AdaComm's adaptive frequency under the other
//! synchronization patterns the paper's concluding remarks point to —
//! elastic averaging (Zhang et al., 2015), decentralized ring gossip
//! (Lian et al., 2017) and federated-style partial participation
//! (McMahan et al., 2016).
//!
//! ```sh
//! cargo run --release -p adacomm-bench --bin ext_averaging_strategies [--full]
//! ```

use adacomm::{AdaComm, LrSchedule};
use adacomm_bench::{save_panel_csv, Scale, Table};
use data::GaussianMixture;
use delay::{CommModel, DelayDistribution, RuntimeModel};
use pasgd_sim::{
    AveragingStrategy, ClusterConfig, ExperimentConfig, ExperimentSuite, MomentumMode,
};

fn main() -> std::io::Result<()> {
    let scale = Scale::from_env_and_args();
    println!("Extension: AdaComm under different averaging strategies (scale {scale})\n");

    let workers = 4;
    let runtime = RuntimeModel::new(
        DelayDistribution::shifted_exponential(0.13, 0.05),
        CommModel::constant(0.72),
        workers,
    );
    let split = GaussianMixture::cifar10_like().generate(77);
    let total_secs = if scale.is_full() { 1200.0 } else { 480.0 };

    let strategies: Vec<(&str, AveragingStrategy)> = vec![
        ("full average (PASGD)", AveragingStrategy::FullAverage),
        ("ring gossip", AveragingStrategy::Ring),
        (
            "partial participation 50%",
            AveragingStrategy::PartialParticipation { fraction: 0.5 },
        ),
        (
            "elastic alpha=0.5",
            AveragingStrategy::Elastic { alpha: 0.5 },
        ),
    ];

    let mut table = Table::new(vec![
        "strategy".into(),
        "final loss".into(),
        "min loss".into(),
        "best acc %".into(),
        "iterations".into(),
    ]);
    let mut traces = Vec::new();
    for (name, strategy) in strategies {
        let suite = ExperimentSuite::new(
            nn::models::mlp_classifier(256, &[64], 10, 31),
            split.clone(),
            runtime,
            ClusterConfig {
                workers,
                batch_size: 32,
                lr: 0.2,
                weight_decay: 5e-4,
                momentum: MomentumMode::None,
                averaging: strategy,
                codec: gradcomp::CodecSpec::Identity,
                seed: 9,
                eval_subset: 1024,
            },
            ExperimentConfig {
                interval_secs: 20.0,
                total_secs,
                record_every_secs: total_secs / 30.0,
                gate_lr_on_tau: false,
            },
        );
        let mut trace = suite.run(&mut AdaComm::with_tau0(16), &LrSchedule::constant(0.2));
        trace.name = name.to_string();
        let last = trace.points.last().expect("non-empty");
        table.row(vec![
            name.to_string(),
            format!("{:.4}", trace.final_loss()),
            format!("{:.4}", trace.min_loss()),
            format!("{:.2}", 100.0 * trace.best_test_accuracy()),
            last.iterations.to_string(),
        ]);
        traces.push(trace);
    }
    table.print();
    save_panel_csv("ext_averaging_strategies", &traces)?;

    println!("\nthe adaptive schedule composes with every strategy; full averaging");
    println!("reaches the lowest floor while gossip/partial variants trade a little");
    println!("final loss for cheaper or more failure-tolerant synchronization —");
    println!("the extension direction the paper's concluding remarks sketch.");
    Ok(())
}
