//! Renders (and validates) the JSONL telemetry profiles written by
//! `reproduce_all --trace DIR`.
//!
//! ```sh
//! cargo run --release -p adacomm-bench --bin obs_report -- [--check] DIR
//! ```
//!
//! Without flags, prints a per-window report for every `*.jsonl` file in
//! `DIR` (sorted by name): the per-phase wall-time attribution table
//! (span self/total seconds and share of the window's measured wall
//! clock), the byte-traffic counters, the sweep-service counters
//! (`server.*`, when the window has any), and the enriched simulator
//! trace point count.
//!
//! `--check` validates instead of rendering: every line must parse
//! against the schema (see `telemetry::schema`), every file must lead
//! with exactly one `meta` header, and the `phase.*` span self-times must
//! sum to the window's measured wall clock within `max(5%, 2 ms)` — the
//! structural guarantee that the phase taxonomy actually covers the run.
//! Windows whose meta line carries `"service":true` (the `sweepd`
//! profile) are exempt from the coverage rule — a daemon idles between
//! requests and its workers overlap — and their `server.*` counters are
//! printed one per line (`service <file>: server.shed = N`) so CI can
//! assert on them. Exits non-zero listing every violation. The checker
//! is feature-free: it works in a `--no-default-features` build and on
//! traces recorded on another machine.

use adacomm_bench::Table;
use telemetry::schema::{self, Record};

/// Everything `obs_report` keeps from one trace file.
struct Window {
    file: String,
    task: String,
    scale: String,
    wall_secs: f64,
    service: bool,
    spans: Vec<(String, f64, f64, f64)>, // name, count, total, self
    counters: Vec<(String, f64)>,
    hists: Vec<(String, f64, f64)>, // name, count, sum
    points: usize,
    warnings: Vec<(String, String)>, // source, reason
    errors: Vec<String>,
}

/// Tolerance for the phase-coverage check: generous for sub-millisecond
/// analytic windows, 5% for real ones.
fn coverage_slack(wall_secs: f64) -> f64 {
    (0.05 * wall_secs).max(0.002)
}

fn read_window(path: &std::path::Path) -> Window {
    let file = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    let mut win = Window {
        file,
        task: String::new(),
        scale: String::new(),
        wall_secs: 0.0,
        service: false,
        spans: Vec::new(),
        counters: Vec::new(),
        hists: Vec::new(),
        points: 0,
        warnings: Vec::new(),
        errors: Vec::new(),
    };
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            win.errors.push(format!("unreadable: {e}"));
            return win;
        }
    };
    let mut metas = 0usize;
    for (idx, line) in text.lines().enumerate() {
        match schema::parse_line(line) {
            Ok(Record::Meta {
                task,
                scale,
                wall_secs,
                service,
                ..
            }) => {
                metas += 1;
                if idx != 0 {
                    win.errors
                        .push(format!("line {}: meta header not first", idx + 1));
                }
                win.task = task;
                win.scale = scale;
                win.wall_secs = wall_secs;
                win.service = service;
            }
            Ok(Record::Span {
                name,
                count,
                total_secs,
                self_secs,
            }) => win.spans.push((name, count, total_secs, self_secs)),
            Ok(Record::Counter { name, value }) => win.counters.push((name, value)),
            Ok(Record::Hist {
                name, count, sum, ..
            }) => win.hists.push((name, count, sum)),
            Ok(Record::Point { .. }) => win.points += 1,
            // Warnings are recovered anomalies: surfaced in the report
            // (and under --check), but never a validation violation.
            Ok(Record::Warning { source, reason }) => win.warnings.push((source, reason)),
            Ok(Record::Gauge { .. }) => {}
            Err(e) => win.errors.push(format!("line {}: {e}", idx + 1)),
        }
    }
    if metas != 1 {
        win.errors
            .push(format!("expected exactly 1 meta header, found {metas}"));
    }
    win
}

/// Sum of `phase.*` self-times — the disjoint partition of the window's
/// instrumented wall clock (kernel timers overlap phases, so they are
/// excluded).
fn phase_self_sum(win: &Window) -> f64 {
    win.spans
        .iter()
        .filter(|(name, ..)| name.starts_with("phase."))
        .map(|(_, _, _, self_secs)| self_secs)
        .sum()
}

fn check_window(win: &Window) -> Vec<String> {
    let mut violations: Vec<String> = win
        .errors
        .iter()
        .map(|e| format!("{}: {e}", win.file))
        .collect();
    // Service windows (meta `"service":true`, e.g. `sweepd`) are exempt
    // from phase coverage: a daemon idles between requests and its
    // workers overlap, so span self-times never tile the wall clock.
    let covered = phase_self_sum(win);
    if !win.service && (covered - win.wall_secs).abs() > coverage_slack(win.wall_secs) {
        violations.push(format!(
            "{}: phase self-times sum to {covered:.4} s but the window measured {:.4} s wall \
             (tolerance {:.4} s)",
            win.file,
            win.wall_secs,
            coverage_slack(win.wall_secs)
        ));
    }
    violations
}

/// The sweep service's counters (`server.*`), for the dedicated table in
/// the rendered report and the `service` lines under `--check`.
fn server_counters(win: &Window) -> Vec<&(String, f64)> {
    win.counters
        .iter()
        .filter(|(name, _)| name.starts_with("server."))
        .collect()
}

fn render_window(win: &Window) {
    println!(
        "=== {} (task {}, scale {}{})",
        win.file,
        win.task,
        win.scale,
        if win.service { ", service" } else { "" }
    );
    let covered = phase_self_sum(win);
    println!(
        "wall {:.3} s; phase coverage {:.3} s ({:.1}%); {} trace points",
        win.wall_secs,
        covered,
        100.0 * covered / win.wall_secs.max(1e-9),
        win.points
    );
    if !win.spans.is_empty() {
        let mut table = Table::new(vec![
            "span".into(),
            "calls".into(),
            "total s".into(),
            "self s".into(),
            "% of wall".into(),
        ]);
        for (name, count, total, self_secs) in &win.spans {
            table.row(vec![
                name.clone(),
                format!("{count:.0}"),
                format!("{total:.4}"),
                format!("{self_secs:.4}"),
                format!("{:.1}", 100.0 * self_secs / win.wall_secs.max(1e-9)),
            ]);
        }
        table.print();
    }
    let bytes: Vec<&(String, f64)> = win
        .counters
        .iter()
        .filter(|(name, _)| name.ends_with("_bytes"))
        .collect();
    if !bytes.is_empty() {
        let mut table = Table::new(vec!["counter".into(), "bytes".into()]);
        for (name, value) in bytes {
            table.row(vec![name.clone(), format!("{value:.0}")]);
        }
        table.print();
    }
    let service = server_counters(win);
    if !service.is_empty() {
        let mut table = Table::new(vec!["service counter".into(), "value".into()]);
        for (name, value) in service {
            table.row(vec![name.clone(), format!("{value:.0}")]);
        }
        table.print();
    }
    if !win.hists.is_empty() {
        let mut table = Table::new(vec!["histogram".into(), "count".into(), "sum".into()]);
        for (name, count, sum) in &win.hists {
            table.row(vec![
                name.clone(),
                format!("{count:.0}"),
                format!("{sum:.3}"),
            ]);
        }
        table.print();
    }
    for (source, reason) in &win.warnings {
        println!("warning [{source}]: {reason}");
    }
    println!();
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check = args.iter().any(|a| a == "--check");
    let dir = match args.iter().find(|a| !a.starts_with("--")) {
        Some(dir) => std::path::PathBuf::from(dir),
        None => {
            eprintln!("usage: obs_report [--check] TRACE_DIR");
            std::process::exit(2);
        }
    };
    let mut paths: Vec<std::path::PathBuf> = match std::fs::read_dir(&dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|ext| ext == "jsonl"))
            .collect(),
        Err(e) => {
            eprintln!("cannot read trace dir {}: {e}", dir.display());
            std::process::exit(2);
        }
    };
    paths.sort();
    if paths.is_empty() {
        eprintln!("no .jsonl trace files in {}", dir.display());
        std::process::exit(2);
    }

    let windows: Vec<Window> = paths.iter().map(|p| read_window(p)).collect();
    let violations: Vec<String> = windows.iter().flat_map(check_window).collect();

    if check {
        // Recovered anomalies are worth seeing in CI logs even when the
        // trace itself is structurally valid.
        for win in &windows {
            for (source, reason) in &win.warnings {
                println!("warning {} [{source}]: {reason}", win.file);
            }
            // Sweep-service counters, one per line so CI can assert on
            // them (e.g. nonzero shed/dedup after a load run).
            for (name, value) in server_counters(win) {
                println!("service {}: {name} = {value:.0}", win.file);
            }
        }
        if violations.is_empty() {
            println!(
                "{} trace file(s) valid: schema ok, phase coverage within tolerance",
                windows.len()
            );
        } else {
            for v in &violations {
                eprintln!("INVALID {v}");
            }
            std::process::exit(1);
        }
    } else {
        for win in &windows {
            render_window(win);
        }
        if !violations.is_empty() {
            for v in &violations {
                eprintln!("WARNING {v}");
            }
            std::process::exit(1);
        }
    }
}
