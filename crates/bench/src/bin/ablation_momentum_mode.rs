//! Ablation: block momentum vs naive local momentum vs no momentum
//! (Section 5.3.1's motivation).
//!
//! ```sh
//! cargo run --release -p adacomm-bench --bin ablation_momentum_mode [--full]
//! ```
//!
//! The naive scheme keeps each worker's momentum buffer across averaging
//! steps, so the first local step after a sync carries a stale direction —
//! the paper argues this "can side-track the SGD descent direction". Block
//! momentum restarts local buffers and adds a global buffer instead.

use adacomm::FixedComm;
use adacomm_bench::scenarios::{scenario, ModelFamily};
use adacomm_bench::{save_panel_csv, LrMode, Scale, Table};
use pasgd_sim::MomentumMode;

fn main() -> std::io::Result<()> {
    let scale = Scale::from_env_and_args();
    println!("Ablation: momentum handling at averaging steps, tau = 20 (scale {scale})\n");
    let sc = scenario(ModelFamily::VggLike, 10, 4, scale);
    let lr = adacomm_bench::panel::lr_schedule_for(&sc, LrMode::Fixed);
    let tau = 20;

    let modes: Vec<(&str, MomentumMode)> = vec![
        ("none", MomentumMode::None),
        (
            "naive local (no reset)",
            MomentumMode::Local {
                beta: 0.9,
                reset_at_sync: false,
            },
        ),
        (
            "local + reset at sync",
            MomentumMode::Local {
                beta: 0.9,
                reset_at_sync: true,
            },
        ),
        ("block (paper)", MomentumMode::paper_block()),
    ];

    let mut table = Table::new(vec![
        "momentum mode".into(),
        "final loss".into(),
        "min loss".into(),
        "best acc %".into(),
    ]);
    let mut traces = Vec::new();
    for (name, mode) in modes {
        let mut sched = FixedComm::new(tau);
        let mut trace = sc.suite.run_with_momentum(&mut sched, &lr, mode);
        trace.name = name.to_string();
        table.row(vec![
            name.to_string(),
            format!("{:.4}", trace.final_loss()),
            format!("{:.4}", trace.min_loss()),
            format!("{:.2}", 100.0 * trace.best_test_accuracy()),
        ]);
        traces.push(trace);
    }
    table.print();
    save_panel_csv("ablation_momentum_mode", &traces)?;

    println!("\nthe paper's claim: block momentum >= local-with-reset > naive local for");
    println!("large tau, because stale buffers side-track the first post-sync steps.");
    Ok(())
}
