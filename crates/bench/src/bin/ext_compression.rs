//! Extension: gradient compression on the error-runtime frontier.
//!
//! The paper adapts the communication *frequency* τ; this experiment adds
//! the *size* axis. Under a bytes-aware delay model (the hardware
//! profile's mean communication delay split 10% latency / 90% bandwidth),
//! it sweeps codecs × ratios at a fixed τ, runs the paper's fixed-τ
//! full-precision baselines, and caps the comparison with the
//! τ×compression co-adaptive schedule (`AdaCommCompress`).
//!
//! ```sh
//! cargo run --release -p adacomm-bench --bin ext_compression [--full]
//! ```
//!
//! Expected shape, per hardware profile:
//!
//! * compressed averaging rounds cost strictly less simulated wall-clock
//!   than full-precision rounds (the `round comm s` column);
//! * the co-adaptive schedule reaches a lower loss at the shared
//!   wall-clock budget than the best fixed-τ full-precision baseline —
//!   most dramatically on the communication-bound VGG-16 profile.
//!
//! CSVs: `ext_compression_frontier` (one summary row per method) and
//! `ext_compression_traces` (full loss-vs-time traces).

use adacomm::theory::compressed_comm_time;
use adacomm::{select_tau0, AdaComm, AdaCommCompress, AdaCommConfig, FixedComm, LrSchedule};
use adacomm_bench::scenarios::ModelFamily;
use adacomm_bench::{write_csv, Scale, Table};
use data::GaussianMixture;
use gradcomp::{CodecSpec, Compressor as _};
use nn::models;
use pasgd_sim::{ClusterConfig, ExperimentConfig, ExperimentSuite, RunTrace};
use std::fmt::Write as _;

/// One finished run plus the codec it transmitted with.
struct Row {
    trace: RunTrace,
    codec: CodecSpec,
    /// Mean simulated cost of one averaging message under the bytes-aware
    /// communication model (the per-round delay the codec pays).
    round_comm_secs: f64,
}

fn family_runs(family: ModelFamily, scale: Scale, frontier: &mut String, traces: &mut String) {
    let workers = 4usize;
    let time_scale = if scale.is_full() { 1.0 } else { 4.0 };
    let profile = family.profile().time_scaled(time_scale);

    // The CIFAR100-like task decays gradually over the budget (the paper's
    // regime); on easier tasks the loss collapses within one interval and
    // every adaptive method degenerates to τ = 1 immediately.
    let classes = 100usize;
    let model = match (family, scale) {
        (_, Scale::Quick) => models::mlp_classifier(256, &[64], classes, 77),
        (ModelFamily::VggLike, Scale::Full) => models::vgg_like(1, 16, classes, 77),
        (ModelFamily::ResnetLike, Scale::Full) => models::resnet_like(1, 16, classes, 77),
    };
    let full_bytes: usize = model.params_snapshot().iter().map(|t| t.len() * 4).sum();

    // 90% of the profile's mean communication delay is bandwidth,
    // calibrated so a full-precision message costs exactly the profile's
    // original delay; compression can then reclaim up to 90% of it.
    let runtime = profile.bytes_aware_runtime_model(workers, 0.9, full_bytes as f64);

    let split = GaussianMixture::cifar100_like().generate(1244);
    let total_secs = if scale.is_full() { 2100.0 } else { 600.0 };
    let lr0 = 0.1f32;
    let make_suite = |budget_secs: f64| {
        ExperimentSuite::new(
            model.clone(),
            split.clone(),
            runtime,
            ClusterConfig {
                workers,
                batch_size: 32,
                lr: lr0,
                weight_decay: 5e-4,
                seed: 42,
                eval_subset: 1024,
                ..ClusterConfig::default()
            },
            ExperimentConfig {
                interval_secs: if scale.is_full() { 60.0 } else { 20.0 },
                total_secs: budget_secs,
                record_every_secs: budget_secs / 40.0,
                gate_lr_on_tau: false,
            },
        )
    };
    let suite = make_suite(total_secs);
    let lr = LrSchedule::constant(lr0);

    // The theory-side helper and the simulator's bytes-aware CommModel
    // price a round identically (the profiles use constant worker
    // scaling): latency + β · full_bytes · payload_fraction.
    let comm = *runtime.comm();
    let round_cost = |codec: &CodecSpec| {
        compressed_comm_time(
            comm.mean_delay(workers),
            comm.seconds_per_byte(),
            full_bytes as f64,
            codec.payload_fraction(),
        )
    };

    println!(
        "== {} profile ({} workers, {} model bytes, budget {total_secs:.0} s)\n",
        family.name(),
        workers,
        full_bytes
    );

    // (a) What one averaging round costs per codec, before any training.
    let mut cost_table = Table::new(vec![
        "codec".into(),
        "payload frac".into(),
        "round comm s".into(),
        "vs full".into(),
    ]);
    let sweep_codecs = [
        CodecSpec::Identity,
        CodecSpec::TopK { ratio: 0.01 },
        CodecSpec::TopK { ratio: 0.05 },
        CodecSpec::TopK { ratio: 0.25 },
        CodecSpec::RandomK { ratio: 0.5 },
        CodecSpec::Sign,
        CodecSpec::Qsgd { bits: 4 },
        CodecSpec::Qsgd { bits: 8 },
    ];
    let full_round = round_cost(&CodecSpec::Identity);
    for codec in &sweep_codecs {
        let cost = round_cost(codec);
        cost_table.row(vec![
            codec.name(),
            format!("{:.4}", codec.payload_fraction()),
            format!("{cost:.4}"),
            format!("{:.2}x", full_round / cost),
        ]);
    }
    cost_table.print();
    println!();

    let mut rows: Vec<Row> = Vec::new();

    // Fixed-τ full-precision baselines (the paper's methods).
    for &tau in &family.paper_taus() {
        let mut sched = FixedComm::new(tau);
        let trace = suite.run_with_codec(&mut sched, &lr, CodecSpec::Identity);
        rows.push(Row {
            trace,
            codec: CodecSpec::Identity,
            round_comm_secs: full_round,
        });
    }

    // Codec × ratio sweep at the family's middle fixed τ.
    let sweep_tau = family.paper_taus()[1];
    for codec in &sweep_codecs[1..] {
        let mut sched = FixedComm::new(sweep_tau);
        let trace = suite.run_with_codec(&mut sched, &lr, *codec);
        rows.push(Row {
            trace,
            codec: *codec,
            round_comm_secs: round_cost(codec),
        });
    }

    // Adaptive τ, full precision (the paper's AdaComm)...
    let tau0 = family.tau0();
    let mut ada = AdaComm::new(AdaCommConfig {
        tau0,
        max_tau: 256.max(tau0),
        ..AdaCommConfig::default()
    });
    let trace = suite.run_with_codec(&mut ada, &lr, CodecSpec::Identity);
    rows.push(Row {
        trace,
        codec: CodecSpec::Identity,
        round_comm_secs: full_round,
    });

    // ...and the τ×compression co-adaptive schedule.
    //
    // γ = 1 keeps rule 17's monotone refinement but disables eq. 18's
    // plateau halving: that halving exists to amortise an *expensive*
    // averaging step, and with compressed messages the τ = 1 endpoint
    // costs more wall-clock per iteration than its noise-floor gain
    // returns at this budget. τ0 comes from the paper's own recipe — a
    // grid search over short trial runs (Section 4.2, `select_tau0`) —
    // because compression reshapes the comm/comp ratio the full-precision
    // τ0 was tuned for.
    let k0 = 0.05;
    let co_spec = CodecSpec::TopK { ratio: k0 };
    let co_config = |tau0: usize| AdaCommConfig {
        tau0,
        gamma: 1.0,
        max_tau: 256.max(tau0),
        ..AdaCommConfig::default()
    };
    let trial_suite = make_suite(if scale.is_full() { 300.0 } else { 120.0 });
    let mut candidates: Vec<usize> = [tau0 / 2, tau0, tau0 * 2, tau0 * 4]
        .into_iter()
        .map(|t| t.max(1))
        .collect();
    candidates.dedup();
    let co_tau0 = select_tau0(&candidates, |t| {
        let mut trial = AdaCommCompress::new(co_config(t), co_spec);
        f64::from(trial_suite.run(&mut trial, &lr).final_loss())
    });
    println!("\nco-adaptive tau0 = {co_tau0} (grid search over {candidates:?}, Section 4.2)");
    let mut co = AdaCommCompress::new(co_config(co_tau0), co_spec);
    let trace = suite.run(&mut co, &lr);
    // Report the codec the run *ended* with, priced at its own round cost
    // (the schedule's fidelity grows over the run, so this is the most
    // expensive round it ever paid).
    let final_codec = co.codec();
    rows.push(Row {
        trace,
        codec: final_codec,
        round_comm_secs: round_cost(&final_codec),
    });

    // Summary table + frontier CSV rows.
    let mut summary = Table::new(vec![
        "method".into(),
        "codec".into(),
        "round comm s".into(),
        "final loss".into(),
        "min loss".into(),
        "best acc %".into(),
        "iterations".into(),
        "comm MB".into(),
    ]);
    for row in &rows {
        let last = row.trace.points.last().expect("non-empty trace");
        summary.row(vec![
            row.trace.name.clone(),
            row.codec.name(),
            format!("{:.4}", row.round_comm_secs),
            format!("{:.4}", row.trace.final_loss()),
            format!("{:.4}", row.trace.min_loss()),
            format!("{:.2}", 100.0 * row.trace.best_test_accuracy()),
            last.iterations.to_string(),
            format!("{:.2}", last.comm_bytes / 1e6),
        ]);
        let _ = writeln!(
            frontier,
            "{},{},{},{},{},{},{},{},{},{}",
            family.name(),
            row.trace.name,
            row.codec.name(),
            row.codec.payload_fraction(),
            row.round_comm_secs,
            last.clock,
            last.iterations,
            row.trace.final_loss(),
            row.trace.min_loss(),
            last.comm_bytes
        );
        for p in &row.trace.points {
            let _ = writeln!(
                traces,
                "{},{},{},{},{},{},{},{}",
                family.name(),
                row.trace.name,
                row.codec.name(),
                p.clock,
                p.train_loss,
                p.test_accuracy,
                p.tau,
                p.comm_bytes
            );
        }
    }
    summary.print();

    // Verdicts the acceptance criteria read off the CSV.
    let compressed_cheaper = rows
        .iter()
        .filter(|r| r.codec.payload_fraction() < 1.0)
        .all(|r| r.round_comm_secs < full_round);
    println!(
        "\ncompressed rounds cheaper than full precision: {} ({}x for topk(0.01))",
        if compressed_cheaper { "yes" } else { "NO" },
        format_args!(
            "{:.2}",
            full_round / round_cost(&CodecSpec::TopK { ratio: 0.01 })
        ),
    );
    let best_fixed_full = rows
        .iter()
        .filter(|r| {
            matches!(r.codec, CodecSpec::Identity)
                && (r.trace.name.starts_with("tau=") || r.trace.name == "sync-sgd")
        })
        .map(|r| r.trace.final_loss())
        .fold(f32::INFINITY, f32::min);
    let co_final = rows.last().expect("co-adaptive row").trace.final_loss();
    println!(
        "co-adaptive (adacomm-x-topk) final loss {co_final:.4} vs best fixed-tau \
         full-precision {best_fixed_full:.4}: {}",
        if co_final < best_fixed_full {
            "dominates"
        } else {
            "DOES NOT dominate"
        }
    );
    println!();
}

fn main() -> std::io::Result<()> {
    let scale = Scale::from_env_and_args();
    println!("Extension: compression x adaptive communication (scale: {scale})\n");

    let mut frontier = String::from(
        "profile,method,codec,payload_fraction,round_comm_secs,clock,iterations,\
         final_loss,min_loss,comm_bytes\n",
    );
    let mut traces =
        String::from("profile,method,codec,clock,train_loss,test_accuracy,tau,comm_bytes\n");

    for family in [ModelFamily::VggLike, ModelFamily::ResnetLike] {
        family_runs(family, scale, &mut frontier, &mut traces);
    }

    write_csv("ext_compression_frontier", &frontier)?;
    write_csv("ext_compression_traces", &traces)?;
    Ok(())
}
