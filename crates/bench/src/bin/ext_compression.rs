//! Standalone entry point for the `ext_compression` reproduction target; the figure
//! body lives in `adacomm_bench::figures` so `reproduce_all` can execute
//! it in-process (and in parallel with the other figures).
//!
//! ```sh
//! cargo run --release -p adacomm-bench --bin ext_compression [--full|--smoke]
//! ```

fn main() -> std::io::Result<()> {
    adacomm_bench::figures::run_standalone("ext_compression")
}
