//! Figure 10: AdaComm on the ResNet-50-like (computation-bound) setting,
//! 4 workers. Panels: (a) variable lr CIFAR10-like, (b) fixed lr
//! CIFAR10-like, (c) fixed lr CIFAR100-like.
//!
//! ```sh
//! cargo run --release -p adacomm-bench --bin fig10_resnet_adacomm [--full]
//! ```
//!
//! Paper's reported shape: with communication no longer the bottleneck
//! (α < 1), fully synchronous SGD is nearly the best fixed-τ method, and
//! AdaComm stays competitive (1.4× with the variable lr schedule).

use adacomm_bench::scenarios::{scenario, ModelFamily};
use adacomm_bench::{report_panel, run_standard_panel, save_panel_csv, LrMode, Scale};

fn main() -> std::io::Result<()> {
    let scale = Scale::from_env_and_args();
    println!("Figure 10 (scale: {scale})\n");

    for (tag, panel, classes, lr_mode) in [
        (
            "a",
            "10a: variable lr, CIFAR10-like",
            10usize,
            LrMode::Variable,
        ),
        ("b", "10b: fixed lr, CIFAR10-like", 10, LrMode::Fixed),
        ("c", "10c: fixed lr, CIFAR100-like", 100, LrMode::Fixed),
    ] {
        let sc = scenario(ModelFamily::ResnetLike, classes, 4, scale);
        let traces = run_standard_panel(&sc, lr_mode, false);
        println!(
            "{}",
            report_panel(&format!("{panel} — {}", sc.name), &traces)
        );
        save_panel_csv(&format!("fig10{tag}"), &traces)?;

        let ada = traces.last().expect("adacomm trace");
        println!("adacomm comm-period trace:");
        for (t, tau) in ada.tau_trace().iter().step_by(4) {
            println!("  t = {t:>7.1} s  tau = {tau}");
        }
        println!();
    }
    Ok(())
}
