//! `sweepctl` — command-line client for the `sweepd` sweep service.
//!
//! ```sh
//! sweepctl [--socket PATH] ping
//! sweepctl [--socket PATH] stats
//! sweepctl [--socket PATH] shutdown
//! sweepctl [--socket PATH] figure NAME
//! sweepctl [--socket PATH] run SCENARIO [--scheduler fixed|adacomm]
//!          [--tau N] [--budget TOTAL RECORD] [--deadline-ms N] [--panic]
//! ```
//!
//! Sends exactly one request over the daemon's Unix-domain socket and
//! prints the response. Exit status: 0 on an `ok` response, 1 when the
//! daemon answered with a structured error (`overloaded`, `deadline`,
//! `draining`, `panic`, `failed`, `bad_request`), 2 on usage or
//! connection problems — so shell scripts and CI can branch on the
//! failure class printed on the first output line.

use adacomm_bench::server::protocol::{self, Command, Request, Response, ResponseBody, RunRequest};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;

const USAGE: &str = "\
usage: sweepctl [--socket PATH] COMMAND

commands:
  ping                  liveness probe
  stats                 service counters (requests, shed, dedup hits, ...)
  shutdown              ask the daemon to drain gracefully and exit
  figure NAME           render one registry figure (CSVs land in the
                        daemon's results directory, byte-identical to a
                        batch reproduce_all at the same scale)
  run SCENARIO          execute one scenario run; scenarios: concept,
                        canonical-vgg, canonical-resnet, compression
    --scheduler S       fixed (default) or adacomm
    --tau N             tau (fixed) or tau0 (adacomm); default 4
    --budget T R        override simulated budget: total secs, record secs
    --deadline-ms N     per-request deadline; an overrunning run parks its
                        progress resumably and answers `deadline`
    --panic             forced-panic drill (isolated to this request)

  --socket PATH         daemon socket (default /tmp/adacomm-sweepd.sock)

exit status: 0 ok response, 1 error response, 2 usage/connection failure";

fn usage_error(message: &str) -> ! {
    eprintln!("sweepctl: {message}\n{USAGE}");
    std::process::exit(2);
}

fn parse_run(args: &[String]) -> RunRequest {
    let scenario = match args.first() {
        Some(s) if !s.starts_with("--") => s.clone(),
        _ => usage_error("run requires a scenario name"),
    };
    let rest = &args[1..];
    let flag_value = |flag: &str| {
        rest.iter()
            .position(|a| a == flag)
            .map(|i| match rest.get(i + 1) {
                Some(v) if !v.starts_with("--") => v.clone(),
                _ => usage_error(&format!("{flag} requires a value")),
            })
    };
    let scheduler = flag_value("--scheduler").unwrap_or_else(|| "fixed".into());
    let tau = flag_value("--tau")
        .map(|raw| {
            raw.parse()
                .unwrap_or_else(|_| usage_error(&format!("--tau must be an integer, got {raw:?}")))
        })
        .unwrap_or(4);
    let budget = rest.iter().position(|a| a == "--budget").map(|i| {
        let parse = |v: Option<&String>| -> f64 {
            match v {
                Some(raw) => raw.parse().unwrap_or_else(|_| {
                    usage_error(&format!("--budget values must be numbers, got {raw:?}"))
                }),
                None => usage_error("--budget requires TOTAL and RECORD seconds"),
            }
        };
        (parse(rest.get(i + 1)), parse(rest.get(i + 2)))
    });
    let deadline_ms = flag_value("--deadline-ms").map(|raw| {
        raw.parse().unwrap_or_else(|_| {
            usage_error(&format!("--deadline-ms must be an integer, got {raw:?}"))
        })
    });
    RunRequest {
        scenario,
        scheduler,
        tau,
        budget,
        deadline_ms,
        panic: rest.iter().any(|a| a == "--panic"),
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return;
    }
    let socket = args
        .iter()
        .position(|a| a == "--socket")
        .map(|i| {
            if i + 1 >= args.len() {
                usage_error("--socket requires a path");
            }
            let path = PathBuf::from(args.remove(i + 1));
            args.remove(i);
            path
        })
        .unwrap_or_else(|| PathBuf::from("/tmp/adacomm-sweepd.sock"));
    let cmd = match args.first().map(String::as_str) {
        Some("ping") => Command::Ping,
        Some("stats") => Command::Stats,
        Some("shutdown") => Command::Shutdown,
        Some("figure") => Command::Figure {
            name: match args.get(1) {
                Some(name) if !name.starts_with("--") => name.clone(),
                _ => usage_error("figure requires a registry name"),
            },
        },
        Some("run") => Command::Run(parse_run(&args[1..])),
        Some(other) => usage_error(&format!("unknown command {other:?}")),
        None => usage_error("a command is required"),
    };

    let stream = match UnixStream::connect(&socket) {
        Ok(stream) => stream,
        Err(e) => {
            eprintln!("sweepctl: cannot connect to {}: {e}", socket.display());
            std::process::exit(2);
        }
    };
    let request = Request { id: Some(1), cmd };
    let line = protocol::encode_request(&request);
    let mut writer = &stream;
    if writer
        .write_all(line.as_bytes())
        .and_then(|()| writer.write_all(b"\n"))
        .and_then(|()| writer.flush())
        .is_err()
    {
        eprintln!("sweepctl: connection lost while sending");
        std::process::exit(2);
    }
    let mut reply = String::new();
    match BufReader::new(&stream).read_line(&mut reply) {
        Ok(n) if n > 0 => {}
        _ => {
            eprintln!("sweepctl: daemon closed the connection without replying");
            std::process::exit(2);
        }
    }
    let response = match protocol::parse_response(reply.trim()) {
        Ok(response) => response,
        Err(e) => {
            eprintln!("sweepctl: unparseable response ({e}): {}", reply.trim());
            std::process::exit(2);
        }
    };
    print_response(&response);
    if matches!(response.body, ResponseBody::Error { .. }) {
        std::process::exit(1);
    }
}

fn print_response(response: &Response) {
    match &response.body {
        ResponseBody::Pong => println!("pong"),
        ResponseBody::ShuttingDown => println!("shutting down (drain follows)"),
        ResponseBody::Stats(s) => {
            println!(
                "requests {}  shed {}  dedup_hits {}  deadline_misses {}  request_panics {}",
                s.requests, s.shed, s.dedup_hits, s.deadline_misses, s.request_panics
            );
            println!(
                "unique_runs {}  queue_depth {}  draining {}",
                s.unique_runs, s.queue_depth, s.draining
            );
        }
        ResponseBody::Figure { name, wall_ms } => {
            println!("figure {name} rendered in {wall_ms:.0} ms");
        }
        ResponseBody::Run(r) => {
            println!(
                "run ok (source {}): {} rounds, {} points, final loss {:.6}, {:.0} ms",
                r.source, r.rounds, r.points, r.final_loss, r.wall_ms
            );
        }
        ResponseBody::Error { kind, message } => {
            println!("error [{}]: {message}", kind.as_str());
        }
    }
}
