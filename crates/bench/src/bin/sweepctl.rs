//! `sweepctl` — command-line client for the `sweepd` sweep service.
//!
//! ```sh
//! sweepctl [--socket PATH] [--retries N] [--retry-base-ms N] ping
//! sweepctl [--socket PATH] stats
//! sweepctl [--socket PATH] gc
//! sweepctl [--socket PATH] shutdown
//! sweepctl [--socket PATH] figure NAME
//! sweepctl [--socket PATH] run SCENARIO [--scheduler fixed|adacomm]
//!          [--tau N] [--budget TOTAL RECORD] [--deadline-ms N] [--panic]
//! ```
//!
//! Sends one request over the daemon's Unix-domain socket and prints the
//! response. With `--retries N`, *retryable* outcomes — a refused or
//! dropped connection (daemon restarting), `overloaded` (queue full),
//! `draining` (daemon shutting down) — are retried up to N times with
//! jittered exponential backoff. This is safe to do blindly: requests
//! are idempotent on the server (content-addressed single-flight keys),
//! so a retry either attaches to the surviving flight or recomputes the
//! identical bytes.
//!
//! The exit-code contract is the scripting surface — CI chaos drills
//! branch on it:
//!
//! | code | meaning                                                    |
//! |------|------------------------------------------------------------|
//! | 0    | `ok` response                                              |
//! | 1    | terminal error response (`failed`, `panic`, `bad_request`) |
//! | 2    | usage error or connection failure (retries exhausted)      |
//! | 3    | `overloaded` — shed by backpressure (retries exhausted)    |
//! | 4    | `draining` — daemon shutting down (retries exhausted)      |
//! | 5    | `deadline` — run parked resumably; re-request to resume    |

use adacomm_bench::server::protocol::{
    self, Command, ErrorKind, Request, Response, ResponseBody, RunRequest,
};
use binio::fnv1a64;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::Duration;

const USAGE: &str = "\
usage: sweepctl [--socket PATH] [--retries N] [--retry-base-ms N] COMMAND

commands:
  ping                  liveness probe
  stats                 service counters (requests, shed, recovery, ...)
  gc                    sweep the daemon's store for orphaned temp files
                        and aged parked frames; prints what was reclaimed
  shutdown              ask the daemon to drain gracefully and exit
  figure NAME           render one registry figure (CSVs land in the
                        daemon's results directory, byte-identical to a
                        batch reproduce_all at the same scale)
  run SCENARIO          execute one scenario run; scenarios: concept,
                        canonical-vgg, canonical-resnet, compression
    --scheduler S       fixed (default) or adacomm
    --tau N             tau (fixed) or tau0 (adacomm); default 4
    --budget T R        override simulated budget: total secs, record secs
    --deadline-ms N     per-request deadline; an overrunning run parks its
                        progress resumably and answers `deadline`
    --panic             forced-panic drill (isolated to this request)

  --socket PATH         daemon socket (default /tmp/adacomm-sweepd.sock)
  --retries N           retry retryable outcomes (connection refused/lost,
                        overloaded, draining) up to N times with jittered
                        exponential backoff (default 0); safe because
                        requests are idempotent on the server
  --retry-base-ms N     backoff base delay in milliseconds (default 50)

exit status:
  0 ok response
  1 terminal error response (failed, panic, bad_request)
  2 usage error or connection failure (after retries)
  3 overloaded — request shed by backpressure (after retries)
  4 draining — daemon is shutting down (after retries)
  5 deadline — partial progress parked; re-request to resume";

fn usage_error(message: &str) -> ! {
    eprintln!("sweepctl: {message}\n{USAGE}");
    std::process::exit(2);
}

fn parse_run(args: &[String]) -> RunRequest {
    let scenario = match args.first() {
        Some(s) if !s.starts_with("--") => s.clone(),
        _ => usage_error("run requires a scenario name"),
    };
    let rest = &args[1..];
    let flag_value = |flag: &str| {
        rest.iter()
            .position(|a| a == flag)
            .map(|i| match rest.get(i + 1) {
                Some(v) if !v.starts_with("--") => v.clone(),
                _ => usage_error(&format!("{flag} requires a value")),
            })
    };
    let scheduler = flag_value("--scheduler").unwrap_or_else(|| "fixed".into());
    let tau = flag_value("--tau")
        .map(|raw| {
            raw.parse()
                .unwrap_or_else(|_| usage_error(&format!("--tau must be an integer, got {raw:?}")))
        })
        .unwrap_or(4);
    let budget = rest.iter().position(|a| a == "--budget").map(|i| {
        let parse = |v: Option<&String>| -> f64 {
            match v {
                Some(raw) => raw.parse().unwrap_or_else(|_| {
                    usage_error(&format!("--budget values must be numbers, got {raw:?}"))
                }),
                None => usage_error("--budget requires TOTAL and RECORD seconds"),
            }
        };
        (parse(rest.get(i + 1)), parse(rest.get(i + 2)))
    });
    let deadline_ms = flag_value("--deadline-ms").map(|raw| {
        raw.parse().unwrap_or_else(|_| {
            usage_error(&format!("--deadline-ms must be an integer, got {raw:?}"))
        })
    });
    RunRequest {
        scenario,
        scheduler,
        tau,
        budget,
        deadline_ms,
        panic: rest.iter().any(|a| a == "--panic"),
    }
}

/// Pops `--flag VALUE` from `args`, parsed as a number.
fn take_numeric_flag(args: &mut Vec<String>, flag: &str, default: u64) -> u64 {
    let Some(i) = args.iter().position(|a| a == flag) else {
        return default;
    };
    if i + 1 >= args.len() {
        usage_error(&format!("{flag} requires a value"));
    }
    let raw = args.remove(i + 1);
    args.remove(i);
    raw.parse().unwrap_or_else(|_| {
        usage_error(&format!(
            "{flag} must be a non-negative integer, got {raw:?}"
        ))
    })
}

/// One attempt's outcome, classified for the retry loop.
enum Attempt {
    /// A parsed response arrived (any body, including errors).
    Answered(Response),
    /// The transport failed in a way a daemon restart will cure.
    ConnectionFailed(String),
}

fn attempt(socket: &Path, request: &Request) -> Attempt {
    let stream = match UnixStream::connect(socket) {
        Ok(stream) => stream,
        Err(e) => {
            return Attempt::ConnectionFailed(format!(
                "cannot connect to {}: {e}",
                socket.display()
            ))
        }
    };
    let line = protocol::encode_request(request);
    let mut writer = &stream;
    if writer
        .write_all(line.as_bytes())
        .and_then(|()| writer.write_all(b"\n"))
        .and_then(|()| writer.flush())
        .is_err()
    {
        return Attempt::ConnectionFailed("connection lost while sending".into());
    }
    let mut reply = String::new();
    match BufReader::new(&stream).read_line(&mut reply) {
        Ok(n) if n > 0 => {}
        _ => {
            return Attempt::ConnectionFailed(
                "daemon closed the connection without replying".into(),
            )
        }
    }
    match protocol::parse_response(reply.trim()) {
        Ok(response) => Attempt::Answered(response),
        Err(e) => {
            eprintln!("sweepctl: unparseable response ({e}): {}", reply.trim());
            std::process::exit(2);
        }
    }
}

/// Whether a structured error is worth retrying: transient service
/// states, not verdicts about the request itself.
fn retryable(kind: ErrorKind) -> bool {
    matches!(kind, ErrorKind::Overloaded | ErrorKind::Draining)
}

/// The documented exit code for an error response.
fn exit_code(kind: ErrorKind) -> i32 {
    match kind {
        ErrorKind::Overloaded => 3,
        ErrorKind::Draining => 4,
        ErrorKind::Deadline => 5,
        ErrorKind::BadRequest | ErrorKind::Panic | ErrorKind::Failed => 1,
    }
}

/// Deterministic jittered exponential backoff: base × 2^attempt, scaled
/// by a pseudo-random factor in [0.5, 1.0) seeded from the request line
/// and attempt index (stable across reruns, decorrelated across a burst
/// of distinct requests), capped at 2 s.
fn backoff(base_ms: u64, request_line: &str, attempt_index: u32) -> Duration {
    let exp = base_ms.saturating_mul(1 << attempt_index.min(10));
    let seed = fnv1a64(request_line.as_bytes()) ^ u64::from(attempt_index).wrapping_mul(0x9e37);
    let jittered = exp / 2 + seed % (exp / 2).max(1);
    Duration::from_millis(jittered.min(2_000))
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return;
    }
    let socket = args
        .iter()
        .position(|a| a == "--socket")
        .map(|i| {
            if i + 1 >= args.len() {
                usage_error("--socket requires a path");
            }
            let path = PathBuf::from(args.remove(i + 1));
            args.remove(i);
            path
        })
        .unwrap_or_else(|| PathBuf::from("/tmp/adacomm-sweepd.sock"));
    let retries = take_numeric_flag(&mut args, "--retries", 0);
    let retry_base_ms = take_numeric_flag(&mut args, "--retry-base-ms", 50).max(1);
    let cmd = match args.first().map(String::as_str) {
        Some("ping") => Command::Ping,
        Some("stats") => Command::Stats,
        Some("gc") => Command::Gc,
        Some("shutdown") => Command::Shutdown,
        Some("figure") => Command::Figure {
            name: match args.get(1) {
                Some(name) if !name.starts_with("--") => name.clone(),
                _ => usage_error("figure requires a registry name"),
            },
        },
        Some("run") => Command::Run(parse_run(&args[1..])),
        Some(other) => usage_error(&format!("unknown command {other:?}")),
        None => usage_error("a command is required"),
    };

    let request = Request { id: Some(1), cmd };
    let request_line = protocol::encode_request(&request);
    let mut tries = 0u32;
    loop {
        let out_of_retries = u64::from(tries) >= retries;
        let failure = match attempt(&socket, &request) {
            Attempt::Answered(response) => match response.body {
                ResponseBody::Error { kind, ref message } if retryable(kind) && !out_of_retries => {
                    format!("{}: {message}", kind.as_str())
                }
                _ => {
                    // Final answer (ok, terminal error, or a retryable
                    // error with retries exhausted): print it and exit
                    // under the documented contract.
                    print_response(&response);
                    let code = match response.body {
                        ResponseBody::Error { kind, .. } => exit_code(kind),
                        _ => 0,
                    };
                    std::process::exit(code);
                }
            },
            Attempt::ConnectionFailed(reason) => {
                if out_of_retries {
                    eprintln!("sweepctl: {reason}");
                    std::process::exit(2);
                }
                reason
            }
        };
        let wait = backoff(retry_base_ms, &request_line, tries);
        eprintln!(
            "sweepctl: {failure}; retrying in {} ms ({}/{retries})",
            wait.as_millis(),
            tries + 1
        );
        std::thread::sleep(wait);
        tries += 1;
    }
}

fn print_response(response: &Response) {
    match &response.body {
        ResponseBody::Pong => println!("pong"),
        ResponseBody::ShuttingDown => println!("shutting down (drain follows)"),
        ResponseBody::Stats(s) => {
            println!(
                "requests {}  shed {}  dedup_hits {}  deadline_misses {}  request_panics {}",
                s.requests, s.shed, s.dedup_hits, s.deadline_misses, s.request_panics
            );
            println!(
                "unique_runs {}  queue_depth {}  draining {}",
                s.unique_runs, s.queue_depth, s.draining
            );
            println!(
                "recovered_runs {}  journal_replays {}  gc_orphans {}",
                s.recovered_runs, s.journal_replays, s.gc_orphans
            );
        }
        ResponseBody::Gc {
            tmp_removed,
            parked_removed,
            parked_kept,
        } => {
            println!(
                "gc: {tmp_removed} temp files and {parked_removed} aged parked frames \
                 reclaimed, {parked_kept} parked frames kept"
            );
        }
        ResponseBody::Figure { name, wall_ms } => {
            println!("figure {name} rendered in {wall_ms:.0} ms");
        }
        ResponseBody::Run(r) => {
            println!(
                "run ok (source {}): {} rounds, {} points, final loss {:.6}, {:.0} ms",
                r.source, r.rounds, r.points, r.final_loss, r.wall_ms
            );
        }
        ResponseBody::Error { kind, message } => {
            println!("error [{}]: {message}", kind.as_str());
        }
    }
}
