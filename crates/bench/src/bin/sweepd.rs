//! `sweepd` — the sweep service daemon.
//!
//! ```sh
//! cargo run --release -p adacomm-bench --bin sweepd -- \
//!     [--socket PATH] [--workers N] [--queue-limit N] \
//!     [--smoke|--full] [--no-cache] [--trace DIR]
//! ```
//!
//! Binds a Unix-domain socket (default `/tmp/adacomm-sweepd.sock`) and
//! serves scenario runs and whole registry figures out of the in-process
//! sweep engine, backed by the persistent run store — so a figure served
//! by the daemon writes CSVs byte-identical to a batch `reproduce_all`
//! at the same scale. Talk to it with `sweepctl`.
//!
//! Lifecycle and failure semantics live in `adacomm_bench::server`; this
//! binary adds the process glue:
//!
//! * **Store lock** — the daemon holds the run store's lockfile for its
//!   whole lifetime, so a concurrent batch `reproduce_all` against the
//!   same cache fails fast instead of interleaving writes. A lock left
//!   by a crashed daemon is reclaimed automatically (pid liveness).
//! * **SIGTERM / SIGINT → graceful drain** — stop accepting, answer
//!   queued requests with `draining`, park in-flight runs resumably,
//!   flush telemetry, remove the socket, exit 0. The `shutdown` protocol
//!   command takes the identical path.
//! * **`--trace DIR`** — on exit, write one JSONL telemetry profile
//!   (`DIR/sweepd.jsonl`) covering the serving window, headed by a
//!   *service* meta line: `obs_report --check` validates it without
//!   applying the phase-coverage rule (a daemon is mostly idle and its
//!   workers overlap, so span self-times never tile the wall clock).

use adacomm_bench::server::{Server, ServerConfig};
use adacomm_bench::{RunStore, Scale, SweepEngine};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const USAGE: &str = "\
usage: sweepd [--socket PATH] [--workers N] [--queue-limit N]
              [--smoke|--full] [--no-cache] [--trace DIR]

  --socket PATH      Unix-domain socket to listen on
                     (default /tmp/adacomm-sweepd.sock)
  --workers N        request worker threads (default 2)
  --queue-limit N    bounded queue: distinct jobs waiting before requests
                     are shed with `overloaded` (default 64)
  --smoke / --full   scale served scenarios are built at (default quick);
                     --smoke also redirects CSVs to results/smoke/
  --no-cache         serve without the persistent run store (no lockfile,
                     no parking across restarts)
  --trace DIR        write DIR/sweepd.jsonl (telemetry profile of the
                     serving window) during shutdown
  --help             print this help

SIGTERM, SIGINT, and the `shutdown` protocol command all drain
gracefully: queued requests are answered with `draining`, in-flight runs
park their progress resumably in the store, and the process exits 0.";

/// Set by the signal handler; polled by the main loop. Signal-handler
/// safe: a relaxed atomic store is all that happens in handler context.
static TERM: AtomicBool = AtomicBool::new(false);

extern "C" fn on_term(_sig: i32) {
    TERM.store(true, Ordering::Relaxed);
}

extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
}

const SIGTERM: i32 = 15;
const SIGINT: i32 = 2;

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .filter(|v| !v.starts_with("--"))
        .cloned()
}

fn numeric_flag(args: &[String], flag: &str, default: usize) -> usize {
    match flag_value(args, flag) {
        None => default,
        Some(raw) => raw.parse().unwrap_or_else(|_| {
            eprintln!("{flag} requires a positive integer, got {raw:?}");
            std::process::exit(2);
        }),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return;
    }
    let scale = Scale::from_env_and_args();
    if scale.is_smoke() {
        adacomm_bench::report::set_results_subdir("smoke");
    }
    let config = ServerConfig {
        socket_path: flag_value(&args, "--socket")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("/tmp/adacomm-sweepd.sock")),
        workers: numeric_flag(&args, "--workers", 2),
        queue_limit: numeric_flag(&args, "--queue-limit", 64),
        scale,
    };
    let trace_dir = flag_value(&args, "--trace").map(PathBuf::from);
    if trace_dir.is_some() && !telemetry::is_enabled() {
        eprintln!(
            "--trace requires the `trace` feature (this binary was built with \
             --no-default-features); rebuild with default features"
        );
        std::process::exit(2);
    }

    // The engine owns the store; the daemon holds the store's lockfile
    // for its whole lifetime so batch writers against the same cache
    // fail fast instead of interleaving. Dropped (= released) on every
    // exit path below; a SIGKILL leaves a stale lock the next locker
    // reclaims via pid liveness.
    let mut engine = SweepEngine::default();
    let mut _store_lock = None;
    if !args.iter().any(|a| a == "--no-cache") {
        let store = RunStore::new(RunStore::default_dir());
        match store.lock("sweepd") {
            Ok(lock) => _store_lock = Some(lock),
            Err(e) => {
                eprintln!("cannot lock run store: {e}");
                std::process::exit(1);
            }
        }
        engine = engine.with_store(store);
    }

    // SAFETY: installing a handler that only stores a relaxed atomic.
    unsafe {
        signal(SIGTERM, on_term as extern "C" fn(i32) as usize);
        signal(SIGINT, on_term as extern "C" fn(i32) as usize);
    }

    let sink = trace_dir.as_deref().map(|dir| {
        std::fs::create_dir_all(dir).ok();
        telemetry::EventSink::new()
    });
    let previous_sink = sink
        .as_ref()
        .map(|s| telemetry::install_sink(Some(s.clone())));
    let before = telemetry::snapshot();
    let started = Instant::now();

    let handle = match Server::start(config, Arc::new(engine)) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("sweepd: cannot start: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "sweepd: serving on {} (scale {scale}); SIGTERM or `sweepctl shutdown` drains",
        handle.socket_path().display()
    );

    while !TERM.load(Ordering::Relaxed) && !handle.shutdown_requested() {
        std::thread::sleep(Duration::from_millis(25));
    }
    let why = if TERM.load(Ordering::Relaxed) {
        "signal"
    } else {
        "shutdown command"
    };
    eprintln!("sweepd: draining ({why})");
    handle.initiate_drain();
    let stats = {
        let stats_after_drain = &handle;
        stats_after_drain.stats()
    };
    handle.join();

    let wall_secs = started.elapsed().as_secs_f64();
    if let Some(dir) = &trace_dir {
        let delta = telemetry::snapshot().delta_since(&before);
        let mut lines = vec![telemetry::schema::meta_service_line(
            "sweepd",
            &format!("{scale}"),
            wall_secs,
        )];
        lines.extend(delta.to_jsonl_lines());
        if let Some(sink) = &sink {
            lines.extend(sink.drain());
        }
        if let Err(e) = telemetry::write_jsonl_atomic(&dir.join("sweepd.jsonl"), &lines) {
            eprintln!("sweepd: failed to write telemetry trace: {e}");
        }
    }
    if let Some(previous) = previous_sink {
        telemetry::install_sink(previous);
    }

    println!(
        "sweepd: drained after {wall_secs:.2} s — {} requests ({} shed, {} dedup hits, \
         {} deadline misses, {} request panics), {} unique runs",
        stats.requests,
        stats.shed,
        stats.dedup_hits,
        stats.deadline_misses,
        stats.request_panics,
        stats.unique_runs
    );
}
