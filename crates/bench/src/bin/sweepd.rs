//! `sweepd` — the sweep service daemon.
//!
//! ```sh
//! cargo run --release -p adacomm-bench --bin sweepd -- \
//!     [--socket PATH] [--workers N] [--queue-limit N] \
//!     [--smoke|--full] [--no-cache] [--trace DIR] \
//!     [--park-every-rounds N] [--gc-age-secs N]
//! ```
//!
//! Binds a Unix-domain socket (default `/tmp/adacomm-sweepd.sock`) and
//! serves scenario runs and whole registry figures out of the in-process
//! sweep engine, backed by the persistent run store — so a figure served
//! by the daemon writes CSVs byte-identical to a batch `reproduce_all`
//! at the same scale. Talk to it with `sweepctl`.
//!
//! Lifecycle and failure semantics live in `adacomm_bench::server`; this
//! binary adds the process glue:
//!
//! * **Store lock** — the daemon holds the run store's lockfile for its
//!   whole lifetime, so a concurrent batch `reproduce_all` against the
//!   same cache fails fast instead of interleaving writes. A lock left
//!   by a crashed daemon is reclaimed automatically (pid liveness), and
//!   the reclaim itself is race-free: two restarting daemons contending
//!   for one dead lock produce exactly one winner.
//! * **Crash recovery** — before serving, the daemon garbage-collects
//!   orphaned temp files and aged parked frames from the store, then
//!   replays the crash-consistency journal: every request a killed
//!   predecessor accepted but never answered is re-executed (resuming
//!   parked checkpoints where they exist), so a `SIGKILL` loses zero
//!   accepted work. The recovery counters surface through `stats`.
//! * **SIGTERM / SIGINT → graceful drain** — stop accepting, answer
//!   queued requests with `draining`, park in-flight runs resumably,
//!   flush telemetry, remove the socket, exit 0. The `shutdown` protocol
//!   command takes the identical path.
//! * **`--park-every-rounds N`** — long runs park a resumable checkpoint
//!   every N simulated rounds (default 256), bounding how much progress
//!   a `SIGKILL` can destroy to one slice.
//! * **`ADACOMM_FAILPOINTS`** — seeded fault-injection sites for chaos
//!   drills (see `adacomm_bench::failpoint`); unknown names are a usage
//!   error at startup, not a silent no-op.
//! * **`--trace DIR`** — on exit, write one JSONL telemetry profile
//!   (`DIR/sweepd.jsonl`) covering the serving window, headed by a
//!   *service* meta line: `obs_report --check` validates it without
//!   applying the phase-coverage rule (a daemon is mostly idle and its
//!   workers overlap, so span self-times never tile the wall clock).

use adacomm_bench::server::{self, Server, ServerConfig};
use adacomm_bench::{failpoint, RunStore, Scale, SweepEngine};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const USAGE: &str = "\
usage: sweepd [--socket PATH] [--workers N] [--queue-limit N]
              [--smoke|--full] [--no-cache] [--trace DIR]
              [--park-every-rounds N] [--gc-age-secs N]

  --socket PATH      Unix-domain socket to listen on
                     (default /tmp/adacomm-sweepd.sock)
  --workers N        request worker threads (default 2)
  --queue-limit N    bounded queue: distinct jobs waiting before requests
                     are shed with `overloaded` (default 64)
  --smoke / --full   scale served scenarios are built at (default quick);
                     --smoke also redirects CSVs to results/smoke/
  --no-cache         serve without the persistent run store (no lockfile,
                     no parking, no journal, no crash recovery)
  --park-every-rounds N
                     park a resumable checkpoint every N simulated rounds
                     during long runs so a SIGKILL loses at most one
                     slice (default 256; 0 disables)
  --gc-age-secs N    startup GC removes parked checkpoint frames older
                     than N seconds (default 86400)
  --trace DIR        write DIR/sweepd.jsonl (telemetry profile of the
                     serving window) during shutdown
  --help             print this help

environment:
  ADACOMM_FAILPOINTS  arm seeded fault-injection sites, e.g.
                      \"store.save.torn=1;server.request.abort=skip:2:1\"
                      (see adacomm_bench::failpoint for the site table)

SIGTERM, SIGINT, and the `shutdown` protocol command all drain
gracefully: queued requests are answered with `draining`, in-flight runs
park their progress resumably in the store, and the process exits 0.
After a SIGKILL, the next start replays the crash-consistency journal
and completes every request the killed daemon had accepted.";

/// Set by the signal handler; polled by the main loop. Signal-handler
/// safe: a relaxed atomic store is all that happens in handler context.
static TERM: AtomicBool = AtomicBool::new(false);

extern "C" fn on_term(_sig: i32) {
    TERM.store(true, Ordering::Relaxed);
}

extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
}

const SIGTERM: i32 = 15;
const SIGINT: i32 = 2;

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .filter(|v| !v.starts_with("--"))
        .cloned()
}

fn numeric_flag(args: &[String], flag: &str, default: u64) -> u64 {
    match flag_value(args, flag) {
        None => default,
        Some(raw) => raw.parse().unwrap_or_else(|_| {
            eprintln!("{flag} requires a non-negative integer, got {raw:?}");
            std::process::exit(2);
        }),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return;
    }
    match failpoint::init_from_env() {
        Ok(0) => {}
        Ok(n) => eprintln!(
            "sweepd: {n} failpoint site(s) armed from {}",
            failpoint::ENV_VAR
        ),
        Err(e) => {
            eprintln!("sweepd: bad {}: {e}", failpoint::ENV_VAR);
            std::process::exit(2);
        }
    }
    let scale = Scale::from_env_and_args();
    if scale.is_smoke() {
        adacomm_bench::report::set_results_subdir("smoke");
    }
    let trace_dir = flag_value(&args, "--trace").map(PathBuf::from);
    if trace_dir.is_some() && !telemetry::is_enabled() {
        eprintln!(
            "--trace requires the `trace` feature (this binary was built with \
             --no-default-features); rebuild with default features"
        );
        std::process::exit(2);
    }
    let park_every = numeric_flag(&args, "--park-every-rounds", 256);
    let gc_age = Duration::from_secs(numeric_flag(&args, "--gc-age-secs", 24 * 60 * 60));

    // The engine owns the store; the daemon holds the store's lockfile
    // for its whole lifetime so batch writers against the same cache
    // fail fast instead of interleaving. Dropped (= released) on every
    // exit path below; a SIGKILL leaves a stale lock the next locker
    // reclaims via pid liveness.
    let mut engine = SweepEngine::default();
    let mut _store_lock = None;
    let mut journal_path = None;
    let mut recovery = server::RecoveryCounters::default();
    if !args.iter().any(|a| a == "--no-cache") {
        let store_dir = RunStore::default_dir();
        let store = RunStore::new(&store_dir);
        match store.lock("sweepd") {
            Ok(lock) => _store_lock = Some(lock),
            Err(e) => {
                eprintln!("cannot lock run store: {e}");
                std::process::exit(1);
            }
        }

        engine = engine.with_store(store);

        // Startup crash recovery, strictly before the socket binds: GC
        // the debris a killed predecessor left, then replay its journal
        // so every accepted-but-unanswered request completes now.
        let gc = engine.store().expect("store just attached").gc(gc_age);
        let path = store_dir.join("journal.log");
        let report = server::recover(&path, &engine, scale);
        recovery = report.counters(gc.reclaimed());
        eprintln!(
            "sweepd: recovery: journal_replays={} recovered_runs={} resumed={} \
             figures={} failed={} torn_tail={} gc_tmp={} gc_parked={} gc_kept={}",
            report.replayed,
            report.recovered_runs,
            report.resumed_runs,
            report.recovered_figures,
            report.failed.len(),
            report.torn_tail,
            gc.tmp_removed,
            gc.parked_removed,
            gc.parked_kept,
        );
        for (key, reason) in &report.failed {
            eprintln!("sweepd: recovery failed for {key}: {reason}");
        }

        journal_path = Some(path);
    }
    if park_every > 0 {
        engine = engine.with_periodic_park(park_every);
    }
    let config = ServerConfig {
        socket_path: flag_value(&args, "--socket")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("/tmp/adacomm-sweepd.sock")),
        workers: numeric_flag(&args, "--workers", 2) as usize,
        queue_limit: numeric_flag(&args, "--queue-limit", 64) as usize,
        scale,
        journal_path,
        gc_max_parked_age: gc_age,
        recovery,
    };

    // SAFETY: installing a handler that only stores a relaxed atomic.
    unsafe {
        signal(SIGTERM, on_term as extern "C" fn(i32) as usize);
        signal(SIGINT, on_term as extern "C" fn(i32) as usize);
    }

    let sink = trace_dir.as_deref().map(|dir| {
        std::fs::create_dir_all(dir).ok();
        telemetry::EventSink::new()
    });
    let previous_sink = sink
        .as_ref()
        .map(|s| telemetry::install_sink(Some(s.clone())));
    let before = telemetry::snapshot();
    let started = Instant::now();

    let handle = match Server::start(config, Arc::new(engine)) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("sweepd: cannot start: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "sweepd: serving on {} (scale {scale}); SIGTERM or `sweepctl shutdown` drains",
        handle.socket_path().display()
    );

    while !TERM.load(Ordering::Relaxed) && !handle.shutdown_requested() {
        std::thread::sleep(Duration::from_millis(25));
    }
    let why = if TERM.load(Ordering::Relaxed) {
        "signal"
    } else {
        "shutdown command"
    };
    eprintln!("sweepd: draining ({why})");
    handle.initiate_drain();
    let stats = {
        let stats_after_drain = &handle;
        stats_after_drain.stats()
    };
    handle.join();

    let wall_secs = started.elapsed().as_secs_f64();
    if let Some(dir) = &trace_dir {
        let delta = telemetry::snapshot().delta_since(&before);
        let mut lines = vec![telemetry::schema::meta_service_line(
            "sweepd",
            &format!("{scale}"),
            wall_secs,
        )];
        lines.extend(delta.to_jsonl_lines());
        if let Some(sink) = &sink {
            lines.extend(sink.drain());
        }
        if let Err(e) = telemetry::write_jsonl_atomic(&dir.join("sweepd.jsonl"), &lines) {
            eprintln!("sweepd: failed to write telemetry trace: {e}");
        }
    }
    if let Some(previous) = previous_sink {
        telemetry::install_sink(previous);
    }

    println!(
        "sweepd: drained after {wall_secs:.2} s — {} requests ({} shed, {} dedup hits, \
         {} deadline misses, {} request panics), {} unique runs, \
         {} recovered, {} journal replays, {} gc orphans",
        stats.requests,
        stats.shed,
        stats.dedup_hits,
        stats.deadline_misses,
        stats.request_panics,
        stats.unique_runs,
        stats.recovered_runs,
        stats.journal_replays,
        stats.gc_orphans
    );
}
