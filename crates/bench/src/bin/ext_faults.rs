//! Standalone entry for the fault-injected frontier extension
//! (`figures::ext_faults`).

fn main() -> std::io::Result<()> {
    adacomm_bench::figures::run_standalone("ext_faults")
}
