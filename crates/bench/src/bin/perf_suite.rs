//! Perf harness: times the canonical quick-scale scenarios **and the
//! whole in-process `reproduce_all` sweep end-to-end**, writing a
//! `BENCH_<n>.json` report at the repository root so the hot-path
//! performance trajectory is tracked across PRs.
//!
//! Scenarios:
//!
//! * `reproduce_all_quick` — every figure/table/ablation/extension of the
//!   reproduction, executed in-process by the run-parallel sweep engine
//!   at quick scale (smoke scale under `--smoke`), with step counts,
//!   simulated clock and peak payload bytes aggregated over the engine's
//!   unique runs. Runs against a freshly wiped run-store directory, so
//!   it measures the cold path while populating the cache for:
//! * `reproduce_all_warm` — the same reproduction again, served from the
//!   persistent run store the cold scenario just wrote. The harness
//!   asserts every engine run comes from disk (zero misses, zero
//!   rejects); the wall-clock ratio against `reproduce_all_quick` is the
//!   headline number for the store.
//! * `fig09_vgg_adacomm_quick` — AdaComm on the communication-bound
//!   VGG-16-like profile (Figure 9, fixed lr panel);
//! * `fig10_resnet_adacomm_quick` — AdaComm on the computation-bound
//!   ResNet-50-like profile (Figure 10);
//! * `ext_compression_topk_slice` — one frontier slice of the compression
//!   extension: fixed τ = 16 with 1% Top-K + error feedback under the
//!   bytes-aware VGG profile.
//!
//! ```sh
//! cargo run --release -p adacomm-bench --bin perf_suite -- \
//!     [--smoke] [--out PATH] [--baseline PATH]
//! ```
//!
//! `--smoke` shrinks every simulated budget so CI can validate the JSON in
//! seconds; `--baseline` embeds a previously recorded report (same schema)
//! and computes per-scenario wall-clock speedups against it — it defaults
//! to the committed `crates/bench/baselines/pre_pr8.json` when that file
//! exists. See the README "Performance" section for the schema.
//!
//! When the `trace` feature is on (the default build), every scenario also
//! reports a `"phases"` object: wall-clock self-seconds per `phase.*` span
//! recorded by the telemetry registry while that scenario ran.

use adacomm::{AdaComm, AdaCommConfig, FixedComm, LrCoupling, LrSchedule};
use adacomm_bench::figures::reproduce;
use adacomm_bench::scenarios::{scenario, ModelFamily};
use adacomm_bench::sweep::SweepEngine;
use adacomm_bench::{RunStore, Scale};
use data::GaussianMixture;
use gradcomp::CodecSpec;
use nn::models;
use pasgd_sim::{ClusterConfig, ExperimentConfig, ExperimentSuite, RunTrace};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Which `BENCH_<n>.json` this binary emits.
const BENCH_ID: u32 = 8;

/// One timed scenario.
struct Measurement {
    name: &'static str,
    workers: usize,
    wall_clock_s: f64,
    sim_clock_s: f64,
    rounds: u64,
    local_steps: u64,
    peak_payload_bytes: f64,
    final_train_loss: f32,
    /// `(span name, self seconds)` per `phase.*` span recorded while this
    /// scenario ran — empty when the telemetry feature is compiled out.
    phases: Vec<(String, f64)>,
}

/// `phase.*` self-seconds accumulated while `run` executed.
fn timed_phases<T>(run: impl FnOnce() -> T) -> (T, Vec<(String, f64)>) {
    let before = telemetry::snapshot();
    let value = run();
    let delta = telemetry::snapshot().delta_since(&before);
    let phases = delta
        .spans
        .iter()
        .filter(|s| s.name.starts_with("phase."))
        .map(|s| (s.name.clone(), s.self_nanos as f64 / 1e9))
        .collect();
    (value, phases)
}

impl Measurement {
    fn steps_per_sec(&self) -> f64 {
        (self.local_steps * self.workers as u64) as f64 / self.wall_clock_s.max(1e-12)
    }

    fn rounds_per_sec(&self) -> f64 {
        self.rounds as f64 / self.wall_clock_s.max(1e-12)
    }

    fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\n      \"name\": \"{}\",\n      \"workers\": {},\n      \
             \"wall_clock_s\": {:.6},\n      \"sim_clock_s\": {:.3},\n      \
             \"rounds\": {},\n      \"local_steps\": {},\n      \
             \"steps_per_sec\": {:.1},\n      \"rounds_per_sec\": {:.2},\n      \
             \"peak_payload_bytes\": {:.0},\n      \"final_train_loss\": {:.6},\n      \
             \"phases\": {{{}}}\n    }}",
            self.name,
            self.workers,
            self.wall_clock_s,
            self.sim_clock_s,
            self.rounds,
            self.local_steps,
            self.steps_per_sec(),
            self.rounds_per_sec(),
            self.peak_payload_bytes,
            self.final_train_loss,
            self.phases
                .iter()
                .map(|(name, secs)| format!("\"{name}\": {secs:.6}"))
                .collect::<Vec<_>>()
                .join(", "),
        );
        s
    }
}

fn measure(name: &'static str, workers: usize, run: impl FnOnce() -> RunTrace) -> Measurement {
    let start = Instant::now();
    let (trace, phases) = timed_phases(run);
    let wall = start.elapsed().as_secs_f64();
    let last = trace.points.last().expect("non-empty trace");
    println!(
        "  {name}: {wall:.2}s wall, {} rounds, {} local steps, loss {:.4}",
        trace.rounds, last.iterations, last.train_loss
    );
    Measurement {
        name,
        workers,
        wall_clock_s: wall,
        sim_clock_s: last.clock,
        rounds: trace.rounds,
        local_steps: last.iterations,
        peak_payload_bytes: trace.peak_payload_bytes,
        final_train_loss: last.train_loss,
        phases,
    }
}

/// Times the whole in-process reproduction (the sweep engine's parallel
/// path) and reports it in the shared scenario schema with *real*
/// aggregates over the engine's memoized runs: `rounds` counts reproduced
/// figures, while `local_steps` (per-worker steps summed across unique
/// runs), `sim_clock_s` (summed simulated seconds) and
/// `peak_payload_bytes` come from [`SweepEngine::run_stats`].
///
/// Cold mode (`warm == false`) wipes `cache_dir` first, so the timing is
/// a true cold path that leaves a fully populated run store behind; warm
/// mode re-runs against that store and asserts every engine run was
/// served from disk.
fn measure_reproduce_all(smoke: bool, cache_dir: &Path, warm: bool) -> Measurement {
    let scale = if smoke { Scale::Smoke } else { Scale::Quick };
    let name = if warm {
        "reproduce_all_warm"
    } else {
        "reproduce_all_quick"
    };
    if !warm {
        let _ = std::fs::remove_dir_all(cache_dir);
    }
    println!(
        "  {name}: running all figures in-process ({scale} scale, {} run store)...",
        if warm { "warm" } else { "cold" }
    );
    let engine = SweepEngine::new().with_store(RunStore::new(cache_dir));
    let (outcome, phases) = timed_phases(|| reproduce(scale, &engine, None));
    let failures = outcome.failures();
    assert!(
        failures.is_empty(),
        "reproduction figures failed during the perf run: {failures:?}"
    );
    let stats = engine.run_stats();
    let cache = engine.cache_stats();
    if warm {
        assert!(
            cache.disk_hits > 0,
            "warm reproduction took no disk hits: {cache:?}"
        );
        assert_eq!(
            (cache.misses, cache.rejects),
            (0, 0),
            "warm reproduction re-simulated runs: {cache:?}"
        );
    }
    println!(
        "  {name}: {:.2}s wall ({:.2}s sweep wave, {} figures, {} unique runs, \
         {} local steps simulated)",
        outcome.total_secs,
        outcome.sweep_secs,
        outcome.figures.len(),
        stats.unique_runs,
        stats.local_steps,
    );
    println!(
        "  run store ({}): {} disk hits, {} memory hits, {} misses, {} rejected entries",
        cache_dir.display(),
        cache.disk_hits,
        cache.mem_hits,
        cache.misses,
        cache.rejects
    );
    Measurement {
        name,
        workers: 1,
        wall_clock_s: outcome.total_secs,
        sim_clock_s: stats.sim_clock_secs,
        rounds: outcome.figures.len() as u64,
        local_steps: stats.local_steps,
        peak_payload_bytes: stats.peak_payload_bytes,
        final_train_loss: 0.0,
        phases,
    }
}

/// The Figure 9/10 AdaComm run at quick scale (fixed lr, τ-gated decay).
fn adacomm_run(family: ModelFamily, smoke: bool) -> RunTrace {
    let sc = scenario(family, 10, 4, Scale::Quick);
    let tau0 = sc.tau0;
    let lr = sc.fixed_lr.clone();
    let suite = if smoke {
        sc.suite.with_budget(30.0, 10.0)
    } else {
        sc.suite
    };
    let mut ada = AdaComm::new(AdaCommConfig {
        tau0,
        lr_coupling: LrCoupling::None,
        max_tau: 256.max(tau0),
        ..AdaCommConfig::default()
    });
    suite.run_with_options(&mut ada, &lr, None, Some(true))
}

/// One frontier slice of the `ext_compression` experiment: τ = 16 with 1%
/// Top-K + error feedback under the bytes-aware VGG-16 profile.
fn compression_slice(smoke: bool) -> RunTrace {
    let workers = 4usize;
    let model = models::mlp_classifier(256, &[64], 100, 77);
    let full_bytes = model.param_count() * 4;
    let profile = ModelFamily::VggLike.profile().time_scaled(4.0);
    let runtime = profile.bytes_aware_runtime_model(workers, 0.9, full_bytes as f64);
    let split = GaussianMixture::cifar100_like().generate(1244);
    let total_secs = if smoke { 30.0 } else { 600.0 };
    let suite = ExperimentSuite::new(
        model,
        split,
        runtime,
        ClusterConfig {
            workers,
            batch_size: 32,
            lr: 0.1,
            weight_decay: 5e-4,
            seed: 42,
            eval_subset: 1024,
            ..ClusterConfig::default()
        },
        ExperimentConfig {
            interval_secs: 20.0,
            total_secs,
            record_every_secs: total_secs / 40.0,
            gate_lr_on_tau: false,
        },
    );
    suite.run_with_codec(
        &mut FixedComm::new(16),
        &LrSchedule::constant(0.1),
        CodecSpec::TopK { ratio: 0.01 },
    )
}

/// Pulls `"wall_clock_s": <x>` for scenario `name` out of a perf report —
/// the reports are machine-generated by this binary, so plain string
/// scanning is reliable and keeps the harness serde-free.
fn baseline_wall_clock(report: &str, name: &str) -> Option<f64> {
    let at = report.find(&format!("\"name\": \"{name}\""))?;
    let rest = &report[at..];
    let key = "\"wall_clock_s\": ";
    let v = &rest[rest.find(key)? + key.len()..];
    let end = v.find([',', '\n', '}'])?;
    v[..end].trim().parse().ok()
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn main() -> std::io::Result<()> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag_value = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .map(PathBuf::from)
    };
    let out_path =
        flag_value("--out").unwrap_or_else(|| repo_root().join(format!("BENCH_{BENCH_ID}.json")));
    // Default to the committed pre-PR baseline so a plain `perf_suite` run
    // reports speedups without extra flags. Smoke mode gets no default:
    // its shrunken budgets make speedups against the full-scale baseline
    // meaningless.
    let baseline_path = flag_value("--baseline").or_else(|| {
        let committed = repo_root().join("crates/bench/baselines/pre_pr8.json");
        (!smoke && committed.exists()).then_some(committed)
    });
    if smoke {
        // Keep the CI exercise away from the committed quick-scale CSVs.
        adacomm_bench::report::set_results_subdir("smoke");
    }
    // A dedicated store directory (wiped by the cold scenario) so the
    // cold/warm pair never mixes with a reproduce_all cache the user may
    // already have. Resolved after the --smoke redirect, like the CSVs.
    let perf_cache = adacomm_bench::report::results_dir().join("perf_cache");

    println!(
        "perf_suite ({} mode) — timing the in-process reproduction + quick-scale scenarios",
        if smoke { "smoke" } else { "full" }
    );
    let measurements = [
        measure_reproduce_all(smoke, &perf_cache, false),
        measure_reproduce_all(smoke, &perf_cache, true),
        measure("fig09_vgg_adacomm_quick", 4, || {
            adacomm_run(ModelFamily::VggLike, smoke)
        }),
        measure("fig10_resnet_adacomm_quick", 4, || {
            adacomm_run(ModelFamily::ResnetLike, smoke)
        }),
        measure("ext_compression_topk_slice", 4, || compression_slice(smoke)),
    ];

    let baseline = match &baseline_path {
        Some(p) => Some(std::fs::read_to_string(p)?),
        None => None,
    };

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench_id\": {BENCH_ID},");
    let _ = writeln!(json, "  \"generated_by\": \"perf_suite\",");
    let _ = writeln!(
        json,
        "  \"mode\": \"{}\",",
        if smoke { "smoke" } else { "full" }
    );
    let _ = writeln!(json, "  \"scenarios\": [");
    for (i, m) in measurements.iter().enumerate() {
        let comma = if i + 1 < measurements.len() { "," } else { "" };
        let _ = writeln!(json, "    {}{comma}", m.to_json());
    }
    let _ = write!(json, "  ]");
    if let Some(base) = &baseline {
        let _ = writeln!(json, ",");
        let _ = writeln!(json, "  \"speedup_vs_baseline\": {{");
        let mut lines = Vec::new();
        for m in &measurements {
            if let Some(b) = baseline_wall_clock(base, m.name) {
                lines.push(format!(
                    "    \"{}\": {:.2}",
                    m.name,
                    b / m.wall_clock_s.max(1e-12)
                ));
            }
        }
        let _ = writeln!(json, "{}", lines.join(",\n"));
        let _ = writeln!(json, "  }},");
        // Embed the machine-generated baseline report verbatim (it is
        // itself a JSON object, so nesting it keeps the file valid).
        let _ = write!(json, "  \"baseline\": {}", base.trim_end());
    }
    let _ = writeln!(json, "\n}}");

    std::fs::write(&out_path, &json)?;
    println!("wrote {}", out_path.display());
    if let Some(base) = &baseline {
        for m in &measurements {
            if let Some(b) = baseline_wall_clock(base, m.name) {
                println!(
                    "  {}: {:.2}s vs baseline {:.2}s ({:.2}x)",
                    m.name,
                    m.wall_clock_s,
                    b,
                    b / m.wall_clock_s.max(1e-12)
                );
            }
        }
    }
    Ok(())
}
