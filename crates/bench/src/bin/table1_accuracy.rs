//! Table 1: best test accuracy on the CIFAR10-like task within a fixed
//! time budget — {VGG-16-like, ResNet-50-like} × {τ = 1, moderate τ,
//! τ = 100, AdaComm} × {fixed lr, variable lr}, SGD without momentum.
//!
//! ```sh
//! cargo run --release -p adacomm-bench --bin table1_accuracy [--full]
//! ```
//!
//! Paper's reported shape: AdaComm matches or beats fully synchronous SGD
//! everywhere, and in the variable-lr column beats even the best
//! hand-tuned fixed τ.

use adacomm_bench::scenarios::{scenario, ModelFamily};
use adacomm_bench::{run_standard_panel, LrMode, Scale, Table};
use std::fmt::Write as _;

fn main() -> std::io::Result<()> {
    let scale = Scale::from_env_and_args();
    println!("Table 1 (scale: {scale}) — best test accuracy, CIFAR10-like, no momentum\n");

    let mut table = Table::new(vec![
        "model".into(),
        "method".into(),
        "fixed lr %".into(),
        "variable lr %".into(),
    ]);
    let mut csv = String::from("model,method,fixed_lr_acc,variable_lr_acc\n");

    for family in [ModelFamily::VggLike, ModelFamily::ResnetLike] {
        let sc = scenario(family, 10, 4, scale);
        let fixed = run_standard_panel(&sc, LrMode::Fixed, false);
        let variable = run_standard_panel(&sc, LrMode::Variable, false);
        let mut adacomm_fixed = 0.0f64;
        let mut best_fixed_tau_acc = 0.0f64;
        let mut adacomm_var = 0.0f64;
        for (f, v) in fixed.iter().zip(variable.iter()) {
            let is_adacomm = f.name.starts_with("adacomm");
            assert!(
                f.name == v.name || (is_adacomm && v.name.starts_with("adacomm")),
                "panel ordering mismatch: {} vs {}",
                f.name,
                v.name
            );
            let fa = 100.0 * f.best_test_accuracy();
            let va = 100.0 * v.best_test_accuracy();
            let method = if is_adacomm { "adacomm" } else { &f.name };
            table.row(vec![
                family.name().to_string(),
                method.to_string(),
                format!("{fa:.2}"),
                format!("{va:.2}"),
            ]);
            let _ = writeln!(csv, "{},{method},{fa:.3},{va:.3}", family.name());
            if is_adacomm {
                adacomm_fixed = fa;
                adacomm_var = va;
            } else {
                best_fixed_tau_acc = best_fixed_tau_acc.max(fa);
            }
        }
        println!(
            "  [{}] adacomm fixed-lr acc {adacomm_fixed:.2}% (best fixed-tau {best_fixed_tau_acc:.2}%), variable-lr {adacomm_var:.2}%",
            family.name()
        );
    }
    println!();
    table.print();
    adacomm_bench::write_csv("table1_accuracy", &csv)?;
    Ok(())
}
