//! Ablation: the multiplicative decay factor γ of rule (18).
//!
//! ```sh
//! cargo run --release -p adacomm-bench --bin ablation_gamma [--full]
//! ```
//!
//! γ < 1 is what lets AdaComm escape plateaus where rule (17) alone would
//! keep τ frozen. γ = 1.0 disables the refinement (pure rule 17); the
//! paper found γ = 1/2 a good choice.

use adacomm::{AdaComm, AdaCommConfig};
use adacomm_bench::scenarios::{scenario, ModelFamily};
use adacomm_bench::{save_panel_csv, LrMode, Scale, Table};

fn main() -> std::io::Result<()> {
    let scale = Scale::from_env_and_args();
    println!("Ablation: AdaComm gamma (eq. 18), VGG-like CIFAR10-like (scale {scale})\n");
    let sc = scenario(ModelFamily::VggLike, 10, 4, scale);
    let lr = adacomm_bench::panel::lr_schedule_for(&sc, LrMode::Fixed);

    let mut table = Table::new(vec![
        "gamma".into(),
        "final loss".into(),
        "min loss".into(),
        "best acc %".into(),
        "final tau".into(),
        "rounds with tau=1".into(),
    ]);
    let mut traces = Vec::new();
    for gamma in [0.25, 0.5, 0.75, 1.0] {
        let mut sched = AdaComm::new(AdaCommConfig {
            tau0: sc.tau0,
            gamma,
            ..AdaCommConfig::default()
        });
        let mut trace = sc.suite.run(&mut sched, &lr);
        trace.name = format!("gamma={gamma}");
        let taus = trace.tau_trace();
        let at_one = taus.iter().filter(|&&(_, t)| t == 1).count();
        let last = trace.points.last().expect("non-empty");
        table.row(vec![
            format!("{gamma}"),
            format!("{:.4}", trace.final_loss()),
            format!("{:.4}", trace.min_loss()),
            format!("{:.2}", 100.0 * trace.best_test_accuracy()),
            last.tau.to_string(),
            format!("{at_one}/{}", taus.len()),
        ]);
        traces.push(trace);
    }
    table.print();
    save_panel_csv("ablation_gamma", &traces)?;

    println!("\nsmaller gamma anneals tau to 1 sooner (lower floor, slower late");
    println!("iterations); gamma = 1.0 can leave tau stuck above 1 on plateaus.");
    Ok(())
}
