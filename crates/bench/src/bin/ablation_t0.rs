//! Standalone entry point for the `ablation_t0` reproduction target; the figure
//! body lives in `adacomm_bench::figures` so `reproduce_all` can execute
//! it in-process (and in parallel with the other figures).
//!
//! ```sh
//! cargo run --release -p adacomm-bench --bin ablation_t0 [--full|--smoke]
//! ```

fn main() -> std::io::Result<()> {
    adacomm_bench::figures::run_standalone("ablation_t0")
}
