//! Ablation: the wall-clock interval length `T0` at which AdaComm
//! re-evaluates τ (Section 4: "if the interval length T0 is small enough
//! ... this adaptive scheme should achieve a win-win").
//!
//! ```sh
//! cargo run --release -p adacomm-bench --bin ablation_t0 [--full]
//! ```

use adacomm::AdaComm;
use adacomm_bench::scenarios::{scenario, ModelFamily};
use adacomm_bench::{save_panel_csv, LrMode, Scale, Table};
use pasgd_sim::{ClusterConfig, ExperimentConfig, ExperimentSuite, MomentumMode};

fn main() -> std::io::Result<()> {
    let scale = Scale::from_env_and_args();
    println!("Ablation: AdaComm interval length T0, VGG-like CIFAR10-like (scale {scale})\n");
    let sc = scenario(ModelFamily::VggLike, 10, 4, scale);
    let lr = adacomm_bench::panel::lr_schedule_for(&sc, LrMode::Fixed);
    let base = sc.suite.experiment_config().clone();

    let mut table = Table::new(vec![
        "T0 (s)".into(),
        "final loss".into(),
        "best acc %".into(),
        "tau updates".into(),
    ]);
    let mut traces = Vec::new();
    for t0 in [15.0, 30.0, 60.0, 120.0, 300.0] {
        // Rebuild the suite with a different interval length only.
        let split = data::GaussianMixture::cifar10_like().generate(1234 + 10);
        let profile = delay::vgg16_profile().time_scaled(if scale.is_full() { 1.0 } else { 4.0 });
        let suite = ExperimentSuite::new(
            nn::models::mlp_classifier(256, &[64], 10, 77),
            split,
            profile.runtime_model(4),
            ClusterConfig {
                workers: 4,
                batch_size: 32,
                lr: 0.2,
                weight_decay: 5e-4,
                momentum: MomentumMode::None,
                averaging: pasgd_sim::AveragingStrategy::FullAverage,
                codec: gradcomp::CodecSpec::Identity,
                seed: 42,
                eval_subset: 1024,
            },
            ExperimentConfig {
                interval_secs: t0,
                ..base.clone()
            },
        );
        let mut trace = suite.run(&mut AdaComm::with_tau0(sc.tau0), &lr);
        trace.name = format!("T0={t0}");
        // Count distinct tau values along the trace as a proxy for updates.
        let taus: Vec<usize> = trace.tau_trace().iter().map(|&(_, t)| t).collect();
        let changes = taus.windows(2).filter(|w| w[0] != w[1]).count();
        table.row(vec![
            format!("{t0}"),
            format!("{:.4}", trace.final_loss()),
            format!("{:.2}", 100.0 * trace.best_test_accuracy()),
            changes.to_string(),
        ]);
        traces.push(trace);
    }
    table.print();
    save_panel_csv("ablation_t0", &traces)?;

    println!("\nvery large T0 adapts too slowly (few tau updates); very small T0 anneals");
    println!("tau to 1 early and gives up the communication savings.");
    Ok(())
}
