//! Runs every figure/table binary's core computation in sequence and
//! writes all CSVs into `results/` — the one-shot reproduction driver.
//!
//! ```sh
//! cargo run --release -p adacomm-bench --bin reproduce_all [--full]
//! ```
//!
//! (Each figure also has a standalone binary with richer output; this
//! driver shells out to them so their assertions run too.)

use std::process::Command;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let binaries = [
        "fig01_concept",
        "fig04_speedup",
        "fig05_runtime_dist",
        "fig06_theory_bound",
        "fig07_switching",
        "fig08_comm_comp",
        "fig09_vgg_adacomm",
        "fig10_resnet_adacomm",
        "fig11_block_momentum",
        "fig12_vgg_8workers",
        "fig13_resnet_8workers",
        "fig14_local_gap",
        "table1_accuracy",
        "thm3_schedule_check",
        "ablation_gamma",
        "ablation_lr_coupling",
        "ablation_momentum_mode",
        "ablation_t0",
        "ablation_straggler",
        "ext_averaging_strategies",
        "ext_compression",
    ];

    let exe_dir = std::env::current_exe()
        .expect("current exe path")
        .parent()
        .expect("exe directory")
        .to_path_buf();

    let mut failures = Vec::new();
    for bin in binaries {
        println!("\n================================================================");
        println!("=== {bin}");
        println!("================================================================");
        let mut cmd = Command::new(exe_dir.join(bin));
        if full {
            cmd.arg("--full");
        }
        match cmd.status() {
            Ok(status) if status.success() => {}
            Ok(status) => {
                eprintln!("{bin} exited with {status}");
                failures.push(bin);
            }
            Err(e) => {
                eprintln!("failed to launch {bin}: {e} (build with `cargo build --release -p adacomm-bench --bins` first)");
                failures.push(bin);
            }
        }
    }

    println!("\n================================================================");
    if failures.is_empty() {
        println!(
            "all {} reproduction targets completed; CSVs are in results/",
            binaries.len()
        );
    } else {
        println!("FAILED targets: {failures:?}");
        std::process::exit(1);
    }
}
