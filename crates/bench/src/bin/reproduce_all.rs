//! Runs every figure/table target **in one process** and writes all CSVs
//! into `results/` — the one-shot reproduction driver.
//!
//! ```sh
//! cargo run --release -p adacomm-bench --bin reproduce_all -- \
//!     [--full|--smoke] [--only SUBSTR] [--sequential] [--no-cache] \
//!     [--trace DIR] [--json] [--inject-panic SUBSTR]
//! ```
//!
//! Unlike the old driver (which shelled out to the 21 standalone binaries
//! one after another), this collects every figure's declared sweep specs
//! into one table, executes the deduplicated union as a single
//! run-parallel wave on the in-process sweep engine, then renders all
//! figures concurrently — each figure's assertions still run, each
//! figure's output prints un-interleaved in registry order, and identical
//! runs shared between figures (all 16 of Table 1's, for instance)
//! simulate exactly once.
//!
//! * `--only SUBSTR` reproduces just the figures whose name contains
//!   `SUBSTR` (e.g. `--only fig09`, `--only ablation`), so partial
//!   reproductions don't pay for the full sweep.
//! * `--sequential` / `--parallel` force the engine mode (the default is
//!   parallel exactly when the machine has more than one executor);
//!   `results/*.csv` are bit-identical across modes (the determinism
//!   test enforces the engine half of this guarantee).
//! * `--smoke` shrinks every simulated budget and redirects CSVs to
//!   `results/smoke/`, so CI exercises the whole in-process path in
//!   seconds without touching the committed quick-scale results.
//! * `--trace DIR` writes one JSONL telemetry profile per execution
//!   window (the sweep wave plus each figure) into `DIR` and appends a
//!   per-phase timing summary to the report. Requires the `trace`
//!   feature (on by default); tracing **forces the sequential engine**
//!   (an explicit notice is printed) so each profile is attributable to
//!   exactly one figure — combining `--trace` with an explicit
//!   `--parallel` is a hard argument conflict (exit 2). Inspect the
//!   profiles with the `obs_report` binary.
//! * `--json` replaces the human report with one machine-readable JSON
//!   document on stdout (per-figure wall times + cache statistics), for
//!   CI trend tracking.
//! * The engine's memoization is **persistent**: traces land in the
//!   content-addressed run store (`results/cache/`, or
//!   `results/smoke/cache/` under `--smoke`) and a warm re-run serves
//!   every cached run from disk — byte-identical CSVs in seconds instead
//!   of minutes. `--no-cache` runs fully cold without reading or writing
//!   the store; deleting the cache directory is always safe. The store's
//!   lockfile makes cache writers mutually exclusive: a reproduction
//!   against a cache a `sweepd` daemon is serving out of fails fast
//!   (exit 1, naming the holder) instead of interleaving writes.
//! * Every sweep run executes under the supervisor (panic isolation,
//!   bounded seeded retry, optional per-run deadline). A run that fails
//!   terminally degrades the reproduction to a **partial-results
//!   report**: its figure fails with the supervisor's reason, every
//!   other figure still completes and writes its CSVs, a per-run failure
//!   table prints at the end, and the process exits non-zero.
//! * `--inject-panic SUBSTR` is the fault drill: every supervised run
//!   whose spec key contains `SUBSTR` panics on every attempt, proving
//!   the partial-results degradation end to end (CI runs this against
//!   one scenario and checks the other figures' CSVs are untouched).
//!
//! All human-readable output is assembled into a single buffer and
//! written to stdout in one call, so nothing a figure, the engine, or the
//! telemetry layer prints can interleave mid-line with the report.

use adacomm_bench::figures::reproduce_with_trace;
use adacomm_bench::{sayln, RunStore, Scale, SweepEngine, Table};
use std::io::Write;

const USAGE: &str = "\
usage: reproduce_all [--full|--smoke] [--only SUBSTR] [--sequential|--parallel]
                     [--no-cache] [--trace DIR] [--json] [--inject-panic SUBSTR]

  --full / --smoke      scale selection (default: quick)
  --only SUBSTR         reproduce only figures whose name contains SUBSTR
  --sequential          force the sequential engine
  --parallel            force the parallel engine
  --no-cache            ignore the persistent run store entirely
  --trace DIR           write per-window JSONL telemetry profiles to DIR;
                        forces the sequential engine so each profile is
                        attributable to exactly one figure
  --json                machine-readable report on stdout
  --inject-panic SUBSTR fault drill: panic every supervised run whose spec
                        key contains SUBSTR (the reproduction degrades to
                        a partial-results report and exits non-zero)
  --help                print this help";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return;
    }
    let scale = Scale::from_env_and_args();
    let trace_dir = args
        .iter()
        .position(|a| a == "--trace")
        .map(|i| match args.get(i + 1) {
            Some(dir) if !dir.starts_with("--") => std::path::PathBuf::from(dir),
            _ => {
                eprintln!("--trace requires a directory argument");
                std::process::exit(2);
            }
        });
    if trace_dir.is_some() && !telemetry::is_enabled() {
        eprintln!(
            "--trace requires the `trace` feature (this binary was built with \
             --no-default-features); rebuild with default features"
        );
        std::process::exit(2);
    }
    let json_mode = args.iter().any(|a| a == "--json");
    // Default: parallel iff the machine has more than one executor
    // (results are bit-identical either way); force with the flags.
    // Tracing overrides everything: per-figure snapshot deltas need the
    // strictly-ordered figure loop.
    let parallel = if trace_dir.is_some() {
        // An explicit --parallel is a hard conflict, not a silent
        // override: the user asked for two things that cannot coexist.
        if args.iter().any(|a| a == "--parallel") {
            eprintln!(
                "--trace and --parallel conflict: tracing requires the sequential \
                 engine (each telemetry profile must be attributable to exactly one \
                 figure); drop one of the flags"
            );
            std::process::exit(2);
        }
        if !args.iter().any(|a| a == "--sequential") {
            eprintln!(
                "notice: --trace forces the sequential engine (each telemetry profile \
                 must be attributable to exactly one figure)"
            );
        }
        false
    } else if args.iter().any(|a| a == "--sequential") {
        false
    } else if args.iter().any(|a| a == "--parallel") {
        true
    } else {
        adacomm_bench::sweep::hardware_parallelism()
    };
    let only = args
        .iter()
        .position(|a| a == "--only")
        .and_then(|i| args.get(i + 1))
        .cloned();
    if let Some(substr) = args
        .iter()
        .position(|a| a == "--inject-panic")
        .and_then(|i| args.get(i + 1))
    {
        if substr.starts_with("--") {
            eprintln!("--inject-panic requires a substring argument");
            std::process::exit(2);
        }
        adacomm_bench::supervisor::inject_panics(substr, u32::MAX);
        eprintln!("fault drill: every supervised run matching {substr:?} will panic");
    }
    if scale.is_smoke() {
        adacomm_bench::report::set_results_subdir("smoke");
    }

    let mut out = String::new();
    sayln!(
        out,
        "reproduce_all (scale {scale}, {} engine{}{})",
        if parallel { "parallel" } else { "sequential" },
        only.as_deref()
            .map(|o| format!(", only *{o}*"))
            .unwrap_or_default(),
        trace_dir
            .as_deref()
            .map(|d| format!(", tracing to {}", d.display()))
            .unwrap_or_default()
    );

    // Persistent memoization unless --no-cache: the store must be set up
    // after the --smoke results redirect so a smoke cache never mixes
    // with the quick-scale one. The store's lockfile excludes concurrent
    // writers — most importantly a running `sweepd` serving out of the
    // same cache — instead of interleaving their writes; a lock left by
    // a crashed process is reclaimed automatically.
    let mut engine = SweepEngine::with_parallelism(parallel);
    let mut _store_lock = None;
    if !args.iter().any(|a| a == "--no-cache") {
        let store = RunStore::new(RunStore::default_dir());
        match store.lock("reproduce_all") {
            Ok(lock) => _store_lock = Some(lock),
            Err(e) => {
                eprintln!(
                    "cannot lock the run store: {e}\n\
                     (is a sweepd daemon serving out of the same cache? stop it, or \
                     run with --no-cache)"
                );
                std::process::exit(1);
            }
        }
        engine = engine.with_store(store);
    }
    let before = telemetry::snapshot();
    let outcome = match reproduce_with_trace(scale, &engine, only.as_deref(), trace_dir.as_deref())
    {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("failed to write telemetry trace: {e}");
            std::process::exit(1);
        }
    };
    let phase_delta = telemetry::snapshot().delta_since(&before);
    let warnings = engine.take_warnings();
    let run_failures = engine.run_failures();

    if outcome.figures.is_empty() {
        eprintln!("no figure matches --only {:?}", only.as_deref());
        std::process::exit(2);
    }

    let cache = engine.cache_stats();
    if json_mode {
        let mut doc = telemetry::json::ObjectBuilder::new();
        doc.str_field("scale", &format!("{scale}"));
        doc.str_field("engine", if parallel { "parallel" } else { "sequential" });
        let figures: Vec<String> = outcome
            .figures
            .iter()
            .map(|f| {
                let mut obj = telemetry::json::ObjectBuilder::new();
                obj.str_field("name", f.name);
                obj.num_field("wall_secs", f.wall_secs);
                obj.str_field("status", if f.failure.is_some() { "failed" } else { "ok" });
                obj.finish()
            })
            .collect();
        doc.raw_field("figures", &format!("[{}]", figures.join(",")));
        doc.num_field("sweep_secs", outcome.sweep_secs);
        doc.num_field("total_secs", outcome.total_secs);
        doc.num_field("unique_runs", outcome.unique_runs as f64);
        doc.num_field("cache_disk_hits", cache.disk_hits as f64);
        doc.num_field("cache_mem_hits", cache.mem_hits as f64);
        doc.num_field("cache_misses", cache.misses as f64);
        doc.num_field("cache_rejects", cache.rejects as f64);
        let failed_runs: Vec<String> = run_failures
            .iter()
            .map(|(key, reason)| {
                let mut obj = telemetry::json::ObjectBuilder::new();
                obj.str_field("key", key);
                obj.str_field("reason", reason);
                obj.finish()
            })
            .collect();
        doc.raw_field("run_failures", &format!("[{}]", failed_runs.join(",")));
        match engine.store() {
            Some(store) => doc.str_field("store_dir", &store.dir().display().to_string()),
            None => doc.raw_field("store_dir", "null"),
        }
        println!("{}", doc.finish());
    } else {
        for figure in &outcome.figures {
            sayln!(
                out,
                "\n================================================================"
            );
            sayln!(out, "=== {}", figure.name);
            sayln!(
                out,
                "================================================================"
            );
            out.push_str(&figure.output);
            if let Some(failure) = &figure.failure {
                sayln!(out, "{} FAILED: {failure}", figure.name);
            }
        }

        sayln!(
            out,
            "\n================================================================"
        );
        let mut timing = Table::new(vec!["figure".into(), "wall s".into(), "status".into()]);
        for figure in &outcome.figures {
            timing.row(vec![
                figure.name.to_string(),
                format!("{:.2}", figure.wall_secs),
                if figure.failure.is_some() {
                    "FAILED".into()
                } else {
                    "ok".into()
                },
            ]);
        }
        out.push_str(&timing.render());
        sayln!(
            out,
            "\nsweep wave: {:.2} s ({} unique runs); end-to-end: {:.2} s \
             (per-figure times overlap under the parallel engine)",
            outcome.sweep_secs,
            outcome.unique_runs,
            outcome.total_secs
        );
        match engine.store() {
            Some(store) => sayln!(
                out,
                "run store ({}): {} disk hits, {} memory hits, {} misses, {} rejected entries",
                store.dir().display(),
                cache.disk_hits,
                cache.mem_hits,
                cache.misses,
                cache.rejects
            ),
            None => sayln!(
                out,
                "run store: disabled (--no-cache); {} memory hits, {} misses",
                cache.mem_hits,
                cache.misses
            ),
        }

        if trace_dir.is_some() {
            append_phase_summary(&mut out, &phase_delta, outcome.total_secs);
        }

        if !run_failures.is_empty() {
            sayln!(
                out,
                "\nruns that failed terminally under supervision ({}):",
                run_failures.len()
            );
            for (key, reason) in &run_failures {
                sayln!(out, "  {key}");
                sayln!(out, "    -> {reason}");
            }
        }

        let failures = outcome.failures();
        if failures.is_empty() && run_failures.is_empty() {
            sayln!(
                out,
                "all {} reproduction targets completed; CSVs are in results/",
                outcome.figures.len()
            );
        } else {
            sayln!(
                out,
                "PARTIAL RESULTS: {} of {} reproduction targets completed; the rest \
                 degraded instead of aborting",
                outcome.figures.len() - failures.len(),
                outcome.figures.len()
            );
            if !failures.is_empty() {
                sayln!(out, "FAILED targets: {failures:?}");
            }
        }

        // One write, then flush, so stderr messages below can never land
        // mid-line inside the report.
        let stdout = std::io::stdout();
        let mut lock = stdout.lock();
        let _ = lock.write_all(out.as_bytes());
        let _ = lock.flush();
    }

    for warning in &warnings {
        eprintln!("{warning}");
    }
    for figure in &outcome.figures {
        if let Some(failure) = &figure.failure {
            eprintln!("{} FAILED: {failure}", figure.name);
        }
    }
    for (key, reason) in &run_failures {
        eprintln!("run FAILED ({reason}): {key}");
    }
    if !outcome.failures().is_empty() || !run_failures.is_empty() {
        std::process::exit(1);
    }
}

/// Appends the per-phase wall-time attribution table rendered under
/// `--trace`: self-time per `phase.*` span (and `kernel.*` timer under
/// the `profile` feature), sorted by the registry's deterministic order.
fn append_phase_summary(out: &mut String, delta: &telemetry::Snapshot, wall_secs: f64) {
    let phases: Vec<&telemetry::SpanSnapshot> = delta
        .spans
        .iter()
        .filter(|s| s.name.starts_with("phase.") || s.name.starts_with("kernel."))
        .collect();
    if phases.is_empty() {
        return;
    }
    sayln!(out, "\nper-phase wall-time attribution:");
    let mut table = Table::new(vec![
        "phase".into(),
        "calls".into(),
        "total s".into(),
        "self s".into(),
        "% of wall".into(),
    ]);
    for span in &phases {
        let self_secs = span.self_nanos as f64 / 1e9;
        table.row(vec![
            span.name.clone(),
            span.count.to_string(),
            format!("{:.3}", span.total_nanos as f64 / 1e9),
            format!("{self_secs:.3}"),
            format!("{:.1}", 100.0 * self_secs / wall_secs.max(1e-9)),
        ]);
    }
    out.push_str(&table.render());
}
