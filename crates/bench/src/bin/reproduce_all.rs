//! Runs every figure/table target **in one process** and writes all CSVs
//! into `results/` — the one-shot reproduction driver.
//!
//! ```sh
//! cargo run --release -p adacomm-bench --bin reproduce_all -- \
//!     [--full|--smoke] [--only SUBSTR] [--sequential] [--no-cache]
//! ```
//!
//! Unlike the old driver (which shelled out to the 21 standalone binaries
//! one after another), this collects every figure's declared sweep specs
//! into one table, executes the deduplicated union as a single
//! run-parallel wave on the in-process sweep engine, then renders all
//! figures concurrently — each figure's assertions still run, each
//! figure's output prints un-interleaved in registry order, and identical
//! runs shared between figures (all 16 of Table 1's, for instance)
//! simulate exactly once.
//!
//! * `--only SUBSTR` reproduces just the figures whose name contains
//!   `SUBSTR` (e.g. `--only fig09`, `--only ablation`), so partial
//!   reproductions don't pay for the full sweep.
//! * `--sequential` / `--parallel` force the engine mode (the default is
//!   parallel exactly when the machine has more than one executor);
//!   `results/*.csv` are bit-identical across modes (the determinism
//!   test enforces the engine half of this guarantee).
//! * `--smoke` shrinks every simulated budget and redirects CSVs to
//!   `results/smoke/`, so CI exercises the whole in-process path in
//!   seconds without touching the committed quick-scale results.
//! * The engine's memoization is **persistent**: traces land in the
//!   content-addressed run store (`results/cache/`, or
//!   `results/smoke/cache/` under `--smoke`) and a warm re-run serves
//!   every cached run from disk — byte-identical CSVs in seconds instead
//!   of minutes. `--no-cache` runs fully cold without reading or writing
//!   the store; deleting the cache directory is always safe.

use adacomm_bench::figures::reproduce;
use adacomm_bench::{RunStore, Scale, SweepEngine, Table};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_env_and_args();
    // Default: parallel iff the machine has more than one executor
    // (results are bit-identical either way); force with the flags.
    let parallel = if args.iter().any(|a| a == "--sequential") {
        false
    } else if args.iter().any(|a| a == "--parallel") {
        true
    } else {
        adacomm_bench::sweep::hardware_parallelism()
    };
    let only = args
        .iter()
        .position(|a| a == "--only")
        .and_then(|i| args.get(i + 1))
        .cloned();
    if scale.is_smoke() {
        adacomm_bench::report::set_results_subdir("smoke");
    }

    println!(
        "reproduce_all (scale {scale}, {} engine{})",
        if parallel { "parallel" } else { "sequential" },
        only.as_deref()
            .map(|o| format!(", only *{o}*"))
            .unwrap_or_default()
    );

    // Persistent memoization unless --no-cache: the store must be set up
    // after the --smoke results redirect so a smoke cache never mixes
    // with the quick-scale one.
    let mut engine = SweepEngine::with_parallelism(parallel);
    if !args.iter().any(|a| a == "--no-cache") {
        engine = engine.with_store(RunStore::new(RunStore::default_dir()));
    }
    let outcome = reproduce(scale, &engine, only.as_deref());

    if outcome.figures.is_empty() {
        eprintln!("no figure matches --only {:?}", only.as_deref());
        std::process::exit(2);
    }

    for figure in &outcome.figures {
        println!("\n================================================================");
        println!("=== {}", figure.name);
        println!("================================================================");
        print!("{}", figure.output);
        if let Some(failure) = &figure.failure {
            eprintln!("{} FAILED: {failure}", figure.name);
        }
    }

    println!("\n================================================================");
    let mut timing = Table::new(vec!["figure".into(), "wall s".into(), "status".into()]);
    for figure in &outcome.figures {
        timing.row(vec![
            figure.name.to_string(),
            format!("{:.2}", figure.wall_secs),
            if figure.failure.is_some() {
                "FAILED".into()
            } else {
                "ok".into()
            },
        ]);
    }
    timing.print();
    println!(
        "\nsweep wave: {:.2} s ({} unique runs); end-to-end: {:.2} s \
         (per-figure times overlap under the parallel engine)",
        outcome.sweep_secs, outcome.unique_runs, outcome.total_secs
    );
    let cache = engine.cache_stats();
    match engine.store() {
        Some(store) => println!(
            "run store ({}): {} disk hits, {} memory hits, {} misses, {} rejected entries",
            store.dir().display(),
            cache.disk_hits,
            cache.mem_hits,
            cache.misses,
            cache.rejects
        ),
        None => println!(
            "run store: disabled (--no-cache); {} memory hits, {} misses",
            cache.mem_hits, cache.misses
        ),
    }

    let failures = outcome.failures();
    if failures.is_empty() {
        println!(
            "all {} reproduction targets completed; CSVs are in results/",
            outcome.figures.len()
        );
    } else {
        println!("FAILED targets: {failures:?}");
        std::process::exit(1);
    }
}
