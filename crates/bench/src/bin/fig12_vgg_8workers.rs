//! Figure 12 (appendix): VGG-16-like with 8 workers. Panels:
//! (a) variable lr on CIFAR10-like, (b) fixed lr on CIFAR100-like.
//!
//! ```sh
//! cargo run --release -p adacomm-bench --bin fig12_vgg_8workers [--full]
//! ```
//!
//! Paper's reported shape: 2.9× speedup over fully synchronous SGD in the
//! variable-lr panel (6.0 vs 17.5 minutes to 1e-2 loss).

use adacomm_bench::scenarios::{scenario, ModelFamily};
use adacomm_bench::{report_panel, run_standard_panel, save_panel_csv, LrMode, Scale};

fn main() -> std::io::Result<()> {
    let scale = Scale::from_env_and_args();
    println!("Figure 12 (scale: {scale}) — 8 workers\n");

    for (tag, panel, classes, lr_mode) in [
        (
            "a",
            "12a: variable lr, CIFAR10-like",
            10usize,
            LrMode::Variable,
        ),
        ("b", "12b: fixed lr, CIFAR100-like", 100, LrMode::Fixed),
    ] {
        let sc = scenario(ModelFamily::VggLike, classes, 8, scale);
        let traces = run_standard_panel(&sc, lr_mode, false);
        println!(
            "{}",
            report_panel(&format!("{panel} — {}", sc.name), &traces)
        );
        save_panel_csv(&format!("fig12{tag}"), &traces)?;
    }
    Ok(())
}
