//! Standalone entry point for the `fig11_block_momentum` reproduction target; the figure
//! body lives in `adacomm_bench::figures` so `reproduce_all` can execute
//! it in-process (and in parallel with the other figures).
//!
//! ```sh
//! cargo run --release -p adacomm-bench --bin fig11_block_momentum [--full|--smoke]
//! ```

fn main() -> std::io::Result<()> {
    adacomm_bench::figures::run_standalone("fig11_block_momentum")
}
