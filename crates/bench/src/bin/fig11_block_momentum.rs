//! Figure 11: AdaComm with block momentum (Section 5.3), 4 workers,
//! variable learning rate. Panels: (a) ResNet-50-like CIFAR10-like,
//! (b) VGG-16-like CIFAR10-like, (c) ResNet-50-like CIFAR100-like.
//!
//! ```sh
//! cargo run --release -p adacomm-bench --bin fig11_block_momentum [--full]
//! ```
//!
//! Paper's reported shape: block-momentum AdaComm has the fastest
//! wall-clock convergence throughout; for VGG-16 it is 3.5× faster than
//! fully synchronous SGD (with plain momentum 0.9) to the target loss.

use adacomm_bench::scenarios::{scenario, ModelFamily};
use adacomm_bench::{report_panel, run_standard_panel, save_panel_csv, LrMode, Scale};

fn main() -> std::io::Result<()> {
    let scale = Scale::from_env_and_args();
    println!("Figure 11 (scale: {scale}) — block momentum runs\n");

    for (tag, panel, family, classes) in [
        (
            "a",
            "11a: ResNet-like, CIFAR10-like",
            ModelFamily::ResnetLike,
            10usize,
        ),
        ("b", "11b: VGG-like, CIFAR10-like", ModelFamily::VggLike, 10),
        (
            "c",
            "11c: ResNet-like, CIFAR100-like",
            ModelFamily::ResnetLike,
            100,
        ),
    ] {
        let sc = scenario(family, classes, 4, scale);
        // `true`: tau=1 gets plain momentum 0.9, PASGD methods get block
        // momentum (beta_glob 0.3, local 0.9 reset at sync).
        let traces = run_standard_panel(&sc, LrMode::Variable, true);
        println!(
            "{}",
            report_panel(&format!("{panel} — {}", sc.name), &traces)
        );
        save_panel_csv(&format!("fig11{tag}"), &traces)?;

        let ada = traces.last().expect("adacomm trace");
        println!("adacomm comm-period trace:");
        for (t, tau) in ada.tau_trace().iter().step_by(4) {
            println!("  t = {t:>7.1} s  tau = {tau}");
        }
        println!();
    }
    Ok(())
}
