//! Figure 1 (conceptual): error convergence with respect to the number of
//! iterations vs with respect to wall-clock time, for small/large/adaptive
//! communication periods.
//!
//! ```sh
//! cargo run --release -p adacomm-bench --bin fig01_concept
//! ```
//!
//! Plotted per iteration, small τ always looks best; re-plotting the same
//! runs against the simulated clock flips the ordering early on — the
//! observation the whole paper builds on.

use adacomm::{AdaComm, FixedComm, LrSchedule};
use adacomm_bench::{ascii_series, save_panel_csv};
use data::GaussianMixture;
use delay::{CommModel, DelayDistribution, RuntimeModel};
use pasgd_sim::{ClusterConfig, ExperimentConfig, ExperimentSuite, MomentumMode, RunTrace};

fn main() -> std::io::Result<()> {
    let workers = 4;
    // alpha = 4: communication-bound, where the x-axis change matters most.
    let runtime = RuntimeModel::new(
        DelayDistribution::constant(0.05),
        CommModel::constant(0.2),
        workers,
    );
    let split = GaussianMixture {
        num_classes: 5,
        dim: 64,
        train_size: 2048,
        test_size: 512,
        separation: 2.5,
        noise_std: 1.3,
        warp: true,
        label_noise: 0.05,
    }
    .generate(21);

    let suite = ExperimentSuite::new(
        nn::models::mlp_classifier(64, &[32], 5, 3),
        split,
        runtime,
        ClusterConfig {
            workers,
            batch_size: 16,
            lr: 0.1,
            weight_decay: 0.0,
            momentum: MomentumMode::None,
            averaging: pasgd_sim::AveragingStrategy::FullAverage,
            codec: gradcomp::CodecSpec::Identity,
            seed: 17,
            eval_subset: 512,
        },
        ExperimentConfig {
            interval_secs: 20.0,
            total_secs: 240.0,
            record_every_secs: 8.0,
            gate_lr_on_tau: false,
        },
    );
    let lr = LrSchedule::constant(0.1);

    println!("Figure 1: the same three runs on two x-axes\n");
    let traces: Vec<RunTrace> = vec![
        suite.run(&mut FixedComm::new(1), &lr),
        suite.run(&mut FixedComm::new(16), &lr),
        suite.run(&mut AdaComm::with_tau0(16), &lr),
    ];

    let by_iters: Vec<(String, Vec<(f64, f64)>)> = traces
        .iter()
        .map(|t| {
            (
                t.name.clone(),
                t.points
                    .iter()
                    .map(|p| (p.iterations as f64, f64::from(p.train_loss)))
                    .collect(),
            )
        })
        .collect();
    println!("loss vs NUMBER OF ITERATIONS (small tau should lead):");
    println!("{}", ascii_series(&by_iters, 70, 14));

    let by_time: Vec<(String, Vec<(f64, f64)>)> = traces
        .iter()
        .map(|t| {
            (
                t.name.clone(),
                t.points
                    .iter()
                    .map(|p| (p.clock, f64::from(p.train_loss)))
                    .collect(),
            )
        })
        .collect();
    println!("loss vs WALL-CLOCK TIME (large tau leads early; adaptive wins):");
    println!("{}", ascii_series(&by_time, 70, 14));

    save_panel_csv("fig01_concept", &traces)?;

    // Shape assertion: per-iteration, sync is at least as good as tau=16 at
    // a matched iteration count; per-time, tau=16 is ahead early.
    let loss_at_iter = |t: &RunTrace, k: u64| {
        t.points
            .iter()
            .filter(|p| p.iterations <= k)
            .map(|p| p.train_loss)
            .fold(f32::INFINITY, f32::min)
    };
    let k = traces[0].points.last().unwrap().iterations.min(400);
    let sync_at_k = loss_at_iter(&traces[0], k);
    let tau16_at_k = loss_at_iter(&traces[1], k);
    println!("at {k} iterations: sync {sync_at_k:.4} vs tau=16 {tau16_at_k:.4}");
    let early_t = 60.0;
    let loss_at_time = |t: &RunTrace, tt: f64| {
        t.points
            .iter()
            .filter(|p| p.clock <= tt)
            .map(|p| p.train_loss)
            .fold(f32::INFINITY, f32::min)
    };
    let sync_early = loss_at_time(&traces[0], early_t);
    let tau16_early = loss_at_time(&traces[1], early_t);
    println!("at t = {early_t} s: sync {sync_early:.4} vs tau=16 {tau16_early:.4}");
    assert!(
        tau16_early < sync_early,
        "wall-clock view must favour large tau early"
    );
    Ok(())
}
