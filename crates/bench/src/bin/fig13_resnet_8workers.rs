//! Figure 13 (appendix): ResNet-50-like with 8 workers. Panels:
//! (a) variable lr on CIFAR10-like (fixed τ baselines 1/10/100),
//! (b) fixed lr on CIFAR100-like.
//!
//! ```sh
//! cargo run --release -p adacomm-bench --bin fig13_resnet_8workers [--full]
//! ```
//!
//! Paper's reported shape: 1.6× speedup over fully synchronous SGD in the
//! variable-lr panel (11.15 vs 18.25 minutes to 1e-1 loss).

use adacomm::{FixedComm, LrSchedule};
use adacomm_bench::scenarios::{scenario, ModelFamily};
use adacomm_bench::{report_panel, save_panel_csv, LrMode, Scale};
use pasgd_sim::RunTrace;

fn main() -> std::io::Result<()> {
    let scale = Scale::from_env_and_args();
    println!("Figure 13 (scale: {scale}) — 8 workers\n");

    for (tag, panel, classes, lr_mode) in [
        (
            "a",
            "13a: variable lr, CIFAR10-like",
            10usize,
            LrMode::Variable,
        ),
        ("b", "13b: fixed lr, CIFAR100-like", 100, LrMode::Fixed),
    ] {
        let sc = scenario(ModelFamily::ResnetLike, classes, 8, scale);
        // The 8-worker ResNet figure uses tau = 10 instead of 5.
        let lr_schedule: LrSchedule = match lr_mode {
            LrMode::Fixed => sc.fixed_lr.clone(),
            LrMode::Variable => sc.variable_lr.clone(),
        };
        let mut traces: Vec<RunTrace> = Vec::new();
        for tau in [1usize, 10, 100] {
            traces.push(sc.suite.run(&mut FixedComm::new(tau), &lr_schedule));
        }
        let mut ada = adacomm::AdaComm::new(adacomm::AdaCommConfig {
            tau0: sc.tau0,
            lr_coupling: if lr_mode == LrMode::Variable {
                adacomm::LrCoupling::Sqrt
            } else {
                adacomm::LrCoupling::None
            },
            ..adacomm::AdaCommConfig::default()
        });
        traces.push(sc.suite.run(&mut ada, &lr_schedule));

        println!(
            "{}",
            report_panel(&format!("{panel} — {}", sc.name), &traces)
        );
        save_panel_csv(&format!("fig13{tag}"), &traces)?;
    }
    Ok(())
}
