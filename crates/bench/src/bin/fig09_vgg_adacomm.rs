//! Standalone entry point for the `fig09_vgg_adacomm` reproduction target; the figure
//! body lives in `adacomm_bench::figures` so `reproduce_all` can execute
//! it in-process (and in parallel with the other figures).
//!
//! ```sh
//! cargo run --release -p adacomm-bench --bin fig09_vgg_adacomm [--full|--smoke]
//! ```

fn main() -> std::io::Result<()> {
    adacomm_bench::figures::run_standalone("fig09_vgg_adacomm")
}
