//! Figure 9: AdaComm on the VGG-16-like (communication-bound) setting,
//! 4 workers. Three panels: (a) variable lr on CIFAR10-like, (b) fixed lr
//! on CIFAR10-like, (c) fixed lr on CIFAR100-like.
//!
//! ```sh
//! cargo run --release -p adacomm-bench --bin fig09_vgg_adacomm [--full]
//! ```
//!
//! Paper's reported shape: τ = 100 drops fastest initially but floors
//! high; AdaComm reaches sync-SGD's final loss ~2–3.3× faster; the
//! communication-period trace decreases over time.

use adacomm_bench::scenarios::{scenario, ModelFamily};
use adacomm_bench::{report_panel, run_standard_panel, save_panel_csv, LrMode, Scale};

fn main() -> std::io::Result<()> {
    let scale = Scale::from_env_and_args();
    println!("Figure 9 (scale: {scale})\n");

    for (tag, panel, classes, lr_mode) in [
        (
            "a",
            "9a: variable lr, CIFAR10-like",
            10usize,
            LrMode::Variable,
        ),
        ("b", "9b: fixed lr, CIFAR10-like", 10, LrMode::Fixed),
        ("c", "9c: fixed lr, CIFAR100-like", 100, LrMode::Fixed),
    ] {
        let sc = scenario(ModelFamily::VggLike, classes, 4, scale);
        let traces = run_standard_panel(&sc, lr_mode, false);
        println!(
            "{}",
            report_panel(&format!("{panel} — {}", sc.name), &traces)
        );
        save_panel_csv(&format!("fig09{tag}"), &traces)?;

        // AdaComm's tau trace, printed like the figure's lower strip.
        let ada = traces.last().expect("adacomm trace");
        println!("adacomm comm-period trace:");
        for (t, tau) in ada.tau_trace().iter().step_by(4) {
            println!("  t = {t:>7.1} s  tau = {tau}");
        }
        println!();
    }
    Ok(())
}
