//! `load_suite` — the sweep service's load and robustness harness.
//!
//! ```sh
//! cargo run --release -p adacomm-bench --bin load_suite -- \
//!     [--smoke] [--out PATH] [--trace DIR]
//! ```
//!
//! Spawns a real `sweepd` child (the sibling binary, `--smoke` scale, a
//! deliberately small queue) and drives thousands of concurrent mixed
//! requests through every failure mode the service promises to survive,
//! asserting each one:
//!
//! 1. **warm + latency** — ping round-trips and memoized run requests
//!    measure baseline latency/throughput.
//! 2. **duplicate storm** — both workers are first pinned by slow runs,
//!    then 100 identical requests arrive on 100 connections; all of them
//!    join one queued flight, so the engine computes the spec **exactly
//!    once** (`unique_runs` delta of 1, ≥ 99 dedup hits) and every
//!    client receives the identical result.
//! 3. **shed burst** — with the workers still pinned, a pipelined burst
//!    of distinct requests overflows the bounded queue; the overflow is
//!    answered `overloaded` (counted, never queued), the rest complete.
//! 4. **panic isolation** — a forced-panic request (`panic: true`)
//!    degrades exactly one response to a `panic` error; the daemon still
//!    answers pings.
//! 5. **malformed input** — a corpus of garbage lines (invalid JSON,
//!    wrong field types, truncated objects, a line over the 1 MiB cap)
//!    plus a request delivered in two partial writes: every complete
//!    line gets a structured reply, framing never desyncs, and the split
//!    request still parses.
//! 6. **deadline → park → resume** — a run with a short deadline is
//!    cooperatively cancelled (`deadline` error, progress parked in the
//!    store); re-requesting the same spec without a deadline finishes
//!    from the checkpoint with `source: "resumed"`.
//! 7. **mid-burst SIGTERM** — while a mixed burst is in flight, the
//!    daemon receives SIGTERM; it drains (every waiter gets `ok` or
//!    `draining`, nothing hangs) and **exits 0**.
//! 8. **crash drill (SIGKILL-equivalent)** — a fresh daemon is armed
//!    with the `server.journal.post_append_abort` failpoint, so it dies
//!    abruptly at the exact instant a request has been journaled but not
//!    executed. The restarted daemon — on the same socket, reclaiming
//!    the stale socket file and the dead process's store lock — replays
//!    the journal, completes the lost run, garbage-collects orphan temp
//!    files, and serves a re-request of the same spec from the store
//!    (never recomputing it as if the accept had been lost).
//! 9. **seeded failpoint sweep** — ≥ 20 distinct store-layer failpoint
//!    activations (I/O errors, CRC flips, torn writes, orphaned temps,
//!    failed renames, unreadable loads) against a scratch store: every
//!    damaged frame loads as a structured reject and zero corrupted
//!    traces are ever served.
//!
//! Results (latency/throughput, the final service counters, and the
//! crash-drill/failpoint-sweep outcomes) are written to `BENCH_10.json`
//! at the repository root (`--out` overrides). `--trace DIR` is
//! forwarded to the daemon, which writes `DIR/sweepd.jsonl` during the
//! SIGTERM drain — `obs_report --check` then validates the service
//! window and surfaces the `server.*` counters this suite made nonzero.

use adacomm_bench::server::protocol::{
    self, Command, ErrorKind, Request, Response, ResponseBody, RunRequest, StatsBody,
};
use adacomm_bench::sweep::{LrSpec, ScenarioSpec, SchedulerSpec, SweepEngine, SweepSpec};
use adacomm_bench::{failpoint, LoadOutcome, RunStore};
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command as ProcessCommand, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

extern "C" {
    fn kill(pid: i32, sig: i32) -> i32;
}

const SIGTERM: i32 = 15;

/// Which `BENCH_<n>.json` this binary emits.
const BENCH_ID: u32 = 10;

fn repo_root() -> PathBuf {
    match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(dir) => Path::new(&dir).join("../.."),
        Err(_) => PathBuf::from("."),
    }
}

fn fail(message: &str) -> ! {
    eprintln!("load_suite: FAILED: {message}");
    std::process::exit(1);
}

/// A run request template; phases vary `tau`/`budget` to mint distinct
/// specs (both are part of the content-addressed key) and reuse the same
/// values to mint identical ones.
fn concept_run(tau: u64, budget: (f64, f64)) -> RunRequest {
    RunRequest {
        scenario: "concept".into(),
        scheduler: "fixed".into(),
        tau,
        budget: Some(budget),
        deadline_ms: None,
        panic: false,
    }
}

/// A distinct *slow* request (~seconds of wall clock at smoke scale):
/// wall time tracks the round count `total_secs / tau`, so slow specs
/// keep `tau = 1` and differ by one simulated second of budget.
fn slow_run(i: u64) -> RunRequest {
    let budget = 6000.0 + i as f64;
    concept_run(1, (budget, budget))
}

fn connect(socket: &Path) -> UnixStream {
    match UnixStream::connect(socket) {
        Ok(stream) => stream,
        Err(e) => fail(&format!("cannot connect to {}: {e}", socket.display())),
    }
}

/// One request / one response on a fresh connection.
fn call(socket: &Path, id: u64, cmd: Command) -> Response {
    let stream = connect(socket);
    send_line(
        &stream,
        &protocol::encode_request(&Request { id: Some(id), cmd }),
    );
    match read_response(&mut BufReader::new(&stream)) {
        Some(response) => response,
        None => fail(&format!("no reply to request {id}")),
    }
}

fn send_line(mut stream: &UnixStream, line: &str) {
    if stream
        .write_all(line.as_bytes())
        .and_then(|()| stream.write_all(b"\n"))
        .and_then(|()| stream.flush())
        .is_err()
    {
        fail("connection lost while sending");
    }
}

fn read_response(reader: &mut BufReader<&UnixStream>) -> Option<Response> {
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(n) if n > 0 => match protocol::parse_response(line.trim()) {
            Ok(response) => Some(response),
            Err(e) => fail(&format!("unparseable response ({e}): {}", line.trim())),
        },
        _ => None,
    }
}

fn stats(socket: &Path) -> StatsBody {
    match call(socket, 0, Command::Stats).body {
        ResponseBody::Stats(stats) => stats,
        other => fail(&format!("stats answered {other:?}")),
    }
}

fn expect_error(response: &Response, kind: ErrorKind, phase: &str) {
    match &response.body {
        ResponseBody::Error { kind: got, .. } if *got == kind => {}
        other => fail(&format!(
            "{phase}: expected a {} error, got {other:?}",
            kind.as_str()
        )),
    }
}

/// Sorted ascending; index for percentile `p` in [0, 1].
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

struct Daemon {
    child: Child,
    socket: PathBuf,
}

impl Daemon {
    fn spawn(socket: &Path, queue_limit: usize, trace_dir: Option<&Path>) -> Daemon {
        Daemon::spawn_with(socket, queue_limit, trace_dir, &[])
    }

    /// Like [`Daemon::spawn`], with extra environment variables — the
    /// crash drill arms failpoints in the child only.
    fn spawn_with(
        socket: &Path,
        queue_limit: usize,
        trace_dir: Option<&Path>,
        envs: &[(&str, &str)],
    ) -> Daemon {
        let exe = std::env::current_exe()
            .ok()
            .and_then(|p| p.parent().map(|d| d.join("sweepd")))
            .filter(|p| p.exists())
            .unwrap_or_else(|| fail("cannot locate the sibling sweepd binary"));
        let mut cmd = ProcessCommand::new(exe);
        cmd.arg("--socket")
            .arg(socket)
            .arg("--workers")
            .arg("2")
            .arg("--queue-limit")
            .arg(queue_limit.to_string())
            .arg("--smoke")
            .stdout(Stdio::inherit())
            .stderr(Stdio::inherit());
        for (key, value) in envs {
            cmd.env(key, value);
        }
        if let Some(dir) = trace_dir {
            cmd.arg("--trace").arg(dir);
        }
        let child = match cmd.spawn() {
            Ok(child) => child,
            Err(e) => fail(&format!("cannot spawn sweepd: {e}")),
        };
        let daemon = Daemon {
            child,
            socket: socket.to_path_buf(),
        };
        // The daemon builds its engine before binding; poll until the
        // socket accepts.
        let deadline = Instant::now() + Duration::from_secs(30);
        while UnixStream::connect(&daemon.socket).is_err() {
            if Instant::now() > deadline {
                fail("sweepd did not bind its socket within 30 s");
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        daemon
    }

    fn pid(&self) -> i32 {
        self.child.id() as i32
    }

    /// Waits for exit with a hang guard; returns the exit code.
    fn wait_with_deadline(mut self, limit: Duration) -> i32 {
        let deadline = Instant::now() + limit;
        loop {
            match self.child.try_wait() {
                Ok(Some(status)) => return status.code().unwrap_or(-1),
                Ok(None) if Instant::now() > deadline => {
                    let _ = self.child.kill();
                    fail("sweepd failed to drain within the deadline (killed)");
                }
                Ok(None) => std::thread::sleep(Duration::from_millis(25)),
                Err(e) => fail(&format!("waiting for sweepd: {e}")),
            }
        }
    }

    /// Waits for a daemon expected to die abruptly (crash drill):
    /// returns true once it is gone, without judging the exit status.
    fn wait_for_death(mut self, limit: Duration) -> bool {
        let deadline = Instant::now() + limit;
        loop {
            match self.child.try_wait() {
                Ok(Some(_)) => return true,
                Ok(None) if Instant::now() > deadline => {
                    let _ = self.child.kill();
                    return false;
                }
                Ok(None) => std::thread::sleep(Duration::from_millis(25)),
                Err(_) => return true,
            }
        }
    }
}

/// Sends `count` identical requests concurrently, each on its own
/// connection, pre-connected and released by a barrier. Returns the
/// responses (completion order).
fn concurrent_identical(socket: &Path, count: usize, run: &RunRequest) -> Vec<Response> {
    let barrier = Arc::new(Barrier::new(count));
    let line = Arc::new(protocol::encode_request(&Request {
        id: Some(7),
        cmd: Command::Run(run.clone()),
    }));
    let handles: Vec<_> = (0..count)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            let line = Arc::clone(&line);
            let socket = socket.to_path_buf();
            std::thread::spawn(move || {
                let stream = connect(&socket);
                barrier.wait();
                send_line(&stream, &line);
                read_response(&mut BufReader::new(&stream))
            })
        })
        .collect();
    handles
        .into_iter()
        .filter_map(|h| h.join().unwrap_or(None))
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag_value = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .filter(|v| !v.starts_with("--"))
            .map(PathBuf::from)
    };
    let out_path =
        flag_value("--out").unwrap_or_else(|| repo_root().join(format!("BENCH_{BENCH_ID}.json")));
    let trace_dir = flag_value("--trace");
    // The daemon always runs at --smoke scale; load_suite's own --smoke
    // only shrinks the measurement loops.
    let pings = if smoke { 200 } else { 2000 };
    let cached_runs = if smoke { 100 } else { 1000 };

    // A clean store so memoization can't leak across suite invocations
    // (the duplicate storm asserts a cold compute happens exactly once).
    adacomm_bench::report::set_results_subdir("smoke");
    let store_dir = adacomm_bench::RunStore::default_dir();
    let _ = std::fs::remove_dir_all(&store_dir);

    let socket =
        std::env::temp_dir().join(format!("adacomm-load-suite-{}.sock", std::process::id()));
    let daemon = Daemon::spawn(&socket, 8, trace_dir.as_deref());
    println!(
        "load_suite ({} mode) — daemon pid {} on {}",
        if smoke { "smoke" } else { "full" },
        daemon.pid(),
        socket.display()
    );

    // Fast requests (milliseconds of wall clock) share one small budget;
    // slow requests that pin a worker for seconds come from `slow_run`.
    let fast = (6.0, 6.0);

    // --- Phase 1: warm + latency -------------------------------------
    let phase_started = Instant::now();
    let warm = call(&socket, 1, Command::Run(concept_run(1, fast)));
    let ResponseBody::Run(warm_stats) = &warm.body else {
        fail(&format!("warm run answered {:?}", warm.body));
    };
    if warm_stats.source != "computed" {
        fail(&format!(
            "warm run on a wiped store must be computed, was {}",
            warm_stats.source
        ));
    }
    let mut ping_us: Vec<f64> = Vec::with_capacity(pings);
    {
        let stream = connect(&socket);
        let mut reader = BufReader::new(&stream);
        for i in 0..pings {
            let at = Instant::now();
            send_line(
                &stream,
                &protocol::encode_request(&Request {
                    id: Some(i as u64),
                    cmd: Command::Ping,
                }),
            );
            if read_response(&mut reader).is_none() {
                fail("ping went unanswered");
            }
            ping_us.push(at.elapsed().as_secs_f64() * 1e6);
        }
    }
    ping_us.sort_by(f64::total_cmp);
    let cached_started = Instant::now();
    let mut cached_ms: Vec<f64> = Vec::with_capacity(cached_runs);
    {
        let stream = connect(&socket);
        let mut reader = BufReader::new(&stream);
        let line = protocol::encode_request(&Request {
            id: Some(2),
            cmd: Command::Run(concept_run(1, fast)),
        });
        for _ in 0..cached_runs {
            let at = Instant::now();
            send_line(&stream, &line);
            match read_response(&mut reader) {
                Some(Response {
                    body: ResponseBody::Run(r),
                    ..
                }) if r.source == "memory" => {}
                other => fail(&format!("cached run answered {other:?}")),
            }
            cached_ms.push(at.elapsed().as_secs_f64() * 1e3);
        }
    }
    let cached_wall = cached_started.elapsed().as_secs_f64();
    cached_ms.sort_by(f64::total_cmp);
    println!(
        "phase 1 warm: {} pings (p50 {:.0} us, p99 {:.0} us), {} memoized runs \
         ({:.0} req/s) in {:.2} s",
        pings,
        percentile(&ping_us, 0.5),
        percentile(&ping_us, 0.99),
        cached_runs,
        cached_runs as f64 / cached_wall.max(1e-9),
        phase_started.elapsed().as_secs_f64()
    );

    // --- Phase 2: duplicate storm ------------------------------------
    // Pin both workers with slow distinct runs so the storm's single
    // flight stays *queued* while all 100 requests arrive — every
    // follower joins the flight deterministically.
    let phase_started = Instant::now();
    let before = stats(&socket);
    let pin_a = std::thread::spawn({
        let socket = socket.clone();
        move || call(&socket, 3, Command::Run(slow_run(1)))
    });
    let pin_b = std::thread::spawn({
        let socket = socket.clone();
        move || call(&socket, 4, Command::Run(slow_run(2)))
    });
    // Wait until both pins occupy the workers (queue empty, two flights
    // in execution = stats show queue_depth 0 after two enqueues).
    std::thread::sleep(Duration::from_millis(300));
    let storm = concurrent_identical(&socket, 100, &slow_run(3));
    if storm.len() != 100 {
        fail(&format!(
            "storm: expected 100 responses, got {}",
            storm.len()
        ));
    }
    let mut storm_losses = Vec::new();
    for response in &storm {
        match &response.body {
            ResponseBody::Run(r) => storm_losses.push(r.final_loss),
            other => fail(&format!("storm response was {other:?}")),
        }
    }
    if storm_losses.windows(2).any(|w| w[0] != w[1]) {
        fail("storm responses disagree on final loss");
    }
    for pin in [pin_a, pin_b] {
        match pin.join() {
            Ok(Response {
                body: ResponseBody::Run(_),
                ..
            }) => {}
            other => fail(&format!("worker-pinning run failed: {other:?}")),
        }
    }
    let after = stats(&socket);
    let storm_unique = after.unique_runs - before.unique_runs;
    let storm_dedup = after.dedup_hits - before.dedup_hits;
    // 3 distinct specs entered this phase (2 pins + the storm spec): the
    // 100-request storm itself computed exactly once.
    if storm_unique != 3 {
        fail(&format!(
            "duplicate storm: expected 3 unique runs (2 pins + 1 storm), engine computed {storm_unique}"
        ));
    }
    if storm_dedup < 99 {
        fail(&format!(
            "duplicate storm: expected >= 99 dedup hits, got {storm_dedup}"
        ));
    }
    println!(
        "phase 2 storm: 100 identical requests -> 1 computation ({storm_dedup} dedup hits) \
         in {:.2} s",
        phase_started.elapsed().as_secs_f64()
    );

    // --- Phase 3: shed burst -----------------------------------------
    let phase_started = Instant::now();
    let before = stats(&socket);
    let pin_a = std::thread::spawn({
        let socket = socket.clone();
        move || call(&socket, 5, Command::Run(slow_run(4)))
    });
    let pin_b = std::thread::spawn({
        let socket = socket.clone();
        move || call(&socket, 6, Command::Run(slow_run(5)))
    });
    std::thread::sleep(Duration::from_millis(300));
    // 24 distinct fast runs pipelined on one connection against a queue
    // of 8 with both workers pinned: at least 16 must shed.
    let burst_sent = 24u64;
    let (burst_ok, burst_shed) = {
        let stream = connect(&socket);
        let mut block = String::new();
        for i in 0..burst_sent {
            let _ = writeln!(
                block,
                "{}",
                protocol::encode_request(&Request {
                    id: Some(100 + i),
                    cmd: Command::Run(concept_run(30 + i, fast)),
                })
            );
        }
        send_line(&stream, block.trim_end());
        let mut reader = BufReader::new(&stream);
        let mut ok = 0u64;
        let mut shed = 0u64;
        for _ in 0..burst_sent {
            match read_response(&mut reader) {
                Some(Response {
                    body: ResponseBody::Run(_),
                    ..
                }) => ok += 1,
                Some(Response {
                    body:
                        ResponseBody::Error {
                            kind: ErrorKind::Overloaded,
                            ..
                        },
                    ..
                }) => shed += 1,
                other => fail(&format!("burst response was {other:?}")),
            }
        }
        (ok, shed)
    };
    for pin in [pin_a, pin_b] {
        let _ = pin.join();
    }
    let after = stats(&socket);
    if burst_shed == 0 || after.shed <= before.shed {
        fail("shed burst: the bounded queue never shed a request");
    }
    if burst_ok + burst_shed != burst_sent {
        fail("shed burst: responses do not add up");
    }
    println!(
        "phase 3 shed: {burst_sent} distinct requests against queue limit 8 -> \
         {burst_ok} served, {burst_shed} shed in {:.2} s",
        phase_started.elapsed().as_secs_f64()
    );

    // --- Phase 4: panic isolation ------------------------------------
    let drill = call(
        &socket,
        8,
        Command::Run(RunRequest {
            panic: true,
            ..concept_run(1, fast)
        }),
    );
    expect_error(&drill, ErrorKind::Panic, "panic drill");
    match call(&socket, 9, Command::Ping).body {
        ResponseBody::Pong => {}
        other => fail(&format!("daemon unresponsive after panic drill: {other:?}")),
    }
    let after = stats(&socket);
    if after.request_panics == 0 {
        fail("panic drill did not increment request_panics");
    }
    println!("phase 4 panic: forced panic degraded one response; daemon still answers");

    // --- Phase 5: malformed input ------------------------------------
    let corpus: &[&str] = &[
        "not json at all",
        "42",
        "[1,2,3]",
        "{\"id\":1}",
        "{\"id\":-3,\"cmd\":\"ping\"}",
        "{\"id\":2,\"cmd\":\"nope\"}",
        "{\"id\":3,\"cmd\":\"run\",\"scenario\":42}",
        "{\"id\":4,\"cmd\":\"run\",\"scenario\":\"concept\",\"tau\":0}",
        "{\"id\":5,\"cmd\":\"run\",\"scenario\":\"concept\",\"total_secs\":1}",
        "{\"id\":6,\"cmd\":\"figure\",\"name\":\"no_such_figure\"}",
        "{\"id\":7,\"cmd\":\"run\",\"scenario\":\"concept\",\"deadline_ms\":1.5}",
        "{\"id\":8,\"cmd\":\"ru",
    ];
    {
        let stream = connect(&socket);
        let mut reader = BufReader::new(&stream);
        for line in corpus {
            send_line(&stream, line);
            match read_response(&mut reader) {
                Some(response) => {
                    expect_error(&response, ErrorKind::BadRequest, "malformed corpus")
                }
                None => fail(&format!("malformed line {line:?} went unanswered")),
            }
        }
        // A line over the 1 MiB cap is consumed (framing intact) and
        // rejected without buffering its payload.
        let mut huge = vec![b'x'; (2 << 20) + 17];
        huge.push(b'\n');
        let mut w = &stream;
        if w.write_all(&huge).and_then(|()| w.flush()).is_err() {
            fail("connection lost while sending the oversized line");
        }
        match read_response(&mut reader) {
            Some(response) => expect_error(&response, ErrorKind::BadRequest, "oversized line"),
            None => fail("oversized line went unanswered"),
        }
        // The same connection still serves real requests afterwards.
        send_line(
            &stream,
            &protocol::encode_request(&Request {
                id: Some(10),
                cmd: Command::Ping,
            }),
        );
        match read_response(&mut reader) {
            Some(Response {
                body: ResponseBody::Pong,
                ..
            }) => {}
            other => fail(&format!("connection desynced after garbage: {other:?}")),
        }
    }
    // Interleaved partial writes: a request split mid-token across two
    // writes (with a pause between) must still parse once its newline
    // arrives.
    {
        let stream = connect(&socket);
        let mut reader = BufReader::new(&stream);
        let line = protocol::encode_request(&Request {
            id: Some(11),
            cmd: Command::Ping,
        });
        let (head, tail) = line.split_at(line.len() / 2);
        let mut w = &stream;
        if w.write_all(head.as_bytes())
            .and_then(|()| w.flush())
            .is_err()
        {
            fail("partial write failed");
        }
        std::thread::sleep(Duration::from_millis(120));
        if w.write_all(tail.as_bytes())
            .and_then(|()| w.write_all(b"\n"))
            .and_then(|()| w.flush())
            .is_err()
        {
            fail("partial write failed");
        }
        match read_response(&mut reader) {
            Some(Response {
                body: ResponseBody::Pong,
                ..
            }) => {}
            other => fail(&format!("split request mis-parsed: {other:?}")),
        }
    }
    println!(
        "phase 5 malformed: {} garbage lines + oversize + split writes all answered structurally",
        corpus.len()
    );

    // --- Phase 6: deadline -> park -> resume --------------------------
    let phase_started = Instant::now();
    let before = stats(&socket);
    let mut missed = call(
        &socket,
        12,
        Command::Run(RunRequest {
            deadline_ms: Some(150),
            ..slow_run(6)
        }),
    );
    // The spec is fresh, so the engine must compute — and the 150 ms
    // deadline fires mid-run, parking the partial progress.
    expect_error(&missed, ErrorKind::Deadline, "deadline run");
    if let ResponseBody::Error { message, .. } = &missed.body {
        if !message.contains("parked") {
            fail(&format!(
                "deadline error does not mention parking: {message}"
            ));
        }
    }
    missed = call(&socket, 13, Command::Run(slow_run(6)));
    match &missed.body {
        ResponseBody::Run(r) if r.source == "resumed" => {}
        other => fail(&format!(
            "re-request after a deadline park must resume, got {other:?}"
        )),
    }
    let after = stats(&socket);
    if after.deadline_misses <= before.deadline_misses {
        fail("deadline phase did not increment deadline_misses");
    }
    println!(
        "phase 6 deadline: 150 ms deadline parked the run; re-request resumed from \
         the checkpoint in {:.2} s",
        phase_started.elapsed().as_secs_f64()
    );

    // --- Phase 7: mid-burst SIGTERM drain ----------------------------
    let final_stats = stats(&socket);
    let answered = Arc::new(AtomicU64::new(0));
    let hung = Arc::new(AtomicU64::new(0));
    let burst: Vec<_> = (0..16)
        .map(|i| {
            let socket = socket.clone();
            let answered = Arc::clone(&answered);
            let hung = Arc::clone(&hung);
            std::thread::spawn(move || {
                let stream = connect(&socket);
                send_line(
                    &stream,
                    &protocol::encode_request(&Request {
                        id: Some(200 + i),
                        cmd: Command::Run(slow_run(10 + i)),
                    }),
                );
                // Every fate is legal mid-drain (ok, draining, shed,
                // even EOF once conns shut down) except hanging; the
                // 60 s guard below converts a hang into a suite failure.
                match read_response(&mut BufReader::new(&stream)) {
                    Some(_) => answered.fetch_add(1, Ordering::SeqCst),
                    None => hung.fetch_add(1, Ordering::SeqCst),
                };
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(300));
    let pid = daemon.pid();
    // SAFETY: plain kill(2) on the child we spawned.
    if unsafe { kill(pid, SIGTERM) } != 0 {
        fail("kill(SIGTERM) failed");
    }
    let exit_code = daemon.wait_with_deadline(Duration::from_secs(60));
    if exit_code != 0 {
        fail(&format!("sweepd exited {exit_code} after SIGTERM (want 0)"));
    }
    for handle in burst {
        let _ = handle.join();
    }
    println!(
        "phase 7 drain: SIGTERM mid-burst -> exit 0; {} of 16 burst requests answered, \
         {} saw EOF after drain",
        answered.load(Ordering::SeqCst),
        hung.load(Ordering::SeqCst)
    );

    // --- Phase 8: crash drill (journaled accept survives a kill) ------
    let phase_started = Instant::now();
    // Arm the child-only failpoint: the daemon dies abruptly (abort ==
    // SIGKILL as far as disk state is concerned — no drain, no Drop) at
    // the exact moment a request is journaled but not yet executed.
    let crash_daemon = Daemon::spawn_with(
        &socket,
        8,
        None,
        &[("ADACOMM_FAILPOINTS", "server.journal.post_append_abort=1")],
    );
    let drill_spec = concept_run(77, fast);
    {
        let stream = connect(&socket);
        send_line(
            &stream,
            &protocol::encode_request(&Request {
                id: Some(300),
                cmd: Command::Run(drill_spec.clone()),
            }),
        );
        // The daemon dies mid-request: EOF, never a reply.
        if read_response(&mut BufReader::new(&stream)).is_some() {
            fail("crash drill: the armed daemon must die before answering");
        }
    }
    if !crash_daemon.wait_for_death(Duration::from_secs(30)) {
        fail("crash drill: armed daemon did not die");
    }
    // Plant an orphaned temp file: exactly the debris a torn save leaves.
    let orphan = store_dir.join("junk.tmp.999");
    if std::fs::create_dir_all(&store_dir)
        .and_then(|()| std::fs::write(&orphan, b"debris"))
        .is_err()
    {
        fail("crash drill: cannot plant the orphan temp file");
    }
    // Restart on the SAME socket: the stale socket file and the dead
    // daemon's store lock must both be reclaimed, the journal replayed,
    // and the orphan GC'd — all before the socket accepts again.
    let daemon = Daemon::spawn(&socket, 8, None);
    let recovered = stats(&socket);
    if recovered.journal_replays < 1 || recovered.recovered_runs < 1 {
        fail(&format!(
            "crash drill: restart must replay the journal (journal_replays {}, \
             recovered_runs {})",
            recovered.journal_replays, recovered.recovered_runs
        ));
    }
    if recovered.gc_orphans < 1 {
        fail(&format!(
            "crash drill: startup GC must reclaim the planted orphan (gc_orphans {})",
            recovered.gc_orphans
        ));
    }
    // The killed request was never answered — but its work was not lost:
    // a re-request is served from the store, not recomputed.
    let rerequest = call(&socket, 301, Command::Run(drill_spec));
    match &rerequest.body {
        ResponseBody::Run(r) if r.source != "computed" => {}
        other => fail(&format!(
            "crash drill: re-request must hit recovered state, got {other:?}"
        )),
    }
    let leftover_tmp = std::fs::read_dir(&store_dir)
        .map(|entries| {
            entries
                .flatten()
                .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
                .count()
        })
        .unwrap_or(0);
    if leftover_tmp != 0 {
        fail(&format!(
            "crash drill: {leftover_tmp} orphaned temp files survived recovery"
        ));
    }
    let crash_recovered = (
        recovered.journal_replays,
        recovered.recovered_runs,
        recovered.gc_orphans,
    );
    let drain = call(&socket, 302, Command::Shutdown);
    if !matches!(drain.body, ResponseBody::ShuttingDown) {
        fail("crash drill: shutdown request refused");
    }
    let crash_exit = daemon.wait_with_deadline(Duration::from_secs(60));
    if crash_exit != 0 {
        fail(&format!(
            "crash drill: recovered daemon exited {crash_exit}"
        ));
    }
    println!(
        "phase 8 crash drill: kill-after-journal-append -> restart replayed {} accept(s), \
         recovered {} run(s), GC'd {} orphan(s), re-request served from recovered state \
         in {:.2} s",
        crash_recovered.0,
        crash_recovered.1,
        crash_recovered.2,
        phase_started.elapsed().as_secs_f64()
    );

    // --- Phase 9: seeded store failpoint sweep ------------------------
    let phase_started = Instant::now();
    let sweep_dir = std::env::temp_dir().join(format!(
        "adacomm-load-suite-{}-failpoints",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&sweep_dir);
    let spec = SweepSpec::new(
        ScenarioSpec::Concept,
        SchedulerSpec::Fixed { tau: 2 },
        LrSpec::Fixed,
    )
    .with_budget(20.0, 5.0);
    let reference = SweepEngine::with_parallelism(false)
        .with_store(RunStore::new(sweep_dir.join("golden")))
        .run(std::slice::from_ref(&spec))
        .remove(0);
    let key = spec.key();
    let mut activations = Vec::new();
    for site in [
        "store.save.io_error",
        "store.save.corrupt",
        "store.save.torn",
        "store.save.orphan_tmp",
        "store.save.rename_fail",
    ] {
        for skip in [0u32, 1] {
            for count in [1u32, 2] {
                activations.push((site, skip, count));
            }
        }
    }
    activations.push(("store.load.unreadable", 0, 1));
    activations.push(("store.load.unreadable", 0, 3));
    let (mut sweep_rejects, mut sweep_corrupted) = (0u64, 0u64);
    for (i, (site, skip, count)) in activations.iter().enumerate() {
        let dir = sweep_dir.join(format!("case_{i}"));
        let store = RunStore::new(&dir);
        failpoint::arm_after(site, *skip, *count);
        let _ = store.save(&key, &reference);
        for _ in 0..3 {
            match store.load(&key) {
                LoadOutcome::Hit(trace) => {
                    if trace.final_loss().to_bits() != reference.final_loss().to_bits()
                        || trace.rounds != reference.rounds
                    {
                        sweep_corrupted += 1;
                    }
                }
                LoadOutcome::Absent => {}
                LoadOutcome::Rejected(_) => {
                    sweep_rejects += 1;
                    store.evict(&key);
                }
            }
        }
        failpoint::disarm_all();
    }
    let _ = std::fs::remove_dir_all(&sweep_dir);
    if sweep_corrupted != 0 {
        fail(&format!(
            "failpoint sweep: {sweep_corrupted} corrupted loads slipped through"
        ));
    }
    if sweep_rejects == 0 {
        fail("failpoint sweep: no activation exercised a reject path");
    }
    println!(
        "phase 9 failpoints: {} seeded activations -> {} structured rejects, 0 corrupted \
         loads in {:.2} s",
        activations.len(),
        sweep_rejects,
        phase_started.elapsed().as_secs_f64()
    );

    // --- Report -------------------------------------------------------
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench_id\": {BENCH_ID},");
    let _ = writeln!(json, "  \"generated_by\": \"load_suite\",");
    let _ = writeln!(
        json,
        "  \"mode\": \"{}\",",
        if smoke { "smoke" } else { "full" }
    );
    let _ = writeln!(
        json,
        "  \"ping\": {{\"count\": {pings}, \"p50_us\": {:.1}, \"p99_us\": {:.1}}},",
        percentile(&ping_us, 0.5),
        percentile(&ping_us, 0.99)
    );
    let _ = writeln!(
        json,
        "  \"memoized_run\": {{\"count\": {cached_runs}, \"p50_ms\": {:.3}, \
         \"p99_ms\": {:.3}, \"throughput_rps\": {:.1}}},",
        percentile(&cached_ms, 0.5),
        percentile(&cached_ms, 0.99),
        cached_runs as f64 / cached_wall.max(1e-9)
    );
    let _ = writeln!(
        json,
        "  \"duplicate_storm\": {{\"requests\": 100, \"computations\": 1, \
         \"dedup_hits\": {storm_dedup}}},"
    );
    let _ = writeln!(
        json,
        "  \"shed_burst\": {{\"sent\": {burst_sent}, \"served\": {burst_ok}, \
         \"shed\": {burst_shed}}},"
    );
    let _ = writeln!(
        json,
        "  \"counters\": {{\"requests\": {}, \"shed\": {}, \"dedup_hits\": {}, \
         \"deadline_misses\": {}, \"request_panics\": {}, \"unique_runs\": {}}},",
        final_stats.requests,
        final_stats.shed,
        final_stats.dedup_hits,
        final_stats.deadline_misses,
        final_stats.request_panics,
        final_stats.unique_runs
    );
    let _ = writeln!(
        json,
        "  \"crash_drill\": {{\"journal_replays\": {}, \"recovered_runs\": {}, \
         \"gc_orphans\": {}, \"orphan_tmp_after\": {leftover_tmp}, \
         \"recovered_daemon_exit_code\": {crash_exit}}},",
        crash_recovered.0, crash_recovered.1, crash_recovered.2
    );
    let _ = writeln!(
        json,
        "  \"failpoint_sweep\": {{\"activations\": {}, \"structured_rejects\": {sweep_rejects}, \
         \"corrupted_loads\": {sweep_corrupted}}},",
        activations.len()
    );
    let _ = writeln!(json, "  \"sigterm_drain_exit_code\": {exit_code}");
    let _ = writeln!(json, "}}");
    if let Err(e) = std::fs::write(&out_path, &json) {
        fail(&format!("cannot write {}: {e}", out_path.display()));
    }
    println!(
        "load_suite: all phases passed; report written to {}",
        out_path.display()
    );
}
