//! The sweep service's newline-delimited JSON protocol: typed
//! request/response shapes plus strict, never-panicking encode/parse.
//!
//! Requests (one JSON object per line):
//!
//! ```text
//! {"id":1,"cmd":"ping"}
//! {"id":2,"cmd":"stats"}
//! {"id":3,"cmd":"shutdown"}
//! {"id":4,"cmd":"figure","name":"fig01_concept"}
//! {"id":5,"cmd":"run","scenario":"concept","scheduler":"fixed","tau":4,
//!  "total_secs":40,"record_secs":10,"deadline_ms":500,"panic":false}
//! ```
//!
//! Responses echo the request `id` (`null` when the request was too
//! broken to carry one) and are either `"ok":true` with a `result`, or
//! `"ok":false` with a structured error:
//!
//! ```text
//! {"id":5,"ok":true,"result":"run","source":"computed","rounds":120,
//!  "points":9,"final_loss":0.41,"wall_ms":182.4}
//! {"id":6,"ok":false,"kind":"overloaded","message":"queue full (8 distinct jobs waiting); retry later"}
//! ```
//!
//! Every parse failure is a `Result::Err` with a reason — foreign bytes
//! can never panic this module (property-tested together with a
//! malformed-line corpus in `tests/server_protocol.rs`).

use crate::scenarios::ModelFamily;
use crate::sweep::{LrSpec, ScenarioSpec, SchedulerSpec, SweepSpec};
use crate::Scale;
use std::collections::BTreeMap;
use telemetry::json::{self, ObjectBuilder, Value};

/// One parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client correlation id, echoed in the response.
    pub id: Option<u64>,
    /// What to do.
    pub cmd: Command,
}

/// The request verb plus its arguments.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Liveness probe.
    Ping,
    /// Service counters snapshot.
    Stats,
    /// Ask the daemon to drain and exit.
    Shutdown,
    /// Garbage-collect store debris (orphaned temp files, aged parked
    /// frames) on demand.
    Gc,
    /// Render one registry figure against the shared engine.
    Figure {
        /// Registry name, e.g. `fig01_concept`.
        name: String,
    },
    /// Execute one scenario run.
    Run(RunRequest),
}

/// Arguments of a `run` command.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRequest {
    /// Scenario name: `concept`, `canonical-vgg`, `canonical-resnet`, or
    /// `compression`.
    pub scenario: String,
    /// Scheduler name: `fixed` or `adacomm`.
    pub scheduler: String,
    /// τ (fixed) or τ0 (adacomm). Must be ≥ 1.
    pub tau: u64,
    /// Optional `(total_secs, record_secs)` simulated-budget override —
    /// both present or both absent.
    pub budget: Option<(f64, f64)>,
    /// Per-request deadline in wall-clock milliseconds; an overrunning
    /// run is cancelled at the next round boundary and parked.
    pub deadline_ms: Option<u64>,
    /// Forced-panic drill: the request panics under the supervisor and
    /// degrades only its own response.
    pub panic: bool,
}

impl RunRequest {
    /// Resolves the request into the engine's content-addressed spec at
    /// the server's scale.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field for unknown
    /// scenarios/schedulers or an invalid τ/budget.
    pub fn sweep_spec(&self, scale: Scale) -> Result<SweepSpec, String> {
        let scenario = match self.scenario.as_str() {
            "concept" => ScenarioSpec::Concept,
            "canonical-vgg" => ScenarioSpec::Canonical {
                family: ModelFamily::VggLike,
                classes: 10,
                workers: 4,
                scale,
            },
            "canonical-resnet" => ScenarioSpec::Canonical {
                family: ModelFamily::ResnetLike,
                classes: 10,
                workers: 4,
                scale,
            },
            "compression" => ScenarioSpec::Compression {
                family: ModelFamily::VggLike,
                scale,
            },
            other => {
                return Err(format!(
                    "unknown scenario \"{other}\" (expected concept, canonical-vgg, \
                     canonical-resnet, or compression)"
                ))
            }
        };
        if self.tau == 0 || self.tau > 4096 {
            return Err(format!("\"tau\" must be in 1..=4096, got {}", self.tau));
        }
        let scheduler = match self.scheduler.as_str() {
            "fixed" => SchedulerSpec::Fixed {
                tau: self.tau as usize,
            },
            "adacomm" => SchedulerSpec::adacomm(self.tau as usize),
            other => {
                return Err(format!(
                    "unknown scheduler \"{other}\" (expected fixed or adacomm)"
                ))
            }
        };
        let mut spec = SweepSpec::new(scenario, scheduler, LrSpec::Fixed);
        if let Some((total, record)) = self.budget {
            if !(total.is_finite() && record.is_finite() && total > 0.0 && record > 0.0) {
                return Err("budget durations must be positive and finite".into());
            }
            spec = spec.with_budget(total, record);
        }
        Ok(spec)
    }
}

/// One response line.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The request's id (`None` renders as JSON `null`).
    pub id: Option<u64>,
    /// Success payload or structured error.
    pub body: ResponseBody,
}

impl Response {
    /// A success response.
    pub fn ok(id: Option<u64>, body: ResponseBody) -> Response {
        debug_assert!(!matches!(body, ResponseBody::Error { .. }));
        Response { id, body }
    }

    /// A structured error response.
    pub fn error(id: Option<u64>, kind: ErrorKind, message: &str) -> Response {
        Response {
            id,
            body: ResponseBody::Error {
                kind,
                message: message.to_string(),
            },
        }
    }
}

/// Success payloads and the structured error.
#[derive(Debug, Clone, PartialEq)]
pub enum ResponseBody {
    /// `ping` reply.
    Pong,
    /// `stats` reply.
    Stats(StatsBody),
    /// `shutdown` acknowledgment (the drain follows asynchronously).
    ShuttingDown,
    /// A completed `gc` request: what the sweep reclaimed.
    Gc {
        /// Orphaned temp files (and stale lock scratch) removed.
        tmp_removed: u64,
        /// Parked checkpoint frames past the age limit removed.
        parked_removed: u64,
        /// Parked frames young enough to keep for resumption.
        parked_kept: u64,
    },
    /// A completed `figure` request.
    Figure {
        /// The figure rendered.
        name: String,
        /// Wall-clock milliseconds spent executing it.
        wall_ms: f64,
    },
    /// A completed `run` request.
    Run(RunStats),
    /// Any failure, always structured.
    Error {
        /// Machine-readable failure class.
        kind: ErrorKind,
        /// Human-readable detail.
        message: String,
    },
}

/// Payload of a successful `run` response.
#[derive(Debug, Clone, PartialEq)]
pub struct RunStats {
    /// Where the trace came from: `memory`, `disk`, `computed`, or
    /// `resumed`.
    pub source: String,
    /// Averaging rounds in the run.
    pub rounds: u64,
    /// Trace points recorded.
    pub points: u64,
    /// Final training loss.
    pub final_loss: f64,
    /// Wall-clock milliseconds this request spent executing.
    pub wall_ms: f64,
}

/// Payload of a `stats` response (also `sweepd`'s exit summary).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsBody {
    /// Request lines handled (including malformed ones).
    pub requests: u64,
    /// Requests shed by the bounded queue.
    pub shed: u64,
    /// Requests that joined an in-flight identical computation.
    pub dedup_hits: u64,
    /// Requests answered with a `deadline` error.
    pub deadline_misses: u64,
    /// Requests whose execution panicked (isolated per request).
    pub request_panics: u64,
    /// Distinct runs resident in the engine's memoization cache.
    pub unique_runs: u64,
    /// Distinct jobs currently queued.
    pub queue_depth: u64,
    /// Whether the server is draining.
    pub draining: bool,
    /// Interrupted runs completed by journal recovery at startup.
    pub recovered_runs: u64,
    /// Journal accept records replayed (pending work found) at startup.
    pub journal_replays: u64,
    /// Orphaned files reclaimed by GC (startup sweep plus `gc` requests).
    pub gc_orphans: u64,
}

/// Failure classes a response can carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The request line was malformed or named unknown entities.
    BadRequest,
    /// The bounded queue was full; the request was shed.
    Overloaded,
    /// The per-request deadline fired; partial progress is parked.
    Deadline,
    /// The server is draining; retry against the next instance.
    Draining,
    /// The request's execution panicked (isolated to this response).
    Panic,
    /// The run failed terminally under supervision for another reason.
    Failed,
}

impl ErrorKind {
    /// The stable wire label.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::Deadline => "deadline",
            ErrorKind::Draining => "draining",
            ErrorKind::Panic => "panic",
            ErrorKind::Failed => "failed",
        }
    }

    /// Parses the wire label.
    ///
    /// # Errors
    ///
    /// Returns the unknown label.
    pub fn from_label(label: &str) -> Result<ErrorKind, String> {
        Ok(match label {
            "bad_request" => ErrorKind::BadRequest,
            "overloaded" => ErrorKind::Overloaded,
            "deadline" => ErrorKind::Deadline,
            "draining" => ErrorKind::Draining,
            "panic" => ErrorKind::Panic,
            "failed" => ErrorKind::Failed,
            other => return Err(format!("unknown error kind \"{other}\"")),
        })
    }
}

/// Exclusive upper bound on integer-valued wire fields (`id`, `tau`,
/// `deadline_ms`, ...): integers below it survive the JSON `f64` number
/// representation exactly (it is below 2^53).
pub const MAX_WIRE_INT: u64 = 9_000_000_000_000_000;

/// Extracts an optional non-negative integer field.
fn opt_u64(obj: &BTreeMap<String, Value>, name: &str) -> Result<Option<u64>, String> {
    match obj.get(name) {
        None | Some(Value::Null) => Ok(None),
        Some(v) => match v.as_num() {
            Some(n) if n >= 0.0 && n.fract() == 0.0 && n < MAX_WIRE_INT as f64 => {
                Ok(Some(n as u64))
            }
            _ => Err(format!("\"{name}\" must be a non-negative integer")),
        },
    }
}

/// Extracts an optional finite number field.
fn opt_f64(obj: &BTreeMap<String, Value>, name: &str) -> Result<Option<f64>, String> {
    match obj.get(name) {
        None | Some(Value::Null) => Ok(None),
        Some(v) => match v.as_num() {
            Some(n) if n.is_finite() => Ok(Some(n)),
            _ => Err(format!("\"{name}\" must be a finite number")),
        },
    }
}

/// Extracts an optional boolean field (default `false`).
fn opt_bool(obj: &BTreeMap<String, Value>, name: &str) -> Result<bool, String> {
    match obj.get(name) {
        None | Some(Value::Null) => Ok(false),
        Some(Value::Bool(b)) => Ok(*b),
        Some(_) => Err(format!("\"{name}\" must be a boolean")),
    }
}

/// Extracts a required string field.
fn req_str(obj: &BTreeMap<String, Value>, name: &str) -> Result<String, String> {
    obj.get(name)
        .and_then(|v| v.as_str())
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field \"{name}\""))
}

/// Parses one request line. On failure, returns the request id when one
/// was recoverable (so the error response can still correlate) plus the
/// reason. Never panics on any input.
///
/// # Errors
///
/// Any line that is not a fully valid request object.
pub fn parse_request(line: &str) -> Result<Request, (Option<u64>, String)> {
    let value = json::parse(line).map_err(|e| (None, format!("invalid JSON: {e}")))?;
    let obj = value
        .as_obj()
        .ok_or((None, "request must be a JSON object".to_string()))?;
    let id = opt_u64(obj, "id").map_err(|e| (None, e))?;
    let fail = |msg: String| (id, msg);
    let cmd_name = req_str(obj, "cmd").map_err(fail)?;
    let cmd = match cmd_name.as_str() {
        "ping" => Command::Ping,
        "stats" => Command::Stats,
        "shutdown" => Command::Shutdown,
        "gc" => Command::Gc,
        "figure" => Command::Figure {
            name: req_str(obj, "name").map_err(fail)?,
        },
        "run" => {
            let scenario = req_str(obj, "scenario").map_err(fail)?;
            let scheduler = match obj.get("scheduler") {
                None => "fixed".to_string(),
                Some(v) => v
                    .as_str()
                    .map(str::to_string)
                    .ok_or_else(|| fail("\"scheduler\" must be a string".into()))?,
            };
            let tau = opt_u64(obj, "tau").map_err(fail)?.unwrap_or(4);
            let total_secs = opt_f64(obj, "total_secs").map_err(fail)?;
            let record_secs = opt_f64(obj, "record_secs").map_err(fail)?;
            let budget = match (total_secs, record_secs) {
                (Some(t), Some(r)) => Some((t, r)),
                (None, None) => None,
                _ => {
                    return Err(fail(
                        "\"total_secs\" and \"record_secs\" must be given together".into(),
                    ))
                }
            };
            let deadline_ms = opt_u64(obj, "deadline_ms").map_err(fail)?;
            let panic = opt_bool(obj, "panic").map_err(fail)?;
            Command::Run(RunRequest {
                scenario,
                scheduler,
                tau,
                budget,
                deadline_ms,
                panic,
            })
        }
        other => {
            return Err(fail(format!(
                "unknown cmd \"{other}\" (expected ping, stats, shutdown, gc, figure, or run)"
            )))
        }
    };
    Ok(Request { id, cmd })
}

/// Encodes one request as a single JSON line (no trailing newline).
pub fn encode_request(request: &Request) -> String {
    let mut o = ObjectBuilder::new();
    match request.id {
        Some(id) => o.num_field("id", id as f64),
        None => o.raw_field("id", "null"),
    }
    match &request.cmd {
        Command::Ping => o.str_field("cmd", "ping"),
        Command::Stats => o.str_field("cmd", "stats"),
        Command::Shutdown => o.str_field("cmd", "shutdown"),
        Command::Gc => o.str_field("cmd", "gc"),
        Command::Figure { name } => {
            o.str_field("cmd", "figure");
            o.str_field("name", name);
        }
        Command::Run(run) => {
            o.str_field("cmd", "run");
            o.str_field("scenario", &run.scenario);
            o.str_field("scheduler", &run.scheduler);
            o.num_field("tau", run.tau as f64);
            if let Some((total, record)) = run.budget {
                o.num_field("total_secs", total);
                o.num_field("record_secs", record);
            }
            if let Some(ms) = run.deadline_ms {
                o.num_field("deadline_ms", ms as f64);
            }
            if run.panic {
                o.raw_field("panic", "true");
            }
        }
    }
    o.finish()
}

/// Encodes one response as a single JSON line (no trailing newline).
pub fn encode_response(response: &Response) -> String {
    let mut o = ObjectBuilder::new();
    match response.id {
        Some(id) => o.num_field("id", id as f64),
        None => o.raw_field("id", "null"),
    }
    match &response.body {
        ResponseBody::Pong => {
            o.raw_field("ok", "true");
            o.str_field("result", "pong");
        }
        ResponseBody::Stats(s) => {
            o.raw_field("ok", "true");
            o.str_field("result", "stats");
            o.num_field("requests", s.requests as f64);
            o.num_field("shed", s.shed as f64);
            o.num_field("dedup_hits", s.dedup_hits as f64);
            o.num_field("deadline_misses", s.deadline_misses as f64);
            o.num_field("request_panics", s.request_panics as f64);
            o.num_field("unique_runs", s.unique_runs as f64);
            o.num_field("queue_depth", s.queue_depth as f64);
            o.raw_field("draining", if s.draining { "true" } else { "false" });
            o.num_field("recovered_runs", s.recovered_runs as f64);
            o.num_field("journal_replays", s.journal_replays as f64);
            o.num_field("gc_orphans", s.gc_orphans as f64);
        }
        ResponseBody::ShuttingDown => {
            o.raw_field("ok", "true");
            o.str_field("result", "shutting_down");
        }
        ResponseBody::Gc {
            tmp_removed,
            parked_removed,
            parked_kept,
        } => {
            o.raw_field("ok", "true");
            o.str_field("result", "gc");
            o.num_field("tmp_removed", *tmp_removed as f64);
            o.num_field("parked_removed", *parked_removed as f64);
            o.num_field("parked_kept", *parked_kept as f64);
        }
        ResponseBody::Figure { name, wall_ms } => {
            o.raw_field("ok", "true");
            o.str_field("result", "figure");
            o.str_field("name", name);
            o.num_field("wall_ms", *wall_ms);
        }
        ResponseBody::Run(r) => {
            o.raw_field("ok", "true");
            o.str_field("result", "run");
            o.str_field("source", &r.source);
            o.num_field("rounds", r.rounds as f64);
            o.num_field("points", r.points as f64);
            o.num_field("final_loss", r.final_loss);
            o.num_field("wall_ms", r.wall_ms);
        }
        ResponseBody::Error { kind, message } => {
            o.raw_field("ok", "false");
            o.str_field("kind", kind.as_str());
            o.str_field("message", message);
        }
    }
    o.finish()
}

/// Parses one response line (the client half). Never panics.
///
/// # Errors
///
/// Any line that is not a fully valid response object.
pub fn parse_response(line: &str) -> Result<Response, String> {
    let value = json::parse(line).map_err(|e| format!("invalid JSON: {e}"))?;
    let obj = value
        .as_obj()
        .ok_or_else(|| "response must be a JSON object".to_string())?;
    let id = opt_u64(obj, "id")?;
    let ok = match obj.get("ok") {
        Some(Value::Bool(b)) => *b,
        _ => return Err("missing boolean field \"ok\"".into()),
    };
    if !ok {
        let kind = ErrorKind::from_label(&req_str(obj, "kind")?)?;
        let message = req_str(obj, "message")?;
        return Ok(Response {
            id,
            body: ResponseBody::Error { kind, message },
        });
    }
    let need_u64 = |name: &str| opt_u64(obj, name)?.ok_or(format!("missing field \"{name}\""));
    let need_f64 = |name: &str| opt_f64(obj, name)?.ok_or(format!("missing field \"{name}\""));
    let body = match req_str(obj, "result")?.as_str() {
        "pong" => ResponseBody::Pong,
        "shutting_down" => ResponseBody::ShuttingDown,
        "stats" => ResponseBody::Stats(StatsBody {
            requests: need_u64("requests")?,
            shed: need_u64("shed")?,
            dedup_hits: need_u64("dedup_hits")?,
            deadline_misses: need_u64("deadline_misses")?,
            request_panics: need_u64("request_panics")?,
            unique_runs: need_u64("unique_runs")?,
            queue_depth: need_u64("queue_depth")?,
            draining: match obj.get("draining") {
                Some(Value::Bool(b)) => *b,
                _ => return Err("missing boolean field \"draining\"".into()),
            },
            recovered_runs: need_u64("recovered_runs")?,
            journal_replays: need_u64("journal_replays")?,
            gc_orphans: need_u64("gc_orphans")?,
        }),
        "gc" => ResponseBody::Gc {
            tmp_removed: need_u64("tmp_removed")?,
            parked_removed: need_u64("parked_removed")?,
            parked_kept: need_u64("parked_kept")?,
        },
        "figure" => ResponseBody::Figure {
            name: req_str(obj, "name")?,
            wall_ms: need_f64("wall_ms")?,
        },
        "run" => ResponseBody::Run(RunStats {
            source: req_str(obj, "source")?,
            rounds: need_u64("rounds")?,
            points: need_u64("points")?,
            final_loss: need_f64("final_loss")?,
            wall_ms: need_f64("wall_ms")?,
        }),
        other => return Err(format!("unknown result \"{other}\"")),
    };
    Ok(Response { id, body })
}
