//! Crash-consistency journal for the sweep service: an append-only,
//! CRC-framed, fsync'd record of every accepted request that has not yet
//! completed.
//!
//! `sweepd` appends an *accept* record when a run or figure job is
//! admitted to the queue, and a *done* record when its flight completes
//! terminally. After a SIGKILL, the accepts without a matching done are
//! exactly the in-flight work the daemon owed its clients;
//! [`Journal::replay`] reconstructs them (tolerating the torn final
//! record an append mid-crash leaves behind) and recovery re-executes
//! each one — resuming from a parked checkpoint when the store has one,
//! recomputing deterministically otherwise. Either way the result is
//! bit-identical to the run the crash interrupted.
//!
//! Frame layout per record, same paranoid-load discipline as the run
//! store (validated field by field, rejects instead of panics):
//!
//! ```text
//! magic "ACJL" | format version u32 | payload len u32
//! | crc32(payload) u32 | payload
//! ```
//!
//! The payload is one JSON object: `{"op":"accept","key":K,"request":R}`
//! (`R` is the encoded protocol request, stored as a string so replay
//! reuses the strict [`protocol`] parser end-to-end) or
//! `{"op":"done","key":K}`.

use super::protocol::{self, Request};
use crate::failpoint;
use binio::{crc32, ByteReader, ByteWriter};
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use telemetry::json::{self, ObjectBuilder};

/// Journal record magic: **A**da**C**omm **J**ourna**L**.
const JOURNAL_MAGIC: [u8; 4] = *b"ACJL";

/// Layout version of the record framing.
pub const JOURNAL_FORMAT_VERSION: u32 = 1;

/// Upper bound on one record payload — far above any real request line,
/// and a cheap sanity check against reading a corrupt length as gigabytes.
const MAX_RECORD_BYTES: u32 = 1 << 20;

/// The live, appendable journal a running daemon holds.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: Mutex<fs::File>,
}

impl Journal {
    /// Opens (creating if needed) the journal at `path` for appending.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error (unwritable directory, ...).
    pub fn open(path: impl Into<PathBuf>) -> io::Result<Journal> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        let file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)?;
        Ok(Journal {
            path,
            file: Mutex::new(file),
        })
    }

    /// The journal file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records that the job keyed `key` (re-creatable from `request`) was
    /// accepted and is now owed a completion. Durable before return
    /// (fsync).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error; callers treat a failed append as
    /// a warning (the request still runs — only its crash-recoverability
    /// is degraded).
    pub fn append_accept(&self, key: &str, request: &Request) -> io::Result<()> {
        let mut o = ObjectBuilder::new();
        o.str_field("op", "accept");
        o.str_field("key", key);
        o.str_field("request", &protocol::encode_request(request));
        self.append(o.finish().as_bytes())
    }

    /// Records that the flight keyed `key` completed terminally (result
    /// or terminal error): its accept record is discharged.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error (same best-effort contract as
    /// [`Journal::append_accept`]).
    pub fn append_done(&self, key: &str) -> io::Result<()> {
        let mut o = ObjectBuilder::new();
        o.str_field("op", "done");
        o.str_field("key", key);
        self.append(o.finish().as_bytes())
    }

    /// Appends one CRC-framed record and fsyncs.
    fn append(&self, payload: &[u8]) -> io::Result<()> {
        if failpoint::fire("server.journal.io_error") {
            return Err(io::Error::other("injected journal append failure"));
        }
        let mut w = ByteWriter::with_capacity(payload.len() + 16);
        w.put_bytes(&JOURNAL_MAGIC);
        w.put_u32(JOURNAL_FORMAT_VERSION);
        w.put_u32(payload.len() as u32);
        w.put_u32(crc32(payload));
        w.put_bytes(payload);
        let frame = w.into_vec();
        let mut file = self.file.lock().expect("journal file poisoned");
        file.write_all(&frame)?;
        file.sync_all()?;
        telemetry::counter("server.journal_appends").inc();
        telemetry::counter("server.journal_bytes").add(frame.len() as u64);
        Ok(())
    }
}

/// What [`Journal::replay`] found on disk.
#[derive(Debug, Default)]
pub struct Replay {
    /// Accepted-but-not-completed jobs, in acceptance order: the work the
    /// crashed daemon still owed.
    pub pending: Vec<(String, Request)>,
    /// Valid records decoded (accepts and dones).
    pub records: u64,
    /// Whether the file ended in a torn (incomplete or corrupt) frame —
    /// the expected signature of a crash mid-append. Everything before
    /// the tear is trusted; the tear itself is discarded.
    pub torn_tail: bool,
    /// Structurally valid frames whose payload failed to parse (foreign
    /// or stale contents) — skipped, never fatal.
    pub rejected: u64,
}

impl Journal {
    /// Reads the journal at `path` and reconstructs the pending job set.
    /// Never fails and never panics: a missing file is an empty replay, a
    /// torn tail stops the scan (flagged), and an undecodable payload is
    /// counted and skipped.
    pub fn replay(path: &Path) -> Replay {
        let mut replay = Replay::default();
        let bytes = match fs::read(path) {
            Ok(bytes) => bytes,
            Err(_) => return replay,
        };
        let mut pending: Vec<(String, Request)> = Vec::new();
        let mut r = ByteReader::new(&bytes);
        while !r.is_empty() {
            let Some(payload) = next_frame(&mut r) else {
                replay.torn_tail = true;
                break;
            };
            replay.records += 1;
            match decode_payload(&payload) {
                Some(RecordOp::Accept { key, request }) => {
                    // Re-accepting a key already pending dedups (the
                    // daemon single-flights, so this only happens when a
                    // done record was lost to the tear).
                    if !pending.iter().any(|(k, _)| *k == key) {
                        pending.push((key, request));
                    }
                }
                Some(RecordOp::Done { key }) => pending.retain(|(k, _)| *k != key),
                None => replay.rejected += 1,
            }
        }
        replay.pending = pending;
        replay
    }
}

/// One decoded record payload.
enum RecordOp {
    Accept { key: String, request: Request },
    Done { key: String },
}

/// Pulls the next complete, CRC-valid frame; `None` on a torn or corrupt
/// remainder.
fn next_frame(r: &mut ByteReader<'_>) -> Option<Vec<u8>> {
    let magic = r.bytes(4).ok()?;
    if magic != JOURNAL_MAGIC {
        return None;
    }
    let version = r.u32().ok()?;
    if version != JOURNAL_FORMAT_VERSION {
        return None;
    }
    let len = r.u32().ok()?;
    if len > MAX_RECORD_BYTES {
        return None;
    }
    let stored_crc = r.u32().ok()?;
    let payload = r.bytes(len as usize).ok()?;
    if crc32(payload) != stored_crc {
        return None;
    }
    Some(payload.to_vec())
}

/// Decodes one payload into its operation; `None` rejects it.
fn decode_payload(payload: &[u8]) -> Option<RecordOp> {
    let text = std::str::from_utf8(payload).ok()?;
    let value = json::parse(text).ok()?;
    let obj = value.as_obj()?;
    let op = obj.get("op")?.as_str()?;
    let key = obj.get("key")?.as_str()?.to_string();
    match op {
        "accept" => {
            let line = obj.get("request")?.as_str()?;
            let request = protocol::parse_request(line).ok()?;
            Some(RecordOp::Accept { key, request })
        }
        "done" => Some(RecordOp::Done { key }),
        _ => None,
    }
}

/// Removes the journal at `path` (recovery replayed it; a fresh file
/// starts the next epoch). Best-effort.
pub fn discard(path: &Path) {
    let _ = fs::remove_file(path);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::protocol::{Command, RunRequest};

    fn run_request(tau: u64) -> Request {
        Request {
            id: None,
            cmd: Command::Run(RunRequest {
                scenario: "concept".into(),
                scheduler: "fixed".into(),
                tau,
                budget: Some((40.0, 10.0)),
                deadline_ms: None,
                panic: false,
            }),
        }
    }

    fn temp_journal(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("adacomm_journal_{tag}_{}.log", std::process::id()))
    }

    #[test]
    fn accept_done_replay_roundtrip() {
        let path = temp_journal("roundtrip");
        let _ = fs::remove_file(&path);
        let journal = Journal::open(&path).unwrap();
        journal.append_accept("key-a", &run_request(1)).unwrap();
        journal.append_accept("key-b", &run_request(2)).unwrap();
        journal
            .append_accept(
                "figure|fig01",
                &Request {
                    id: None,
                    cmd: Command::Figure {
                        name: "fig01".into(),
                    },
                },
            )
            .unwrap();
        journal.append_done("key-a").unwrap();

        let replay = Journal::replay(&path);
        assert_eq!(replay.records, 4);
        assert!(!replay.torn_tail);
        assert_eq!(replay.rejected, 0);
        let keys: Vec<&str> = replay.pending.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["key-b", "figure|fig01"]);
        assert_eq!(replay.pending[0].1, run_request(2));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_tolerated_and_earlier_records_survive() {
        let path = temp_journal("torn");
        let _ = fs::remove_file(&path);
        let journal = Journal::open(&path).unwrap();
        journal.append_accept("whole", &run_request(1)).unwrap();
        journal.append_accept("torn", &run_request(2)).unwrap();
        drop(journal);

        // Crash mid-append: cut the file anywhere inside the last record.
        let bytes = fs::read(&path).unwrap();
        for cut in 1..16 {
            fs::write(&path, &bytes[..bytes.len() - cut]).unwrap();
            let replay = Journal::replay(&path);
            assert!(replay.torn_tail, "cut {cut} must flag the tear");
            assert_eq!(replay.records, 1, "cut {cut}");
            assert_eq!(replay.pending.len(), 1, "cut {cut}");
            assert_eq!(replay.pending[0].0, "whole", "cut {cut}");
        }
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn corrupt_records_reject_and_missing_file_is_empty() {
        let path = temp_journal("corrupt");
        let _ = fs::remove_file(&path);
        let empty = Journal::replay(&path);
        assert_eq!(empty.records, 0);
        assert!(empty.pending.is_empty());

        // A bit flip anywhere in a record must never yield a wrong
        // pending set silently: the CRC stops the scan at the flip.
        let journal = Journal::open(&path).unwrap();
        journal.append_accept("only", &run_request(3)).unwrap();
        drop(journal);
        let good = fs::read(&path).unwrap();
        for byte in 0..good.len() {
            let mut bad = good.clone();
            bad[byte] ^= 0x40;
            fs::write(&path, &bad).unwrap();
            let replay = Journal::replay(&path);
            assert!(
                replay.pending.is_empty() || replay.pending[0].0 == "only",
                "flip at byte {byte} produced a foreign pending key"
            );
            assert!(
                replay.torn_tail || replay.rejected > 0 || replay.pending.is_empty(),
                "flip at byte {byte} decoded silently"
            );
        }
        let _ = fs::remove_file(&path);
    }
}
