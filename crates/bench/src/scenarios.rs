//! Canonical experiment scenarios shared by the figure binaries.
//!
//! Each paper figure compares the same model/dataset/delay profile across
//! schedulers; these builders centralise that configuration so Figures
//! 9–13 and Table 1 stay consistent with one another.

use crate::Scale;
use adacomm::LrSchedule;
use data::GaussianMixture;
use delay::{resnet50_profile, vgg16_profile, HardwareProfile};
use nn::{models, Network};
use pasgd_sim::{ClusterConfig, ExperimentConfig, ExperimentSuite, MomentumMode};

/// Which architecture family a scenario models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelFamily {
    /// Communication-bound VGG-16-like setting (α ≈ 4).
    VggLike,
    /// Computation-bound ResNet-50-like setting (α < 1).
    ResnetLike,
}

impl ModelFamily {
    /// The calibrated delay profile for this family.
    pub fn profile(&self) -> HardwareProfile {
        match self {
            ModelFamily::VggLike => vgg16_profile(),
            ModelFamily::ResnetLike => resnet50_profile(),
        }
    }

    /// The fixed-τ baselines the paper plots for this family.
    pub fn paper_taus(&self) -> Vec<usize> {
        match self {
            ModelFamily::VggLike => vec![1, 20, 100],
            ModelFamily::ResnetLike => vec![1, 5, 100],
        }
    }

    /// AdaComm's initial period τ0 (the paper grid-searches this over short
    /// trial runs, Section 4.2; a large τ0 only pays off when communication
    /// dominates, so the computation-bound ResNet family gets a small one).
    pub fn tau0(&self) -> usize {
        match self {
            ModelFamily::VggLike => 24,
            ModelFamily::ResnetLike => 5,
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            ModelFamily::VggLike => "VGG-16",
            ModelFamily::ResnetLike => "ResNet-50",
        }
    }

    fn build_model(&self, scale: Scale, classes: usize, seed: u64) -> Network {
        match (self, scale) {
            // Quick/smoke scale: MLPs (the delay profile carries the
            // systems behaviour; see DESIGN.md). Full scale: the real conv
            // families.
            (ModelFamily::VggLike, Scale::Full) => models::vgg_like(1, 16, classes, seed),
            (ModelFamily::ResnetLike, Scale::Full) => models::resnet_like(1, 16, classes, seed),
            (_, _) => models::mlp_classifier(256, &[64], classes, seed),
        }
    }
}

/// A fully specified figure scenario.
pub struct Scenario {
    /// Scenario label, e.g. `"VGG-16 / CIFAR10-like / 4 workers"`.
    pub name: String,
    /// The experiment suite (shared model/data/delays across methods).
    pub suite: ExperimentSuite,
    /// Fixed-τ baselines for the figure.
    pub fixed_taus: Vec<usize>,
    /// AdaComm initial period.
    pub tau0: usize,
    /// Constant learning-rate schedule for the fixed-lr panels.
    pub fixed_lr: LrSchedule,
    /// Step schedule for the variable-lr panels.
    pub variable_lr: LrSchedule,
}

/// Builds the canonical scenario for a model family.
///
/// `classes` selects the CIFAR-10-like (10) or CIFAR-100-like (100) task;
/// `workers` is 4 in the main figures and 8 in the appendix ones.
///
/// # Panics
///
/// Panics if `classes` is not 10 or 100, or `workers == 0`.
pub fn scenario(family: ModelFamily, classes: usize, workers: usize, scale: Scale) -> Scenario {
    assert!(classes == 10 || classes == 100, "classes must be 10 or 100");
    assert!(workers > 0, "need at least one worker");
    let spec = if classes == 10 {
        GaussianMixture::cifar10_like()
    } else {
        GaussianMixture::cifar100_like()
    };
    let split = spec.generate(1234 + classes as u64);

    // Time-scale the profile so the run needs laptop-sized iteration counts
    // while preserving the paper's comm/comp ratio.
    let time_scale = if scale.is_full() { 1.0 } else { 4.0 };
    let profile = family.profile().time_scaled(time_scale);
    let runtime = profile.runtime_model(workers);

    // ResNet-50 iterations are slower but its runs cover more epochs in the
    // paper; give the computation-bound family a proportionally longer
    // budget so the post-annealing phase can reach the sync floor. Smoke
    // budgets are just long enough for a few scheduler intervals.
    let total_secs = match (scale, family) {
        (Scale::Full, _) => 2100.0,
        (Scale::Quick, ModelFamily::VggLike) => 600.0,
        (Scale::Quick, ModelFamily::ResnetLike) => 900.0,
        (Scale::Smoke, ModelFamily::VggLike) => 90.0,
        (Scale::Smoke, ModelFamily::ResnetLike) => 120.0,
    };
    // Per-worker batch: paper uses 128 with 4 workers, 64 with 8.
    let batch_size = match (scale, workers) {
        (Scale::Full, w) if w >= 8 => 64,
        (Scale::Full, _) => 128,
        (_, _) => 32,
    };

    // The paper uses 0.2 (VGG-16) and 0.4 (ResNet-50 with batch norm).
    // Our substitute models have no batch norm, so both families use the
    // VGG rate; 0.4 would inflate the local-update noise term
    // eta^2 L^2 sigma^2 (tau-1) fourfold and distort the comparison
    // (documented in EXPERIMENTS.md).
    let lr0 = 0.2;
    // Epoch milestones for the step schedule, scaled from the paper's
    // 80/120/160/200 (CIFAR, 200+ epochs) to the shorter simulated budget.
    let milestones = if scale.is_full() {
        vec![80.0, 120.0, 160.0, 200.0]
    } else {
        vec![12.0, 24.0, 36.0, 48.0]
    };

    // The paper uses T0 = 60 s on ~35-minute runs; keep the interval the
    // same *fraction* of the training budget at quick scale so AdaComm gets
    // a comparable number of adaptation opportunities.
    let interval_secs = if scale.is_full() { 60.0 } else { 20.0 };
    let suite = ExperimentSuite::new(
        family.build_model(scale, classes, 77),
        split,
        runtime,
        ClusterConfig {
            workers,
            batch_size,
            lr: lr0,
            weight_decay: 5e-4,
            momentum: MomentumMode::None,
            averaging: pasgd_sim::AveragingStrategy::FullAverage,
            codec: gradcomp::CodecSpec::Identity,
            seed: 42,
            eval_subset: 1024,
            fault: pasgd_sim::FaultConfig::NONE,
        },
        ExperimentConfig {
            interval_secs,
            total_secs,
            record_every_secs: total_secs / 40.0,
            gate_lr_on_tau: true,
        },
    );

    Scenario {
        name: format!(
            "{} / CIFAR{classes}-like / {workers} workers ({scale})",
            family.name()
        ),
        suite,
        fixed_taus: family.paper_taus(),
        tau0: family.tau0(),
        fixed_lr: LrSchedule::constant(lr0),
        variable_lr: LrSchedule::step(lr0, 0.1, milestones),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vgg_scenario_is_communication_bound() {
        let profile = ModelFamily::VggLike.profile();
        assert!(profile.alpha(4) > 3.0);
    }

    #[test]
    fn resnet_scenario_is_compute_bound() {
        let profile = ModelFamily::ResnetLike.profile();
        assert!(profile.alpha(4) < 1.0);
    }

    #[test]
    fn paper_taus_match_figures() {
        assert_eq!(ModelFamily::VggLike.paper_taus(), vec![1, 20, 100]);
        assert_eq!(ModelFamily::ResnetLike.paper_taus(), vec![1, 5, 100]);
    }

    #[test]
    fn scenario_builds_for_all_combinations() {
        for family in [ModelFamily::VggLike, ModelFamily::ResnetLike] {
            for classes in [10usize, 100] {
                let s = scenario(family, classes, 4, Scale::Quick);
                assert!(s.name.contains(family.name()));
                assert!(!s.fixed_taus.is_empty());
            }
        }
    }

    #[test]
    #[should_panic(expected = "classes must be 10 or 100")]
    fn bad_classes_rejected() {
        let _ = scenario(ModelFamily::VggLike, 7, 4, Scale::Quick);
    }
}
