//! Persistent content-addressed run store: memoized [`RunTrace`]s on disk.
//!
//! The sweep engine already memoizes runs in memory for one process; this
//! module extends that memoization across processes. Every entry is a
//! single file under a cache directory (`results/cache/` by default),
//! addressed by the FNV-1a hash of the spec's semantic key, holding the
//! run's trace in the same explicit little-endian wire format the
//! checkpoint layer uses ([`pasgd_sim::checkpoint::write_run_trace`]).
//! Traces are bit-exact through the format, so a warm `reproduce_all`
//! writes byte-identical CSVs without re-simulating anything.
//!
//! The store is paranoid by construction: a load re-validates the magic,
//! the store format version, the code-semantics version, the full key
//! echo (so a hash collision or a stale entry for a different spec can
//! never be served), the payload length, and a CRC-32 of the payload
//! before it decodes a single trace point — and the decode itself is the
//! fully fallible checkpoint reader. Every failure mode degrades to
//! [`LoadOutcome::Rejected`] with a reason; the engine then evicts the
//! bad entry and recomputes. Nothing in this module panics on foreign
//! bytes.
//!
//! Writes go through a temporary file in the same directory (fsync'd
//! before the rename) followed by an atomic rename, so a
//! concurrently-read entry is always either the old complete frame or
//! the new complete frame, never a torn prefix.
//!
//! Every filesystem touch is also a [`crate::failpoint`] site —
//! `store.save.*`, `store.load.unreadable`, `store.park.*` — so drills
//! can force torn frames, flipped bits, orphaned temp files, and rename
//! failures at exact, deterministic moments. [`RunStore::gc`] is the
//! recovery half: it sweeps the directory for the debris those crashes
//! leave behind (orphaned `*.tmp.*` files, aged parked frames).

use crate::failpoint;
use binio::{crc32, fnv1a64, ByteReader, ByteWriter};
use pasgd_sim::checkpoint::{read_run_trace, write_run_trace};
use pasgd_sim::{RunCheckpoint, RunTrace};
use std::fs;
use std::io;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::time::Duration;

/// Remaining injected save failures (tests and fault drills): while
/// non-zero, each [`RunStore::save`] consumes one and fails with a
/// synthetic I/O error before touching the filesystem.
static INJECTED_SAVE_FAILURES: AtomicU32 = AtomicU32::new(0);

/// Arms `count` synthetic save failures, exercising the retry path
/// without needing a genuinely broken filesystem.
pub fn inject_save_failures(count: u32) {
    INJECTED_SAVE_FAILURES.fetch_add(count, Ordering::SeqCst);
}

/// Consumes one injected save failure, if armed.
fn take_injected_save_failure() -> bool {
    INJECTED_SAVE_FAILURES
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
        .is_ok()
}

/// Per-process sequence for lock-claim scratch files, so two threads of
/// one process racing for the same lock never share a claim file.
static CLAIM_SEQ: AtomicU64 = AtomicU64::new(0);

/// Writes `bytes` to `path` and fsyncs before returning, so a frame
/// reported as saved survives a power-cut-style crash (the directory
/// entry itself still rides on the later rename).
fn write_sync(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut f = fs::File::create(path)?;
    f.write_all(bytes)?;
    f.sync_all()
}

/// Layout version of the entry frame itself. Bump when the framing
/// (header fields, checksum, payload encoding) changes shape.
pub const STORE_FORMAT_VERSION: u32 = 1;

/// Version of the *simulation semantics* behind the cached traces. Any
/// change that can alter a trace for an unchanged spec key — optimizer
/// math, RNG streams, delay sampling, codec behaviour, recording cadence
/// — must bump this, which invalidates every existing entry at load
/// time (they reject cleanly and recompute).
pub const CODE_SEMANTICS_VERSION: u32 = 1;

/// Entry frame magic: **A**da**C**omm **R**un **S**tore.
const MAGIC: [u8; 4] = *b"ACRS";

/// Parked-checkpoint frame magic: **A**da**C**omm **P**ar**K**ed.
const PARK_MAGIC: [u8; 4] = *b"ACPK";

/// Outcome of [`RunStore::load`].
#[derive(Debug)]
pub enum LoadOutcome {
    /// The entry existed, validated end-to-end, and decoded.
    Hit(RunTrace),
    /// No entry on disk for this key — the ordinary cold-cache case.
    Absent,
    /// An entry existed but failed validation (truncated, bit-flipped,
    /// stale version, wrong key, unreadable). The reason says which
    /// check failed; the caller recomputes.
    Rejected(String),
}

/// Counters the engine keeps over its cache traffic, one count per
/// distinct spec key for the hit/miss split (repeat requests for an
/// already-resolved key count as memory hits regardless of where the
/// first resolution came from).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests served from the in-process memoization map.
    pub mem_hits: usize,
    /// Distinct keys whose first resolution was a validated disk entry.
    pub disk_hits: usize,
    /// Distinct keys that had to be simulated.
    pub misses: usize,
    /// Disk entries that failed validation and were evicted (each such
    /// key is *also* counted as a miss once recomputed).
    pub rejects: usize,
}

/// A content-addressed directory of serialized run traces.
#[derive(Debug)]
pub struct RunStore {
    dir: PathBuf,
}

impl RunStore {
    /// A store rooted at `dir`. The directory is created lazily on the
    /// first successful save, so constructing a store never touches the
    /// filesystem.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        RunStore { dir: dir.into() }
    }

    /// The default store location: `cache/` under the active results
    /// directory — `results/cache/` normally, `results/smoke/cache/`
    /// after `--smoke` redirects results, so smoke runs never read or
    /// pollute the real cache.
    pub fn default_dir() -> PathBuf {
        crate::report::results_dir().join("cache")
    }

    /// The directory this store reads and writes.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file an entry for `key` lives at: the FNV-1a 64-bit hash of
    /// the key, in hex, with a `.run` extension. The full key is echoed
    /// inside the frame, so hash collisions are detected at load time
    /// rather than silently served.
    pub fn entry_path(&self, key: &str) -> PathBuf {
        self.dir
            .join(format!("{:016x}.run", fnv1a64(key.as_bytes())))
    }

    /// Loads and validates the entry for `key`. Never panics: anything
    /// short of a fully valid frame for exactly this key comes back as
    /// [`LoadOutcome::Rejected`] (or [`LoadOutcome::Absent`] when no
    /// file exists).
    pub fn load(&self, key: &str) -> LoadOutcome {
        let _phase = telemetry::span("phase.store_load");
        let path = self.entry_path(key);
        let bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return LoadOutcome::Absent,
            Err(e) => return LoadOutcome::Rejected(format!("unreadable entry: {e}")),
        };
        if failpoint::fire("store.load.unreadable") {
            return LoadOutcome::Rejected(
                "unreadable entry: injected transient read failure".into(),
            );
        }
        telemetry::counter("store.loads").inc();
        telemetry::counter("store.load_bytes").add(bytes.len() as u64);
        match decode_entry(&bytes, key) {
            Ok(trace) => LoadOutcome::Hit(trace),
            Err(reason) => LoadOutcome::Rejected(reason),
        }
    }

    /// Serializes `trace` and installs it for `key` via a temp file and
    /// an atomic rename, so concurrent readers always see a complete
    /// frame.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the directory, the temp file
    /// or the rename fails. Callers treat a failed save as a non-event:
    /// the run already happened, the cache just stays cold.
    pub fn save(&self, key: &str, trace: &RunTrace) -> io::Result<PathBuf> {
        let _phase = telemetry::span("phase.store_save");
        if take_injected_save_failure() || failpoint::fire("store.save.io_error") {
            return Err(io::Error::other("injected save failure (fault drill)"));
        }
        let path = self.entry_path(key);
        fs::create_dir_all(&self.dir)?;
        let tmp = self.dir.join(format!(
            "{:016x}.tmp.{}",
            fnv1a64(key.as_bytes()),
            std::process::id()
        ));
        let mut frame = encode_entry(key, trace);
        if failpoint::fire("store.save.corrupt") {
            let mid = frame.len() / 2;
            frame[mid] ^= 0x01;
        }
        if failpoint::fire("store.save.torn") {
            // A crash mid-write that bypassed the temp-file discipline:
            // half a frame at the final path, reported as success. The
            // CRC armor turns it into a structured reject at load time.
            let cut = frame.len() / 2;
            write_sync(&path, &frame[..cut])?;
            return Ok(path);
        }
        telemetry::counter("store.saves").inc();
        telemetry::counter("store.save_bytes").add(frame.len() as u64);
        write_sync(&tmp, &frame)?;
        if failpoint::fire("store.save.orphan_tmp") {
            // A crash between the temp write and the rename: the entry
            // never appears, the orphan waits for GC.
            return Err(io::Error::other(
                "injected crash before rename (orphan tmp left behind)",
            ));
        }
        if failpoint::fire("store.save.rename_fail") {
            let _ = fs::remove_file(&tmp);
            return Err(io::Error::other("injected rename failure"));
        }
        match fs::rename(&tmp, &path) {
            Ok(()) => Ok(path),
            Err(e) => {
                let _ = fs::remove_file(&tmp);
                Err(e)
            }
        }
    }

    /// [`RunStore::save`] with bounded retry for transient I/O failures
    /// (`max_attempts` total attempts, a short fixed pause between them —
    /// deterministic, no wall-clock randomness). The run already
    /// happened, so a save that still fails after the budget is reported
    /// to the caller, who treats the cache as cold rather than evicting
    /// or failing the run.
    ///
    /// # Errors
    ///
    /// Returns the last I/O error once every attempt failed.
    pub fn save_with_retry(
        &self,
        key: &str,
        trace: &RunTrace,
        max_attempts: u32,
    ) -> io::Result<PathBuf> {
        assert!(max_attempts >= 1);
        let mut last = None;
        for attempt in 1..=max_attempts {
            if attempt > 1 {
                telemetry::counter("store.save_retries").inc();
                std::thread::sleep(std::time::Duration::from_millis(5 * u64::from(attempt)));
            }
            match self.save(key, trace) {
                Ok(path) => return Ok(path),
                Err(e) => last = Some(e),
            }
        }
        Err(last.expect("at least one attempt ran"))
    }

    /// Removes the entry for `key`, if any — how the engine clears a
    /// rejected (corrupt or stale) entry so the recomputed trace can be
    /// re-saved cleanly. Best-effort: removal errors are ignored.
    pub fn evict(&self, key: &str) {
        let _ = fs::remove_file(self.entry_path(key));
    }

    /// The writer lockfile guarding this store directory.
    pub fn lock_path(&self) -> PathBuf {
        self.dir.join(".lock")
    }

    /// Acquires the store's single-writer lock, identifying the holder as
    /// `owner` (a short label like `sweepd` or `reproduce_all`). The lock
    /// is a `create_new` lockfile containing `<pid> <owner>`; it prevents
    /// a running daemon and a concurrent batch reproduction from
    /// interleaving writes to the same cache directory.
    ///
    /// A lockfile left behind by a crashed process (the recorded pid no
    /// longer exists, or the contents are unreadable) is detected and
    /// reclaimed automatically — crash recovery needs no manual cleanup.
    /// Dropping the returned [`StoreLock`] releases the lock.
    ///
    /// Acquisition is race-free against concurrent reclaimers: the lock
    /// appears via `hard_link` from a pre-written claim file (atomic
    /// create-with-contents — the lockfile is never observable empty),
    /// and a stale lock is reclaimed by `rename`-ing it aside, which
    /// exactly one racer can win. The loser re-probes, finds the
    /// winner's fresh *live* lock, and fails fast — never two holders,
    /// and never a racer deleting the lock another racer just acquired.
    ///
    /// # Errors
    ///
    /// Fails with [`io::ErrorKind::WouldBlock`] when another *live*
    /// process holds the lock (the error message names its pid and
    /// owner label), or with the underlying error when the lockfile
    /// cannot be created at all.
    pub fn lock(&self, owner: &str) -> io::Result<StoreLock> {
        fs::create_dir_all(&self.dir)?;
        let path = self.lock_path();
        let seq = CLAIM_SEQ.fetch_add(1, Ordering::SeqCst);
        let claim = self
            .dir
            .join(format!(".lock.claim.{}.{seq}", std::process::id()));
        fs::write(&claim, format!("{} {owner}", std::process::id()))?;
        let acquired = self.lock_from_claim(&path, &claim);
        let _ = fs::remove_file(&claim);
        acquired
    }

    /// The `hard_link`/probe/reclaim loop behind [`RunStore::lock`];
    /// `claim` already holds this caller's `<pid> <owner>` line.
    fn lock_from_claim(&self, path: &Path, claim: &Path) -> io::Result<StoreLock> {
        // Two reclaim rounds: a stale lock is renamed aside and the link
        // retried; losing the race twice to live holders is a genuine
        // conflict.
        for attempt in 0..3u32 {
            match fs::hard_link(claim, path) {
                Ok(()) => {
                    telemetry::counter("store.lock_acquisitions").inc();
                    return Ok(StoreLock {
                        path: path.to_path_buf(),
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    let contents = fs::read_to_string(path).unwrap_or_default();
                    let mut parts = contents.split_whitespace();
                    let pid = parts.next().and_then(|p| p.parse::<u32>().ok());
                    let holder = parts.next().unwrap_or("unknown");
                    match pid {
                        Some(pid) if pid_alive(pid) => {
                            return Err(io::Error::new(
                                io::ErrorKind::WouldBlock,
                                format!(
                                    "store {} is locked by live process {pid} ({holder}); \
                                     wait for it to finish or remove {} if that pid is wrong",
                                    self.dir.display(),
                                    path.display()
                                ),
                            ));
                        }
                        _ => {
                            // Dead pid or garbage contents: a crashed
                            // writer never released it. Rename it aside —
                            // only one racer's rename succeeds, so a
                            // freshly re-acquired lock can never be
                            // deleted by a slow racer. Either way, retry
                            // the link.
                            let grave = self
                                .dir
                                .join(format!(".lock.stale.{}.{attempt}", std::process::id()));
                            if fs::rename(path, &grave).is_ok() {
                                telemetry::counter("store.lock_reclaims").inc();
                                let _ = fs::remove_file(&grave);
                            }
                        }
                    }
                }
                Err(e) => return Err(e),
            }
        }
        Err(io::Error::new(
            io::ErrorKind::WouldBlock,
            format!(
                "store {} lock contended: another process kept re-acquiring it mid-reclaim",
                self.dir.display()
            ),
        ))
    }

    /// The file a parked checkpoint for `key` lives at, under the
    /// `parked/` subdirectory (keyed like [`RunStore::entry_path`]).
    pub fn parked_path(&self, key: &str) -> PathBuf {
        self.dir
            .join("parked")
            .join(format!("{:016x}.park", fnv1a64(key.as_bytes())))
    }

    /// Parks a mid-run checkpoint for `key` — the resumable remainder of
    /// a run that was cancelled by a deadline or a drain. The frame
    /// carries the same magic/version/key-echo/CRC armor as a trace
    /// entry, and the payload itself is the self-validating
    /// [`RunCheckpoint::to_bytes`] frame. Written atomically
    /// (temp + rename).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error; callers treat a failed park as
    /// lost progress, not a failed request.
    pub fn park(&self, key: &str, checkpoint: &RunCheckpoint) -> io::Result<PathBuf> {
        if failpoint::fire("store.park.io_error") {
            return Err(io::Error::other("injected park failure (fault drill)"));
        }
        let path = self.parked_path(key);
        let parked_dir = path.parent().expect("parked path has a parent");
        fs::create_dir_all(parked_dir)?;
        let tmp = parked_dir.join(format!(
            "{:016x}.tmp.{}",
            fnv1a64(key.as_bytes()),
            std::process::id()
        ));
        let payload = checkpoint.to_bytes();
        let mut w = ByteWriter::with_capacity(payload.len() + key.len() + 32);
        w.put_bytes(&PARK_MAGIC);
        w.put_u32(STORE_FORMAT_VERSION);
        w.put_u32(CODE_SEMANTICS_VERSION);
        w.put_str(key);
        w.put_u64(payload.len() as u64);
        w.put_u32(crc32(&payload));
        w.put_bytes(&payload);
        let frame = w.into_vec();
        if failpoint::fire("store.park.torn") {
            let cut = frame.len() / 2;
            write_sync(&path, &frame[..cut])?;
            return Ok(path);
        }
        telemetry::counter("store.parks").inc();
        telemetry::counter("store.park_bytes").add(frame.len() as u64);
        write_sync(&tmp, &frame)?;
        match fs::rename(&tmp, &path) {
            Ok(()) => Ok(path),
            Err(e) => {
                let _ = fs::remove_file(&tmp);
                Err(e)
            }
        }
    }

    /// Loads and validates the parked checkpoint for `key`. Like
    /// [`RunStore::load`], never panics: every failure short of a fully
    /// valid frame for exactly this key is [`ParkedOutcome::Rejected`].
    pub fn load_parked(&self, key: &str) -> ParkedOutcome {
        let bytes = match fs::read(self.parked_path(key)) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return ParkedOutcome::Absent,
            Err(e) => return ParkedOutcome::Rejected(format!("unreadable parked entry: {e}")),
        };
        match decode_parked(&bytes, key) {
            Ok(ck) => ParkedOutcome::Hit(Box::new(ck)),
            Err(reason) => ParkedOutcome::Rejected(reason),
        }
    }

    /// Removes the parked checkpoint for `key`, if any — called once the
    /// run completes (or the checkpoint proves unusable). Best-effort.
    pub fn unpark(&self, key: &str) {
        let _ = fs::remove_file(self.parked_path(key));
    }

    /// Garbage-collects crash debris from the store directory:
    ///
    /// * orphaned `*.tmp.*` files (a writer died between its temp write
    ///   and the rename) — always removed, in both the entry directory
    ///   and `parked/`;
    /// * leftover `.lock.claim.*` / `.lock.stale.*` scratch files older
    ///   than a minute (younger ones may belong to a lock acquisition in
    ///   flight right now);
    /// * parked checkpoint frames older than `parked_max_age` — a run
    ///   nobody re-requested for that long is abandoned, not paused.
    ///
    /// Call only while holding the store lock (the daemon does this at
    /// startup, and on demand via `sweepctl gc`): the lock guarantees no
    /// live writer owns any temp file we sweep. Errors on individual
    /// files are skipped, never fatal; the returned [`GcStats`] counts
    /// what was actually reclaimed.
    pub fn gc(&self, parked_max_age: Duration) -> GcStats {
        let mut stats = GcStats::default();
        let stale_scratch = Duration::from_secs(60);
        for entry in fs::read_dir(&self.dir).into_iter().flatten().flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let aged = |limit: Duration| {
                entry
                    .metadata()
                    .and_then(|m| m.modified())
                    .ok()
                    .and_then(|t| t.elapsed().ok())
                    .is_some_and(|age| age >= limit)
            };
            let reclaim = name.contains(".tmp.")
                || ((name.starts_with(".lock.claim.") || name.starts_with(".lock.stale."))
                    && aged(stale_scratch));
            if reclaim && fs::remove_file(entry.path()).is_ok() {
                stats.tmp_removed += 1;
            }
        }
        for entry in fs::read_dir(self.dir.join("parked"))
            .into_iter()
            .flatten()
            .flatten()
        {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.contains(".tmp.") {
                if fs::remove_file(entry.path()).is_ok() {
                    stats.tmp_removed += 1;
                }
            } else if name.ends_with(".park") {
                let expired = entry
                    .metadata()
                    .and_then(|m| m.modified())
                    .ok()
                    .and_then(|t| t.elapsed().ok())
                    .is_some_and(|age| age >= parked_max_age);
                if expired && fs::remove_file(entry.path()).is_ok() {
                    stats.parked_removed += 1;
                } else {
                    stats.parked_kept += 1;
                }
            }
        }
        telemetry::counter("store.gc_tmp_removed").add(stats.tmp_removed);
        telemetry::counter("store.gc_parked_removed").add(stats.parked_removed);
        stats
    }
}

/// What one [`RunStore::gc`] sweep reclaimed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcStats {
    /// Orphaned temp files and stale lock-scratch files removed.
    pub tmp_removed: u64,
    /// Parked checkpoint frames older than the age limit removed.
    pub parked_removed: u64,
    /// Parked frames younger than the limit, left for resumption.
    pub parked_kept: u64,
}

impl GcStats {
    /// Total files reclaimed — the `server.gc_orphans` counter value.
    pub fn reclaimed(&self) -> u64 {
        self.tmp_removed + self.parked_removed
    }
}

/// Outcome of [`RunStore::load_parked`].
#[derive(Debug)]
pub enum ParkedOutcome {
    /// A parked checkpoint existed, validated, and decoded.
    Hit(Box<RunCheckpoint>),
    /// No parked work for this key.
    Absent,
    /// A parked frame existed but failed validation; the caller removes
    /// it and runs fresh.
    Rejected(String),
}

/// Exclusive writer lease on a [`RunStore`] directory; see
/// [`RunStore::lock`]. Dropping it deletes the lockfile. A process that
/// exits without dropping (crash, `std::process::exit`) leaves a stale
/// file that the next `lock()` reclaims by pid liveness.
#[derive(Debug)]
pub struct StoreLock {
    path: PathBuf,
}

impl StoreLock {
    /// The lockfile this lease owns (tests and diagnostics).
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for StoreLock {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

/// Whether `pid` names a live process. Reads `/proc`; on systems without
/// procfs the holder is conservatively assumed alive (a stale lock then
/// needs manual removal, but a live writer is never stomped).
fn pid_alive(pid: u32) -> bool {
    let proc_root = Path::new("/proc");
    if !proc_root.exists() {
        return true;
    }
    proc_root.join(pid.to_string()).exists()
}

/// Validates and decodes one parked-checkpoint frame for `key`. The
/// outer frame mirrors [`decode_entry`]; the payload decode is the
/// fallible [`RunCheckpoint::from_bytes`].
fn decode_parked(bytes: &[u8], key: &str) -> Result<RunCheckpoint, String> {
    let mut r = ByteReader::new(bytes);
    let magic = r.bytes(4).map_err(|e| format!("truncated magic: {e:?}"))?;
    if magic != PARK_MAGIC {
        return Err(format!("bad parked magic {magic:02x?}"));
    }
    let format = r.u32().map_err(|e| format!("truncated header: {e:?}"))?;
    if format != STORE_FORMAT_VERSION {
        return Err(format!(
            "store format v{format}, this build reads v{STORE_FORMAT_VERSION}"
        ));
    }
    let semantics = r.u32().map_err(|e| format!("truncated header: {e:?}"))?;
    if semantics != CODE_SEMANTICS_VERSION {
        return Err(format!(
            "code semantics v{semantics}, this build is v{CODE_SEMANTICS_VERSION}"
        ));
    }
    let stored_key = r.str().map_err(|e| format!("unreadable key: {e:?}"))?;
    if stored_key != key {
        return Err("key mismatch (hash collision or stale rewrite)".into());
    }
    let payload_len = r.u64().map_err(|e| format!("truncated header: {e:?}"))? as usize;
    if payload_len != r.remaining().saturating_sub(4) {
        return Err(format!(
            "payload length {payload_len} disagrees with file size"
        ));
    }
    let stored_crc = r.u32().map_err(|e| format!("truncated header: {e:?}"))?;
    let payload = r
        .bytes(payload_len)
        .map_err(|e| format!("truncated payload: {e:?}"))?;
    if crc32(payload) != stored_crc {
        return Err("payload checksum mismatch".into());
    }
    RunCheckpoint::from_bytes(payload).map_err(|e| format!("undecodable checkpoint: {e}"))
}

/// Builds the full entry frame:
///
/// ```text
/// magic "ACRS" | store version u32 | code-semantics version u32
/// | key (len-prefixed UTF-8) | payload len u64 | crc32(payload) u32
/// | payload (write_run_trace)
/// ```
fn encode_entry(key: &str, trace: &RunTrace) -> Vec<u8> {
    let mut payload = ByteWriter::new();
    write_run_trace(&mut payload, trace);
    let payload = payload.into_vec();

    let mut w = ByteWriter::with_capacity(payload.len() + key.len() + 32);
    w.put_bytes(&MAGIC);
    w.put_u32(STORE_FORMAT_VERSION);
    w.put_u32(CODE_SEMANTICS_VERSION);
    w.put_str(key);
    w.put_u64(payload.len() as u64);
    w.put_u32(crc32(&payload));
    w.put_bytes(&payload);
    w.into_vec()
}

/// Validates and decodes one entry frame against the requested `key`.
/// Every check returns a reason instead of panicking.
fn decode_entry(bytes: &[u8], key: &str) -> Result<RunTrace, String> {
    let mut r = ByteReader::new(bytes);
    let magic = r.bytes(4).map_err(|e| format!("truncated magic: {e:?}"))?;
    if magic != MAGIC {
        return Err(format!("bad magic {magic:02x?}"));
    }
    let format = r.u32().map_err(|e| format!("truncated header: {e:?}"))?;
    if format != STORE_FORMAT_VERSION {
        return Err(format!(
            "store format v{format}, this build reads v{STORE_FORMAT_VERSION}"
        ));
    }
    let semantics = r.u32().map_err(|e| format!("truncated header: {e:?}"))?;
    if semantics != CODE_SEMANTICS_VERSION {
        return Err(format!(
            "code semantics v{semantics}, this build is v{CODE_SEMANTICS_VERSION}"
        ));
    }
    let stored_key = r.str().map_err(|e| format!("unreadable key: {e:?}"))?;
    if stored_key != key {
        // A hash collision or an entry rewritten under a different spec.
        return Err("key mismatch (hash collision or stale rewrite)".into());
    }
    let payload_len = r.u64().map_err(|e| format!("truncated header: {e:?}"))? as usize;
    if payload_len != r.remaining().saturating_sub(4) {
        return Err(format!(
            "payload length {payload_len} disagrees with file size"
        ));
    }
    let stored_crc = r.u32().map_err(|e| format!("truncated header: {e:?}"))?;
    let payload = r
        .bytes(payload_len)
        .map_err(|e| format!("truncated payload: {e:?}"))?;
    if crc32(payload) != stored_crc {
        return Err("payload checksum mismatch".into());
    }
    let mut pr = ByteReader::new(payload);
    let trace = read_run_trace(&mut pr).map_err(|e| format!("undecodable payload: {e:?}"))?;
    if !pr.is_empty() {
        return Err(format!("{} trailing payload bytes", pr.remaining()));
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pasgd_sim::TracePoint;

    fn sample_trace() -> RunTrace {
        RunTrace {
            name: "store-test".into(),
            points: vec![
                TracePoint {
                    clock: 1.5,
                    iterations: 10,
                    epoch: 0.25,
                    train_loss: f32::NAN,
                    test_accuracy: 0.5,
                    tau: 4,
                    lr: -0.0,
                    comm_bytes: 1024.0,
                },
                TracePoint {
                    clock: 3.0,
                    iterations: 20,
                    epoch: 0.5,
                    train_loss: 0.9,
                    test_accuracy: f64::INFINITY,
                    tau: 2,
                    lr: 0.05,
                    comm_bytes: 2048.0,
                },
            ],
            peak_payload_bytes: 512.0,
            rounds: 5,
        }
    }

    fn bits(t: &RunTrace) -> Vec<u64> {
        let mut v = vec![t.peak_payload_bytes.to_bits(), t.rounds];
        for p in &t.points {
            v.extend([
                p.clock.to_bits(),
                p.iterations,
                p.epoch.to_bits(),
                u64::from(p.train_loss.to_bits()),
                p.test_accuracy.to_bits(),
                p.tau as u64,
                u64::from(p.lr.to_bits()),
                p.comm_bytes.to_bits(),
            ]);
        }
        v
    }

    #[test]
    fn encode_decode_roundtrip_is_bit_exact() {
        let trace = sample_trace();
        let bytes = encode_entry("some|key", &trace);
        let back = decode_entry(&bytes, "some|key").unwrap();
        assert_eq!(back.name, trace.name);
        assert_eq!(bits(&back), bits(&trace));
    }

    #[test]
    fn wrong_key_is_rejected() {
        let bytes = encode_entry("key-a", &sample_trace());
        let err = decode_entry(&bytes, "key-b").unwrap_err();
        assert!(err.contains("key mismatch"), "{err}");
    }

    #[test]
    fn every_truncation_is_rejected() {
        let bytes = encode_entry("k", &sample_trace());
        for cut in 0..bytes.len() {
            assert!(
                decode_entry(&bytes[..cut], "k").is_err(),
                "truncation to {cut} bytes must not decode"
            );
        }
    }

    #[test]
    fn every_single_bit_flip_is_rejected_or_detected() {
        // Flipping any bit anywhere in the frame must never produce a
        // *silent* wrong trace: either a validation error fires, or the
        // flip didn't survive (impossible — every byte is covered by
        // magic, versions, key echo, length, or CRC).
        let trace = sample_trace();
        let bytes = encode_entry("k", &trace);
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut bad = bytes.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    decode_entry(&bad, "k").is_err(),
                    "flip at byte {byte} bit {bit} decoded silently"
                );
            }
        }
    }

    #[test]
    fn zero_length_is_rejected() {
        assert!(decode_entry(&[], "k").is_err());
    }

    // Saves in different tests race on the global injected-failure
    // counter; every test that saves takes this lock.
    static SAVE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn save_with_retry_recovers_from_injected_io_errors() {
        let _serial = SAVE_LOCK.lock().unwrap();
        let dir = std::env::temp_dir().join(format!("adacomm_store_retry_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = RunStore::new(&dir);
        let trace = sample_trace();

        // Two injected failures, three attempts: the third succeeds.
        inject_save_failures(2);
        store.save_with_retry("rk", &trace, 3).unwrap();
        assert!(matches!(store.load("rk"), LoadOutcome::Hit(_)));

        // More failures than attempts: the error surfaces, nothing is
        // written, and the caller's cache simply stays cold.
        inject_save_failures(3);
        let err = store.save_with_retry("rk2", &trace, 3).unwrap_err();
        assert!(err.to_string().contains("injected save failure"), "{err}");
        assert!(matches!(store.load("rk2"), LoadOutcome::Absent));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn lock_excludes_second_writer_and_releases_on_drop() {
        let dir = std::env::temp_dir().join(format!("adacomm_store_lock_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = RunStore::new(&dir);

        let lock = store.lock("first-writer").unwrap();
        assert!(lock.path().exists());
        // Our own pid is alive, so a second writer must be refused with a
        // message naming the holder.
        let err = store.lock("second-writer").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        let msg = err.to_string();
        assert!(msg.contains("first-writer"), "{msg}");
        assert!(msg.contains(&std::process::id().to_string()), "{msg}");

        drop(lock);
        // Released: the next writer acquires cleanly.
        let relock = store.lock("second-writer").unwrap();
        drop(relock);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_lock_from_crashed_process_is_reclaimed() {
        let dir =
            std::env::temp_dir().join(format!("adacomm_store_reclaim_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = RunStore::new(&dir);
        fs::create_dir_all(&dir).unwrap();

        // A pid far above any real pid_max: the "crashed writer" cannot
        // exist, so its lock is stale by construction.
        fs::write(store.lock_path(), "4000000000 crashed-daemon").unwrap();
        let lock = store
            .lock("survivor")
            .expect("stale lock must be reclaimed");
        let contents = fs::read_to_string(lock.path()).unwrap();
        assert!(
            contents.starts_with(&std::process::id().to_string()),
            "reclaimed lock must name the new holder: {contents}"
        );
        drop(lock);

        // Garbage contents (no pid at all) are also treated as stale.
        fs::write(store.lock_path(), "not-a-pid at all").unwrap();
        let lock = store.lock("survivor2").expect("garbage lock is stale");
        drop(lock);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_lock_reclaim_race_has_exactly_one_winner() {
        // Two threads race to reclaim the same dead-pid lock. The rename
        // reclaim admits exactly one winner per round; the loser fails
        // fast with WouldBlock and the winner's lockfile survives intact.
        let dir =
            std::env::temp_dir().join(format!("adacomm_store_lock_race_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let store = RunStore::new(&dir);

        for round in 0..25 {
            fs::write(store.lock_path(), "4000000000 crashed-daemon").unwrap();
            let start = std::sync::Barrier::new(2);
            let settled = std::sync::Barrier::new(2);
            let (a, b) = std::thread::scope(|s| {
                let racer = |label: &'static str| {
                    let store = RunStore::new(&dir);
                    let (start, settled) = (&start, &settled);
                    s.spawn(move || {
                        start.wait();
                        let outcome = store.lock(label);
                        // A winner holds its lock until the other racer's
                        // attempt has finished, so the loser always probes
                        // a live holder — no accidental handoff.
                        settled.wait();
                        outcome.map(drop)
                    })
                };
                let a = racer("racer-a");
                let b = racer("racer-b");
                (a.join().unwrap(), b.join().unwrap())
            });
            let winners = [&a, &b].iter().filter(|r| r.is_ok()).count();
            assert_eq!(winners, 1, "round {round}: got {a:?} / {b:?}");
            let loser = if a.is_err() { a } else { b };
            assert_eq!(
                loser.unwrap_err().kind(),
                io::ErrorKind::WouldBlock,
                "round {round}: loser must fail fast with WouldBlock"
            );
            assert!(
                !store.lock_path().exists(),
                "round {round}: winner's drop must have released the lock"
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_sweeps_orphans_and_aged_parked_frames() {
        let dir = std::env::temp_dir().join(format!("adacomm_store_gc_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = RunStore::new(&dir);
        fs::create_dir_all(dir.join("parked")).unwrap();

        fs::write(dir.join("0123456789abcdef.tmp.999"), b"orphan").unwrap();
        fs::write(dir.join("parked").join("fedcba.tmp.999"), b"orphan").unwrap();
        fs::write(dir.join("parked").join("00aa.park"), b"aged frame").unwrap();
        fs::write(dir.join(".lock"), "1 live-holder").unwrap();
        fs::write(dir.join("journal.log"), b"keep me").unwrap();
        fs::write(dir.join("0123456789abcdef.run"), b"keep me").unwrap();

        // Generous age limit: parked frames are kept, orphan tmps go.
        let stats = store.gc(Duration::from_secs(3600));
        assert_eq!(stats.tmp_removed, 2, "{stats:?}");
        assert_eq!(stats.parked_removed, 0, "{stats:?}");
        assert_eq!(stats.parked_kept, 1, "{stats:?}");

        // Zero age limit: the parked frame is abandoned debris too.
        let stats = store.gc(Duration::ZERO);
        assert_eq!(stats.parked_removed, 1, "{stats:?}");
        assert_eq!(stats.reclaimed(), 1, "{stats:?}");

        assert!(dir.join(".lock").exists(), "gc must never touch the lock");
        assert!(
            dir.join("journal.log").exists(),
            "gc must spare the journal"
        );
        assert!(dir.join("0123456789abcdef.run").exists(), "entries stay");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn parked_checkpoints_absent_rejected_and_unparked() {
        let dir = std::env::temp_dir().join(format!("adacomm_store_park_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = RunStore::new(&dir);

        assert!(matches!(store.load_parked("pk"), ParkedOutcome::Absent));

        // Foreign bytes at the parked path must reject, never panic.
        let path = store.parked_path("pk");
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, b"ACPKgarbage").unwrap();
        match store.load_parked("pk") {
            ParkedOutcome::Rejected(reason) => {
                assert!(reason.contains("store format"), "{reason}")
            }
            other => panic!("expected rejection, got {other:?}"),
        }

        store.unpark("pk");
        assert!(matches!(store.load_parked("pk"), ParkedOutcome::Absent));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_load_evict_cycle() {
        let _serial = SAVE_LOCK.lock().unwrap();
        let dir = std::env::temp_dir().join(format!("adacomm_store_unit_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = RunStore::new(&dir);
        let trace = sample_trace();

        assert!(matches!(store.load("k"), LoadOutcome::Absent));
        store.save("k", &trace).unwrap();
        match store.load("k") {
            LoadOutcome::Hit(t) => assert_eq!(bits(&t), bits(&trace)),
            other => panic!("expected hit, got {other:?}"),
        }
        store.evict("k");
        assert!(matches!(store.load("k"), LoadOutcome::Absent));
        let _ = fs::remove_dir_all(&dir);
    }
}
