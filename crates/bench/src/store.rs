//! Persistent content-addressed run store: memoized [`RunTrace`]s on disk.
//!
//! The sweep engine already memoizes runs in memory for one process; this
//! module extends that memoization across processes. Every entry is a
//! single file under a cache directory (`results/cache/` by default),
//! addressed by the FNV-1a hash of the spec's semantic key, holding the
//! run's trace in the same explicit little-endian wire format the
//! checkpoint layer uses ([`pasgd_sim::checkpoint::write_run_trace`]).
//! Traces are bit-exact through the format, so a warm `reproduce_all`
//! writes byte-identical CSVs without re-simulating anything.
//!
//! The store is paranoid by construction: a load re-validates the magic,
//! the store format version, the code-semantics version, the full key
//! echo (so a hash collision or a stale entry for a different spec can
//! never be served), the payload length, and a CRC-32 of the payload
//! before it decodes a single trace point — and the decode itself is the
//! fully fallible checkpoint reader. Every failure mode degrades to
//! [`LoadOutcome::Rejected`] with a reason; the engine then evicts the
//! bad entry and recomputes. Nothing in this module panics on foreign
//! bytes.
//!
//! Writes go through a temporary file in the same directory followed by
//! an atomic rename, so a concurrently-read entry is always either the
//! old complete frame or the new complete frame, never a torn prefix.

use binio::{crc32, fnv1a64, ByteReader, ByteWriter};
use pasgd_sim::checkpoint::{read_run_trace, write_run_trace};
use pasgd_sim::RunTrace;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};

/// Remaining injected save failures (tests and fault drills): while
/// non-zero, each [`RunStore::save`] consumes one and fails with a
/// synthetic I/O error before touching the filesystem.
static INJECTED_SAVE_FAILURES: AtomicU32 = AtomicU32::new(0);

/// Arms `count` synthetic save failures, exercising the retry path
/// without needing a genuinely broken filesystem.
pub fn inject_save_failures(count: u32) {
    INJECTED_SAVE_FAILURES.fetch_add(count, Ordering::SeqCst);
}

/// Consumes one injected save failure, if armed.
fn take_injected_save_failure() -> bool {
    INJECTED_SAVE_FAILURES
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
        .is_ok()
}

/// Layout version of the entry frame itself. Bump when the framing
/// (header fields, checksum, payload encoding) changes shape.
pub const STORE_FORMAT_VERSION: u32 = 1;

/// Version of the *simulation semantics* behind the cached traces. Any
/// change that can alter a trace for an unchanged spec key — optimizer
/// math, RNG streams, delay sampling, codec behaviour, recording cadence
/// — must bump this, which invalidates every existing entry at load
/// time (they reject cleanly and recompute).
pub const CODE_SEMANTICS_VERSION: u32 = 1;

/// Entry frame magic: **A**da**C**omm **R**un **S**tore.
const MAGIC: [u8; 4] = *b"ACRS";

/// Outcome of [`RunStore::load`].
#[derive(Debug)]
pub enum LoadOutcome {
    /// The entry existed, validated end-to-end, and decoded.
    Hit(RunTrace),
    /// No entry on disk for this key — the ordinary cold-cache case.
    Absent,
    /// An entry existed but failed validation (truncated, bit-flipped,
    /// stale version, wrong key, unreadable). The reason says which
    /// check failed; the caller recomputes.
    Rejected(String),
}

/// Counters the engine keeps over its cache traffic, one count per
/// distinct spec key for the hit/miss split (repeat requests for an
/// already-resolved key count as memory hits regardless of where the
/// first resolution came from).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests served from the in-process memoization map.
    pub mem_hits: usize,
    /// Distinct keys whose first resolution was a validated disk entry.
    pub disk_hits: usize,
    /// Distinct keys that had to be simulated.
    pub misses: usize,
    /// Disk entries that failed validation and were evicted (each such
    /// key is *also* counted as a miss once recomputed).
    pub rejects: usize,
}

/// A content-addressed directory of serialized run traces.
#[derive(Debug)]
pub struct RunStore {
    dir: PathBuf,
}

impl RunStore {
    /// A store rooted at `dir`. The directory is created lazily on the
    /// first successful save, so constructing a store never touches the
    /// filesystem.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        RunStore { dir: dir.into() }
    }

    /// The default store location: `cache/` under the active results
    /// directory — `results/cache/` normally, `results/smoke/cache/`
    /// after `--smoke` redirects results, so smoke runs never read or
    /// pollute the real cache.
    pub fn default_dir() -> PathBuf {
        crate::report::results_dir().join("cache")
    }

    /// The directory this store reads and writes.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file an entry for `key` lives at: the FNV-1a 64-bit hash of
    /// the key, in hex, with a `.run` extension. The full key is echoed
    /// inside the frame, so hash collisions are detected at load time
    /// rather than silently served.
    pub fn entry_path(&self, key: &str) -> PathBuf {
        self.dir
            .join(format!("{:016x}.run", fnv1a64(key.as_bytes())))
    }

    /// Loads and validates the entry for `key`. Never panics: anything
    /// short of a fully valid frame for exactly this key comes back as
    /// [`LoadOutcome::Rejected`] (or [`LoadOutcome::Absent`] when no
    /// file exists).
    pub fn load(&self, key: &str) -> LoadOutcome {
        let _phase = telemetry::span("phase.store_load");
        let path = self.entry_path(key);
        let bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return LoadOutcome::Absent,
            Err(e) => return LoadOutcome::Rejected(format!("unreadable entry: {e}")),
        };
        telemetry::counter("store.loads").inc();
        telemetry::counter("store.load_bytes").add(bytes.len() as u64);
        match decode_entry(&bytes, key) {
            Ok(trace) => LoadOutcome::Hit(trace),
            Err(reason) => LoadOutcome::Rejected(reason),
        }
    }

    /// Serializes `trace` and installs it for `key` via a temp file and
    /// an atomic rename, so concurrent readers always see a complete
    /// frame.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the directory, the temp file
    /// or the rename fails. Callers treat a failed save as a non-event:
    /// the run already happened, the cache just stays cold.
    pub fn save(&self, key: &str, trace: &RunTrace) -> io::Result<PathBuf> {
        let _phase = telemetry::span("phase.store_save");
        if take_injected_save_failure() {
            return Err(io::Error::other("injected save failure (fault drill)"));
        }
        let path = self.entry_path(key);
        fs::create_dir_all(&self.dir)?;
        let tmp = self.dir.join(format!(
            "{:016x}.tmp.{}",
            fnv1a64(key.as_bytes()),
            std::process::id()
        ));
        let frame = encode_entry(key, trace);
        telemetry::counter("store.saves").inc();
        telemetry::counter("store.save_bytes").add(frame.len() as u64);
        fs::write(&tmp, frame)?;
        match fs::rename(&tmp, &path) {
            Ok(()) => Ok(path),
            Err(e) => {
                let _ = fs::remove_file(&tmp);
                Err(e)
            }
        }
    }

    /// [`RunStore::save`] with bounded retry for transient I/O failures
    /// (`max_attempts` total attempts, a short fixed pause between them —
    /// deterministic, no wall-clock randomness). The run already
    /// happened, so a save that still fails after the budget is reported
    /// to the caller, who treats the cache as cold rather than evicting
    /// or failing the run.
    ///
    /// # Errors
    ///
    /// Returns the last I/O error once every attempt failed.
    pub fn save_with_retry(
        &self,
        key: &str,
        trace: &RunTrace,
        max_attempts: u32,
    ) -> io::Result<PathBuf> {
        assert!(max_attempts >= 1);
        let mut last = None;
        for attempt in 1..=max_attempts {
            if attempt > 1 {
                telemetry::counter("store.save_retries").inc();
                std::thread::sleep(std::time::Duration::from_millis(5 * u64::from(attempt)));
            }
            match self.save(key, trace) {
                Ok(path) => return Ok(path),
                Err(e) => last = Some(e),
            }
        }
        Err(last.expect("at least one attempt ran"))
    }

    /// Removes the entry for `key`, if any — how the engine clears a
    /// rejected (corrupt or stale) entry so the recomputed trace can be
    /// re-saved cleanly. Best-effort: removal errors are ignored.
    pub fn evict(&self, key: &str) {
        let _ = fs::remove_file(self.entry_path(key));
    }
}

/// Builds the full entry frame:
///
/// ```text
/// magic "ACRS" | store version u32 | code-semantics version u32
/// | key (len-prefixed UTF-8) | payload len u64 | crc32(payload) u32
/// | payload (write_run_trace)
/// ```
fn encode_entry(key: &str, trace: &RunTrace) -> Vec<u8> {
    let mut payload = ByteWriter::new();
    write_run_trace(&mut payload, trace);
    let payload = payload.into_vec();

    let mut w = ByteWriter::with_capacity(payload.len() + key.len() + 32);
    w.put_bytes(&MAGIC);
    w.put_u32(STORE_FORMAT_VERSION);
    w.put_u32(CODE_SEMANTICS_VERSION);
    w.put_str(key);
    w.put_u64(payload.len() as u64);
    w.put_u32(crc32(&payload));
    w.put_bytes(&payload);
    w.into_vec()
}

/// Validates and decodes one entry frame against the requested `key`.
/// Every check returns a reason instead of panicking.
fn decode_entry(bytes: &[u8], key: &str) -> Result<RunTrace, String> {
    let mut r = ByteReader::new(bytes);
    let magic = r.bytes(4).map_err(|e| format!("truncated magic: {e:?}"))?;
    if magic != MAGIC {
        return Err(format!("bad magic {magic:02x?}"));
    }
    let format = r.u32().map_err(|e| format!("truncated header: {e:?}"))?;
    if format != STORE_FORMAT_VERSION {
        return Err(format!(
            "store format v{format}, this build reads v{STORE_FORMAT_VERSION}"
        ));
    }
    let semantics = r.u32().map_err(|e| format!("truncated header: {e:?}"))?;
    if semantics != CODE_SEMANTICS_VERSION {
        return Err(format!(
            "code semantics v{semantics}, this build is v{CODE_SEMANTICS_VERSION}"
        ));
    }
    let stored_key = r.str().map_err(|e| format!("unreadable key: {e:?}"))?;
    if stored_key != key {
        // A hash collision or an entry rewritten under a different spec.
        return Err("key mismatch (hash collision or stale rewrite)".into());
    }
    let payload_len = r.u64().map_err(|e| format!("truncated header: {e:?}"))? as usize;
    if payload_len != r.remaining().saturating_sub(4) {
        return Err(format!(
            "payload length {payload_len} disagrees with file size"
        ));
    }
    let stored_crc = r.u32().map_err(|e| format!("truncated header: {e:?}"))?;
    let payload = r
        .bytes(payload_len)
        .map_err(|e| format!("truncated payload: {e:?}"))?;
    if crc32(payload) != stored_crc {
        return Err("payload checksum mismatch".into());
    }
    let mut pr = ByteReader::new(payload);
    let trace = read_run_trace(&mut pr).map_err(|e| format!("undecodable payload: {e:?}"))?;
    if !pr.is_empty() {
        return Err(format!("{} trailing payload bytes", pr.remaining()));
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pasgd_sim::TracePoint;

    fn sample_trace() -> RunTrace {
        RunTrace {
            name: "store-test".into(),
            points: vec![
                TracePoint {
                    clock: 1.5,
                    iterations: 10,
                    epoch: 0.25,
                    train_loss: f32::NAN,
                    test_accuracy: 0.5,
                    tau: 4,
                    lr: -0.0,
                    comm_bytes: 1024.0,
                },
                TracePoint {
                    clock: 3.0,
                    iterations: 20,
                    epoch: 0.5,
                    train_loss: 0.9,
                    test_accuracy: f64::INFINITY,
                    tau: 2,
                    lr: 0.05,
                    comm_bytes: 2048.0,
                },
            ],
            peak_payload_bytes: 512.0,
            rounds: 5,
        }
    }

    fn bits(t: &RunTrace) -> Vec<u64> {
        let mut v = vec![t.peak_payload_bytes.to_bits(), t.rounds];
        for p in &t.points {
            v.extend([
                p.clock.to_bits(),
                p.iterations,
                p.epoch.to_bits(),
                u64::from(p.train_loss.to_bits()),
                p.test_accuracy.to_bits(),
                p.tau as u64,
                u64::from(p.lr.to_bits()),
                p.comm_bytes.to_bits(),
            ]);
        }
        v
    }

    #[test]
    fn encode_decode_roundtrip_is_bit_exact() {
        let trace = sample_trace();
        let bytes = encode_entry("some|key", &trace);
        let back = decode_entry(&bytes, "some|key").unwrap();
        assert_eq!(back.name, trace.name);
        assert_eq!(bits(&back), bits(&trace));
    }

    #[test]
    fn wrong_key_is_rejected() {
        let bytes = encode_entry("key-a", &sample_trace());
        let err = decode_entry(&bytes, "key-b").unwrap_err();
        assert!(err.contains("key mismatch"), "{err}");
    }

    #[test]
    fn every_truncation_is_rejected() {
        let bytes = encode_entry("k", &sample_trace());
        for cut in 0..bytes.len() {
            assert!(
                decode_entry(&bytes[..cut], "k").is_err(),
                "truncation to {cut} bytes must not decode"
            );
        }
    }

    #[test]
    fn every_single_bit_flip_is_rejected_or_detected() {
        // Flipping any bit anywhere in the frame must never produce a
        // *silent* wrong trace: either a validation error fires, or the
        // flip didn't survive (impossible — every byte is covered by
        // magic, versions, key echo, length, or CRC).
        let trace = sample_trace();
        let bytes = encode_entry("k", &trace);
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut bad = bytes.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    decode_entry(&bad, "k").is_err(),
                    "flip at byte {byte} bit {bit} decoded silently"
                );
            }
        }
    }

    #[test]
    fn zero_length_is_rejected() {
        assert!(decode_entry(&[], "k").is_err());
    }

    // Saves in different tests race on the global injected-failure
    // counter; every test that saves takes this lock.
    static SAVE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn save_with_retry_recovers_from_injected_io_errors() {
        let _serial = SAVE_LOCK.lock().unwrap();
        let dir = std::env::temp_dir().join(format!("adacomm_store_retry_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = RunStore::new(&dir);
        let trace = sample_trace();

        // Two injected failures, three attempts: the third succeeds.
        inject_save_failures(2);
        store.save_with_retry("rk", &trace, 3).unwrap();
        assert!(matches!(store.load("rk"), LoadOutcome::Hit(_)));

        // More failures than attempts: the error surfaces, nothing is
        // written, and the caller's cache simply stays cold.
        inject_save_failures(3);
        let err = store.save_with_retry("rk2", &trace, 3).unwrap_err();
        assert!(err.to_string().contains("injected save failure"), "{err}");
        assert!(matches!(store.load("rk2"), LoadOutcome::Absent));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_load_evict_cycle() {
        let _serial = SAVE_LOCK.lock().unwrap();
        let dir = std::env::temp_dir().join(format!("adacomm_store_unit_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = RunStore::new(&dir);
        let trace = sample_trace();

        assert!(matches!(store.load("k"), LoadOutcome::Absent));
        store.save("k", &trace).unwrap();
        match store.load("k") {
            LoadOutcome::Hit(t) => assert_eq!(bits(&t), bits(&trace)),
            other => panic!("expected hit, got {other:?}"),
        }
        store.evict("k");
        assert!(matches!(store.load("k"), LoadOutcome::Absent));
        let _ = fs::remove_dir_all(&dir);
    }
}
