//! Running one figure *panel*: a family of methods (fixed-τ baselines +
//! AdaComm) on a shared scenario, with paper-style reporting.

use crate::report::{ascii_series, write_csv, Table};
use crate::scenarios::Scenario;
use adacomm::{AdaComm, AdaCommConfig, CommSchedule, FixedComm, LrCoupling, LrSchedule};
use pasgd_sim::{MomentumMode, RunTrace};
use std::fmt::Write as _;

/// Which learning-rate schedule a panel uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LrMode {
    /// The scenario's constant learning rate.
    Fixed,
    /// The scenario's step schedule (with τ-gated decay for AdaComm runs).
    Variable,
}

/// Runs the paper's standard method family on a scenario panel:
/// `τ = 1` (sync), the scenario's fixed τ baselines, and AdaComm.
///
/// `momentum` optionally overrides the momentum mode per method: the paper
/// gives `τ = 1` plain momentum and PASGD methods block momentum
/// (Section 5.3.1); pass `None` for the no-momentum panels.
pub fn run_standard_panel(
    scenario: &Scenario,
    lr_mode: LrMode,
    with_momentum: bool,
) -> Vec<RunTrace> {
    let lr_schedule = match lr_mode {
        LrMode::Fixed => scenario.fixed_lr.clone(),
        LrMode::Variable => scenario.variable_lr.clone(),
    };
    // Momentum multiplies the effective step size by 1/(1-beta); the
    // substitute models have no batch norm to absorb that, so momentum
    // panels run at a tenth of the plain rate (see EXPERIMENTS.md).
    let lr_schedule = if with_momentum {
        lr_schedule.scaled(0.1)
    } else {
        lr_schedule
    };
    let mut traces = Vec::new();
    for &tau in &scenario.fixed_taus {
        let mut sched = FixedComm::new(tau);
        // Fixed-tau baselines decay the lr at the scheduled epochs
        // unconditionally; the tau-gating policy belongs to AdaComm.
        let momentum = if !with_momentum {
            None
        } else if tau == 1 {
            // Paper: "In the fully synchronous case ... we simply follow
            // the common practice setting the momentum factor as 0.9."
            Some(MomentumMode::Local {
                beta: 0.9,
                reset_at_sync: false,
            })
        } else {
            Some(MomentumMode::paper_block())
        };
        let trace =
            scenario
                .suite
                .run_with_options(&mut sched, &lr_schedule, momentum, Some(false));
        traces.push(trace);
    }
    // AdaComm, with lr coupling (eq. 20) when the schedule is variable.
    let config = AdaCommConfig {
        tau0: scenario.tau0,
        lr_coupling: if lr_mode == LrMode::Variable {
            LrCoupling::Sqrt
        } else {
            LrCoupling::None
        },
        max_tau: 256.max(scenario.tau0),
        ..AdaCommConfig::default()
    };
    let mut ada = AdaComm::new(config);
    let momentum = with_momentum.then(MomentumMode::paper_block);
    let trace = scenario
        .suite
        .run_with_options(&mut ada, &lr_schedule, momentum, Some(true));
    traces.push(trace);
    traces
}

/// Prints the paper-style summary for a panel: an ASCII loss-vs-time plot,
/// a summary table, and the speed-up in time-to-target-loss relative to
/// fully synchronous SGD. Returns the rendered report.
pub fn report_panel(title: &str, traces: &[RunTrace]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "=== {title} ===\n");

    let series: Vec<(String, Vec<(f64, f64)>)> = traces
        .iter()
        .map(|t| {
            (
                t.name.clone(),
                t.points
                    .iter()
                    .map(|p| (p.clock, f64::from(p.train_loss)))
                    .collect(),
            )
        })
        .collect();
    let _ = writeln!(out, "training loss vs wall-clock seconds (log y):");
    out.push_str(&ascii_series(&series, 70, 16));

    let mut table = Table::new(vec![
        "method".into(),
        "final loss".into(),
        "min loss".into(),
        "best acc %".into(),
        "iterations".into(),
        "final tau".into(),
    ]);
    for t in traces {
        let last = t.points.last().expect("non-empty trace");
        table.row(vec![
            t.name.clone(),
            format!("{:.4}", t.final_loss()),
            format!("{:.4}", t.min_loss()),
            format!("{:.2}", 100.0 * t.best_test_accuracy()),
            last.iterations.to_string(),
            last.tau.to_string(),
        ]);
    }
    out.push('\n');
    out.push_str(&table.render());

    // Speed-up metric: time for each method to reach (near) the sync final
    // loss — the paper's "X vs Y minutes to reach loss Z" comparisons.
    if let Some(sync) = traces.iter().find(|t| t.name == "sync-sgd") {
        let target = sync.final_loss() * 1.1;
        let sync_time = sync.time_to_loss(target);
        let _ = writeln!(out, "\ntime to reach training loss {target:.4}:");
        for t in traces {
            match (t.time_to_loss(target), sync_time) {
                (Some(tt), Some(st)) => {
                    let _ = writeln!(
                        out,
                        "  {:>16}: {tt:>8.1} s ({:.2}x vs sync)",
                        t.name,
                        st / tt
                    );
                }
                (Some(tt), None) => {
                    let _ = writeln!(out, "  {:>16}: {tt:>8.1} s", t.name);
                }
                (None, _) => {
                    let _ = writeln!(out, "  {:>16}: not reached", t.name);
                }
            }
        }
    }
    out
}

/// Saves a panel's traces as one CSV: columns
/// `method, clock, iterations, epoch, train_loss, test_accuracy, tau, lr,
/// comm_bytes`.
///
/// # Errors
///
/// Returns the underlying I/O error if the CSV cannot be written.
pub fn save_panel_csv(name: &str, traces: &[RunTrace]) -> std::io::Result<()> {
    let mut csv =
        String::from("method,clock,iterations,epoch,train_loss,test_accuracy,tau,lr,comm_bytes\n");
    for t in traces {
        for p in &t.points {
            let _ = writeln!(
                csv,
                "{},{},{},{},{},{},{},{},{}",
                t.name,
                p.clock,
                p.iterations,
                p.epoch,
                p.train_loss,
                p.test_accuracy,
                p.tau,
                p.lr,
                p.comm_bytes
            );
        }
    }
    write_csv(name, &csv)
}

/// Builds the scheduler box family used by ablation binaries.
pub fn adacomm_with(tau0: usize, gamma: f64, coupling: LrCoupling) -> Box<dyn CommSchedule> {
    Box::new(AdaComm::new(AdaCommConfig {
        tau0,
        gamma,
        lr_coupling: coupling,
        max_tau: 256.max(tau0),
        ..AdaCommConfig::default()
    }))
}

/// Convenience: the method name table reused across reports.
pub fn lr_schedule_for(scenario: &Scenario, mode: LrMode) -> LrSchedule {
    match mode {
        LrMode::Fixed => scenario.fixed_lr.clone(),
        LrMode::Variable => scenario.variable_lr.clone(),
    }
}
