//! Paper-style reporting for one figure *panel*: a family of methods
//! (fixed-τ baselines + AdaComm) run on a shared scenario.
//!
//! The runs themselves are declared as [`crate::sweep::SweepSpec`]s (see
//! [`crate::sweep::standard_panel_specs`]) and executed by the
//! [`crate::sweep::SweepEngine`]; this module renders the results.

use crate::report::{ascii_series, write_csv, Table};
use pasgd_sim::RunTrace;
use std::fmt::Write as _;
use std::path::PathBuf;

/// Renders the paper-style summary for a panel: an ASCII loss-vs-time
/// plot, a summary table, and the speed-up in time-to-target-loss relative
/// to fully synchronous SGD. Returns the rendered report.
pub fn report_panel(title: &str, traces: &[RunTrace]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "=== {title} ===\n");

    let series: Vec<(String, Vec<(f64, f64)>)> = traces
        .iter()
        .map(|t| {
            (
                t.name.clone(),
                t.points
                    .iter()
                    .map(|p| (p.clock, f64::from(p.train_loss)))
                    .collect(),
            )
        })
        .collect();
    let _ = writeln!(out, "training loss vs wall-clock seconds (log y):");
    out.push_str(&ascii_series(&series, 70, 16));

    let mut table = Table::new(vec![
        "method".into(),
        "final loss".into(),
        "min loss".into(),
        "best acc %".into(),
        "iterations".into(),
        "final tau".into(),
    ]);
    for t in traces {
        let last = t.points.last().expect("non-empty trace");
        table.row(vec![
            t.name.clone(),
            format!("{:.4}", t.final_loss()),
            format!("{:.4}", t.min_loss()),
            format!("{:.2}", 100.0 * t.best_test_accuracy()),
            last.iterations.to_string(),
            last.tau.to_string(),
        ]);
    }
    out.push('\n');
    out.push_str(&table.render());

    // Speed-up metric: time for each method to reach (near) the sync final
    // loss — the paper's "X vs Y minutes to reach loss Z" comparisons.
    if let Some(sync) = traces.iter().find(|t| t.name == "sync-sgd") {
        let target = sync.final_loss() * 1.1;
        let sync_time = sync.time_to_loss(target);
        let _ = writeln!(out, "\ntime to reach training loss {target:.4}:");
        for t in traces {
            match (t.time_to_loss(target), sync_time) {
                (Some(tt), Some(st)) => {
                    let _ = writeln!(
                        out,
                        "  {:>16}: {tt:>8.1} s ({:.2}x vs sync)",
                        t.name,
                        st / tt
                    );
                }
                (Some(tt), None) => {
                    let _ = writeln!(out, "  {:>16}: {tt:>8.1} s", t.name);
                }
                (None, _) => {
                    let _ = writeln!(out, "  {:>16}: not reached", t.name);
                }
            }
        }
    }
    out
}

/// Renders a panel's traces as one CSV string: columns
/// `method, clock, iterations, epoch, train_loss, test_accuracy, tau, lr,
/// comm_bytes`. A pure function of the traces — the cross-run
/// bit-identity test byte-compares this rendering between a cold and a
/// store-served reproduction.
pub fn panel_csv(traces: &[RunTrace]) -> String {
    let mut csv =
        String::from("method,clock,iterations,epoch,train_loss,test_accuracy,tau,lr,comm_bytes\n");
    for t in traces {
        for p in &t.points {
            let _ = writeln!(
                csv,
                "{},{},{},{},{},{},{},{},{}",
                t.name,
                p.clock,
                p.iterations,
                p.epoch,
                p.train_loss,
                p.test_accuracy,
                p.tau,
                p.lr,
                p.comm_bytes
            );
        }
    }
    csv
}

/// Saves a panel's traces as one CSV (see [`panel_csv`] for the columns).
/// Returns the written path.
///
/// # Errors
///
/// Returns the underlying I/O error if the CSV cannot be written.
pub fn save_panel_csv(name: &str, traces: &[RunTrace]) -> std::io::Result<PathBuf> {
    write_csv(name, &panel_csv(traces))
}
