//! Deterministic, seeded failpoints: named fault-injection sites that
//! tests, drills, and CI arm by name — through the API or the
//! `ADACOMM_FAILPOINTS` environment variable — to force a specific
//! failure at a specific moment.
//!
//! A failpoint is a *site* in production code (`failpoint::fire("name")`)
//! plus an optional *arming* (`skip` hits pass through, then `count` hits
//! trigger). Unarmed sites cost one relaxed atomic load; with the
//! `failpoints` cargo feature off (it is on by default, like `trace`)
//! every function in this module is a no-op on nothing, mirroring the
//! telemetry ZST discipline: a build that never heard of failpoints is
//! byte-identical in behaviour.
//!
//! Arming is deterministic — no wall-clock, no RNG. A drill that arms
//! `store.save.torn=1` gets a torn write on exactly the first save, every
//! time, which is what lets the chaos drills in CI assert exact recovery
//! behaviour instead of "usually recovers".
//!
//! # Registered sites
//!
//! | name | effect at the site |
//! |---|---|
//! | `store.save.io_error` | save fails before touching the filesystem |
//! | `store.save.corrupt` | one bit of the frame flips before writing (CRC catches it at load) |
//! | `store.save.torn` | a truncated frame lands at the *final* path and save reports success |
//! | `store.save.orphan_tmp` | the temp file is written, then save fails before the rename (orphan left for GC) |
//! | `store.save.rename_fail` | the atomic rename fails (temp cleaned up) |
//! | `store.load.unreadable` | load reports a transient `unreadable entry` (exercises the engine's read retry) |
//! | `store.park.io_error` | parking a checkpoint fails |
//! | `store.park.torn` | a truncated parked frame lands at the final path and park reports success |
//! | `server.journal.io_error` | a journal append fails (the daemon warns and keeps serving) |
//! | `server.request.abort` | the process aborts as a worker starts executing a run (SIGKILL-equivalent) |
//! | `server.journal.post_append_abort` | the process aborts right after an accepted request is journaled |
//! | `supervisor.attempt.panic` | a supervised attempt panics at entry (retried under the policy) |
//!
//! The table is the contract: [`init_from_env`] rejects names not listed
//! here, so a typo in a CI job fails fast instead of silently arming
//! nothing.

/// Every site name production code fires. Kept in one place so env
/// parsing can reject typos.
pub const KNOWN_SITES: &[&str] = &[
    "store.save.io_error",
    "store.save.corrupt",
    "store.save.torn",
    "store.save.orphan_tmp",
    "store.save.rename_fail",
    "store.load.unreadable",
    "store.park.io_error",
    "store.park.torn",
    "server.journal.io_error",
    "server.request.abort",
    "server.journal.post_append_abort",
    "supervisor.attempt.panic",
];

/// Environment variable [`init_from_env`] reads:
/// `name=count` or `name=skip:count` entries separated by `;` or `,`.
pub const ENV_VAR: &str = "ADACOMM_FAILPOINTS";

#[cfg(feature = "failpoints")]
mod live {
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Mutex;

    /// Sum of every armed spec's remaining trigger count: the fast path.
    /// `fire` is one relaxed load when nothing is armed anywhere.
    static ARMED_TOTAL: AtomicU32 = AtomicU32::new(0);

    struct Spec {
        skip: u32,
        count: u32,
    }

    struct State {
        armed: HashMap<String, Spec>,
        fired: Vec<String>,
    }

    static STATE: Mutex<Option<State>> = Mutex::new(None);

    fn with_state<T>(f: impl FnOnce(&mut State) -> T) -> T {
        let mut guard = match STATE.lock() {
            Ok(guard) => guard,
            // A panic *inside a failpoint-armed site* (that is the point
            // of `supervisor.attempt.panic`) can poison this lock; the
            // state itself is still coherent.
            Err(poisoned) => poisoned.into_inner(),
        };
        let state = guard.get_or_insert_with(|| State {
            armed: HashMap::new(),
            fired: Vec::new(),
        });
        f(state)
    }

    /// Arms `name` to trigger on its next `count` hits after `skip`
    /// pass-through hits. Re-arming an already-armed site replaces the
    /// previous spec.
    pub fn arm_after(name: &str, skip: u32, count: u32) {
        with_state(|state| {
            let previous = state
                .armed
                .insert(name.to_string(), Spec { skip, count })
                .map_or(0, |s| s.count);
            // Keep the fast-path total equal to the sum of counts.
            if count > previous {
                ARMED_TOTAL.fetch_add(count - previous, Ordering::SeqCst);
            } else {
                ARMED_TOTAL.fetch_sub(previous - count, Ordering::SeqCst);
            }
        });
    }

    /// Disarms everything and clears the fired log (test isolation).
    pub fn disarm_all() {
        with_state(|state| {
            state.armed.clear();
            state.fired.clear();
            ARMED_TOTAL.store(0, Ordering::SeqCst);
        });
    }

    /// One production hit on the site `name`. Returns `true` when the
    /// armed spec elects this hit to fail.
    pub fn fire(name: &str) -> bool {
        if ARMED_TOTAL.load(Ordering::Relaxed) == 0 {
            return false;
        }
        with_state(|state| {
            let Some(spec) = state.armed.get_mut(name) else {
                return false;
            };
            if spec.skip > 0 {
                spec.skip -= 1;
                return false;
            }
            if spec.count == 0 {
                return false;
            }
            spec.count -= 1;
            if spec.count == 0 {
                state.armed.remove(name);
            }
            ARMED_TOTAL.fetch_sub(1, Ordering::SeqCst);
            state.fired.push(name.to_string());
            telemetry::counter("failpoint.fired").inc();
            true
        })
    }

    /// Drains the ordered log of failpoints that actually fired —
    /// drills assert on it to prove the injected fault happened.
    pub fn take_fired() -> Vec<String> {
        with_state(|state| std::mem::take(&mut state.fired))
    }

    /// Whether any failpoint is currently armed (fast, approximate).
    pub fn armed() -> bool {
        ARMED_TOTAL.load(Ordering::Relaxed) != 0
    }
}

#[cfg(feature = "failpoints")]
pub use live::{arm_after, armed, disarm_all, fire, take_fired};

#[cfg(not(feature = "failpoints"))]
mod stub {
    /// No-op: the `failpoints` feature is off.
    pub fn arm_after(_name: &str, _skip: u32, _count: u32) {}
    /// No-op: the `failpoints` feature is off.
    pub fn disarm_all() {}
    /// Always `false`: the `failpoints` feature is off.
    #[inline(always)]
    pub fn fire(_name: &str) -> bool {
        false
    }
    /// Always empty: the `failpoints` feature is off.
    pub fn take_fired() -> Vec<String> {
        Vec::new()
    }
    /// Always `false`: the `failpoints` feature is off.
    #[inline(always)]
    pub fn armed() -> bool {
        false
    }
}

#[cfg(not(feature = "failpoints"))]
pub use stub::{arm_after, armed, disarm_all, fire, take_fired};

/// Arms `name` to trigger on its next `count` hits.
pub fn arm(name: &str, count: u32) {
    arm_after(name, 0, count);
}

/// Fires the site and, when it triggers, aborts the whole process — the
/// deterministic stand-in for SIGKILL at an exact code location. The
/// abort is announced on stderr first so a chaos drill's log shows
/// *which* failpoint killed the process.
pub fn abort_if(name: &str) {
    if fire(name) {
        eprintln!("failpoint {name}: aborting process (chaos drill)");
        std::process::abort();
    }
}

/// Arms every failpoint listed in [`ENV_VAR`] (`name=count` or
/// `name=skip:count`, separated by `;` or `,`). Returns the number of
/// sites armed.
///
/// # Errors
///
/// Returns a message naming the offending entry when a name is not in
/// [`KNOWN_SITES`] or a count fails to parse — callers (the daemon)
/// refuse to start rather than run a drill with a silently-unarmed
/// failpoint.
pub fn init_from_env() -> Result<usize, String> {
    let Ok(raw) = std::env::var(ENV_VAR) else {
        return Ok(0);
    };
    init_from_spec(&raw)
}

/// [`init_from_env`] on an explicit spec string (tests, and the daemon's
/// startup log which echoes what it armed).
///
/// # Errors
///
/// Same contract as [`init_from_env`].
pub fn init_from_spec(raw: &str) -> Result<usize, String> {
    let mut armed_count = 0;
    for entry in raw.split([';', ',']) {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let (name, spec) = entry
            .split_once('=')
            .ok_or_else(|| format!("failpoint entry {entry:?} is not name=count"))?;
        let name = name.trim();
        if !KNOWN_SITES.contains(&name) {
            return Err(format!(
                "unknown failpoint {name:?}; known sites: {}",
                KNOWN_SITES.join(", ")
            ));
        }
        let parse = |v: &str| {
            v.trim()
                .parse::<u32>()
                .map_err(|_| format!("failpoint {name}: bad count {v:?}"))
        };
        let (skip, count) = match spec.split_once(':') {
            Some((skip, count)) => (parse(skip)?, parse(count)?),
            None => (0, parse(spec)?),
        };
        arm_after(name, skip, count);
        armed_count += 1;
    }
    Ok(armed_count)
}

#[cfg(all(test, feature = "failpoints"))]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Failpoint state is process-global; tests in this module serialize.
    static SERIAL: Mutex<()> = Mutex::new(());

    #[test]
    fn unarmed_sites_never_fire() {
        let _serial = SERIAL.lock().unwrap();
        disarm_all();
        assert!(!armed());
        assert!(!fire("store.save.io_error"));
        assert!(take_fired().is_empty());
    }

    #[test]
    fn skip_then_count_semantics() {
        let _serial = SERIAL.lock().unwrap();
        disarm_all();
        arm_after("store.save.io_error", 2, 2);
        let hits: Vec<bool> = (0..6).map(|_| fire("store.save.io_error")).collect();
        assert_eq!(hits, [false, false, true, true, false, false]);
        assert_eq!(take_fired().len(), 2);
        assert!(!armed(), "exhausted spec must clear the fast path");
        disarm_all();
    }

    #[test]
    fn rearming_replaces_and_other_sites_are_untouched() {
        let _serial = SERIAL.lock().unwrap();
        disarm_all();
        arm("store.save.torn", 5);
        arm("store.save.torn", 1);
        assert!(fire("store.save.torn"));
        assert!(!fire("store.save.torn"), "re-arm must replace, not add");
        assert!(!fire("store.save.corrupt"));
        disarm_all();
    }

    #[test]
    fn env_spec_parses_and_rejects_typos() {
        let _serial = SERIAL.lock().unwrap();
        disarm_all();
        let n = init_from_spec("store.save.torn=1; store.load.unreadable=2:1").unwrap();
        assert_eq!(n, 2);
        assert!(armed());
        disarm_all();

        let err = init_from_spec("store.save.tron=1").unwrap_err();
        assert!(err.contains("unknown failpoint"), "{err}");
        let err = init_from_spec("store.save.torn=banana").unwrap_err();
        assert!(err.contains("bad count"), "{err}");
        let err = init_from_spec("just-a-name").unwrap_err();
        assert!(err.contains("name=count"), "{err}");
        disarm_all();
    }
}
