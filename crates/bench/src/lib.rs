//! Shared harness utilities for the figure/table reproduction binaries.
//!
//! Every binary in `src/bin/` regenerates one figure or table of the paper
//! and prints the same series/rows the paper reports, plus a CSV dump under
//! `results/`. This library holds the common pieces: the quick/full scale
//! switch, canonical experiment scenarios, and plain-text reporting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod panel;
pub mod report;
pub mod scale;
pub mod scenarios;

pub use panel::{report_panel, run_standard_panel, save_panel_csv, LrMode};
pub use report::{ascii_series, write_csv, Table};
pub use scale::Scale;
