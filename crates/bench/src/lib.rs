//! Shared harness utilities for the figure/table reproduction binaries.
//!
//! Every binary in `src/bin/` regenerates one figure or table of the paper
//! and prints the same series/rows the paper reports, plus a CSV dump under
//! `results/`. This library holds the common pieces: the smoke/quick/full
//! scale switch, canonical experiment scenarios, the declarative sweep
//! engine that executes runs concurrently in-process ([`sweep`]), the
//! persistent content-addressed run store that memoizes traces across
//! processes ([`store`]), the figure registry ([`figures`]), and
//! plain-text reporting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod failpoint;
pub mod figures;
pub mod panel;
pub mod report;
pub mod scale;
pub mod scenarios;
pub mod server;
pub mod store;
pub mod supervisor;
pub mod sweep;

pub use panel::{panel_csv, report_panel, save_panel_csv};
pub use report::{ascii_series, write_csv, Table};
pub use scale::Scale;
pub use store::{CacheStats, GcStats, LoadOutcome, ParkedOutcome, RunStore, StoreLock};
pub use sweep::{
    standard_panel_specs, CancellableRun, LrSpec, ScenarioSpec, SchedulerSpec, SweepEngine,
    SweepSpec, TraceSource,
};

/// `writeln!` into a figure's report buffer, ignoring the (infallible)
/// `fmt::Result` — figures build their stdout as a `String` so that
/// concurrently-executing figures never interleave their output.
#[macro_export]
macro_rules! sayln {
    ($out:expr) => { $out.push('\n') };
    ($out:expr, $($arg:tt)*) => {{
        use std::fmt::Write as _;
        let _ = writeln!($out, $($arg)*);
    }};
}
