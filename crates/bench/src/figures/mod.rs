//! The figure registry: every paper figure/table/ablation/extension as a
//! library entry.
//!
//! Each figure is a pair of hooks:
//!
//! * [`Figure::specs`] — the [`SweepSpec`]s the figure contributes to the
//!   central sweep table (empty for analytic figures and free-form
//!   experiments). `reproduce_all` collects the union across figures,
//!   deduplicates it, and warms the engine cache in one parallel wave.
//! * [`Figure::run`] — renders the figure: requests its traces from the
//!   engine (cache hits after the warm-up wave), prints paper-style
//!   reports into its own buffer, and writes its CSVs.
//!
//! Figures write *all* of their stdout into the `out` buffer so that
//! concurrently-executing figures never interleave; `reproduce_all`
//! prints the buffers in registry order.

use crate::sweep::{SweepEngine, SweepSpec};
use crate::Scale;
use std::io;

mod ablation_gamma;
mod ablation_lr_coupling;
mod ablation_momentum_mode;
mod ablation_straggler;
mod ablation_t0;
mod ext_averaging_strategies;
mod ext_compression;
mod ext_faults;
mod fig01_concept;
mod fig04_speedup;
mod fig05_runtime_dist;
mod fig06_theory_bound;
mod fig07_switching;
mod fig08_comm_comp;
mod fig09_vgg_adacomm;
mod fig10_resnet_adacomm;
mod fig11_block_momentum;
mod fig12_vgg_8workers;
mod fig13_resnet_8workers;
mod fig14_local_gap;
mod table1_accuracy;
mod thm3_schedule_check;

/// The canonical scenario label, matching
/// [`crate::scenarios::Scenario::name`] without building the suite.
pub(crate) fn scenario_title(
    family: crate::scenarios::ModelFamily,
    classes: usize,
    workers: usize,
    scale: Scale,
) -> String {
    format!(
        "{} / CIFAR{classes}-like / {workers} workers ({scale})",
        family.name()
    )
}

/// Appends the AdaComm communication-period trace printed under the
/// Figure 9–11 panels.
pub(crate) fn append_tau_trace(out: &mut String, trace: &pasgd_sim::RunTrace) {
    crate::sayln!(out, "adacomm comm-period trace:");
    for (t, tau) in trace.tau_trace().iter().step_by(4) {
        crate::sayln!(out, "  t = {t:>7.1} s  tau = {tau}");
    }
    crate::sayln!(out);
}

/// One reproduction target.
pub struct Figure {
    /// Stable name, matching the standalone binary (`--only` filters on
    /// substrings of this).
    pub name: &'static str,
    /// The sweep specs this figure contributes to the central table.
    pub specs: fn(Scale) -> Vec<SweepSpec>,
    /// Renders the figure into `out` (requesting runs from `engine`).
    pub run: fn(Scale, &SweepEngine, &mut String) -> io::Result<()>,
}

fn no_specs(_scale: Scale) -> Vec<SweepSpec> {
    Vec::new()
}

/// Every reproduction target, in the canonical order `reproduce_all`
/// executes and reports them.
pub fn registry() -> Vec<Figure> {
    vec![
        Figure {
            name: "fig01_concept",
            specs: fig01_concept::specs,
            run: fig01_concept::run,
        },
        Figure {
            name: "fig04_speedup",
            specs: no_specs,
            run: fig04_speedup::run,
        },
        Figure {
            name: "fig05_runtime_dist",
            specs: no_specs,
            run: fig05_runtime_dist::run,
        },
        Figure {
            name: "fig06_theory_bound",
            specs: no_specs,
            run: fig06_theory_bound::run,
        },
        Figure {
            name: "fig07_switching",
            specs: no_specs,
            run: fig07_switching::run,
        },
        Figure {
            name: "fig08_comm_comp",
            specs: no_specs,
            run: fig08_comm_comp::run,
        },
        Figure {
            name: "fig09_vgg_adacomm",
            specs: fig09_vgg_adacomm::specs,
            run: fig09_vgg_adacomm::run,
        },
        Figure {
            name: "fig10_resnet_adacomm",
            specs: fig10_resnet_adacomm::specs,
            run: fig10_resnet_adacomm::run,
        },
        Figure {
            name: "fig11_block_momentum",
            specs: fig11_block_momentum::specs,
            run: fig11_block_momentum::run,
        },
        Figure {
            name: "fig12_vgg_8workers",
            specs: fig12_vgg_8workers::specs,
            run: fig12_vgg_8workers::run,
        },
        Figure {
            name: "fig13_resnet_8workers",
            specs: fig13_resnet_8workers::specs,
            run: fig13_resnet_8workers::run,
        },
        Figure {
            name: "fig14_local_gap",
            specs: no_specs,
            run: fig14_local_gap::run,
        },
        Figure {
            name: "table1_accuracy",
            specs: table1_accuracy::specs,
            run: table1_accuracy::run,
        },
        Figure {
            name: "thm3_schedule_check",
            specs: no_specs,
            run: thm3_schedule_check::run,
        },
        Figure {
            name: "ablation_gamma",
            specs: ablation_gamma::specs,
            run: ablation_gamma::run,
        },
        Figure {
            name: "ablation_lr_coupling",
            specs: ablation_lr_coupling::specs,
            run: ablation_lr_coupling::run,
        },
        Figure {
            name: "ablation_momentum_mode",
            specs: ablation_momentum_mode::specs,
            run: ablation_momentum_mode::run,
        },
        Figure {
            name: "ablation_t0",
            specs: ablation_t0::specs,
            run: ablation_t0::run,
        },
        Figure {
            name: "ablation_straggler",
            specs: no_specs,
            run: ablation_straggler::run,
        },
        Figure {
            name: "ext_averaging_strategies",
            specs: ext_averaging_strategies::specs,
            run: ext_averaging_strategies::run,
        },
        Figure {
            name: "ext_compression",
            specs: ext_compression::specs,
            run: ext_compression::run,
        },
        Figure {
            name: "ext_faults",
            specs: ext_faults::specs,
            run: ext_faults::run,
        },
    ]
}

/// The outcome of one figure inside [`reproduce`].
pub struct FigureOutcome {
    /// Registry name.
    pub name: &'static str,
    /// The figure's rendered report (its would-be stdout).
    pub output: String,
    /// Wall-clock seconds this figure's `run` hook took. Figures execute
    /// concurrently, so these overlap and their sum exceeds the driver's
    /// wall time; a figure whose runs were pre-warmed by the sweep wave
    /// reports only its rendering + residual simulation time.
    pub wall_secs: f64,
    /// `Err(panic message)` if the figure panicked (its assertions are
    /// part of the reproduction contract).
    pub failure: Option<String>,
}

/// The outcome of an in-process reproduction sweep.
pub struct ReproOutcome {
    /// Per-figure outcomes, in registry order.
    pub figures: Vec<FigureOutcome>,
    /// Wall-clock seconds of the sweep wave (phase 1: the deduplicated
    /// union of every figure's declared specs, run-parallel).
    pub sweep_secs: f64,
    /// End-to-end wall-clock seconds (sweep wave + figure phase).
    pub total_secs: f64,
    /// Distinct simulation runs the engine executed.
    pub unique_runs: usize,
}

impl ReproOutcome {
    /// Names of figures that failed.
    pub fn failures(&self) -> Vec<&'static str> {
        self.figures
            .iter()
            .filter(|f| f.failure.is_some())
            .map(|f| f.name)
            .collect()
    }
}

/// Runs the whole reproduction in-process: collects every selected
/// figure's declared [`SweepSpec`]s into one table, executes the
/// deduplicated union as a single run-parallel wave on `engine`, then
/// runs the figure bodies (their engine requests are cache hits; free-form
/// extras like the τ0 grid search still simulate) — concurrently when the
/// engine is parallel, strictly in order otherwise.
///
/// `only` filters figures by substring of their registry name.
pub fn reproduce(scale: Scale, engine: &SweepEngine, only: Option<&str>) -> ReproOutcome {
    reproduce_with_trace(scale, engine, only, None).expect("no trace dir requested, so no I/O")
}

/// [`reproduce`] with an optional telemetry trace: when `trace_dir` is
/// `Some`, every execution window (the sweep wave, then each figure body)
/// gets its own JSONL profile in that directory — a `meta` header, the
/// window's metric/span snapshot delta, and the per-round `point` events
/// the simulator emitted while the window ran.
///
/// Tracing forces the figure phase sequential regardless of the engine's
/// parallelism, so each window's snapshot delta is attributable to exactly
/// one figure. Pass `trace_dir = None` for the untraced (and
/// fully-parallel) behaviour; in that mode this never returns `Err`.
///
/// # Errors
///
/// Returns the underlying I/O error if a profile file cannot be written.
pub fn reproduce_with_trace(
    scale: Scale,
    engine: &SweepEngine,
    only: Option<&str>,
    trace_dir: Option<&std::path::Path>,
) -> io::Result<ReproOutcome> {
    use rayon::prelude::*;
    use std::time::Instant;

    let figures: Vec<Figure> = registry()
        .into_iter()
        .filter(|f| only.is_none_or(|needle| f.name.contains(needle)))
        .collect();

    let scale_label = format!("{scale}");
    let sink = trace_dir.map(|dir| {
        std::fs::create_dir_all(dir).ok();
        telemetry::EventSink::new()
    });
    let previous_sink = sink
        .as_ref()
        .map(|s| telemetry::install_sink(Some(s.clone())));
    // Restores the previously-installed sink (usually `None`) even on the
    // early-return I/O error paths below.
    struct SinkRestore {
        armed: bool,
        previous: Option<std::sync::Arc<telemetry::EventSink>>,
    }
    impl Drop for SinkRestore {
        fn drop(&mut self) {
            if self.armed {
                telemetry::install_sink(self.previous.take());
            }
        }
    }
    let _restore = SinkRestore {
        armed: previous_sink.is_some(),
        previous: previous_sink.flatten(),
    };

    let mut window_start = telemetry::snapshot();
    let mut write_window =
        |dir: Option<&std::path::Path>, task: &str, wall_secs: f64| -> io::Result<()> {
            let Some(dir) = dir else { return Ok(()) };
            let now = telemetry::snapshot();
            let delta = now.delta_since(&window_start);
            window_start = now;
            let mut lines = vec![telemetry::schema::meta_line(task, &scale_label, wall_secs)];
            lines.extend(delta.to_jsonl_lines());
            if let Some(sink) = &sink {
                lines.extend(sink.drain());
            }
            telemetry::write_jsonl_atomic(&dir.join(format!("{task}.jsonl")), &lines)
        };

    let start = Instant::now();
    // Phase 1: the central sweep table. Order follows the registry, so a
    // sequential engine executes runs exactly as the figures would.
    let all_specs: Vec<SweepSpec> = figures.iter().flat_map(|f| (f.specs)(scale)).collect();
    {
        // `warm`, not `run`: a run that fails terminally under the
        // supervisor must not abort the wave — its figure fails (with the
        // supervisor's reason) when its body requests the poisoned key,
        // and every other figure still completes.
        let _phase = telemetry::span("phase.sweep_wave");
        engine.warm(&all_specs);
    }
    let sweep_secs = start.elapsed().as_secs_f64();
    write_window(trace_dir, "sweep_wave", sweep_secs)?;

    // Phase 2: figure bodies (rendering + the non-declarable runs).
    struct Job {
        name: &'static str,
        run: fn(Scale, &SweepEngine, &mut String) -> std::io::Result<()>,
        outcome: Option<FigureOutcome>,
    }
    let mut jobs: Vec<Job> = figures
        .iter()
        .map(|f| Job {
            name: f.name,
            run: f.run,
            outcome: None,
        })
        .collect();
    let exec = |job: &mut Job| {
        let t0 = Instant::now();
        let mut output = String::new();
        let failure = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _phase = telemetry::span("phase.figure_render");
            (job.run)(scale, engine, &mut output)
        })) {
            Ok(Ok(())) => None,
            Ok(Err(e)) => Some(format!("I/O error: {e}")),
            Err(panic) => Some(
                panic
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "panicked".to_string()),
            ),
        };
        job.outcome = Some(FigureOutcome {
            name: job.name,
            output,
            wall_secs: t0.elapsed().as_secs_f64(),
            failure,
        });
    };
    if trace_dir.is_some() {
        for job in jobs.iter_mut() {
            exec(job);
            let wall = job
                .outcome
                .as_ref()
                .map(|o| o.wall_secs)
                .unwrap_or_default();
            write_window(trace_dir, job.name, wall)?;
        }
    } else if engine.is_parallel() {
        jobs.par_iter_mut().with_max_len(1).for_each(exec);
    } else {
        jobs.iter_mut().for_each(exec);
    }

    Ok(ReproOutcome {
        figures: jobs
            .into_iter()
            .map(|j| j.outcome.expect("figure job executed"))
            .collect(),
        sweep_secs,
        total_secs: start.elapsed().as_secs_f64(),
        unique_runs: engine.unique_runs(),
    })
}

/// Entry point for the standalone figure binaries: resolves the scale from
/// env/args, runs the named figure on a fresh parallel engine, and prints
/// its report.
///
/// # Panics
///
/// Panics if `name` is not in the registry.
///
/// # Errors
///
/// Propagates the figure's I/O errors (CSV writing).
pub fn run_standalone(name: &str) -> io::Result<()> {
    let figure = registry()
        .into_iter()
        .find(|f| f.name == name)
        .unwrap_or_else(|| panic!("unknown figure {name}"));
    let scale = Scale::from_env_and_args();
    if scale.is_smoke() {
        crate::report::set_results_subdir("smoke");
    }
    let engine = SweepEngine::new();
    let mut out = String::new();
    (figure.run)(scale, &engine, &mut out)?;
    print!("{out}");
    Ok(())
}
