//! Figure 11: AdaComm with block momentum (Section 5.3), 4 workers,
//! variable learning rate. Panels: (a) ResNet-50-like CIFAR10-like,
//! (b) VGG-16-like CIFAR10-like, (c) ResNet-50-like CIFAR100-like.
//!
//! Paper's reported shape: block-momentum AdaComm has the fastest
//! wall-clock convergence throughout; for VGG-16 it is 3.5× faster than
//! fully synchronous SGD (with plain momentum 0.9) to the target loss.

use super::{append_tau_trace, scenario_title};
use crate::scenarios::ModelFamily;
use crate::sweep::{standard_panel_specs, SweepEngine, SweepSpec};
use crate::{report_panel, save_panel_csv, sayln, Scale};
use std::io;

const PANELS: [(&str, &str, ModelFamily, usize); 3] = [
    (
        "a",
        "11a: ResNet-like, CIFAR10-like",
        ModelFamily::ResnetLike,
        10,
    ),
    ("b", "11b: VGG-like, CIFAR10-like", ModelFamily::VggLike, 10),
    (
        "c",
        "11c: ResNet-like, CIFAR100-like",
        ModelFamily::ResnetLike,
        100,
    ),
];

pub(crate) fn specs(scale: Scale) -> Vec<SweepSpec> {
    PANELS
        .iter()
        .flat_map(|&(_, _, family, classes)| {
            // `true`: tau=1 gets plain momentum 0.9, PASGD methods get
            // block momentum (beta_glob 0.3, local 0.9 reset at sync).
            standard_panel_specs(family, classes, 4, scale, true, true)
        })
        .collect()
}

pub(crate) fn run(scale: Scale, engine: &SweepEngine, out: &mut String) -> io::Result<()> {
    sayln!(out, "Figure 11 (scale: {scale}) — block momentum runs\n");
    for (tag, panel, family, classes) in PANELS {
        let specs = standard_panel_specs(family, classes, 4, scale, true, true);
        let traces = engine.run(&specs);
        let title = scenario_title(family, classes, 4, scale);
        sayln!(
            out,
            "{}",
            report_panel(&format!("{panel} — {title}"), &traces)
        );
        let path = save_panel_csv(&format!("fig11{tag}"), &traces)?;
        sayln!(out, "[saved {}]", path.display());

        append_tau_trace(out, traces.last().expect("adacomm trace"));
    }
    Ok(())
}
