//! Figure 13 (appendix): ResNet-50-like with 8 workers. Panels:
//! (a) variable lr on CIFAR10-like (fixed τ baselines 1/10/100),
//! (b) fixed lr on CIFAR100-like.
//!
//! Paper's reported shape: 1.6× speedup over fully synchronous SGD in the
//! variable-lr panel (11.15 vs 18.25 minutes to 1e-1 loss).

use super::scenario_title;
use crate::scenarios::ModelFamily;
use crate::sweep::{LrSpec, ScenarioSpec, SchedulerSpec, SweepEngine, SweepSpec};
use crate::{report_panel, save_panel_csv, sayln, Scale};
use adacomm::LrCoupling;
use std::io;

const PANELS: [(&str, &str, usize, bool); 2] = [
    ("a", "13a: variable lr, CIFAR10-like", 10, true),
    ("b", "13b: fixed lr, CIFAR100-like", 100, false),
];

fn panel_specs(scale: Scale, classes: usize, variable: bool) -> Vec<SweepSpec> {
    let scenario = ScenarioSpec::Canonical {
        family: ModelFamily::ResnetLike,
        classes,
        workers: 8,
        scale,
    };
    let lr = if variable {
        LrSpec::Variable
    } else {
        LrSpec::Fixed
    };
    // The 8-worker ResNet figure uses tau = 10 instead of 5. All methods
    // run with the scenario's τ-gated lr decay (the figure compares them
    // under one schedule policy).
    let mut specs: Vec<SweepSpec> = [1usize, 10, 100]
        .into_iter()
        .map(|tau| {
            SweepSpec::new(scenario.clone(), SchedulerSpec::Fixed { tau }, lr.clone())
                .with_gate(true)
        })
        .collect();
    let coupling = if variable {
        LrCoupling::Sqrt
    } else {
        LrCoupling::None
    };
    specs.push(
        SweepSpec::new(
            scenario,
            SchedulerSpec::AdaComm {
                tau0: ModelFamily::ResnetLike.tau0(),
                gamma: 0.5,
                lr_coupling: coupling,
                max_tau: 256,
            },
            lr,
        )
        .with_gate(true),
    );
    specs
}

pub(crate) fn specs(scale: Scale) -> Vec<SweepSpec> {
    PANELS
        .iter()
        .flat_map(|&(_, _, classes, variable)| panel_specs(scale, classes, variable))
        .collect()
}

pub(crate) fn run(scale: Scale, engine: &SweepEngine, out: &mut String) -> io::Result<()> {
    sayln!(out, "Figure 13 (scale: {scale}) — 8 workers\n");
    for (tag, panel, classes, variable) in PANELS {
        let traces = engine.run(&panel_specs(scale, classes, variable));
        let title = scenario_title(ModelFamily::ResnetLike, classes, 8, scale);
        sayln!(
            out,
            "{}",
            report_panel(&format!("{panel} — {title}"), &traces)
        );
        let path = save_panel_csv(&format!("fig13{tag}"), &traces)?;
        sayln!(out, "[saved {}]", path.display());
    }
    Ok(())
}
