//! Figure 8: wall-clock computation vs communication time for 100
//! iterations — ResNet-50 and VGG-16, τ = 1 vs τ = 10, 4 workers.

use crate::sweep::SweepEngine;
use crate::{sayln, write_csv, Scale, Table};
use delay::{resnet50_profile, vgg16_profile};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::io;

pub(crate) fn run(scale: Scale, _engine: &SweepEngine, out: &mut String) -> io::Result<()> {
    let workers = 4;
    let iterations = 100;
    let trials = match scale {
        Scale::Full => 4000,
        Scale::Quick => 400,
        Scale::Smoke => 100,
    };
    let mut rng = StdRng::seed_from_u64(88);

    sayln!(
        out,
        "Figure 8: time to finish {iterations} iterations, {workers} workers\n"
    );
    let mut table = Table::new(vec![
        "configuration".into(),
        "computation s".into(),
        "communication s".into(),
        "total s".into(),
        "comm share %".into(),
    ]);
    let mut csv = String::from("model,tau,compute,comm,total\n");

    let mut bars = Vec::new();
    for profile in [resnet50_profile(), vgg16_profile()] {
        let model = profile.runtime_model(workers);
        for &tau in &[1usize, 10] {
            // Average over trials: 100 iterations = 100/tau rounds.
            let rounds = iterations / tau;
            let (mut comp, mut comm) = (0.0, 0.0);
            for _ in 0..trials {
                for _ in 0..rounds {
                    let r = model.sample_round(tau, &mut rng);
                    comp += r.compute;
                    comm += r.comm;
                }
            }
            comp /= trials as f64;
            comm /= trials as f64;
            let name = format!("{}, tau={tau}", profile.name());
            table.row(vec![
                name.clone(),
                format!("{comp:.2}"),
                format!("{comm:.2}"),
                format!("{:.2}", comp + comm),
                format!("{:.1}", 100.0 * comm / (comp + comm)),
            ]);
            let _ = writeln!(
                csv,
                "{},{tau},{comp},{comm},{}",
                profile.name(),
                comp + comm
            );
            bars.push((name, comp, comm));
        }
    }
    out.push_str(&table.render());
    let path = write_csv("fig08_comm_comp", &csv)?;
    sayln!(out, "[saved {}]", path.display());

    // ASCII stacked bars like the paper's figure ('#' compute, '=' comm).
    sayln!(
        out,
        "\n  ('#' = computation, '=' = communication; 1 char = 0.25 s)"
    );
    for (name, comp, comm) in &bars {
        sayln!(
            out,
            "  {name:>18} |{}{}",
            "#".repeat((comp * 4.0).round() as usize),
            "=".repeat((comm * 4.0).round() as usize)
        );
    }

    // Shape assertions matching the paper's text: VGG comm ~ 4x comp at
    // tau=1; ResNet comm below comp; tau=10 slashes the comm share.
    let vgg = vgg16_profile().runtime_model(workers);
    let resnet = resnet50_profile().runtime_model(workers);
    assert!(vgg.alpha() > 3.0, "VGG must be communication-bound");
    assert!(resnet.alpha() < 1.0, "ResNet must be computation-bound");
    sayln!(
        out,
        "\nalpha(VGG-16) = {:.2} (paper: ~4), alpha(ResNet-50) = {:.2} (paper: <1)",
        vgg.alpha(),
        resnet.alpha()
    );
    Ok(())
}
