//! Ablation: block momentum vs naive local momentum vs no momentum
//! (Section 5.3.1's motivation).
//!
//! The naive scheme keeps each worker's momentum buffer across averaging
//! steps, so the first local step after a sync carries a stale direction —
//! the paper argues this "can side-track the SGD descent direction". Block
//! momentum restarts local buffers and adds a global buffer instead.

use crate::scenarios::ModelFamily;
use crate::sweep::{LrSpec, ScenarioSpec, SchedulerSpec, SweepEngine, SweepSpec};
use crate::{save_panel_csv, sayln, Scale, Table};
use pasgd_sim::MomentumMode;
use std::io;

fn modes() -> Vec<(&'static str, MomentumMode)> {
    vec![
        ("none", MomentumMode::None),
        (
            "naive local (no reset)",
            MomentumMode::Local {
                beta: 0.9,
                reset_at_sync: false,
            },
        ),
        (
            "local + reset at sync",
            MomentumMode::Local {
                beta: 0.9,
                reset_at_sync: true,
            },
        ),
        ("block (paper)", MomentumMode::paper_block()),
    ]
}

pub(crate) fn specs(scale: Scale) -> Vec<SweepSpec> {
    modes()
        .into_iter()
        .map(|(name, mode)| {
            SweepSpec::new(
                ScenarioSpec::Canonical {
                    family: ModelFamily::VggLike,
                    classes: 10,
                    workers: 4,
                    scale,
                },
                SchedulerSpec::Fixed { tau: 20 },
                LrSpec::Fixed,
            )
            .with_momentum(mode)
            .with_gate(true)
            .named(name)
        })
        .collect()
}

pub(crate) fn run(scale: Scale, engine: &SweepEngine, out: &mut String) -> io::Result<()> {
    sayln!(
        out,
        "Ablation: momentum handling at averaging steps, tau = 20 (scale {scale})\n"
    );
    let traces = engine.run(&specs(scale));

    let mut table = Table::new(vec![
        "momentum mode".into(),
        "final loss".into(),
        "min loss".into(),
        "best acc %".into(),
    ]);
    for trace in &traces {
        table.row(vec![
            trace.name.clone(),
            format!("{:.4}", trace.final_loss()),
            format!("{:.4}", trace.min_loss()),
            format!("{:.2}", 100.0 * trace.best_test_accuracy()),
        ]);
    }
    out.push_str(&table.render());
    let path = save_panel_csv("ablation_momentum_mode", &traces)?;
    sayln!(out, "[saved {}]", path.display());

    sayln!(
        out,
        "\nthe paper's claim: block momentum >= local-with-reset > naive local for"
    );
    sayln!(
        out,
        "large tau, because stale buffers side-track the first post-sync steps."
    );
    Ok(())
}
