//! Extension experiment: AdaComm's adaptive frequency under the other
//! synchronization patterns the paper's concluding remarks point to —
//! elastic averaging (Zhang et al., 2015), decentralized ring gossip
//! (Lian et al., 2017) and federated-style partial participation
//! (McMahan et al., 2016).

use crate::sweep::{LrSpec, ScenarioSpec, SchedulerSpec, SweepEngine, SweepSpec};
use crate::{save_panel_csv, sayln, Scale, Table};
use pasgd_sim::AveragingStrategy;
use std::io;

fn strategies() -> Vec<(&'static str, AveragingStrategy)> {
    vec![
        ("full average (PASGD)", AveragingStrategy::FullAverage),
        ("ring gossip", AveragingStrategy::Ring),
        (
            "partial participation 50%",
            AveragingStrategy::PartialParticipation { fraction: 0.5 },
        ),
        (
            "elastic alpha=0.5",
            AveragingStrategy::Elastic { alpha: 0.5 },
        ),
    ]
}

pub(crate) fn specs(scale: Scale) -> Vec<SweepSpec> {
    strategies()
        .into_iter()
        .map(|(name, strategy)| {
            SweepSpec::new(
                ScenarioSpec::Averaging { strategy, scale },
                SchedulerSpec::adacomm(16),
                LrSpec::Fixed,
            )
            .named(name)
        })
        .collect()
}

pub(crate) fn run(scale: Scale, engine: &SweepEngine, out: &mut String) -> io::Result<()> {
    sayln!(
        out,
        "Extension: AdaComm under different averaging strategies (scale {scale})\n"
    );
    let traces = engine.run(&specs(scale));

    let mut table = Table::new(vec![
        "strategy".into(),
        "final loss".into(),
        "min loss".into(),
        "best acc %".into(),
        "iterations".into(),
    ]);
    for trace in &traces {
        let last = trace.points.last().expect("non-empty");
        table.row(vec![
            trace.name.clone(),
            format!("{:.4}", trace.final_loss()),
            format!("{:.4}", trace.min_loss()),
            format!("{:.2}", 100.0 * trace.best_test_accuracy()),
            last.iterations.to_string(),
        ]);
    }
    out.push_str(&table.render());
    let path = save_panel_csv("ext_averaging_strategies", &traces)?;
    sayln!(out, "[saved {}]", path.display());

    sayln!(
        out,
        "\nthe adaptive schedule composes with every strategy; full averaging"
    );
    sayln!(
        out,
        "reaches the lowest floor while gossip/partial variants trade a little"
    );
    sayln!(
        out,
        "final loss for cheaper or more failure-tolerant synchronization —"
    );
    sayln!(
        out,
        "the extension direction the paper's concluding remarks sketch."
    );
    Ok(())
}
