//! Ablation: how the delay-distribution tail changes PASGD's advantage
//! (the Section 3.2 straggler-mitigation effect, beyond Figure 5's
//! exponential case).

use crate::sweep::SweepEngine;
use crate::{sayln, write_csv, Scale, Table};
use delay::{CommModel, DelayDistribution, RuntimeModel};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::io;

pub(crate) fn run(_scale: Scale, _engine: &SweepEngine, out: &mut String) -> io::Result<()> {
    let mut rng = StdRng::seed_from_u64(7);
    let m = 16;
    let tau = 10;

    sayln!(
        out,
        "Ablation: delay-tail vs PASGD speed-up (m = {m}, tau = {tau}, D = 1, E[Y] = 1)\n"
    );
    let mut table = Table::new(vec![
        "distribution".into(),
        "variance".into(),
        "E[T_sync]".into(),
        "E[T_pasgd]".into(),
        "speedup".into(),
        "straggler share %".into(),
    ]);
    let mut csv = String::from("distribution,variance,t_sync,t_pasgd,speedup\n");

    let cases: Vec<(&str, DelayDistribution)> = vec![
        ("constant", DelayDistribution::constant(1.0)),
        ("uniform[0.8,1.2]", DelayDistribution::uniform(0.8, 1.2)),
        ("uniform[0,2]", DelayDistribution::uniform(0.0, 2.0)),
        (
            "shifted-exp(0.5+0.5)",
            DelayDistribution::shifted_exponential(0.5, 0.5),
        ),
        ("exponential", DelayDistribution::exponential(1.0)),
        // Pareto with mean 1: scale = (a-1)/a with a = 2.5 -> 0.6.
        ("pareto(a=2.5)", DelayDistribution::pareto(0.6, 2.5)),
        ("pareto(a=2.1)", DelayDistribution::pareto(11.0 / 21.0, 2.1)),
    ];

    for (name, dist) in cases {
        let model = RuntimeModel::new(dist, CommModel::constant(1.0), m);
        let t_sync = model.expected_sync_iteration(&mut rng);
        let t_pasgd = model.expected_per_iteration(tau, &mut rng);
        let speedup = t_sync / t_pasgd;
        // Straggler share: how much of the sync iteration is wait-for-max
        // beyond the mean compute time.
        let straggler = (t_sync - 1.0 - 1.0) / t_sync * 100.0;
        table.row(vec![
            name.to_string(),
            format!("{:.3}", dist.variance()),
            format!("{t_sync:.3}"),
            format!("{t_pasgd:.3}"),
            format!("{speedup:.2}x"),
            format!("{straggler:.1}"),
        ]);
        let _ = writeln!(
            csv,
            "{name},{},{t_sync},{t_pasgd},{speedup}",
            dist.variance()
        );
    }
    out.push_str(&table.render());
    let path = write_csv("ablation_straggler", &csv)?;
    sayln!(out, "[saved {}]", path.display());

    sayln!(
        out,
        "\nheavier tails inflate E[T_sync] (waiting for the slowest of {m}) much more"
    );
    sayln!(
        out,
        "than E[T_pasgd]; the speed-up grows with the delay variance — local updates"
    );
    sayln!(
        out,
        "are a straggler-mitigation mechanism, not just a communication saver."
    );
    Ok(())
}
