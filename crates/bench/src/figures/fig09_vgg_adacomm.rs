//! Figure 9: AdaComm on the VGG-16-like (communication-bound) setting,
//! 4 workers. Three panels: (a) variable lr on CIFAR10-like, (b) fixed lr
//! on CIFAR10-like, (c) fixed lr on CIFAR100-like.
//!
//! Paper's reported shape: τ = 100 drops fastest initially but floors
//! high; AdaComm reaches sync-SGD's final loss ~2–3.3× faster; the
//! communication-period trace decreases over time.

use super::{append_tau_trace, scenario_title};
use crate::scenarios::ModelFamily;
use crate::sweep::{standard_panel_specs, SweepEngine, SweepSpec};
use crate::{report_panel, save_panel_csv, sayln, Scale};
use std::io;

const PANELS: [(&str, &str, usize, bool); 3] = [
    ("a", "9a: variable lr, CIFAR10-like", 10, true),
    ("b", "9b: fixed lr, CIFAR10-like", 10, false),
    ("c", "9c: fixed lr, CIFAR100-like", 100, false),
];

pub(crate) fn specs(scale: Scale) -> Vec<SweepSpec> {
    PANELS
        .iter()
        .flat_map(|&(_, _, classes, variable)| {
            standard_panel_specs(ModelFamily::VggLike, classes, 4, scale, variable, false)
        })
        .collect()
}

pub(crate) fn run(scale: Scale, engine: &SweepEngine, out: &mut String) -> io::Result<()> {
    sayln!(out, "Figure 9 (scale: {scale})\n");
    for (tag, panel, classes, variable) in PANELS {
        let specs = standard_panel_specs(ModelFamily::VggLike, classes, 4, scale, variable, false);
        let traces = engine.run(&specs);
        let title = scenario_title(ModelFamily::VggLike, classes, 4, scale);
        sayln!(
            out,
            "{}",
            report_panel(&format!("{panel} — {title}"), &traces)
        );
        let path = save_panel_csv(&format!("fig09{tag}"), &traces)?;
        sayln!(out, "[saved {}]", path.display());

        // AdaComm's tau trace, printed like the figure's lower strip.
        append_tau_trace(out, traces.last().expect("adacomm trace"));
    }
    Ok(())
}
