//! Extension: gradient compression on the error-runtime frontier.
//!
//! The paper adapts the communication *frequency* τ; this experiment adds
//! the *size* axis. Under a bytes-aware delay model (the hardware
//! profile's mean communication delay split 10% latency / 90% bandwidth),
//! it sweeps codecs × ratios at a fixed τ, runs the paper's fixed-τ
//! full-precision baselines, and caps the comparison with the
//! τ×compression co-adaptive schedule (`AdaCommCompress`).
//!
//! Expected shape, per hardware profile:
//!
//! * compressed averaging rounds cost strictly less simulated wall-clock
//!   than full-precision rounds (the `round comm s` column);
//! * the co-adaptive schedule reaches a lower loss at the shared
//!   wall-clock budget than the best fixed-τ full-precision baseline —
//!   most dramatically on the communication-bound VGG-16 profile.
//!
//! CSVs: `ext_compression_frontier` (one summary row per method) and
//! `ext_compression_traces` (full loss-vs-time traces).
//!
//! The fixed-τ baselines and the codec × ratio sweep are pre-declarable
//! and run through the sweep engine (one parallel wave per figure, shared
//! with `reproduce_all`'s warm-up); the τ0 grid search and the final
//! co-adaptive run are sequentially adaptive, so they execute as a second
//! engine wave plus one direct run whose scheduler state (the codec the
//! run ended with) is read back for the report.

use crate::scenarios::ModelFamily;
use crate::sweep::{LrSpec, ScenarioSpec, SchedulerSpec, SweepEngine, SweepSpec};
use crate::{sayln, write_csv, Scale, Table};
use adacomm::theory::compressed_comm_time;
use adacomm::{select_tau0, AdaCommCompress, AdaCommConfig, LrSchedule};
use gradcomp::{CodecSpec, Compressor as _};
use pasgd_sim::RunTrace;
use std::fmt::Write as _;
use std::io;

const SWEEP_CODECS: [CodecSpec; 8] = [
    CodecSpec::Identity,
    CodecSpec::TopK { ratio: 0.01 },
    CodecSpec::TopK { ratio: 0.05 },
    CodecSpec::TopK { ratio: 0.25 },
    CodecSpec::RandomK { ratio: 0.5 },
    CodecSpec::Sign,
    CodecSpec::Qsgd { bits: 4 },
    CodecSpec::Qsgd { bits: 8 },
];

/// The pre-declarable runs of one family: fixed-τ full-precision
/// baselines, the codec × ratio sweep at the family's middle fixed τ, and
/// full-precision AdaComm — in report order.
fn family_specs(family: ModelFamily, scale: Scale) -> Vec<SweepSpec> {
    let scenario = ScenarioSpec::Compression { family, scale };
    let mut specs: Vec<SweepSpec> = family
        .paper_taus()
        .into_iter()
        .map(|tau| {
            SweepSpec::new(
                scenario.clone(),
                SchedulerSpec::Fixed { tau },
                LrSpec::Fixed,
            )
        })
        .collect();
    let sweep_tau = family.paper_taus()[1];
    for codec in &SWEEP_CODECS[1..] {
        specs.push(
            SweepSpec::new(
                scenario.clone(),
                SchedulerSpec::Fixed { tau: sweep_tau },
                LrSpec::Fixed,
            )
            .with_codec(*codec),
        );
    }
    specs.push(SweepSpec::new(
        scenario,
        SchedulerSpec::adacomm(family.tau0()),
        LrSpec::Fixed,
    ));
    specs
}

pub(crate) fn specs(scale: Scale) -> Vec<SweepSpec> {
    [ModelFamily::VggLike, ModelFamily::ResnetLike]
        .into_iter()
        .flat_map(|family| family_specs(family, scale))
        .collect()
}

/// One finished run plus the codec it transmitted with.
struct Row {
    trace: RunTrace,
    codec: CodecSpec,
    /// Mean simulated cost of one averaging message under the bytes-aware
    /// communication model (the per-round delay the codec pays).
    round_comm_secs: f64,
}

fn family_runs(
    family: ModelFamily,
    scale: Scale,
    engine: &SweepEngine,
    out: &mut String,
    frontier: &mut String,
    traces: &mut String,
) {
    let workers = 4usize;
    let scenario = ScenarioSpec::Compression { family, scale };
    let built = engine.scenario(&scenario);
    let runtime = *built.suite.runtime();
    let full_bytes: usize = built.suite.model_param_count() * 4;
    let total_secs = built.suite.experiment_config().total_secs;
    let lr = LrSchedule::constant(0.1);

    // The theory-side helper and the simulator's bytes-aware CommModel
    // price a round identically (the profiles use constant worker
    // scaling): latency + β · full_bytes · payload_fraction.
    let comm = *runtime.comm();
    let round_cost = |codec: &CodecSpec| {
        compressed_comm_time(
            comm.mean_delay(workers),
            comm.seconds_per_byte(),
            full_bytes as f64,
            codec.payload_fraction(),
        )
    };

    sayln!(
        out,
        "== {} profile ({} workers, {} model bytes, budget {total_secs:.0} s)\n",
        family.name(),
        workers,
        full_bytes
    );

    // (a) What one averaging round costs per codec, before any training.
    let mut cost_table = Table::new(vec![
        "codec".into(),
        "payload frac".into(),
        "round comm s".into(),
        "vs full".into(),
    ]);
    let full_round = round_cost(&CodecSpec::Identity);
    for codec in &SWEEP_CODECS {
        let cost = round_cost(codec);
        cost_table.row(vec![
            codec.name(),
            format!("{:.4}", codec.payload_fraction()),
            format!("{cost:.4}"),
            format!("{:.2}x", full_round / cost),
        ]);
    }
    out.push_str(&cost_table.render());
    sayln!(out);

    // (b) The pre-declared runs, in one engine wave (cache hits when
    // reproduce_all already warmed them). Spec order is fixed-τ
    // full-precision baselines, the codec sweep, then AdaComm; recover
    // each run's codec from that order.
    let wave = engine.run(&family_specs(family, scale));
    let mut rows: Vec<Row> = Vec::new();
    let n_base = family.paper_taus().len();
    for (i, trace) in wave.into_iter().enumerate() {
        let codec = if i < n_base || i >= n_base + SWEEP_CODECS[1..].len() {
            CodecSpec::Identity
        } else {
            SWEEP_CODECS[1 + (i - n_base)]
        };
        rows.push(Row {
            round_comm_secs: round_cost(&codec),
            trace,
            codec,
        });
    }

    // (c) The τ×compression co-adaptive schedule.
    //
    // γ = 1 keeps rule 17's monotone refinement but disables eq. 18's
    // plateau halving: that halving exists to amortise an *expensive*
    // averaging step, and with compressed messages the τ = 1 endpoint
    // costs more wall-clock per iteration than its noise-floor gain
    // returns at this budget. τ0 comes from the paper's own recipe — a
    // grid search over short trial runs (Section 4.2, `select_tau0`) —
    // because compression reshapes the comm/comp ratio the full-precision
    // τ0 was tuned for.
    let tau0 = family.tau0();
    let k0 = 0.05;
    let co_spec = CodecSpec::TopK { ratio: k0 };
    let trial_secs = match scale {
        Scale::Full => 300.0,
        Scale::Quick => 120.0,
        Scale::Smoke => 45.0,
    };
    let mut candidates: Vec<usize> = [tau0 / 2, tau0, tau0 * 2, tau0 * 4]
        .into_iter()
        .map(|t| t.max(1))
        .collect();
    candidates.dedup();
    let co_sched = |tau0: usize| SchedulerSpec::AdaCommCompress {
        tau0,
        gamma: 1.0,
        max_tau: 256.max(tau0),
        codec: co_spec,
    };
    // All τ0 trials run as one parallel engine wave, then the grid search
    // reads their final losses.
    let trial_specs: Vec<SweepSpec> = candidates
        .iter()
        .map(|&t| {
            SweepSpec::new(scenario.clone(), co_sched(t), LrSpec::Fixed)
                .with_budget(trial_secs, trial_secs / 40.0)
        })
        .collect();
    let trial_losses: Vec<f64> = engine
        .run(&trial_specs)
        .iter()
        .map(|t| f64::from(t.final_loss()))
        .collect();
    let co_tau0 = select_tau0(&candidates, |t| {
        let idx = candidates.iter().position(|&c| c == t).expect("candidate");
        trial_losses[idx]
    });
    sayln!(
        out,
        "\nco-adaptive tau0 = {co_tau0} (grid search over {candidates:?}, Section 4.2)"
    );
    // The final run executes directly (not through the engine): the report
    // needs the *scheduler's* final codec, which only exists as scheduler
    // state after the run.
    let mut co = AdaCommCompress::new(
        AdaCommConfig {
            tau0: co_tau0,
            gamma: 1.0,
            max_tau: 256.max(co_tau0),
            ..AdaCommConfig::default()
        },
        co_spec,
    );
    let trace = built.suite.run(&mut co, &lr);
    // Report the codec the run *ended* with, priced at its own round cost
    // (the schedule's fidelity grows over the run, so this is the most
    // expensive round it ever paid).
    let final_codec = co.codec();
    rows.push(Row {
        trace,
        codec: final_codec,
        round_comm_secs: round_cost(&final_codec),
    });

    // Summary table + frontier CSV rows.
    let mut summary = Table::new(vec![
        "method".into(),
        "codec".into(),
        "round comm s".into(),
        "final loss".into(),
        "min loss".into(),
        "best acc %".into(),
        "iterations".into(),
        "comm MB".into(),
    ]);
    for row in &rows {
        let last = row.trace.points.last().expect("non-empty trace");
        summary.row(vec![
            row.trace.name.clone(),
            row.codec.name(),
            format!("{:.4}", row.round_comm_secs),
            format!("{:.4}", row.trace.final_loss()),
            format!("{:.4}", row.trace.min_loss()),
            format!("{:.2}", 100.0 * row.trace.best_test_accuracy()),
            last.iterations.to_string(),
            format!("{:.2}", last.comm_bytes / 1e6),
        ]);
        let _ = writeln!(
            frontier,
            "{},{},{},{},{},{},{},{},{},{}",
            family.name(),
            row.trace.name,
            row.codec.name(),
            row.codec.payload_fraction(),
            row.round_comm_secs,
            last.clock,
            last.iterations,
            row.trace.final_loss(),
            row.trace.min_loss(),
            last.comm_bytes
        );
        for p in &row.trace.points {
            let _ = writeln!(
                traces,
                "{},{},{},{},{},{},{},{}",
                family.name(),
                row.trace.name,
                row.codec.name(),
                p.clock,
                p.train_loss,
                p.test_accuracy,
                p.tau,
                p.comm_bytes
            );
        }
    }
    out.push_str(&summary.render());

    // Verdicts the acceptance criteria read off the CSV.
    let compressed_cheaper = rows
        .iter()
        .filter(|r| r.codec.payload_fraction() < 1.0)
        .all(|r| r.round_comm_secs < full_round);
    sayln!(
        out,
        "\ncompressed rounds cheaper than full precision: {} ({}x for topk(0.01))",
        if compressed_cheaper { "yes" } else { "NO" },
        format_args!(
            "{:.2}",
            full_round / round_cost(&CodecSpec::TopK { ratio: 0.01 })
        ),
    );
    let best_fixed_full = rows
        .iter()
        .filter(|r| {
            matches!(r.codec, CodecSpec::Identity)
                && (r.trace.name.starts_with("tau=") || r.trace.name == "sync-sgd")
        })
        .map(|r| r.trace.final_loss())
        .fold(f32::INFINITY, f32::min);
    let co_final = rows.last().expect("co-adaptive row").trace.final_loss();
    sayln!(
        out,
        "co-adaptive (adacomm-x-topk) final loss {co_final:.4} vs best fixed-tau \
         full-precision {best_fixed_full:.4}: {}",
        if co_final < best_fixed_full {
            "dominates"
        } else {
            "DOES NOT dominate"
        }
    );
    sayln!(out);
}

pub(crate) fn run(scale: Scale, engine: &SweepEngine, out: &mut String) -> io::Result<()> {
    sayln!(
        out,
        "Extension: compression x adaptive communication (scale: {scale})\n"
    );

    let mut frontier = String::from(
        "profile,method,codec,payload_fraction,round_comm_secs,clock,iterations,\
         final_loss,min_loss,comm_bytes\n",
    );
    let mut traces =
        String::from("profile,method,codec,clock,train_loss,test_accuracy,tau,comm_bytes\n");

    for family in [ModelFamily::VggLike, ModelFamily::ResnetLike] {
        family_runs(family, scale, engine, out, &mut frontier, &mut traces);
    }

    let path = write_csv("ext_compression_frontier", &frontier)?;
    sayln!(out, "[saved {}]", path.display());
    let path = write_csv("ext_compression_traces", &traces)?;
    sayln!(out, "[saved {}]", path.display());
    Ok(())
}
