//! Extension: error-runtime frontiers under injected faults.
//!
//! The paper's frontier (Figures 9/10) assumes a healthy cluster: every
//! worker computes every round and every upload arrives intact. This
//! experiment re-sweeps AdaComm against the fixed-τ baselines while the
//! seeded fault layer crashes workers mid-round, drops or corrupts
//! uploads (charged as retransmits through the bytes-aware communication
//! model), and spikes stragglers — under each of the graceful-degradation
//! aggregation policies (full barrier, quorum-of-m with a compute
//! deadline, bounded-staleness inclusion).
//!
//! The `fault-free` profile is the control: its specs carry
//! [`FaultConfig::NONE`], whose memoization key is **identical** to the
//! pre-fault-layer key, so the control rows are cache hits on the very
//! runs `ext_compression` executes — the zero-fault no-op guarantee,
//! checked here at the key level and at the trace level.
//!
//! CSV: `ext_faults_frontier` — one row per fault profile × method with
//! the profile's injection rates, the aggregation policy, and the run's
//! error-runtime endpoint.

use crate::scenarios::ModelFamily;
use crate::sweep::{LrSpec, ScenarioSpec, SchedulerSpec, SweepEngine, SweepSpec};
use crate::{sayln, write_csv, Scale, Table};
use pasgd_sim::{AggregationPolicy, FaultConfig, FaultSpec};
use std::fmt::Write as _;
use std::io;

/// The fault profiles swept, spanning the crash × loss × policy axes.
/// Probabilities are per-round (crash/straggle) or per-upload
/// (drop/corrupt); see the simulator's `FaultSpec` docs.
fn profiles(scale: Scale) -> Vec<(&'static str, FaultConfig)> {
    // The quorum deadline caps a round's *compute* time; the compression
    // scenario's delays shrink 4x below full scale, so the cap scales
    // with them.
    let deadline_secs = if scale.is_full() { 8.0 } else { 2.0 };
    vec![
        ("fault-free", FaultConfig::NONE),
        (
            "crashy",
            FaultConfig {
                spec: FaultSpec {
                    crash_prob: 0.05,
                    rejoin_after: 3,
                    ..FaultSpec::NONE
                },
                policy: AggregationPolicy::FullBarrier,
            },
        ),
        (
            "lossy",
            FaultConfig {
                spec: FaultSpec {
                    drop_prob: 0.08,
                    corrupt_prob: 0.02,
                    ..FaultSpec::NONE
                },
                policy: AggregationPolicy::FullBarrier,
            },
        ),
        (
            "quorum",
            FaultConfig {
                spec: FaultSpec {
                    crash_prob: 0.04,
                    rejoin_after: 3,
                    straggler_prob: 0.2,
                    straggler_factor: 8.0,
                    ..FaultSpec::NONE
                },
                policy: AggregationPolicy::Quorum {
                    quorum: 3,
                    deadline_secs,
                },
            },
        ),
        (
            "stale",
            FaultConfig {
                spec: FaultSpec {
                    crash_prob: 0.04,
                    rejoin_after: 3,
                    straggler_prob: 0.2,
                    straggler_factor: 8.0,
                    ..FaultSpec::NONE
                },
                policy: AggregationPolicy::BoundedStaleness {
                    quorum: 3,
                    max_staleness: 2,
                },
            },
        ),
    ]
}

/// The methods each profile sweeps: the scenario's fixed-τ baselines and
/// AdaComm, mirroring the paper's frontier panels.
fn methods(family: ModelFamily) -> Vec<SchedulerSpec> {
    let mut m: Vec<SchedulerSpec> = family
        .paper_taus()
        .into_iter()
        .map(|tau| SchedulerSpec::Fixed { tau })
        .collect();
    m.push(SchedulerSpec::adacomm(family.tau0()));
    m
}

pub(crate) fn specs(scale: Scale) -> Vec<SweepSpec> {
    let family = ModelFamily::VggLike;
    let scenario = ScenarioSpec::Compression { family, scale };
    let mut specs = Vec::new();
    for (_, fault) in profiles(scale) {
        for scheduler in methods(family) {
            specs.push(
                SweepSpec::new(scenario.clone(), scheduler, LrSpec::Fixed).with_faults(fault),
            );
        }
    }
    specs
}

/// Renders one fault profile's row in a policy label the CSV carries.
fn policy_label(fault: &FaultConfig) -> String {
    match fault.policy {
        AggregationPolicy::FullBarrier => "full_barrier".into(),
        AggregationPolicy::Quorum { quorum, .. } => format!("quorum_{quorum}"),
        AggregationPolicy::BoundedStaleness {
            quorum,
            max_staleness,
        } => format!("stale_{quorum}_{max_staleness}"),
    }
}

pub(crate) fn run(scale: Scale, engine: &SweepEngine, out: &mut String) -> io::Result<()> {
    let family = ModelFamily::VggLike;
    sayln!(
        out,
        "Extension: fault-injected error-runtime frontier ({} profile, scale {scale})\n",
        family.name()
    );

    // The no-op guarantee at the key level: a zero-fault spec has the
    // exact key it had before the fault layer existed, so the control
    // profile shares cache entries (memory and disk) with the healthy
    // figures.
    let plain = SweepSpec::new(
        ScenarioSpec::Compression { family, scale },
        SchedulerSpec::adacomm(family.tau0()),
        LrSpec::Fixed,
    );
    assert_eq!(
        plain.clone().with_faults(FaultConfig::NONE).key(),
        plain.key(),
        "FaultConfig::NONE must not perturb the memoization key"
    );

    let mut frontier = String::from(
        "profile,method,crash_prob,drop_prob,corrupt_prob,straggler_prob,policy,\
         clock,iterations,final_loss,min_loss,comm_bytes\n",
    );

    let mut table = Table::new(vec![
        "profile".into(),
        "policy".into(),
        "method".into(),
        "final loss".into(),
        "min loss".into(),
        "best acc %".into(),
        "comm MB".into(),
    ]);
    let mut control_adacomm_loss = f32::NAN;
    let mut faulty_adacomm_worst = f32::NEG_INFINITY;
    for (name, fault) in profiles(scale) {
        let specs: Vec<SweepSpec> = methods(family)
            .into_iter()
            .map(|scheduler| {
                SweepSpec::new(
                    ScenarioSpec::Compression { family, scale },
                    scheduler,
                    LrSpec::Fixed,
                )
                .with_faults(fault)
            })
            .collect();
        let traces = engine.run(&specs);
        for trace in &traces {
            let last = trace.points.last().expect("non-empty trace");
            assert!(
                trace.final_loss().is_finite(),
                "{name}/{}: loss diverged under faults",
                trace.name
            );
            table.row(vec![
                name.into(),
                policy_label(&fault),
                trace.name.clone(),
                format!("{:.4}", trace.final_loss()),
                format!("{:.4}", trace.min_loss()),
                format!("{:.2}", 100.0 * trace.best_test_accuracy()),
                format!("{:.2}", last.comm_bytes / 1e6),
            ]);
            let _ = writeln!(
                frontier,
                "{},{},{},{},{},{},{},{},{},{},{},{}",
                name,
                trace.name,
                fault.spec.crash_prob,
                fault.spec.drop_prob,
                fault.spec.corrupt_prob,
                fault.spec.straggler_prob,
                policy_label(&fault),
                last.clock,
                last.iterations,
                trace.final_loss(),
                trace.min_loss(),
                last.comm_bytes
            );
        }
        let adacomm = traces.last().expect("adacomm is the last method");
        if fault.is_active() {
            faulty_adacomm_worst = faulty_adacomm_worst.max(adacomm.final_loss());
        } else {
            control_adacomm_loss = adacomm.final_loss();
            // The no-op guarantee at the trace level: the control rows are
            // bit-identical to the same specs without a fault config.
            let healthy = engine.run(std::slice::from_ref(&plain));
            assert_eq!(
                healthy[0].points, adacomm.points,
                "zero-fault profile must reproduce the healthy run bit-for-bit"
            );
        }
    }
    out.push_str(&table.render());

    sayln!(
        out,
        "\nadacomm final loss: {control_adacomm_loss:.4} fault-free vs {faulty_adacomm_worst:.4} \
         worst faulty profile (graceful degradation, not divergence)"
    );

    let path = write_csv("ext_faults_frontier", &frontier)?;
    sayln!(out, "[saved {}]", path.display());
    Ok(())
}
