//! Figure 14 (appendix): the test-accuracy gap between local models and
//! the synchronized (averaged) model in PASGD with τ = 15 — the paper
//! observes ~10% on ResNet-50/CIFAR10 and concludes that local updates are
//! "inefficient" late in training.

use crate::scenarios::{scenario, ModelFamily};
use crate::sweep::SweepEngine;
use crate::{sayln, write_csv, Scale, Table};
use pasgd_sim::PasgdCluster;
use std::fmt::Write as _;
use std::io;

pub(crate) fn run(scale: Scale, _engine: &SweepEngine, out: &mut String) -> io::Result<()> {
    sayln!(
        out,
        "Figure 14 (scale: {scale}) — local vs synchronized model accuracy\n"
    );

    // ResNet-like setting, fixed lr, no momentum, tau = 15 (the paper's
    // configuration).
    let sc = scenario(ModelFamily::ResnetLike, 10, 4, scale);
    let tau = 15usize;
    // Rebuild a raw cluster so we can probe *mid-round* local models.
    let split = data::GaussianMixture::cifar10_like().generate(1234 + 10);
    let profile = delay::resnet50_profile().time_scaled(if scale.is_full() { 1.0 } else { 4.0 });
    let mut cluster = PasgdCluster::new(
        nn::models::mlp_classifier(256, &[64], 10, 77),
        split,
        profile.runtime_model(4),
        pasgd_sim::ClusterConfig {
            workers: 4,
            batch_size: 32,
            // The paper's fig. 14 run uses ResNet-50's raw rate (0.4, no
            // momentum) — the drift-amplifying regime that produces the gap.
            lr: 2.0 * sc.fixed_lr.initial(),
            weight_decay: 5e-4,
            momentum: pasgd_sim::MomentumMode::None,
            averaging: pasgd_sim::AveragingStrategy::FullAverage,
            codec: gradcomp::CodecSpec::Identity,
            seed: 42,
            eval_subset: 1024,
            fault: pasgd_sim::FaultConfig::NONE,
        },
    );

    let total_rounds = match scale {
        Scale::Full => 400,
        Scale::Quick => 120,
        Scale::Smoke => 60,
    };
    let probe_every = total_rounds / 20;
    let mut table = Table::new(vec![
        "round".into(),
        "epoch".into(),
        "synced acc %".into(),
        "mid-round local acc %".into(),
        "gap %".into(),
    ]);
    let mut csv = String::from("round,epoch,synced_acc,local_acc,gap\n");
    let mut max_gap: f64 = 0.0;
    let mut late_gaps = Vec::new();

    for round in 0..total_rounds {
        if round % probe_every == 0 {
            // Accuracy of the synchronized model (just after averaging)...
            let synced = cluster.eval_test_accuracy();
            // ...then advance a full local period without averaging and
            // probe the local models right before the sync — the
            // "evaluated every 100 iterations" effect where 100 is not a
            // multiple of tau, at its maximal drift point.
            cluster.run_local_only(tau);
            let local: f64 = (0..4)
                .map(|w| cluster.eval_local_test_accuracy(w))
                .sum::<f64>()
                / 4.0;
            cluster.average_now();
            let gap = synced - local;
            max_gap = max_gap.max(gap);
            if round > total_rounds / 2 {
                late_gaps.push(gap);
            }
            table.row(vec![
                round.to_string(),
                format!("{:.1}", cluster.epochs()),
                format!("{:.2}", 100.0 * synced),
                format!("{:.2}", 100.0 * local),
                format!("{:+.2}", 100.0 * gap),
            ]);
            let _ = writeln!(csv, "{round},{},{synced},{local},{gap}", cluster.epochs());
        } else {
            cluster.run_round(tau);
        }
    }
    out.push_str(&table.render());
    let path = write_csv("fig14_local_gap", &csv)?;
    sayln!(out, "[saved {}]", path.display());

    let late_mean = late_gaps.iter().sum::<f64>() / late_gaps.len().max(1) as f64;
    sayln!(
        out,
        "\nmax synced-minus-local gap: {:.2}% ; mean gap in the second half: {:.2}%",
        100.0 * max_gap,
        100.0 * late_mean
    );
    sayln!(
        out,
        "paper reports ~10% on ResNet-50/CIFAR10; the *shape* claim is that the"
    );
    sayln!(
        out,
        "gap persists even after convergence, i.e. local steps keep losing accuracy"
    );
    sayln!(out, "that averaging restores.");
    assert!(
        late_mean > 0.0,
        "synchronized model should beat mid-round local models on average"
    );
    Ok(())
}
