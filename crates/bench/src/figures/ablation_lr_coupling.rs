//! Ablation: learning-rate coupling — rule (19) `(η0/ηl)^{3/2}` vs rule
//! (20) `sqrt(η0/ηl)` vs no coupling.
//!
//! The paper observed rule (19) pushing τ to ~1000 after a 10× lr decay and
//! the loss diverging, which motivated the softer rule (20). We cap τ at
//! `max_tau` so the (19) run completes, and report the peak τ it requested.

use crate::scenarios::ModelFamily;
use crate::sweep::{LrSpec, ScenarioSpec, SchedulerSpec, SweepEngine, SweepSpec};
use crate::{save_panel_csv, sayln, Scale, Table};
use adacomm::{AdaComm, AdaCommConfig, CommSchedule, LrCoupling, ScheduleContext};
use std::io;

const COUPLINGS: [(&str, LrCoupling); 3] = [
    ("none (17/18)", LrCoupling::None),
    ("sqrt (eq. 20)", LrCoupling::Sqrt),
    ("3/2 (eq. 19)", LrCoupling::ThreeHalves),
];

pub(crate) fn specs(scale: Scale) -> Vec<SweepSpec> {
    let family = ModelFamily::VggLike;
    COUPLINGS
        .iter()
        .map(|&(name, coupling)| {
            SweepSpec::new(
                ScenarioSpec::Canonical {
                    family,
                    classes: 10,
                    workers: 4,
                    scale,
                },
                SchedulerSpec::AdaComm {
                    tau0: family.tau0(),
                    gamma: 0.5,
                    lr_coupling: coupling,
                    max_tau: 1024,
                },
                LrSpec::Variable,
            )
            .with_gate(true)
            .named(name)
        })
        .collect()
}

pub(crate) fn run(scale: Scale, engine: &SweepEngine, out: &mut String) -> io::Result<()> {
    sayln!(
        out,
        "Ablation: lr coupling (eqs. 19 vs 20), VGG-like CIFAR10-like, variable lr (scale {scale})\n"
    );
    let traces = engine.run(&specs(scale));

    let mut table = Table::new(vec![
        "coupling".into(),
        "final loss".into(),
        "best acc %".into(),
        "max tau seen".into(),
    ]);
    for trace in &traces {
        let max_tau = trace.tau_trace().iter().map(|&(_, t)| t).max().unwrap_or(0);
        table.row(vec![
            trace.name.clone(),
            format!("{:.4}", trace.final_loss()),
            format!("{:.2}", 100.0 * trace.best_test_accuracy()),
            max_tau.to_string(),
        ]);
    }
    out.push_str(&table.render());
    let path = save_panel_csv("ablation_lr_coupling", &traces)?;
    sayln!(out, "[saved {}]", path.display());

    // Demonstrate the raw (uncapped) eq. 19 blow-up the paper reports,
    // directly on the scheduler.
    let mut raw = AdaComm::new(AdaCommConfig {
        tau0: 10,
        lr_coupling: LrCoupling::ThreeHalves,
        max_tau: 100_000,
        ..AdaCommConfig::default()
    });
    let ctx0 = ScheduleContext {
        interval_index: 0,
        wall_clock: 0.0,
        current_loss: 1.0,
        initial_loss: 1.0,
        current_lr: 0.2,
        initial_lr: 0.2,
        degraded_frac: 0.0,
    };
    let _ = raw.next_tau(&ctx0);
    let mut ctx = ctx0;
    ctx.interval_index = 1;
    ctx.current_lr = 0.002; // two 10x decays
    let tau = raw.next_tau(&ctx);
    sayln!(
        out,
        "\nraw eq. 19 request after a 100x lr decay: tau = {tau} (paper saw ~1000 and divergence)"
    );
    assert!(tau > 500, "eq. 19 should request an extreme tau, got {tau}");
    Ok(())
}
