//! Figure 12 (appendix): VGG-16-like with 8 workers. Panels:
//! (a) variable lr on CIFAR10-like, (b) fixed lr on CIFAR100-like.
//!
//! Paper's reported shape: 2.9× speedup over fully synchronous SGD in the
//! variable-lr panel (6.0 vs 17.5 minutes to 1e-2 loss).

use super::scenario_title;
use crate::scenarios::ModelFamily;
use crate::sweep::{standard_panel_specs, SweepEngine, SweepSpec};
use crate::{report_panel, save_panel_csv, sayln, Scale};
use std::io;

const PANELS: [(&str, &str, usize, bool); 2] = [
    ("a", "12a: variable lr, CIFAR10-like", 10, true),
    ("b", "12b: fixed lr, CIFAR100-like", 100, false),
];

pub(crate) fn specs(scale: Scale) -> Vec<SweepSpec> {
    PANELS
        .iter()
        .flat_map(|&(_, _, classes, variable)| {
            standard_panel_specs(ModelFamily::VggLike, classes, 8, scale, variable, false)
        })
        .collect()
}

pub(crate) fn run(scale: Scale, engine: &SweepEngine, out: &mut String) -> io::Result<()> {
    sayln!(out, "Figure 12 (scale: {scale}) — 8 workers\n");
    for (tag, panel, classes, variable) in PANELS {
        let specs = standard_panel_specs(ModelFamily::VggLike, classes, 8, scale, variable, false);
        let traces = engine.run(&specs);
        let title = scenario_title(ModelFamily::VggLike, classes, 8, scale);
        sayln!(
            out,
            "{}",
            report_panel(&format!("{panel} — {title}"), &traces)
        );
        let path = save_panel_csv(&format!("fig12{tag}"), &traces)?;
        sayln!(out, "[saved {}]", path.display());
    }
    Ok(())
}
