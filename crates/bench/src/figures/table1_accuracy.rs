//! Table 1: best test accuracy on the CIFAR10-like task within a fixed
//! time budget — {VGG-16-like, ResNet-50-like} × {τ = 1, moderate τ,
//! τ = 100, AdaComm} × {fixed lr, variable lr}, SGD without momentum.
//!
//! Paper's reported shape: AdaComm matches or beats fully synchronous SGD
//! everywhere, and in the variable-lr column beats even the best
//! hand-tuned fixed τ.
//!
//! Every run this table reports is *the same run* Figures 9/10 plot — the
//! specs are identical, so in `reproduce_all` the sweep engine hands this
//! figure cached traces and it costs no additional simulation at all.

use crate::scenarios::ModelFamily;
use crate::sweep::{standard_panel_specs, SweepEngine, SweepSpec};
use crate::{sayln, Scale, Table};
use std::fmt::Write as _;
use std::io;

pub(crate) fn specs(scale: Scale) -> Vec<SweepSpec> {
    [ModelFamily::VggLike, ModelFamily::ResnetLike]
        .into_iter()
        .flat_map(|family| {
            let mut v = standard_panel_specs(family, 10, 4, scale, false, false);
            v.extend(standard_panel_specs(family, 10, 4, scale, true, false));
            v
        })
        .collect()
}

pub(crate) fn run(scale: Scale, engine: &SweepEngine, out: &mut String) -> io::Result<()> {
    sayln!(
        out,
        "Table 1 (scale: {scale}) — best test accuracy, CIFAR10-like, no momentum\n"
    );

    let mut table = Table::new(vec![
        "model".into(),
        "method".into(),
        "fixed lr %".into(),
        "variable lr %".into(),
    ]);
    let mut csv = String::from("model,method,fixed_lr_acc,variable_lr_acc\n");

    for family in [ModelFamily::VggLike, ModelFamily::ResnetLike] {
        let fixed = engine.run(&standard_panel_specs(family, 10, 4, scale, false, false));
        let variable = engine.run(&standard_panel_specs(family, 10, 4, scale, true, false));
        let mut adacomm_fixed = 0.0f64;
        let mut best_fixed_tau_acc = 0.0f64;
        let mut adacomm_var = 0.0f64;
        for (f, v) in fixed.iter().zip(variable.iter()) {
            let is_adacomm = f.name.starts_with("adacomm");
            assert!(
                f.name == v.name || (is_adacomm && v.name.starts_with("adacomm")),
                "panel ordering mismatch: {} vs {}",
                f.name,
                v.name
            );
            let fa = 100.0 * f.best_test_accuracy();
            let va = 100.0 * v.best_test_accuracy();
            let method = if is_adacomm { "adacomm" } else { &f.name };
            table.row(vec![
                family.name().to_string(),
                method.to_string(),
                format!("{fa:.2}"),
                format!("{va:.2}"),
            ]);
            let _ = writeln!(csv, "{},{method},{fa:.3},{va:.3}", family.name());
            if is_adacomm {
                adacomm_fixed = fa;
                adacomm_var = va;
            } else {
                best_fixed_tau_acc = best_fixed_tau_acc.max(fa);
            }
        }
        sayln!(
            out,
            "  [{}] adacomm fixed-lr acc {adacomm_fixed:.2}% (best fixed-tau {best_fixed_tau_acc:.2}%), variable-lr {adacomm_var:.2}%",
            family.name()
        );
    }
    sayln!(out);
    out.push_str(&table.render());
    let path = crate::write_csv("table1_accuracy", &csv)?;
    sayln!(out, "[saved {}]", path.display());
    Ok(())
}
