//! Figure 6: Theorem 1's optimization-error upper bound vs wall-clock
//! time, fully synchronous SGD (τ = 1) vs PASGD (τ = 10), with
//! `F(x1) = 1, F_inf = 0, η = 0.08, L = 1, σ² = 1`, delays as in Figure 5.

use crate::sweep::SweepEngine;
use crate::{ascii_series, sayln, write_csv, Scale};
use adacomm::theory::{error_runtime_bound, TheoryParams};
use std::fmt::Write as _;
use std::io;

pub(crate) fn run(_scale: Scale, _engine: &SweepEngine, out: &mut String) -> io::Result<()> {
    let params = TheoryParams::figure6();
    // Constant-delay reading of the Figure 5 parameters: y = 1, D = 1.
    let (y, d) = (1.0, 1.0);

    sayln!(
        out,
        "Figure 6: theoretical error bound (eq. 13) vs runtime\n"
    );
    let times: Vec<f64> = (1..=40).map(|i| i as f64 * 100.0).collect();
    let mut series = Vec::new();
    let mut csv = String::from("time,tau,bound\n");
    for &tau in &[1usize, 10] {
        let pts: Vec<(f64, f64)> = times
            .iter()
            .map(|&t| (t, error_runtime_bound(&params, y, d, tau, t)))
            .collect();
        for (t, b) in &pts {
            let _ = writeln!(csv, "{t},{tau},{b}");
        }
        series.push((format!("tau={tau}"), pts));
    }
    sayln!(out, "{}", ascii_series(&series, 70, 16));
    let path = write_csv("fig06_theory_bound", &csv)?;
    sayln!(out, "[saved {}]", path.display());

    // The figure's two claims: PASGD leads early, sync wins at the horizon.
    let early = 200.0;
    let late = 4000.0;
    let b = |tau, t| error_runtime_bound(&params, y, d, tau, t);
    sayln!(
        out,
        "bound at t = {early}:  tau=1: {:.4}  tau=10: {:.4}",
        b(1, early),
        b(10, early)
    );
    sayln!(
        out,
        "bound at t = {late}: tau=1: {:.4}  tau=10: {:.4}",
        b(1, late),
        b(10, late)
    );
    assert!(b(10, early) < b(1, early), "PASGD must lead early");
    assert!(b(1, late) < b(10, late), "sync must win at the horizon");
    sayln!(
        out,
        "\ncrossover confirmed: tau=10 leads early, tau=1 wins late (paper's trade-off)."
    );
    Ok(())
}
