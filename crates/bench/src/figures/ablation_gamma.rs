//! Ablation: the multiplicative decay factor γ of rule (18).
//!
//! γ < 1 is what lets AdaComm escape plateaus where rule (17) alone would
//! keep τ frozen. γ = 1.0 disables the refinement (pure rule 17); the
//! paper found γ = 1/2 a good choice. (The γ = 1/2 run is exactly Figure
//! 9b's AdaComm run, and the sweep engine deduplicates it.)

use crate::scenarios::ModelFamily;
use crate::sweep::{LrSpec, ScenarioSpec, SchedulerSpec, SweepEngine, SweepSpec};
use crate::{save_panel_csv, sayln, Scale, Table};
use adacomm::LrCoupling;
use std::io;

const GAMMAS: [f64; 4] = [0.25, 0.5, 0.75, 1.0];

pub(crate) fn specs(scale: Scale) -> Vec<SweepSpec> {
    let family = ModelFamily::VggLike;
    GAMMAS
        .iter()
        .map(|&gamma| {
            SweepSpec::new(
                ScenarioSpec::Canonical {
                    family,
                    classes: 10,
                    workers: 4,
                    scale,
                },
                SchedulerSpec::AdaComm {
                    tau0: family.tau0(),
                    gamma,
                    lr_coupling: LrCoupling::None,
                    max_tau: 256,
                },
                LrSpec::Fixed,
            )
            .with_gate(true)
            .named(format!("gamma={gamma}"))
        })
        .collect()
}

pub(crate) fn run(scale: Scale, engine: &SweepEngine, out: &mut String) -> io::Result<()> {
    sayln!(
        out,
        "Ablation: AdaComm gamma (eq. 18), VGG-like CIFAR10-like (scale {scale})\n"
    );
    let traces = engine.run(&specs(scale));

    let mut table = Table::new(vec![
        "gamma".into(),
        "final loss".into(),
        "min loss".into(),
        "best acc %".into(),
        "final tau".into(),
        "rounds with tau=1".into(),
    ]);
    for (trace, &gamma) in traces.iter().zip(&GAMMAS) {
        let taus = trace.tau_trace();
        let at_one = taus.iter().filter(|&&(_, t)| t == 1).count();
        let last = trace.points.last().expect("non-empty");
        table.row(vec![
            format!("{gamma}"),
            format!("{:.4}", trace.final_loss()),
            format!("{:.4}", trace.min_loss()),
            format!("{:.2}", 100.0 * trace.best_test_accuracy()),
            last.tau.to_string(),
            format!("{at_one}/{}", taus.len()),
        ]);
    }
    out.push_str(&table.render());
    let path = save_panel_csv("ablation_gamma", &traces)?;
    sayln!(out, "[saved {}]", path.display());

    sayln!(
        out,
        "\nsmaller gamma anneals tau to 1 sooner (lower floor, slower late"
    );
    sayln!(
        out,
        "iterations); gamma = 1.0 can leave tau stuck above 1 on plateaus."
    );
    Ok(())
}
