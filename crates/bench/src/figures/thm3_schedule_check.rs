//! Theorem 3: convergence conditions (eq. 21) for variable-(τ, η)
//! schedules, checked on canonical schedule families.

use crate::sweep::SweepEngine;
use crate::{sayln, write_csv, Scale, Table};
use adacomm::theory::{Round, ScheduleConvergence};
use std::fmt::Write as _;
use std::io;

fn analyze(name: &str, rounds: Vec<Round>, table: &mut Table, csv: &mut String) {
    let rep = ScheduleConvergence::analyze(&rounds);
    table.row(vec![
        name.to_string(),
        format!("{:.3}", rep.increment_ratios[0]),
        format!("{:.3}", rep.increment_ratios[1]),
        format!("{:.3}", rep.increment_ratios[2]),
        rep.first_series_diverges().to_string(),
        rep.second_series_converges().to_string(),
        rep.third_series_converges().to_string(),
        rep.satisfied().to_string(),
    ]);
    let _ = writeln!(
        csv,
        "{name},{},{},{},{}",
        rep.increment_ratios[0],
        rep.increment_ratios[1],
        rep.increment_ratios[2],
        rep.satisfied()
    );
}

pub(crate) fn run(_scale: Scale, _engine: &SweepEngine, out: &mut String) -> io::Result<()> {
    sayln!(out, "Theorem 3 (eq. 21): schedule convergence conditions\n");
    let horizon = 60_000usize;
    let mut table = Table::new(vec![
        "schedule".into(),
        "r1 (eta*tau)".into(),
        "r2 (eta^2*tau)".into(),
        "r3 (eta^3*tau^2)".into(),
        "sum1 diverges".into(),
        "sum2 conv".into(),
        "sum3 conv".into(),
        "satisfied".into(),
    ]);
    let mut csv = String::from("schedule,ratio1,ratio2,ratio3,satisfied\n");

    // 1. The classic convergent schedule: eta ~ 1/r, constant tau.
    analyze(
        "eta=1/r, tau=8",
        (1..=horizon)
            .map(|r| Round {
                lr: 1.0 / r as f64,
                tau: 8,
            })
            .collect(),
        &mut table,
        &mut csv,
    );
    // 2. Constant lr: fails (noise series diverge) — the error floor case.
    analyze(
        "eta=0.1, tau=8",
        (0..horizon).map(|_| Round { lr: 0.1, tau: 8 }).collect(),
        &mut table,
        &mut csv,
    );
    // 3. eta ~ 1/sqrt(r) with constant tau: second series diverges.
    analyze(
        "eta=1/sqrt(r), tau=8",
        (1..=horizon)
            .map(|r| Round {
                lr: 1.0 / (r as f64).sqrt(),
                tau: 8,
            })
            .collect(),
        &mut table,
        &mut csv,
    );
    // 4. The paper's point: with the same lr, a *decreasing* tau slashes
    //    the noise series' mass ("when the communication period sequence is
    //    decreasing, the last two terms ... become easier to be satisfied").
    //    Because tau floors at 1, the asymptotic verdict matches row 3; the
    //    relaxation shows up in the magnitudes, compared below.
    let decreasing: Vec<Round> = (1..=horizon)
        .map(|r| Round {
            lr: 1.0 / (r as f64).sqrt(),
            tau: ((8.0 / (r as f64).powf(0.7)).ceil() as usize).max(1),
        })
        .collect();
    let constant_tau: Vec<Round> = (1..=horizon)
        .map(|r| Round {
            lr: 1.0 / (r as f64).sqrt(),
            tau: 8,
        })
        .collect();
    let rep_dec = ScheduleConvergence::analyze(&decreasing);
    let rep_const = ScheduleConvergence::analyze(&constant_tau);
    analyze(
        "eta=1/sqrt(r), tau=ceil(8/r^0.7)",
        decreasing,
        &mut table,
        &mut csv,
    );
    // 5. AdaComm-style: geometric tau decay to 1, then constant, with a
    //    step lr schedule on top.
    analyze(
        "adacomm-style (geom tau, step lr)",
        (0..horizon)
            .map(|r| Round {
                lr: 0.1 * (1.0 / (1.0 + r as f64 / 500.0)),
                tau: (16usize >> (r / 2000).min(4)).max(1),
            })
            .collect(),
        &mut table,
        &mut csv,
    );

    out.push_str(&table.render());
    let path = write_csv("thm3_schedule_check", &csv)?;
    sayln!(out, "[saved {}]", path.display());

    sayln!(
        out,
        "\nratios are I2/I1 tail-mass ratios; >= 0.81 reads as divergent."
    );
    sayln!(
        out,
        "rows 1 and 5 satisfy eq. 21; rows 2 and 3 do not (constant-lr floor)."
    );
    sayln!(
        out,
        "\ndecreasing tau vs constant tau at the same lr (rows 4 vs 3): the noise\nseries sums shrink from {:.1} to {:.1} (eta^2*tau) and {:.1} to {:.1} (eta^3*tau^2)\n— the paper's 'less constraints on the learning rate sequence'.",
        rep_const.sum_lr2_tau,
        rep_dec.sum_lr2_tau,
        rep_const.sum_lr3_tau2,
        rep_dec.sum_lr3_tau2
    );
    assert!(rep_dec.sum_lr2_tau < rep_const.sum_lr2_tau / 3.0);
    assert!(rep_dec.sum_lr3_tau2 < rep_const.sum_lr3_tau2 / 2.0);
    Ok(())
}
