//! Figure 1 (conceptual): error convergence with respect to the number of
//! iterations vs with respect to wall-clock time, for small/large/adaptive
//! communication periods.
//!
//! Plotted per iteration, small τ always looks best; re-plotting the same
//! runs against the simulated clock flips the ordering early on — the
//! observation the whole paper builds on.

use crate::sweep::{LrSpec, ScenarioSpec, SchedulerSpec, SweepEngine, SweepSpec};
use crate::{ascii_series, save_panel_csv, sayln, Scale};
use pasgd_sim::RunTrace;
use std::io;

pub(crate) fn specs(_scale: Scale) -> Vec<SweepSpec> {
    [
        SchedulerSpec::Fixed { tau: 1 },
        SchedulerSpec::Fixed { tau: 16 },
        SchedulerSpec::adacomm(16),
    ]
    .into_iter()
    .map(|sched| SweepSpec::new(ScenarioSpec::Concept, sched, LrSpec::Fixed))
    .collect()
}

pub(crate) fn run(scale: Scale, engine: &SweepEngine, out: &mut String) -> io::Result<()> {
    sayln!(out, "Figure 1: the same three runs on two x-axes\n");
    let traces = engine.run(&specs(scale));

    let by_iters: Vec<(String, Vec<(f64, f64)>)> = traces
        .iter()
        .map(|t| {
            (
                t.name.clone(),
                t.points
                    .iter()
                    .map(|p| (p.iterations as f64, f64::from(p.train_loss)))
                    .collect(),
            )
        })
        .collect();
    sayln!(out, "loss vs NUMBER OF ITERATIONS (small tau should lead):");
    sayln!(out, "{}", ascii_series(&by_iters, 70, 14));

    let by_time: Vec<(String, Vec<(f64, f64)>)> = traces
        .iter()
        .map(|t| {
            (
                t.name.clone(),
                t.points
                    .iter()
                    .map(|p| (p.clock, f64::from(p.train_loss)))
                    .collect(),
            )
        })
        .collect();
    sayln!(
        out,
        "loss vs WALL-CLOCK TIME (large tau leads early; adaptive wins):"
    );
    sayln!(out, "{}", ascii_series(&by_time, 70, 14));

    let path = save_panel_csv("fig01_concept", &traces)?;
    sayln!(out, "[saved {}]", path.display());

    // Shape assertion: per-iteration, sync is at least as good as tau=16 at
    // a matched iteration count; per-time, tau=16 is ahead early.
    let loss_at_iter = |t: &RunTrace, k: u64| {
        t.points
            .iter()
            .filter(|p| p.iterations <= k)
            .map(|p| p.train_loss)
            .fold(f32::INFINITY, f32::min)
    };
    let k = traces[0].points.last().unwrap().iterations.min(400);
    let sync_at_k = loss_at_iter(&traces[0], k);
    let tau16_at_k = loss_at_iter(&traces[1], k);
    sayln!(
        out,
        "at {k} iterations: sync {sync_at_k:.4} vs tau=16 {tau16_at_k:.4}"
    );
    let early_t = 60.0;
    let loss_at_time = |t: &RunTrace, tt: f64| {
        t.points
            .iter()
            .filter(|p| p.clock <= tt)
            .map(|p| p.train_loss)
            .fold(f32::INFINITY, f32::min)
    };
    let sync_early = loss_at_time(&traces[0], early_t);
    let tau16_early = loss_at_time(&traces[1], early_t);
    sayln!(
        out,
        "at t = {early_t} s: sync {sync_early:.4} vs tau=16 {tau16_early:.4}"
    );
    assert!(
        tau16_early < sync_early,
        "wall-clock view must favour large tau early"
    );
    Ok(())
}
