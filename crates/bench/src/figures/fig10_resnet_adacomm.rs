//! Figure 10: AdaComm on the ResNet-50-like (computation-bound) setting,
//! 4 workers. Panels: (a) variable lr CIFAR10-like, (b) fixed lr
//! CIFAR10-like, (c) fixed lr CIFAR100-like.
//!
//! Paper's reported shape: with communication no longer the bottleneck
//! (α < 1), fully synchronous SGD is nearly the best fixed-τ method, and
//! AdaComm stays competitive (1.4× with the variable lr schedule).

use super::{append_tau_trace, scenario_title};
use crate::scenarios::ModelFamily;
use crate::sweep::{standard_panel_specs, SweepEngine, SweepSpec};
use crate::{report_panel, save_panel_csv, sayln, Scale};
use std::io;

const PANELS: [(&str, &str, usize, bool); 3] = [
    ("a", "10a: variable lr, CIFAR10-like", 10, true),
    ("b", "10b: fixed lr, CIFAR10-like", 10, false),
    ("c", "10c: fixed lr, CIFAR100-like", 100, false),
];

pub(crate) fn specs(scale: Scale) -> Vec<SweepSpec> {
    PANELS
        .iter()
        .flat_map(|&(_, _, classes, variable)| {
            standard_panel_specs(ModelFamily::ResnetLike, classes, 4, scale, variable, false)
        })
        .collect()
}

pub(crate) fn run(scale: Scale, engine: &SweepEngine, out: &mut String) -> io::Result<()> {
    sayln!(out, "Figure 10 (scale: {scale})\n");
    for (tag, panel, classes, variable) in PANELS {
        let specs =
            standard_panel_specs(ModelFamily::ResnetLike, classes, 4, scale, variable, false);
        let traces = engine.run(&specs);
        let title = scenario_title(ModelFamily::ResnetLike, classes, 4, scale);
        sayln!(
            out,
            "{}",
            report_panel(&format!("{panel} — {title}"), &traces)
        );
        let path = save_panel_csv(&format!("fig10{tag}"), &traces)?;
        sayln!(out, "[saved {}]", path.display());

        append_tau_trace(out, traces.last().expect("adacomm trace"));
    }
    Ok(())
}
