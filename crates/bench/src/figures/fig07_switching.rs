//! Figure 7 (conceptual): choosing the best τ per wall-clock interval via
//! Theorem 2, i.e. the τ*-sequence that motivates AdaComm.
//!
//! Panel (a) of the figure shows learning curves crossing (switch points);
//! panel (b) shows the per-interval optimal τ*ₗ (eqs. 15–16). We print the
//! τ* sequence under the Figure 6 constants together with the bound value
//! each interval's choice achieves, and verify the sequence decreases.

use crate::sweep::SweepEngine;
use crate::{sayln, write_csv, Scale, Table};
use adacomm::theory::{error_runtime_bound, tau_star_int, TheoryParams};
use std::fmt::Write as _;
use std::io;

pub(crate) fn run(_scale: Scale, _engine: &SweepEngine, out: &mut String) -> io::Result<()> {
    let mut params = TheoryParams::figure6();
    let (y, d) = (1.0, 1.0);
    let t0 = 200.0; // interval length, same spirit as the paper's T0

    sayln!(
        out,
        "Figure 7: per-interval optimal communication period (eqs. 15-16)\n"
    );
    let mut table = Table::new(vec![
        "interval".into(),
        "F(x_t)".into(),
        "tau*_l".into(),
        "bound after interval".into(),
    ]);
    let mut csv = String::from("interval,f_t,tau_star,bound\n");

    // Simulate the *bound's* own decay: at each interval, apply Theorem 1
    // with the chosen tau to estimate the loss entering the next interval.
    let mut f_t = params.f_init;
    let mut prev_tau = usize::MAX;
    for l in 0..10 {
        params.f_init = f_t;
        let tau = tau_star_int(&params, d, t0);
        let bound = error_runtime_bound(&params, y, d, tau, t0);
        // Map the gradient-norm bound back to an objective decrease via the
        // PL-style proxy F - F_inf ~ bound / (2 L); clamp to be monotone.
        let next_f = (bound / (2.0 * params.lipschitz)).min(f_t);
        table.row(vec![
            l.to_string(),
            format!("{f_t:.4}"),
            tau.to_string(),
            format!("{bound:.4}"),
        ]);
        let _ = writeln!(csv, "{l},{f_t},{tau},{bound}");
        assert!(
            tau <= prev_tau,
            "tau* must not increase as training progresses: {tau} after {prev_tau}"
        );
        prev_tau = tau;
        f_t = next_f.max(params.f_inf);
    }
    out.push_str(&table.render());
    let path = write_csv("fig07_switching", &csv)?;
    sayln!(out, "[saved {}]", path.display());
    sayln!(
        out,
        "\ntau* decreases interval over interval — the adaptive schedule of Figure 7(b)."
    );
    Ok(())
}
