//! Figure 5: probability distribution of the runtime per iteration for
//! fully synchronous SGD vs PASGD (τ = 10) with `Y ~ Exp(1)`, `D = 1`,
//! `m = 16` workers.

use crate::sweep::SweepEngine;
use crate::{sayln, write_csv, Scale};
use delay::{CommModel, DelayDistribution, Histogram, RuntimeModel};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::io;

pub(crate) fn run(scale: Scale, _engine: &SweepEngine, out: &mut String) -> io::Result<()> {
    let n = scale.mc_samples();
    let mut rng = StdRng::seed_from_u64(55);

    // The paper's parameters: D = 1, mean compute y = 1, m = 16.
    let model = RuntimeModel::new(
        DelayDistribution::exponential(1.0),
        CommModel::constant(1.0),
        16,
    );

    sayln!(
        out,
        "Figure 5: runtime-per-iteration distribution ({n} samples, scale {scale})\n"
    );
    let mut sync = Histogram::new(0.0, 8.0, 40);
    sync.extend_from(&model.per_iteration_samples(1, n, &mut rng));
    let mut pasgd = Histogram::new(0.0, 8.0, 40);
    pasgd.extend_from(&model.per_iteration_samples(10, n, &mut rng));

    sayln!(out, "  mean runtime/iteration:");
    sayln!(out, "    sync SGD      : {:.3} s", sync.mean());
    sayln!(out, "    PASGD (tau=10): {:.3} s", pasgd.mean());
    sayln!(
        out,
        "    ratio         : {:.2}x less (paper: ~2x)\n",
        sync.mean() / pasgd.mean()
    );

    sayln!(out, "  runtime | probability (s = sync, p = pasgd)");
    let mut csv = String::from("bin_centre,sync_prob,pasgd_prob\n");
    for ((centre, ps), (_, pp)) in sync.normalized().into_iter().zip(pasgd.normalized()) {
        let bar_s = "s".repeat((ps * 200.0).round() as usize);
        let bar_p = "p".repeat((pp * 200.0).round() as usize);
        if ps > 0.001 || pp > 0.001 {
            sayln!(out, "  {centre:>7.2} | {bar_s}");
            sayln!(out, "          | {bar_p}");
        }
        let _ = writeln!(csv, "{centre},{ps},{pp}");
    }
    let path = write_csv("fig05_runtime_dist", &csv)?;
    sayln!(out, "[saved {}]", path.display());

    // Shape assertions: the PASGD distribution must be tighter (lighter
    // tail) and its mean roughly half the sync mean.
    let ratio = sync.mean() / pasgd.mean();
    assert!(
        ratio > 1.6 && ratio < 2.6,
        "mean ratio {ratio} outside the paper's ~2x regime"
    );
    Ok(())
}
