//! Ablation: the wall-clock interval length `T0` at which AdaComm
//! re-evaluates τ (Section 4: "if the interval length T0 is small enough
//! ... this adaptive scheme should achieve a win-win").

use crate::scenarios::ModelFamily;
use crate::sweep::{LrSpec, ScenarioSpec, SchedulerSpec, SweepEngine, SweepSpec};
use crate::{save_panel_csv, sayln, Scale, Table};
use std::io;

const T0S: [f64; 5] = [15.0, 30.0, 60.0, 120.0, 300.0];

pub(crate) fn specs(scale: Scale) -> Vec<SweepSpec> {
    let family = ModelFamily::VggLike;
    T0S.iter()
        .map(|&t0| {
            SweepSpec::new(
                ScenarioSpec::canonical_t0(family, 10, 4, scale, t0),
                SchedulerSpec::adacomm(family.tau0()),
                LrSpec::Fixed,
            )
            .with_gate(true)
            .named(format!("T0={t0}"))
        })
        .collect()
}

pub(crate) fn run(scale: Scale, engine: &SweepEngine, out: &mut String) -> io::Result<()> {
    sayln!(
        out,
        "Ablation: AdaComm interval length T0, VGG-like CIFAR10-like (scale {scale})\n"
    );
    let traces = engine.run(&specs(scale));

    let mut table = Table::new(vec![
        "T0 (s)".into(),
        "final loss".into(),
        "best acc %".into(),
        "tau updates".into(),
    ]);
    for (trace, &t0) in traces.iter().zip(&T0S) {
        // Count distinct tau values along the trace as a proxy for updates.
        let taus: Vec<usize> = trace.tau_trace().iter().map(|&(_, t)| t).collect();
        let changes = taus.windows(2).filter(|w| w[0] != w[1]).count();
        table.row(vec![
            format!("{t0}"),
            format!("{:.4}", trace.final_loss()),
            format!("{:.2}", 100.0 * trace.best_test_accuracy()),
            changes.to_string(),
        ]);
    }
    out.push_str(&table.render());
    let path = save_panel_csv("ablation_t0", &traces)?;
    sayln!(out, "[saved {}]", path.display());

    sayln!(
        out,
        "\nvery large T0 adapts too slowly (few tau updates); very small T0 anneals"
    );
    sayln!(
        out,
        "tau to 1 early and gives up the communication savings."
    );
    Ok(())
}
