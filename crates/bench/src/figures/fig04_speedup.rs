//! Figure 4: runtime speed-up of PASGD over fully synchronous SGD,
//! `(1 + α)/(1 + α/τ)`, for α ∈ {0.1, 0.5, 0.9} and τ ∈ [1, 100].

use crate::sweep::SweepEngine;
use crate::{sayln, write_csv, Scale, Table};
use delay::speedup_constant;
use std::fmt::Write as _;
use std::io;

pub(crate) fn run(_scale: Scale, _engine: &SweepEngine, out: &mut String) -> io::Result<()> {
    let alphas = [0.1, 0.5, 0.9];
    let taus: Vec<usize> = vec![1, 2, 5, 10, 20, 40, 60, 80, 100];

    sayln!(
        out,
        "Figure 4: speed-up over fully synchronous SGD (eq. 12)\n"
    );
    let mut table = Table::new(
        std::iter::once("tau".to_string())
            .chain(alphas.iter().map(|a| format!("alpha={a}")))
            .collect(),
    );
    let mut csv = String::from("tau,alpha,speedup\n");
    for &tau in &taus {
        let mut row = vec![tau.to_string()];
        for &alpha in &alphas {
            let s = speedup_constant(alpha, tau);
            row.push(format!("{s:.4}"));
            let _ = writeln!(csv, "{tau},{alpha},{s}");
        }
        table.row(row);
    }
    out.push_str(&table.render());
    let path = write_csv("fig04_speedup", &csv)?;
    sayln!(out, "[saved {}]", path.display());

    // The paper's headline observation for this figure.
    sayln!(
        out,
        "\nwith alpha = 0.9 and tau = 100 the speed-up is {:.3} (paper: ~2x, asymptote 1.9)",
        speedup_constant(0.9, 100)
    );
    assert!(
        (speedup_constant(0.9, 100) - 1.9 / 1.009).abs() < 1e-12,
        "closed form drifted from eq. 12"
    );
    Ok(())
}
