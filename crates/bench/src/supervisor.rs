//! Supervised run execution: panic isolation, per-run deadlines, and
//! bounded retry with seeded backoff.
//!
//! Every sweep run the engine executes goes through [`run_supervised`]:
//! the closure runs under `catch_unwind`, a panic is converted into a
//! retryable failure, and retries back off by a deterministic,
//! label-seeded delay (no wall-clock randomness — the same label and
//! policy seed always produce the same backoff sequence, so a supervised
//! reproduction is as replayable as an unsupervised one). A run whose
//! *successful* attempt overruns the per-run deadline fails terminally:
//! the runs are deterministic, so re-executing an overrun run would
//! overrun again.
//!
//! Failures are reported as `Err(reason)` after the attempt budget is
//! spent; the engine records them and degrades the reproduction to a
//! partial-results report instead of aborting (see
//! `SweepEngine::run_failures`).
//!
//! For tests and CI drills, [`inject_panics`] arms a process-global hook
//! that panics at the start of any supervised execution whose label
//! contains a given substring — the supervised path is exercised end to
//! end without planting failure code in the simulator.

use binio::fnv1a64;
use rand::{Rng as _, SeedableRng as _};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Retry/deadline policy for one supervised execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SupervisorPolicy {
    /// Total attempts per run, counting the first (`>= 1`).
    pub max_attempts: u32,
    /// Base for the exponential backoff between attempts: attempt `n`
    /// (1-indexed) sleeps `base * 2^(n-1)` plus a seeded jitter in
    /// `[0, base)` milliseconds before retrying. `0` disables sleeping
    /// (tests).
    pub backoff_base_millis: u64,
    /// Wall-clock budget for a single attempt, checked after it returns
    /// (the runs are compute loops with no await points to interrupt). A
    /// successful attempt that overran fails terminally; `None` disables
    /// the check.
    pub deadline: Option<Duration>,
    /// Seed for the backoff jitter, mixed with the run label so distinct
    /// runs don't retry in lockstep.
    pub seed: u64,
}

impl Default for SupervisorPolicy {
    fn default() -> Self {
        SupervisorPolicy {
            max_attempts: 3,
            backoff_base_millis: 20,
            deadline: None,
            seed: 0x05EE_D0FF_A117,
        }
    }
}

/// Remaining injected panics: `(label substring, remaining count)`.
/// Process-global so binaries can arm it before the engine (and its pool
/// threads) exist.
static INJECTED: Mutex<Vec<(String, u32)>> = Mutex::new(Vec::new());

/// Arms the fault drill: the next `count` supervised executions whose
/// label contains `substr` panic at the start of the attempt. Counts
/// accumulate per substring; `u32::MAX` effectively means "always".
pub fn inject_panics(substr: &str, count: u32) {
    let mut hooks = INJECTED.lock().expect("injection hook poisoned");
    if let Some(entry) = hooks.iter_mut().find(|(s, _)| s == substr) {
        entry.1 = entry.1.saturating_add(count);
    } else {
        hooks.push((substr.to_string(), count));
    }
}

/// Disarms every injected panic (test isolation).
pub fn clear_injected_panics() {
    INJECTED.lock().expect("injection hook poisoned").clear();
}

/// Consumes one injected panic for `label`, if armed.
fn consume_injected_panic(label: &str) -> bool {
    let mut hooks = INJECTED.lock().expect("injection hook poisoned");
    for (substr, remaining) in hooks.iter_mut() {
        if *remaining > 0 && label.contains(substr.as_str()) {
            *remaining = remaining.saturating_sub(1);
            return true;
        }
    }
    false
}

/// The deterministic backoff before retry attempt `next_attempt`
/// (2-indexed: the sleep happens after attempt `next_attempt - 1`
/// failed), in milliseconds.
fn backoff_millis(policy: &SupervisorPolicy, label: &str, next_attempt: u32) -> u64 {
    if policy.backoff_base_millis == 0 {
        return 0;
    }
    let mut rng = rand::rngs::StdRng::seed_from_u64(
        policy.seed ^ fnv1a64(label.as_bytes()) ^ u64::from(next_attempt),
    );
    let jitter = (rng.gen::<f64>() * policy.backoff_base_millis as f64) as u64;
    policy.backoff_base_millis << (next_attempt - 2).min(8) | jitter.min(policy.backoff_base_millis)
}

/// Extracts a printable message from a `catch_unwind` payload.
fn panic_message(panic: Box<dyn std::any::Any + Send>) -> String {
    panic
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_else(|| "panicked (non-string payload)".to_string())
}

/// Executes `f` under the policy: panic-isolated, deadline-checked, and
/// retried with seeded backoff up to `max_attempts` total attempts.
///
/// # Errors
///
/// Returns the last failure reason when every attempt panicked, or a
/// terminal deadline report when the successful attempt overran
/// `policy.deadline`.
pub fn run_supervised<T>(
    policy: &SupervisorPolicy,
    label: &str,
    f: impl Fn() -> T,
) -> Result<T, String> {
    assert!(policy.max_attempts >= 1, "at least one attempt required");
    let mut last_failure = String::new();
    for attempt in 1..=policy.max_attempts {
        if attempt > 1 {
            telemetry::counter("sweep.run_retries").inc();
            let millis = backoff_millis(policy, label, attempt);
            if millis > 0 {
                std::thread::sleep(Duration::from_millis(millis));
            }
        }
        let started = Instant::now();
        let result = catch_unwind(AssertUnwindSafe(|| {
            if consume_injected_panic(label) {
                panic!("injected panic (fault drill) in {label}");
            }
            if crate::failpoint::fire("supervisor.attempt.panic") {
                panic!("injected panic (failpoint) in {label}");
            }
            f()
        }));
        match result {
            Ok(value) => {
                if let Some(deadline) = policy.deadline {
                    let elapsed = started.elapsed();
                    if elapsed > deadline {
                        // Deterministic runs overrun deterministically;
                        // retrying would only pay the cost again.
                        telemetry::counter("sweep.run_deadline_misses").inc();
                        return Err(format!(
                            "deadline exceeded: attempt took {:.2} s against a {:.2} s budget",
                            elapsed.as_secs_f64(),
                            deadline.as_secs_f64()
                        ));
                    }
                }
                return Ok(value);
            }
            Err(panic) => {
                telemetry::counter("sweep.run_panics").inc();
                last_failure = panic_message(panic);
            }
        }
    }
    Err(format!(
        "panicked on all {} attempts; last: {last_failure}",
        policy.max_attempts
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn fast_policy() -> SupervisorPolicy {
        SupervisorPolicy {
            max_attempts: 3,
            backoff_base_millis: 0,
            deadline: None,
            seed: 7,
        }
    }

    #[test]
    fn success_passes_through() {
        assert_eq!(run_supervised(&fast_policy(), "ok-run", || 42), Ok(42));
    }

    // The injection table is process-global and tests run concurrently,
    // so each test uses a label no other test's substring matches and
    // never calls `clear_injected_panics` (which would race).

    #[test]
    fn injected_panic_is_recovered_by_retry() {
        inject_panics("flaky-run-a", 2);
        let calls = AtomicU32::new(0);
        let result = run_supervised(&fast_policy(), "flaky-run-a", || {
            calls.fetch_add(1, Ordering::SeqCst) + 1
        });
        // Injected panics fire before the closure body, so the successful
        // third attempt is the only one that actually runs it.
        assert_eq!(result, Ok(1));
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        let hooks = INJECTED.lock().expect("injection hook poisoned");
        let remaining = hooks
            .iter()
            .find(|(s, _)| s == "flaky-run-a")
            .expect("hook stays registered")
            .1;
        assert_eq!(remaining, 0, "both injected panics were consumed");
    }

    #[test]
    fn exhausted_attempts_fail_terminally() {
        inject_panics("doomed-run-b", u32::MAX);
        let result: Result<(), String> = run_supervised(&fast_policy(), "doomed-run-b", || ());
        let err = result.unwrap_err();
        assert!(err.contains("all 3 attempts"), "{err}");
        assert!(err.contains("injected panic"), "{err}");
    }

    #[test]
    fn real_panic_message_is_preserved() {
        let result: Result<(), String> = run_supervised(&fast_policy(), "assert-run", || {
            panic!("loss diverged: {}", f64::INFINITY)
        });
        assert!(result.unwrap_err().contains("loss diverged: inf"));
    }

    #[test]
    fn deadline_overrun_fails_without_retry() {
        let policy = SupervisorPolicy {
            deadline: Some(Duration::from_millis(1)),
            ..fast_policy()
        };
        let calls = AtomicU32::new(0);
        let result = run_supervised(&policy, "slow-run", || {
            calls.fetch_add(1, Ordering::SeqCst);
            std::thread::sleep(Duration::from_millis(30));
        });
        assert!(result.unwrap_err().contains("deadline exceeded"));
        // Terminal: deterministic overruns are not retried.
        assert_eq!(calls.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn backoff_is_deterministic_and_label_dependent() {
        let policy = SupervisorPolicy {
            backoff_base_millis: 16,
            ..SupervisorPolicy::default()
        };
        let a1 = backoff_millis(&policy, "run-a", 2);
        let a2 = backoff_millis(&policy, "run-a", 2);
        assert_eq!(a1, a2, "same label + attempt must back off identically");
        // Growth across attempts: the exponential part dominates jitter.
        assert!(backoff_millis(&policy, "run-a", 4) > backoff_millis(&policy, "run-a", 2));
        // Seed participates.
        let reseeded = SupervisorPolicy { seed: 99, ..policy };
        assert!(
            backoff_millis(&reseeded, "run-a", 2) != a1
                || backoff_millis(&reseeded, "run-a", 3) != backoff_millis(&policy, "run-a", 3)
        );
    }

    #[test]
    fn injection_matches_on_substring_only() {
        inject_panics("VggLike-drill", 1);
        assert_eq!(
            run_supervised(&fast_policy(), "scenario ResnetLike-x", || 1),
            Ok(1)
        );
        let r = run_supervised(
            &SupervisorPolicy {
                max_attempts: 1,
                ..fast_policy()
            },
            "scenario VggLike-drill tau=4",
            || 1,
        );
        assert!(r.is_err());
    }
}
