//! The sweep service: a crash-safe long-running daemon over a Unix-domain
//! socket, serving scenario requests out of the persistent run store and
//! the sweep engine.
//!
//! The protocol is newline-delimited JSON (std-only, no new
//! dependencies): each request line is one JSON object with an optional
//! integer `id` (echoed back) and a `cmd`; each response is one JSON
//! object with the echoed `id` and either `"ok": true` plus a result or
//! `"ok": false` plus a structured error (`kind` + `message`). See
//! [`protocol`] for the exact shapes.
//!
//! Failure semantics are the point of this module:
//!
//! * **Deadlines** — a `run` request may carry `deadline_ms`; a run that
//!   overruns is cooperatively cancelled at the next round boundary, its
//!   partial work parked resumably in the store
//!   ([`RunStore::park`](crate::store::RunStore::park)), and the request
//!   answered with a `deadline` error. A later request for the same spec
//!   resumes the parked work bit-identically.
//! * **Backpressure** — the request queue is bounded
//!   ([`ServerConfig::queue_limit`]); a full queue sheds the request with
//!   an explicit `overloaded` error instead of growing without bound.
//! * **Single-flight dedup** — concurrent requests for the same
//!   content-addressed spec key attach to one in-flight computation and
//!   all receive its result; only the first occupies a queue slot.
//! * **Panic isolation** — each request executes under the
//!   [`supervisor`] — a panicking run degrades exactly
//!   one response (`panic` error), never the process.
//! * **Malformed input** — a garbage line (invalid JSON, oversized,
//!   wrong field types) yields a structured `bad_request` error on the
//!   same connection; the reader never panics and never desyncs framing.
//! * **Graceful drain** — [`ServerHandle::initiate_drain`] (wired to
//!   SIGTERM and the `shutdown` command by `sweepd`) stops accepting,
//!   answers queued requests with `draining`, checkpoints in-flight runs
//!   into the store, then joins every thread so the process can flush
//!   telemetry and exit 0.
//!
//! * **Crash consistency** — with a [`ServerConfig::journal_path`], every
//!   accepted run/figure job is recorded in an append-only, CRC-framed,
//!   fsync'd [`journal`] before it executes and discharged when its
//!   flight completes. After a SIGKILL, [`recover`] replays the journal's
//!   pending set — resuming parked checkpoints where the store has them,
//!   recomputing deterministically otherwise — so no accepted request is
//!   ever lost and the recovered results are bit-identical to the runs
//!   the crash interrupted.
//!
//! Everything reports through the telemetry crate: `server.requests`,
//! `server.shed`, `server.dedup_hits`, `server.deadline_misses`,
//! `server.request_panics`, `server.recovered_runs`,
//! `server.journal_replays`, `server.gc_orphans` counters, the
//! `server.queue_depth` gauge and a `phase.server_request` span per
//! executed request — all surfaced by `obs_report`.

use crate::failpoint;
use crate::figures;
use crate::supervisor::{self, SupervisorPolicy};
use crate::sweep::{CancellableRun, SweepEngine, TraceSource};
use crate::Scale;
use std::collections::{HashMap, VecDeque};
use std::io::{self, BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

pub mod journal;
pub mod protocol;

use journal::Journal;
use protocol::{Command, ErrorKind, Request, Response, ResponseBody, RunStats, StatsBody};

/// Hard cap on one protocol line (1 MiB). A line that exceeds it is
/// consumed to its newline (framing stays intact) and answered with a
/// `bad_request` error; the connection keeps working.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// Configuration for one [`Server`] instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Unix-domain socket path to listen on.
    pub socket_path: PathBuf,
    /// Worker threads executing requests.
    pub workers: usize,
    /// Bounded queue: at most this many *distinct* jobs may be waiting
    /// (joiners of an in-flight job never occupy a slot). Requests
    /// arriving beyond it are shed with an `overloaded` error.
    pub queue_limit: usize,
    /// Scale every served scenario is built at (must match the batch
    /// reproduction it is compared against).
    pub scale: Scale,
    /// Crash-consistency journal file. `None` disables journaling (e.g.
    /// a cache-less daemon has nothing durable to recover into anyway).
    pub journal_path: Option<PathBuf>,
    /// Age past which a parked checkpoint frame is GC debris rather than
    /// paused work (startup sweep and the `gc` command).
    pub gc_max_parked_age: Duration,
    /// Counters from the recovery pass that ran before this server
    /// started, reported through `stats`.
    pub recovery: RecoveryCounters,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            socket_path: PathBuf::from("/tmp/adacomm-sweepd.sock"),
            workers: 2,
            queue_limit: 64,
            scale: Scale::Quick,
            journal_path: None,
            gc_max_parked_age: Duration::from_secs(24 * 60 * 60),
            recovery: RecoveryCounters::default(),
        }
    }
}

/// Startup recovery results carried into the server's `stats` counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryCounters {
    /// Interrupted runs completed by journal recovery.
    pub recovered_runs: u64,
    /// Journal accept records found pending and replayed.
    pub journal_replays: u64,
    /// Orphaned files reclaimed by the startup GC sweep.
    pub gc_orphans: u64,
}

/// Aggregated service counters (also mirrored to telemetry).
#[derive(Debug, Default)]
struct Counters {
    requests: AtomicU64,
    shed: AtomicU64,
    dedup_hits: AtomicU64,
    deadline_misses: AtomicU64,
    request_panics: AtomicU64,
    /// Seeded with the startup GC's reclaim count, grown by `gc` requests.
    gc_orphans: AtomicU64,
}

/// A client waiting on a flight's outcome.
struct Waiter {
    id: Option<u64>,
    out: Arc<Mutex<UnixStream>>,
}

/// What a queued job executes.
#[derive(Clone)]
enum JobKind {
    /// A scenario run through the engine's cancellable path. The spec is
    /// boxed to keep the enum (cloned per dispatch) small.
    Run {
        spec: Box<crate::sweep::SweepSpec>,
        forced_panic: bool,
    },
    /// A whole registry figure rendered against the shared engine (CSV
    /// outputs land in the active results directory, byte-identical to
    /// batch mode).
    Figure { name: String },
}

/// One enqueued unit of work plus its leader's deadline. Joiners inherit
/// the leader's deadline: single-flight means one computation with one
/// budget, and every waiter shares its fate.
#[derive(Clone)]
struct Job {
    kind: JobKind,
    deadline: Option<Instant>,
}

/// An in-flight (queued or executing) job and everyone awaiting it.
struct Flight {
    job: Job,
    waiters: Vec<Waiter>,
}

/// Mutable server state behind one mutex: the bounded queue (keys into
/// `flights`), the single-flight table, and the registered connections
/// (for shutdown on drain).
struct State {
    queue: VecDeque<String>,
    flights: HashMap<String, Flight>,
    conns: Vec<UnixStream>,
}

struct Shared {
    engine: Arc<SweepEngine>,
    config: ServerConfig,
    journal: Option<Journal>,
    state: Mutex<State>,
    job_ready: Condvar,
    draining: AtomicBool,
    shutdown_requested: AtomicBool,
    counters: Counters,
    conn_handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

/// The sweep service. [`Server::start`] binds the socket and spawns the
/// accept loop plus worker pool; the returned [`ServerHandle`] drives
/// drain and join. Startable in-process, so integration tests exercise
/// the real socket path without a child process.
pub struct Server;

/// A running server: owns its threads and the listening socket file.
pub struct ServerHandle {
    shared: Arc<Shared>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `config.socket_path` and starts serving on background
    /// threads. A stale socket file from a crashed daemon (nothing
    /// accepting on it) is removed and rebound; a *live* daemon on the
    /// same path is an [`io::ErrorKind::AddrInUse`] error.
    ///
    /// # Errors
    ///
    /// Returns the bind error (bad path, permissions, live daemon).
    pub fn start(config: ServerConfig, engine: Arc<SweepEngine>) -> io::Result<ServerHandle> {
        let listener = bind_socket(&config.socket_path)?;
        listener.set_nonblocking(true)?;
        let workers = config.workers.max(1);
        let journal = match &config.journal_path {
            Some(path) => Some(Journal::open(path)?),
            None => None,
        };
        let counters = Counters {
            gc_orphans: AtomicU64::new(config.recovery.gc_orphans),
            ..Counters::default()
        };
        let shared = Arc::new(Shared {
            engine,
            config,
            journal,
            state: Mutex::new(State {
                queue: VecDeque::new(),
                flights: HashMap::new(),
                conns: Vec::new(),
            }),
            job_ready: Condvar::new(),
            draining: AtomicBool::new(false),
            shutdown_requested: AtomicBool::new(false),
            counters,
            conn_handles: Mutex::new(Vec::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("sweepd-accept".into())
            .spawn(move || accept_loop(&accept_shared, &listener))
            .expect("spawn accept thread");
        let worker_threads = (0..workers)
            .map(|i| {
                let worker_shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("sweepd-worker-{i}"))
                    .spawn(move || worker_loop(&worker_shared))
                    .expect("spawn worker thread")
            })
            .collect();
        Ok(ServerHandle {
            shared,
            accept_thread: Some(accept_thread),
            workers: worker_threads,
        })
    }
}

impl ServerHandle {
    /// The socket path this server listens on.
    pub fn socket_path(&self) -> &Path {
        &self.shared.config.socket_path
    }

    /// Whether a client asked the daemon to shut down (the `shutdown`
    /// command). The owner polls this and calls
    /// [`ServerHandle::initiate_drain`] + [`ServerHandle::join`].
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown_requested.load(Ordering::SeqCst)
    }

    /// Begins the graceful drain: stop accepting new connections, answer
    /// queued jobs with `draining` errors, and cooperatively cancel
    /// in-flight runs (their progress parks in the store). Idempotent.
    pub fn initiate_drain(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        // Wake every idle worker so it can observe the drain and exit.
        self.shared.job_ready.notify_all();
    }

    /// Drains (if not already draining) and joins every thread: accept
    /// loop, workers (which first answer everything still queued), then
    /// connection readers (their sockets are shut down so blocked reads
    /// return). Removes the socket file last. After `join` returns, no
    /// server thread is running and telemetry counters are final.
    pub fn join(mut self) {
        self.initiate_drain();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
        {
            let state = self.shared.state.lock().expect("server state poisoned");
            for conn in &state.conns {
                let _ = conn.shutdown(std::net::Shutdown::Both);
            }
        }
        let handles = std::mem::take(
            &mut *self
                .shared
                .conn_handles
                .lock()
                .expect("connection handles poisoned"),
        );
        for t in handles {
            let _ = t.join();
        }
        let _ = std::fs::remove_file(&self.shared.config.socket_path);
    }

    /// A snapshot of the service counters plus queue/engine gauges — what
    /// the `stats` command reports, available in-process for `sweepd`'s
    /// exit summary.
    pub fn stats(&self) -> StatsBody {
        stats_body(&self.shared)
    }
}

/// Binds `path`, reclaiming a stale socket file (one nothing accepts on).
fn bind_socket(path: &Path) -> io::Result<UnixListener> {
    if path.exists() {
        if UnixStream::connect(path).is_ok() {
            return Err(io::Error::new(
                io::ErrorKind::AddrInUse,
                format!("{} already has a live daemon", path.display()),
            ));
        }
        // A leftover from a crashed daemon: nothing is accepting, so
        // rebinding is safe.
        std::fs::remove_file(path)?;
    }
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    UnixListener::bind(path)
}

/// Accepts connections until drain. The listener is nonblocking and
/// polled: SIGTERM must be able to stop the loop, and a blocking
/// `accept` would sit in the kernel until the *next* client connects.
fn accept_loop(shared: &Arc<Shared>, listener: &UnixListener) {
    loop {
        if shared.draining.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _addr)) => {
                let registered = stream.try_clone().ok();
                if let Some(clone) = registered {
                    shared
                        .state
                        .lock()
                        .expect("server state poisoned")
                        .conns
                        .push(clone);
                }
                let conn_shared = Arc::clone(shared);
                let handle = std::thread::Builder::new()
                    .name("sweepd-conn".into())
                    .spawn(move || connection_loop(&conn_shared, stream))
                    .expect("spawn connection thread");
                shared
                    .conn_handles
                    .lock()
                    .expect("connection handles poisoned")
                    .push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => {
                // Transient accept failure (e.g. aborted handshake):
                // keep serving unless we are draining.
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
}

/// Reads one `\n`-terminated line with a byte cap. Oversized lines are
/// consumed to their newline but their bytes discarded; the returned
/// flag says so. `Ok(None)` is clean EOF with no pending bytes.
fn read_line_capped<R: BufRead>(reader: &mut R, cap: usize) -> io::Result<Option<(Vec<u8>, bool)>> {
    let mut buf = Vec::new();
    let mut truncated = false;
    let mut saw_any = false;
    loop {
        let available = reader.fill_buf()?;
        if available.is_empty() {
            if !saw_any {
                return Ok(None);
            }
            return Ok(Some((buf, truncated)));
        }
        saw_any = true;
        if let Some(pos) = available.iter().position(|&b| b == b'\n') {
            if !truncated {
                if buf.len() + pos > cap {
                    truncated = true;
                    buf.clear();
                } else {
                    buf.extend_from_slice(&available[..pos]);
                }
            }
            reader.consume(pos + 1);
            return Ok(Some((buf, truncated)));
        }
        let len = available.len();
        if !truncated {
            if buf.len() + len > cap {
                truncated = true;
                buf.clear();
            } else {
                buf.extend_from_slice(available);
            }
        }
        reader.consume(len);
    }
}

/// Serves one client connection: reads request lines, answers inline
/// commands, enqueues run/figure jobs. Responses to in-flight jobs are
/// written by worker threads through the shared write half; a client
/// pipelining requests may therefore see responses in completion order —
/// the echoed `id` is the correlation.
fn connection_loop(shared: &Arc<Shared>, stream: UnixStream) {
    let out = match stream.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        match read_line_capped(&mut reader, MAX_LINE_BYTES) {
            Ok(None) | Err(_) => return,
            Ok(Some((buf, truncated))) => {
                if truncated {
                    shared.counters.requests.fetch_add(1, Ordering::SeqCst);
                    telemetry::counter("server.requests").inc();
                    respond(
                        &out,
                        &Response::error(
                            None,
                            ErrorKind::BadRequest,
                            &format!("line exceeds {MAX_LINE_BYTES} bytes"),
                        ),
                    );
                    continue;
                }
                let line = String::from_utf8_lossy(&buf);
                let line = line.trim();
                if line.is_empty() {
                    continue;
                }
                shared.counters.requests.fetch_add(1, Ordering::SeqCst);
                telemetry::counter("server.requests").inc();
                handle_line(shared, &out, line);
            }
        }
    }
}

/// Parses and dispatches one nonempty request line.
fn handle_line(shared: &Arc<Shared>, out: &Arc<Mutex<UnixStream>>, line: &str) {
    let request = match protocol::parse_request(line) {
        Ok(request) => request,
        Err((id, message)) => {
            respond(out, &Response::error(id, ErrorKind::BadRequest, &message));
            return;
        }
    };
    let Request { id, cmd } = request;
    match cmd {
        Command::Ping => respond(out, &Response::ok(id, ResponseBody::Pong)),
        Command::Stats => respond(
            out,
            &Response::ok(id, ResponseBody::Stats(stats_body(shared))),
        ),
        Command::Shutdown => {
            respond(out, &Response::ok(id, ResponseBody::ShuttingDown));
            shared.shutdown_requested.store(true, Ordering::SeqCst);
        }
        Command::Gc => match shared.engine.store() {
            Some(store) => {
                let stats = store.gc(shared.config.gc_max_parked_age);
                shared
                    .counters
                    .gc_orphans
                    .fetch_add(stats.reclaimed(), Ordering::SeqCst);
                telemetry::counter("server.gc_orphans").add(stats.reclaimed());
                respond(
                    out,
                    &Response::ok(
                        id,
                        ResponseBody::Gc {
                            tmp_removed: stats.tmp_removed,
                            parked_removed: stats.parked_removed,
                            parked_kept: stats.parked_kept,
                        },
                    ),
                );
            }
            None => respond(
                out,
                &Response::error(
                    id,
                    ErrorKind::Failed,
                    "no run store attached; nothing to garbage-collect",
                ),
            ),
        },
        Command::Figure { name } => {
            if !figures::registry().iter().any(|f| f.name == name) {
                respond(
                    out,
                    &Response::error(
                        id,
                        ErrorKind::BadRequest,
                        &format!("unknown figure \"{name}\""),
                    ),
                );
                return;
            }
            let journal_as = Request {
                id: None,
                cmd: Command::Figure { name: name.clone() },
            };
            let job = Job {
                kind: JobKind::Figure { name: name.clone() },
                deadline: None,
            };
            enqueue(
                shared,
                format!("figure|{name}"),
                job,
                Waiter {
                    id,
                    out: Arc::clone(out),
                },
                Some(journal_as),
            );
        }
        Command::Run(run) => {
            let spec = match run.sweep_spec(shared.config.scale) {
                Ok(spec) => spec,
                Err(message) => {
                    respond(out, &Response::error(id, ErrorKind::BadRequest, &message));
                    return;
                }
            };
            let deadline = run
                .deadline_ms
                .map(|ms| Instant::now() + Duration::from_millis(ms));
            // A forced-panic drill must never dedup against (or poison)
            // the real run for the same spec: distinct flight key. It is
            // also never journaled — replaying a drill after a crash
            // would be a self-inflicted crash loop.
            let journal_as = (!run.panic).then(|| Request {
                id: None,
                cmd: Command::Run(protocol::RunRequest {
                    deadline_ms: None,
                    ..run.clone()
                }),
            });
            let flight_key = if run.panic {
                format!("panic|{}", spec.key())
            } else {
                spec.key()
            };
            let job = Job {
                kind: JobKind::Run {
                    spec: Box::new(spec),
                    forced_panic: run.panic,
                },
                deadline,
            };
            enqueue(
                shared,
                flight_key,
                job,
                Waiter {
                    id,
                    out: Arc::clone(out),
                },
                journal_as,
            );
        }
    }
}

/// Admission control: single-flight join, else bounded-queue insert,
/// else shed. An admitted job with a `journal_as` request is journaled
/// (fsync'd) *before* it becomes visible to workers, so the crash-time
/// pending set always covers every job a worker might have started.
fn enqueue(
    shared: &Arc<Shared>,
    key: String,
    job: Job,
    waiter: Waiter,
    journal_as: Option<Request>,
) {
    if shared.draining.load(Ordering::SeqCst) {
        respond(
            &waiter.out,
            &Response::error(waiter.id, ErrorKind::Draining, "server is draining"),
        );
        return;
    }
    let mut state = shared.state.lock().expect("server state poisoned");
    if let Some(flight) = state.flights.get_mut(&key) {
        flight.waiters.push(waiter);
        shared.counters.dedup_hits.fetch_add(1, Ordering::SeqCst);
        telemetry::counter("server.dedup_hits").inc();
        return;
    }
    if state.queue.len() >= shared.config.queue_limit {
        shared.counters.shed.fetch_add(1, Ordering::SeqCst);
        telemetry::counter("server.shed").inc();
        drop(state);
        respond(
            &waiter.out,
            &Response::error(
                waiter.id,
                ErrorKind::Overloaded,
                &format!(
                    "queue full ({} distinct jobs waiting); retry later",
                    shared.config.queue_limit
                ),
            ),
        );
        return;
    }
    if let (Some(journal), Some(request)) = (&shared.journal, &journal_as) {
        if let Err(e) = journal.append_accept(&key, request) {
            // Journaling is best-effort: the request still runs, only its
            // crash-recoverability is degraded. Surface it loudly.
            telemetry::counter("server.journal_errors").inc();
            telemetry::emit(|| telemetry::schema::warning_line("journal", &e.to_string()));
        }
        failpoint::abort_if("server.journal.post_append_abort");
    }
    state.flights.insert(
        key.clone(),
        Flight {
            job,
            waiters: vec![waiter],
        },
    );
    state.queue.push_back(key);
    telemetry::gauge("server.queue_depth").set(state.queue.len() as i64);
    drop(state);
    shared.job_ready.notify_one();
}

/// Executes queued jobs until drained. During a drain the queue is still
/// emptied — each remaining job is answered with a `draining` error
/// instead of running — so no waiter is ever left hanging.
fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let key = {
            let mut state = shared.state.lock().expect("server state poisoned");
            loop {
                if let Some(key) = state.queue.pop_front() {
                    telemetry::gauge("server.queue_depth").set(state.queue.len() as i64);
                    break key;
                }
                if shared.draining.load(Ordering::SeqCst) {
                    return;
                }
                state = shared.job_ready.wait(state).expect("server state poisoned");
            }
        };
        let job = shared
            .state
            .lock()
            .expect("server state poisoned")
            .flights
            .get(&key)
            .map(|flight| flight.job.clone());
        let Some(job) = job else { continue };
        let body = execute_job(shared, &job);
        let flight = shared
            .state
            .lock()
            .expect("server state poisoned")
            .flights
            .remove(&key);
        if let Some(flight) = flight {
            for waiter in flight.waiters {
                respond(
                    &waiter.out,
                    &Response {
                        id: waiter.id,
                        body: body.clone(),
                    },
                );
            }
        }
        // Terminal outcomes discharge the journal entry. Deadline and
        // draining answers deliberately do not: their work is parked (or
        // never ran), and the next daemon instance owes it — restart
        // recovery finishes what this process could not.
        let terminal = match &body {
            ResponseBody::Run(_) | ResponseBody::Figure { .. } => true,
            ResponseBody::Error { kind, .. } => matches!(
                kind,
                ErrorKind::Panic | ErrorKind::Failed | ErrorKind::BadRequest
            ),
            _ => false,
        };
        if terminal {
            if let Some(journal) = &shared.journal {
                if journal.append_done(&key).is_err() {
                    telemetry::counter("server.journal_errors").inc();
                }
            }
        }
    }
}

/// Runs one job to a response body (shared by every waiter).
fn execute_job(shared: &Arc<Shared>, job: &Job) -> ResponseBody {
    let _span = telemetry::span("phase.server_request");
    // The chaos drill's SIGKILL-equivalent: die the instant a worker
    // picks up a request, after it was journaled.
    failpoint::abort_if("server.request.abort");
    if shared.draining.load(Ordering::SeqCst) {
        return ResponseBody::Error {
            kind: ErrorKind::Draining,
            message: "server drained before this request ran".into(),
        };
    }
    if job.deadline.is_some_and(|d| Instant::now() >= d) {
        shared
            .counters
            .deadline_misses
            .fetch_add(1, Ordering::SeqCst);
        telemetry::counter("server.deadline_misses").inc();
        return ResponseBody::Error {
            kind: ErrorKind::Deadline,
            message: "deadline expired while queued".into(),
        };
    }
    match &job.kind {
        JobKind::Run { spec, forced_panic } => {
            if *forced_panic {
                // The drill deliberately bypasses the engine: routing it
                // through `try_trace_for` would poison the engine's
                // failed-key map for a spec other clients legitimately
                // want. One supervised attempt, zero backoff.
                let policy = SupervisorPolicy {
                    max_attempts: 1,
                    backoff_base_millis: 0,
                    ..SupervisorPolicy::default()
                };
                let result = supervisor::run_supervised(&policy, "server.request_drill", || {
                    panic!("forced panic (request drill)")
                });
                let reason = result.expect_err("the drill always panics");
                shared
                    .counters
                    .request_panics
                    .fetch_add(1, Ordering::SeqCst);
                telemetry::counter("server.request_panics").inc();
                return ResponseBody::Error {
                    kind: ErrorKind::Panic,
                    message: reason,
                };
            }
            let started = Instant::now();
            let deadline = job.deadline;
            let stop = move || {
                shared.draining.load(Ordering::SeqCst)
                    || deadline.is_some_and(|d| Instant::now() >= d)
            };
            match shared.engine.try_trace_cancellable(spec, Some(&stop)) {
                Ok(CancellableRun::Done { trace, source }) => ResponseBody::Run(RunStats {
                    source: source.label().to_string(),
                    rounds: trace.rounds,
                    points: trace.points.len() as u64,
                    final_loss: f64::from(trace.final_loss()),
                    wall_ms: started.elapsed().as_secs_f64() * 1e3,
                }),
                Ok(CancellableRun::Cancelled) => {
                    if shared.draining.load(Ordering::SeqCst) {
                        ResponseBody::Error {
                            kind: ErrorKind::Draining,
                            message: "drained mid-run; progress parked for resume".into(),
                        }
                    } else {
                        shared
                            .counters
                            .deadline_misses
                            .fetch_add(1, Ordering::SeqCst);
                        telemetry::counter("server.deadline_misses").inc();
                        ResponseBody::Error {
                            kind: ErrorKind::Deadline,
                            message: format!(
                                "deadline exceeded after {:.0} ms; progress parked for resume",
                                started.elapsed().as_secs_f64() * 1e3
                            ),
                        }
                    }
                }
                Err(reason) => {
                    let kind = if reason.contains("panic") {
                        shared
                            .counters
                            .request_panics
                            .fetch_add(1, Ordering::SeqCst);
                        telemetry::counter("server.request_panics").inc();
                        ErrorKind::Panic
                    } else {
                        ErrorKind::Failed
                    };
                    ResponseBody::Error {
                        kind,
                        message: reason,
                    }
                }
            }
        }
        JobKind::Figure { name } => {
            let started = Instant::now();
            let engine = Arc::clone(&shared.engine);
            let scale = shared.config.scale;
            let name_owned = name.clone();
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
                let figure = figures::registry()
                    .into_iter()
                    .find(|f| f.name == name_owned)
                    .expect("name validated at admission");
                let mut out = String::new();
                (figure.run)(scale, &engine, &mut out)
            }));
            match result {
                Ok(Ok(())) => ResponseBody::Figure {
                    name: name.clone(),
                    wall_ms: started.elapsed().as_secs_f64() * 1e3,
                },
                Ok(Err(e)) => ResponseBody::Error {
                    kind: ErrorKind::Failed,
                    message: format!("figure I/O failed: {e}"),
                },
                Err(panic) => {
                    shared
                        .counters
                        .request_panics
                        .fetch_add(1, Ordering::SeqCst);
                    telemetry::counter("server.request_panics").inc();
                    let message = panic
                        .downcast_ref::<String>()
                        .cloned()
                        .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
                        .unwrap_or_else(|| "figure body panicked".to_string());
                    ResponseBody::Error {
                        kind: ErrorKind::Panic,
                        message,
                    }
                }
            }
        }
    }
}

/// Builds the `stats` response from live state.
fn stats_body(shared: &Arc<Shared>) -> StatsBody {
    let queue_depth = shared
        .state
        .lock()
        .expect("server state poisoned")
        .queue
        .len() as u64;
    StatsBody {
        requests: shared.counters.requests.load(Ordering::SeqCst),
        shed: shared.counters.shed.load(Ordering::SeqCst),
        dedup_hits: shared.counters.dedup_hits.load(Ordering::SeqCst),
        deadline_misses: shared.counters.deadline_misses.load(Ordering::SeqCst),
        request_panics: shared.counters.request_panics.load(Ordering::SeqCst),
        unique_runs: shared.engine.unique_runs() as u64,
        queue_depth,
        draining: shared.draining.load(Ordering::SeqCst),
        recovered_runs: shared.config.recovery.recovered_runs,
        journal_replays: shared.config.recovery.journal_replays,
        gc_orphans: shared.counters.gc_orphans.load(Ordering::SeqCst),
    }
}

/// Outcome of one [`recover`] pass.
#[derive(Debug, Default)]
pub struct RecoveryReport {
    /// Pending accept records found in the journal (work a previous
    /// instance accepted but never completed).
    pub replayed: u64,
    /// Interrupted scenario runs completed by this pass.
    pub recovered_runs: u64,
    /// Of those, runs that continued a parked mid-run checkpoint instead
    /// of recomputing from round zero.
    pub resumed_runs: u64,
    /// Interrupted figure renders completed by this pass.
    pub recovered_figures: u64,
    /// Whether the journal ended in a torn record — the normal signature
    /// of a crash mid-append, discarded after the valid prefix.
    pub torn_tail: bool,
    /// Jobs that could not be recovered: `(key, reason)`.
    pub failed: Vec<(String, String)>,
}

impl RecoveryReport {
    /// Folds this report (plus the startup GC's reclaim count) into the
    /// counters a [`ServerConfig`] carries into `stats`.
    pub fn counters(&self, gc_orphans: u64) -> RecoveryCounters {
        RecoveryCounters {
            recovered_runs: self.recovered_runs + self.recovered_figures,
            journal_replays: self.replayed,
            gc_orphans,
        }
    }
}

/// Replays the crash-consistency journal at `journal_path` and completes
/// every pending job against `engine` — the daemon calls this after
/// acquiring the store lock and *before* binding the socket, so a
/// restarted service already owns the results its predecessor promised.
///
/// Runs resume from parked checkpoints when the store holds one
/// (bit-identical by the resume contract) and recompute deterministically
/// otherwise; figures re-render, overwriting any partially-written CSVs
/// with complete byte-identical ones. The journal is discarded afterwards
/// — recovered work lives in the store now, and the server's own journal
/// starts a fresh epoch.
pub fn recover(journal_path: &Path, engine: &SweepEngine, scale: Scale) -> RecoveryReport {
    let replay = Journal::replay(journal_path);
    let mut report = RecoveryReport {
        replayed: replay.pending.len() as u64,
        torn_tail: replay.torn_tail,
        ..RecoveryReport::default()
    };
    for (key, request) in replay.pending {
        match request.cmd {
            Command::Run(run) => match run.sweep_spec(scale) {
                Ok(spec) => match engine.try_trace_cancellable(&spec, None) {
                    Ok(CancellableRun::Done { source, .. }) => {
                        report.recovered_runs += 1;
                        if source == TraceSource::Resumed {
                            report.resumed_runs += 1;
                        }
                    }
                    Ok(CancellableRun::Cancelled) => {
                        // Unreachable without a stop predicate; recorded
                        // defensively rather than silently dropped.
                        report
                            .failed
                            .push((key, "cancelled during recovery".into()));
                    }
                    Err(reason) => report.failed.push((key, reason)),
                },
                Err(reason) => report.failed.push((key, reason)),
            },
            Command::Figure { name } => {
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let figure = figures::registry().into_iter().find(|f| f.name == name)?;
                    let mut out = String::new();
                    Some((figure.run)(scale, engine, &mut out))
                }));
                match outcome {
                    Ok(Some(Ok(()))) => report.recovered_figures += 1,
                    Ok(Some(Err(e))) => report.failed.push((key, format!("figure I/O: {e}"))),
                    Ok(None) => report
                        .failed
                        .push((key, format!("unknown figure \"{name}\""))),
                    Err(_) => report.failed.push((key, "figure panicked".into())),
                }
            }
            // Non-job commands never carry accept records; a foreign one
            // in the journal is ignorable debris.
            _ => {}
        }
    }
    telemetry::counter("server.journal_replays").add(report.replayed);
    telemetry::counter("server.recovered_runs")
        .add(report.recovered_runs + report.recovered_figures);
    journal::discard(journal_path);
    report
}

/// Writes one response line; errors mean the client is gone and are
/// dropped (the server never fails because a client did).
fn respond(out: &Arc<Mutex<UnixStream>>, response: &Response) {
    let line = protocol::encode_response(response);
    let mut stream = out.lock().expect("response stream poisoned");
    let _ = stream.write_all(line.as_bytes());
    let _ = stream.write_all(b"\n");
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_line_capped_handles_split_and_oversize() {
        let mut input: Vec<u8> = Vec::new();
        input.extend_from_slice(b"short line\n");
        input.extend_from_slice(&[b'a'; 64]);
        input.push(b'\n');
        input.extend_from_slice(b"after\n");
        input.extend_from_slice(b"trailing-without-newline");
        let mut reader = BufReader::with_capacity(7, io::Cursor::new(input));

        let (line, truncated) = read_line_capped(&mut reader, 32).unwrap().unwrap();
        assert_eq!(line, b"short line");
        assert!(!truncated);

        let (line, truncated) = read_line_capped(&mut reader, 32).unwrap().unwrap();
        assert!(truncated, "64 bytes over a 32-byte cap must truncate");
        assert!(line.is_empty());

        // Framing survives the oversized line.
        let (line, truncated) = read_line_capped(&mut reader, 32).unwrap().unwrap();
        assert_eq!(line, b"after");
        assert!(!truncated);

        // EOF with pending bytes yields them as a final line.
        let (line, _) = read_line_capped(&mut reader, 32).unwrap().unwrap();
        assert_eq!(line, b"trailing-without-newline");
        assert!(read_line_capped(&mut reader, 32).unwrap().is_none());
    }
}
