//! The declarative sweep engine: run-level parallelism as a subsystem.
//!
//! Every training run a figure/ablation/extension executes is described by
//! a [`SweepSpec`] — scenario, scheduler, learning-rate mode, momentum,
//! codec, budget — instead of an imperative loop. A [`SweepEngine`]
//! executes batches of specs **concurrently in-process** on the shared
//! worker pool (each run's inner worker fan-out nests inside the outer
//! run-level parallelism; the pool is re-entrant), with:
//!
//! * **deterministic output ordering** — results come back in spec order
//!   regardless of execution interleaving;
//! * **deterministic seeding** — every run derives its RNG streams from
//!   the spec itself (scenario seeds), and runs share no mutable state, so
//!   a parallel sweep is bit-identical to running the same specs one by
//!   one;
//! * **content-addressed memoization** — identical specs (across figures,
//!   not just within one) execute once; e.g. Table 1 re-reports the very
//!   runs Figures 9/10 plot, and the engine hands it the cached traces.
//!
//! The scenario registry ([`ScenarioSpec`]) is the declarative counterpart
//! for *suites*: each variant names one shared model/data/delay
//! configuration, built once and reused (read-only) by every run that
//! references it.

use crate::scenarios::{scenario, ModelFamily};
use crate::store::{CacheStats, LoadOutcome, ParkedOutcome, RunStore};
use crate::supervisor::{self, SupervisorPolicy};
use crate::Scale;
use adacomm::{
    AdaComm, AdaCommCompress, AdaCommConfig, CommSchedule, FixedComm, LrCoupling, LrSchedule,
};
use data::GaussianMixture;
use delay::{CommModel, DelayDistribution, RuntimeModel};
use gradcomp::CodecSpec;
use nn::models;
use pasgd_sim::{
    AveragingStrategy, ClusterConfig, ExperimentConfig, ExperimentSuite, FaultConfig, MomentumMode,
    RunCheckpoint, RunOutcome, RunTrace,
};
use rayon::prelude::*;
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex};

/// A shared experiment suite a sweep run executes in. Each variant is one
/// model/data/delay configuration; the engine builds it once and shares it
/// (read-only) across every run that references it.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioSpec {
    /// The canonical paper scenario (see [`crate::scenarios::scenario`]).
    Canonical {
        /// Architecture family (delay profile + τ grid).
        family: ModelFamily,
        /// 10 (CIFAR-10-like) or 100 (CIFAR-100-like).
        classes: usize,
        /// Cluster size (4 in the main figures, 8 in the appendix).
        workers: usize,
        /// Quick/full/smoke scale.
        scale: Scale,
    },
    /// Canonical with an overridden scheduler-consultation interval `T0`
    /// (the interval-length ablation).
    CanonicalT0 {
        /// Architecture family.
        family: ModelFamily,
        /// Task classes.
        classes: usize,
        /// Cluster size.
        workers: usize,
        /// Experiment scale.
        scale: Scale,
        /// The overridden interval length in simulated seconds. Stored as
        /// bits so the spec is `Eq`-like and hashes stably.
        interval_millis: u64,
    },
    /// Figure 1's small conceptual suite (α = 4, 5-class mixture).
    Concept,
    /// The averaging-strategy extension's suite.
    Averaging {
        /// How local models are combined at synchronization points.
        strategy: AveragingStrategy,
        /// Experiment scale.
        scale: Scale,
    },
    /// The compression extension's bytes-aware suite (90% of the mean
    /// communication delay is bandwidth).
    Compression {
        /// Architecture family.
        family: ModelFamily,
        /// Experiment scale.
        scale: Scale,
    },
}

/// A scenario built into an executable form: the shared suite plus the
/// learning-rate schedules [`LrSpec`] resolves against.
pub struct BuiltScenario {
    /// The shared (read-only) experiment suite.
    pub suite: ExperimentSuite,
    /// The scenario's constant learning-rate schedule.
    pub fixed_lr: LrSchedule,
    /// The scenario's step schedule.
    pub variable_lr: LrSchedule,
}

impl ScenarioSpec {
    /// Convenience constructor for the `T0` ablation variant.
    pub fn canonical_t0(
        family: ModelFamily,
        classes: usize,
        workers: usize,
        scale: Scale,
        interval_secs: f64,
    ) -> Self {
        ScenarioSpec::CanonicalT0 {
            family,
            classes,
            workers,
            scale,
            interval_millis: (interval_secs * 1000.0).round() as u64,
        }
    }

    /// Builds the scenario's suite and learning-rate schedules.
    pub fn build(&self) -> BuiltScenario {
        match *self {
            ScenarioSpec::Canonical {
                family,
                classes,
                workers,
                scale,
            } => {
                let sc = scenario(family, classes, workers, scale);
                BuiltScenario {
                    suite: sc.suite,
                    fixed_lr: sc.fixed_lr,
                    variable_lr: sc.variable_lr,
                }
            }
            ScenarioSpec::CanonicalT0 {
                family,
                classes,
                workers,
                scale,
                interval_millis,
            } => {
                let sc = scenario(family, classes, workers, scale);
                BuiltScenario {
                    suite: sc.suite.with_interval(interval_millis as f64 / 1000.0),
                    fixed_lr: sc.fixed_lr,
                    variable_lr: sc.variable_lr,
                }
            }
            ScenarioSpec::Concept => build_concept(),
            ScenarioSpec::Averaging { strategy, scale } => build_averaging(strategy, scale),
            ScenarioSpec::Compression { family, scale } => build_compression(family, scale),
        }
    }
}

/// Figure 1's suite: communication-bound constant delays where the
/// iterations-vs-wall-clock x-axis change matters most.
fn build_concept() -> BuiltScenario {
    let workers = 4;
    let runtime = RuntimeModel::new(
        DelayDistribution::constant(0.05),
        CommModel::constant(0.2),
        workers,
    );
    let split = GaussianMixture {
        num_classes: 5,
        dim: 64,
        train_size: 2048,
        test_size: 512,
        separation: 2.5,
        noise_std: 1.3,
        warp: true,
        label_noise: 0.05,
    }
    .generate(21);
    let suite = ExperimentSuite::new(
        nn::models::mlp_classifier(64, &[32], 5, 3),
        split,
        runtime,
        ClusterConfig {
            workers,
            batch_size: 16,
            lr: 0.1,
            weight_decay: 0.0,
            momentum: MomentumMode::None,
            averaging: AveragingStrategy::FullAverage,
            codec: CodecSpec::Identity,
            seed: 17,
            eval_subset: 512,
            fault: FaultConfig::NONE,
        },
        ExperimentConfig {
            interval_secs: 20.0,
            total_secs: 240.0,
            record_every_secs: 8.0,
            gate_lr_on_tau: false,
        },
    );
    let lr = LrSchedule::constant(0.1);
    BuiltScenario {
        suite,
        fixed_lr: lr.clone(),
        variable_lr: lr,
    }
}

/// The averaging-strategy extension's suite (shifted-exponential compute,
/// constant communication).
fn build_averaging(strategy: AveragingStrategy, scale: Scale) -> BuiltScenario {
    let workers = 4;
    let runtime = RuntimeModel::new(
        DelayDistribution::shifted_exponential(0.13, 0.05),
        CommModel::constant(0.72),
        workers,
    );
    let split = GaussianMixture::cifar10_like().generate(77);
    let total_secs = if scale.is_full() { 1200.0 } else { 480.0 };
    let suite = ExperimentSuite::new(
        nn::models::mlp_classifier(256, &[64], 10, 31),
        split,
        runtime,
        ClusterConfig {
            workers,
            batch_size: 32,
            lr: 0.2,
            weight_decay: 5e-4,
            momentum: MomentumMode::None,
            averaging: strategy,
            codec: CodecSpec::Identity,
            seed: 9,
            eval_subset: 1024,
            fault: FaultConfig::NONE,
        },
        ExperimentConfig {
            interval_secs: 20.0,
            total_secs,
            record_every_secs: total_secs / 30.0,
            gate_lr_on_tau: false,
        },
    );
    let lr = LrSchedule::constant(0.2);
    BuiltScenario {
        suite,
        fixed_lr: lr.clone(),
        variable_lr: lr,
    }
}

/// The compression extension's bytes-aware suite: 90% of the profile's
/// mean communication delay is bandwidth, calibrated so a full-precision
/// message costs exactly the profile's original delay.
fn build_compression(family: ModelFamily, scale: Scale) -> BuiltScenario {
    let workers = 4usize;
    let time_scale = if scale.is_full() { 1.0 } else { 4.0 };
    let profile = family.profile().time_scaled(time_scale);
    let classes = 100usize;
    let model = match (family, scale) {
        (ModelFamily::VggLike, Scale::Full) => models::vgg_like(1, 16, classes, 77),
        (ModelFamily::ResnetLike, Scale::Full) => models::resnet_like(1, 16, classes, 77),
        (_, _) => models::mlp_classifier(256, &[64], classes, 77),
    };
    let full_bytes: usize = model.param_count() * 4;
    let runtime = profile.bytes_aware_runtime_model(workers, 0.9, full_bytes as f64);
    let split = GaussianMixture::cifar100_like().generate(1244);
    let total_secs = match scale {
        Scale::Full => 2100.0,
        Scale::Quick => 600.0,
        Scale::Smoke => 90.0,
    };
    let lr0 = 0.1f32;
    let suite = ExperimentSuite::new(
        model,
        split,
        runtime,
        ClusterConfig {
            workers,
            batch_size: 32,
            lr: lr0,
            weight_decay: 5e-4,
            seed: 42,
            eval_subset: 1024,
            ..ClusterConfig::default()
        },
        ExperimentConfig {
            interval_secs: if scale.is_full() { 60.0 } else { 20.0 },
            total_secs,
            record_every_secs: total_secs / 40.0,
            gate_lr_on_tau: false,
        },
    );
    let lr = LrSchedule::constant(lr0);
    BuiltScenario {
        suite,
        fixed_lr: lr.clone(),
        variable_lr: lr,
    }
}

/// Which communication scheduler a sweep run uses.
#[derive(Debug, Clone, PartialEq)]
pub enum SchedulerSpec {
    /// Fixed-τ baseline (`tau == 1` is fully synchronous SGD).
    Fixed {
        /// The communication period.
        tau: usize,
    },
    /// The paper's adaptive scheduler.
    AdaComm {
        /// Initial period.
        tau0: usize,
        /// Rule-18 multiplicative decay.
        gamma: f64,
        /// Learning-rate coupling (eqs. 19/20).
        lr_coupling: LrCoupling,
        /// Period cap.
        max_tau: usize,
    },
    /// The τ × compression co-adaptive schedule.
    AdaCommCompress {
        /// Initial period.
        tau0: usize,
        /// Rule-18 multiplicative decay.
        gamma: f64,
        /// Period cap.
        max_tau: usize,
        /// Starting codec.
        codec: CodecSpec,
    },
}

impl SchedulerSpec {
    /// The paper's AdaComm configuration for a scenario τ0: γ = 1/2, no lr
    /// coupling, period capped at `max(256, τ0)`.
    pub fn adacomm(tau0: usize) -> Self {
        SchedulerSpec::AdaComm {
            tau0,
            gamma: 0.5,
            lr_coupling: LrCoupling::None,
            max_tau: 256.max(tau0),
        }
    }

    /// AdaComm with an explicit lr coupling.
    pub fn adacomm_coupled(tau0: usize, lr_coupling: LrCoupling) -> Self {
        SchedulerSpec::AdaComm {
            tau0,
            gamma: 0.5,
            lr_coupling,
            max_tau: 256.max(tau0),
        }
    }

    /// Builds a fresh scheduler for one run.
    pub fn build(&self) -> Box<dyn CommSchedule> {
        match *self {
            SchedulerSpec::Fixed { tau } => Box::new(FixedComm::new(tau)),
            SchedulerSpec::AdaComm {
                tau0,
                gamma,
                lr_coupling,
                max_tau,
            } => Box::new(AdaComm::new(AdaCommConfig {
                tau0,
                gamma,
                lr_coupling,
                max_tau,
                ..AdaCommConfig::default()
            })),
            SchedulerSpec::AdaCommCompress {
                tau0,
                gamma,
                max_tau,
                codec,
            } => Box::new(AdaCommCompress::new(
                AdaCommConfig {
                    tau0,
                    gamma,
                    max_tau,
                    ..AdaCommConfig::default()
                },
                codec,
            )),
        }
    }
}

/// Which learning-rate schedule a run uses, resolved against its scenario.
#[derive(Debug, Clone, PartialEq)]
pub enum LrSpec {
    /// The scenario's constant rate.
    Fixed,
    /// The scenario's step schedule.
    Variable,
    /// The constant rate scaled by a factor (stored as `f32` bits for a
    /// stable key); momentum panels run at a tenth of the plain rate.
    FixedScaled(u32),
    /// The step schedule scaled by a factor.
    VariableScaled(u32),
}

impl LrSpec {
    /// Scenario constant rate times `factor`.
    pub fn fixed_scaled(factor: f32) -> Self {
        LrSpec::FixedScaled(factor.to_bits())
    }

    /// Scenario step schedule times `factor`.
    pub fn variable_scaled(factor: f32) -> Self {
        LrSpec::VariableScaled(factor.to_bits())
    }

    fn resolve(&self, built: &BuiltScenario) -> LrSchedule {
        match *self {
            LrSpec::Fixed => built.fixed_lr.clone(),
            LrSpec::Variable => built.variable_lr.clone(),
            LrSpec::FixedScaled(bits) => built.fixed_lr.scaled(f32::from_bits(bits)),
            LrSpec::VariableScaled(bits) => built.variable_lr.scaled(f32::from_bits(bits)),
        }
    }
}

/// One declaratively-specified training run. Two specs with equal
/// semantic fields *are the same run* — the engine executes them once and
/// shares the trace (the display `rename` is excluded from the identity).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Trace-name override for reports (`None` keeps the scheduler name).
    pub rename: Option<String>,
    /// The shared suite this run executes in.
    pub scenario: ScenarioSpec,
    /// The communication scheduler.
    pub scheduler: SchedulerSpec,
    /// The learning-rate schedule.
    pub lr: LrSpec,
    /// The momentum mode (canonicalized — no "scenario default").
    pub momentum: MomentumMode,
    /// The paper's "decay τ to 1 before decaying η" gating.
    pub gate_lr_on_tau: bool,
    /// Gradient-compression codec for every averaging message.
    pub codec: CodecSpec,
    /// Optional `(total_secs, record_every_secs)` budget override, stored
    /// as millisecond integers for a stable identity.
    pub budget_millis: Option<(u64, u64)>,
    /// Seeded fault-injection plan plus aggregation policy for the run
    /// ([`FaultConfig::NONE`] — the default — is a provable no-op on the
    /// simulation and is excluded from the memoization key, so fault-free
    /// specs keep their pre-fault-layer cache entries).
    pub fault: FaultConfig,
}

impl SweepSpec {
    /// A run with the common defaults: no momentum, no gating, identity
    /// codec, the scenario's own budget.
    pub fn new(scenario: ScenarioSpec, scheduler: SchedulerSpec, lr: LrSpec) -> Self {
        SweepSpec {
            rename: None,
            scenario,
            scheduler,
            lr,
            momentum: MomentumMode::None,
            gate_lr_on_tau: false,
            codec: CodecSpec::Identity,
            budget_millis: None,
            fault: FaultConfig::NONE,
        }
    }

    /// Renames the resulting trace for reports.
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.rename = Some(name.into());
        self
    }

    /// Sets the momentum mode.
    pub fn with_momentum(mut self, momentum: MomentumMode) -> Self {
        self.momentum = momentum;
        self
    }

    /// Enables or disables τ-gated learning-rate decay.
    pub fn with_gate(mut self, gate: bool) -> Self {
        self.gate_lr_on_tau = gate;
        self
    }

    /// Sets the compression codec.
    pub fn with_codec(mut self, codec: CodecSpec) -> Self {
        self.codec = codec;
        self
    }

    /// Sets the fault-injection plan and aggregation policy.
    pub fn with_faults(mut self, fault: FaultConfig) -> Self {
        self.fault = fault;
        self
    }

    /// Overrides the simulated budget and recording cadence.
    pub fn with_budget(mut self, total_secs: f64, record_every_secs: f64) -> Self {
        self.budget_millis = Some((
            (total_secs * 1000.0).round() as u64,
            (record_every_secs * 1000.0).round() as u64,
        ));
        self
    }

    /// The memoization key: every semantic field, excluding the display
    /// rename. `Debug` formatting is stable and loss-free here (floats are
    /// stored as integer millis/bits where they appear). Public because
    /// the persistent run store addresses its on-disk entries by this
    /// same key (hashed for the filename, echoed in full inside the
    /// frame), and tests corrupt specific entries by key.
    pub fn key(&self) -> String {
        let mut key = format!(
            "{:?}|{:?}|{:?}|{:?}|{}|{:?}|{:?}",
            self.scenario,
            self.scheduler,
            self.lr,
            self.momentum,
            self.gate_lr_on_tau,
            self.codec,
            self.budget_millis,
        );
        // The fault segment appears only for active plans: a `NONE` plan
        // is a provable no-op on the run, so fault-free specs keep the
        // exact keys (and on-disk store entries) they had before the
        // fault layer existed.
        if self.fault.is_active() {
            use std::fmt::Write as _;
            let _ = write!(key, "|{:?}", self.fault);
        }
        key
    }

    /// Executes this spec against its built scenario (no caching).
    fn execute(&self, built: &BuiltScenario) -> RunTrace {
        let mut scheduler = self.scheduler.build();
        let lr = self.lr.resolve(built);
        let budget = self
            .budget_millis
            .map(|(t, r)| (t as f64 / 1000.0, r as f64 / 1000.0));
        built.suite.run_configured(
            scheduler.as_mut(),
            &lr,
            Some(self.momentum),
            Some(self.gate_lr_on_tau),
            Some(self.codec),
            budget,
            self.fault.is_active().then_some(self.fault),
        )
    }

    /// [`SweepSpec::execute`] with resume and a cooperative stop
    /// predicate (no caching) — the primitive behind the engine's
    /// deadline- and drain-preemptible runs.
    fn execute_cancellable(
        &self,
        built: &BuiltScenario,
        resume: Option<&RunCheckpoint>,
        stop_after_rounds: Option<u64>,
        stop: Option<&(dyn Fn() -> bool + Sync)>,
    ) -> Result<RunOutcome, String> {
        let mut scheduler = self.scheduler.build();
        let lr = self.lr.resolve(built);
        let budget = self
            .budget_millis
            .map(|(t, r)| (t as f64 / 1000.0, r as f64 / 1000.0));
        built.suite.run_configured_cancellable(
            scheduler.as_mut(),
            &lr,
            Some(self.momentum),
            Some(self.gate_lr_on_tau),
            Some(self.codec),
            budget,
            self.fault.is_active().then_some(self.fault),
            resume,
            stop_after_rounds,
            stop,
        )
    }
}

/// Where [`SweepEngine::try_trace_cancellable`] got its trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceSource {
    /// The in-process memoization map.
    Memory,
    /// A validated persistent-store entry.
    Disk,
    /// Simulated fresh in this call.
    Computed,
    /// Simulated in this call, continuing a parked checkpoint.
    Resumed,
}

impl TraceSource {
    /// Stable lowercase label (protocol responses, logs).
    pub fn label(self) -> &'static str {
        match self {
            TraceSource::Memory => "memory",
            TraceSource::Disk => "disk",
            TraceSource::Computed => "computed",
            TraceSource::Resumed => "resumed",
        }
    }
}

/// Outcome of [`SweepEngine::try_trace_cancellable`].
#[derive(Debug)]
pub enum CancellableRun {
    /// The trace was produced (possibly from cache).
    Done {
        /// The run's trace, renamed per the spec if requested.
        trace: RunTrace,
        /// Which layer satisfied the request.
        source: TraceSource,
    },
    /// The stop predicate fired mid-run; the partial work is parked in
    /// the store (when one is attached and the park write succeeded) and
    /// a later request for the same key resumes it.
    Cancelled,
}

/// Aggregate statistics over an engine's distinct executed runs (see
/// [`SweepEngine::run_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunStats {
    /// Distinct simulation runs executed (cache size).
    pub unique_runs: usize,
    /// Total averaging rounds, summed across runs.
    pub rounds: u64,
    /// Total per-worker local steps, summed across runs (each run's final
    /// iteration count).
    pub local_steps: u64,
    /// Total simulated seconds, summed across runs (each run's final
    /// clock).
    pub sim_clock_secs: f64,
    /// Largest per-worker encoded message transmitted in any run.
    pub peak_payload_bytes: f64,
}

/// Executes [`SweepSpec`] batches with run-level parallelism, global
/// memoization and deterministic output ordering (see the module docs).
/// With [`SweepEngine::with_store`], the memoization extends to disk:
/// uncached keys are first looked up in a persistent [`RunStore`], and
/// computed traces are saved back for the next process.
pub struct SweepEngine {
    parallel: bool,
    scenarios: Mutex<HashMap<String, Arc<BuiltScenario>>>,
    runs: Mutex<HashMap<String, RunTrace>>,
    store: Option<RunStore>,
    traffic: Mutex<CacheTraffic>,
    warnings: Mutex<Vec<String>>,
    supervisor: SupervisorPolicy,
    /// Keys whose supervised execution failed terminally (all attempts
    /// panicked, or the deadline was exceeded), with the reason. A failed
    /// key never re-executes on this engine: repeat requests fail fast
    /// with the recorded reason.
    failed: Mutex<HashMap<String, String>>,
    /// Crash-consistency knob: when set (and a store is attached),
    /// cancellable runs execute in slices of this many rounds, parking a
    /// resumable checkpoint after each slice — a SIGKILL at any moment
    /// loses at most one slice of progress.
    park_every_rounds: Option<u64>,
}

/// Origin bookkeeping behind [`SweepEngine::cache_stats`]: `counted`
/// holds the keys whose *first* resolution has already been attributed
/// (to a disk hit or a miss), so repeat requests — including the racing
/// duplicates the check-compute-insert cache tolerates — count as memory
/// hits instead of inflating the per-key counters.
#[derive(Default)]
struct CacheTraffic {
    counted: HashSet<String>,
    stats: CacheStats,
}

/// Whether run-level parallelism pays on this machine: it needs more than
/// one executor. On a single core the pool worker and the helping
/// submitter would merely timeslice, thrashing the shared cache between
/// different runs' working sets (measured ≈9% slower end-to-end), so the
/// engine goes sequential there — results are bit-identical either way.
/// Asks the worker pool itself, so the answer always agrees with the
/// pool's own sizing rules (including its `RAYON_NUM_THREADS` override).
pub fn hardware_parallelism() -> bool {
    rayon::current_num_threads() > 1
}

impl SweepEngine {
    /// An engine with the hardware-appropriate parallelism (see
    /// [`hardware_parallelism`]) — the default for every figure binary.
    pub fn new() -> Self {
        SweepEngine::with_parallelism(hardware_parallelism())
    }

    /// An engine with explicit run-level parallelism. `false` executes
    /// specs strictly one after another — the reference mode the
    /// determinism test compares the parallel engine against (results
    /// must be bit-identical).
    pub fn with_parallelism(parallel: bool) -> Self {
        SweepEngine {
            parallel,
            scenarios: Mutex::new(HashMap::new()),
            runs: Mutex::new(HashMap::new()),
            store: None,
            traffic: Mutex::new(CacheTraffic::default()),
            warnings: Mutex::new(Vec::new()),
            supervisor: SupervisorPolicy::default(),
            failed: Mutex::new(HashMap::new()),
            park_every_rounds: None,
        }
    }

    /// Overrides the supervision policy (attempts, backoff, deadline)
    /// every run on this engine executes under.
    pub fn with_supervisor(mut self, policy: SupervisorPolicy) -> Self {
        self.supervisor = policy;
        self
    }

    /// Attaches a persistent run store: uncached keys consult the store
    /// before simulating, and computed traces are saved back
    /// (best-effort — a failed save leaves the cache cold, never fails
    /// the run).
    pub fn with_store(mut self, store: RunStore) -> Self {
        self.store = Some(store);
        self
    }

    /// The attached persistent store, if any.
    pub fn store(&self) -> Option<&RunStore> {
        self.store.as_ref()
    }

    /// Enables periodic parking for cancellable runs: every `rounds`
    /// averaging rounds, the in-flight run checkpoints into the attached
    /// store (no-op without a store). Trades a little write traffic for
    /// crash-consistency — after a SIGKILL, recovery resumes from the
    /// last slice boundary instead of round zero, bit-identically.
    pub fn with_periodic_park(mut self, rounds: u64) -> Self {
        self.park_every_rounds = Some(rounds.max(1));
        self
    }

    /// Cache-traffic counters so far: memory hits, disk hits, misses and
    /// rejected (evicted) disk entries. Disk hits and misses are counted
    /// once per distinct key; every further request for a resolved key is
    /// a memory hit.
    pub fn cache_stats(&self) -> CacheStats {
        self.traffic
            .lock()
            .expect("traffic counters poisoned")
            .stats
    }

    /// Attributes the first resolution of `key` to a disk hit or a miss;
    /// a key already attributed (a racing duplicate compute) counts as a
    /// memory hit like any other repeat request. The same outcomes feed
    /// the telemetry registry (`sweep.cache.*`), so trace files and
    /// `--json` reports carry the cache traffic as real metrics.
    fn note_resolved(&self, key: &str, from_disk: bool) {
        let mut t = self.traffic.lock().expect("traffic counters poisoned");
        if t.counted.insert(key.to_string()) {
            if from_disk {
                t.stats.disk_hits += 1;
                telemetry::counter("sweep.cache.disk_hits").inc();
            } else {
                t.stats.misses += 1;
                telemetry::counter("sweep.cache.misses").inc();
            }
        } else {
            t.stats.mem_hits += 1;
            telemetry::counter("sweep.cache.mem_hits").inc();
        }
    }

    /// Records an out-of-band diagnostic (e.g. a rejected store entry).
    /// Buffered rather than printed: pool threads must never write to the
    /// process's streams mid-figure, or lines garble under `--parallel`
    /// with the figures' own buffered output. Drivers drain the buffer
    /// with [`SweepEngine::take_warnings`] at a safe point.
    fn warn(&self, message: String) {
        self.warnings
            .lock()
            .expect("warning buffer poisoned")
            .push(message);
    }

    /// Drains the buffered diagnostics accumulated so far (oldest first).
    pub fn take_warnings(&self) -> Vec<String> {
        std::mem::take(&mut *self.warnings.lock().expect("warning buffer poisoned"))
    }

    /// Executes `specs`, returning their traces in spec order.
    ///
    /// Identical specs (within this batch or from any earlier batch on
    /// this engine) execute once; every caller gets a clone of the cached
    /// trace, renamed per its own spec.
    pub fn run(&self, specs: &[SweepSpec]) -> Vec<RunTrace> {
        telemetry::counter("sweep.batches").inc();
        telemetry::gauge("sweep.pool_threads").set(rayon::current_num_threads() as i64);
        if self.parallel {
            // Warm the cache over the batch's *unique* uncached specs (in
            // first-occurrence order, one pool job each, so heterogeneous
            // run lengths load-balance); duplicates then assemble from the
            // cache below instead of blocking a pool thread.
            let mut seen = std::collections::HashSet::new();
            let mut unique: Vec<&SweepSpec> = specs
                .iter()
                .filter(|spec| seen.insert(spec.key()))
                .collect();
            let queue_depth = telemetry::gauge("sweep.queue_depth");
            queue_depth.add(unique.len() as i64);
            let _: Vec<()> = unique
                .par_iter_mut()
                .with_max_len(1)
                .map(|spec| {
                    // Failures are swallowed here and surface when the
                    // assembly loop below re-requests the failed key.
                    let _ = self.try_trace_for(spec);
                    queue_depth.add(-1);
                })
                .collect();
        }
        let mut traces: Vec<RunTrace> = specs.iter().map(|spec| self.trace_for(spec)).collect();
        for (trace, spec) in traces.iter_mut().zip(specs) {
            if let Some(name) = &spec.rename {
                trace.name = name.clone();
            }
        }
        traces
    }

    /// Executes one spec, returning a clone of its (possibly cached)
    /// trace with the scheduler's own name.
    ///
    /// # Panics
    ///
    /// Panics when the supervised execution fails terminally (see
    /// [`SweepEngine::try_trace_for`]); a figure body requesting a failed
    /// run fails with the supervisor's reason, which `reproduce_all`
    /// reports in its per-figure failure table.
    fn trace_for(&self, spec: &SweepSpec) -> RunTrace {
        match self.try_trace_for(spec) {
            Ok(trace) => trace,
            Err(reason) => panic!("supervised run failed terminally: {reason}"),
        }
    }

    /// Executes one spec under supervision, returning a clone of its
    /// (possibly cached) trace — or the terminal failure reason when
    /// every supervised attempt panicked or the run overran its deadline.
    /// A failed key is remembered and fails fast on re-request.
    ///
    /// The cache is check-compute-insert, never blocking: two threads
    /// racing on the *same* uncached key both compute it (runs are
    /// deterministic, so the values are identical and first-insert wins).
    /// Blocking the losers on a once-cell would be a deadlock hazard on
    /// the help-stealing pool — a thread mid-computation can steal a job
    /// that re-requests the very key its own stack is initializing. The
    /// redundant compute is also rare by construction: `run` pre-dedups
    /// each batch, and `reproduce_all`'s sweep wave warms the cross-figure
    /// keys before figure bodies run concurrently.
    ///
    /// # Errors
    ///
    /// Returns the supervisor's failure reason (panic message or deadline
    /// report) when the run cannot be produced.
    pub fn try_trace_for(&self, spec: &SweepSpec) -> Result<RunTrace, String> {
        let key = spec.key();
        if let Some(reason) = self.failed.lock().expect("failure map poisoned").get(&key) {
            return Err(reason.clone());
        }
        if let Some(trace) = self.runs.lock().expect("run cache poisoned").get(&key) {
            let mut t = self.traffic.lock().expect("traffic counters poisoned");
            t.stats.mem_hits += 1;
            telemetry::counter("sweep.cache.mem_hits").inc();
            return Ok(trace.clone());
        }
        // Cold in memory: consult the persistent store before simulating.
        // A validated entry is bit-exact (the determinism tests prove the
        // wire format and the runs themselves), so serving it is
        // indistinguishable from recomputing — just thousands of times
        // cheaper. Anything less than fully valid is evicted and
        // recomputed; the store never gets to produce a wrong figure.
        if let Some(store) = &self.store {
            let mut outcome = store.load(&key);
            // An *unreadable* entry is a transient I/O failure (EINTR, a
            // racing writer, a briefly-unavailable filesystem), not a
            // validation verdict — retry the read before giving up on
            // the entry. Validation rejections are deterministic and
            // never retried.
            for _ in 0..2 {
                match &outcome {
                    LoadOutcome::Rejected(reason) if reason.starts_with("unreadable entry") => {
                        telemetry::counter("store.load_retries").inc();
                        outcome = store.load(&key);
                    }
                    _ => break,
                }
            }
            match outcome {
                LoadOutcome::Hit(trace) => {
                    let trace = {
                        let mut runs = self.runs.lock().expect("run cache poisoned");
                        runs.entry(key.clone()).or_insert(trace).clone()
                    };
                    self.note_resolved(&key, true);
                    return Ok(trace);
                }
                LoadOutcome::Rejected(reason) => {
                    self.warn(format!(
                        "run store: rejected entry for a sweep key ({reason}); recomputing"
                    ));
                    telemetry::emit(|| telemetry::schema::warning_line("run_store", &reason));
                    store.evict(&key);
                    let mut t = self.traffic.lock().expect("traffic counters poisoned");
                    t.stats.rejects += 1;
                    telemetry::counter("sweep.cache.rejects").inc();
                }
                LoadOutcome::Absent => {}
            }
        }
        let supervised = supervisor::run_supervised(&self.supervisor, &key, || {
            let built = self.scenario(&spec.scenario);
            let inflight = telemetry::gauge("sweep.inflight_runs");
            inflight.add(1);
            let run_started = std::time::Instant::now();
            let trace = spec.execute(&built);
            telemetry::histogram("sweep.run_secs").observe(run_started.elapsed().as_secs_f64());
            inflight.add(-1);
            trace
        });
        let trace = match supervised {
            Ok(trace) => trace,
            Err(reason) => {
                // A panicked attempt bails out before its `inflight.add(-1)`;
                // rebalance so the gauge stays truthful for live dashboards.
                telemetry::gauge("sweep.inflight_runs").set(0);
                self.warn(format!("run failed under supervision ({reason}): {key}"));
                self.failed
                    .lock()
                    .expect("failure map poisoned")
                    .insert(key, reason.clone());
                return Err(reason);
            }
        };
        if let Some(store) = &self.store {
            if let Err(e) = store.save_with_retry(&key, &trace, 3) {
                self.warn(format!(
                    "run store: save failed after retries ({e}); cache stays cold for this key"
                ));
            }
        }
        let trace = {
            let mut runs = self.runs.lock().expect("run cache poisoned");
            runs.entry(key.clone()).or_insert(trace).clone()
        };
        self.note_resolved(&key, false);
        Ok(trace)
    }

    /// [`SweepEngine::try_trace_for`] with cooperative cancellation and
    /// park/resume through the attached store — the sweep service's
    /// execution primitive.
    ///
    /// The cache layers are consulted exactly like `try_trace_for`
    /// (failure map, memory, disk). A cold key then checks the store for
    /// a *parked* mid-run checkpoint — the remainder of a previous
    /// deadline- or drain-cancelled request — and resumes it
    /// bit-identically instead of starting over (a checkpoint that fails
    /// structural validation is discarded with a warning and the run
    /// starts fresh). The `stop` predicate is polled at round boundaries;
    /// when it fires, the partial run is parked back to the store and
    /// [`CancellableRun::Cancelled`] is returned — the request lost, the
    /// work kept.
    ///
    /// # Errors
    ///
    /// Returns the supervisor's failure reason (panic message or deadline
    /// report) when the run cannot be produced; the key then fails fast
    /// on re-request, as in `try_trace_for`.
    pub fn try_trace_cancellable(
        &self,
        spec: &SweepSpec,
        stop: Option<&(dyn Fn() -> bool + Sync)>,
    ) -> Result<CancellableRun, String> {
        let key = spec.key();
        if let Some(reason) = self.failed.lock().expect("failure map poisoned").get(&key) {
            return Err(reason.clone());
        }
        if let Some(trace) = self.runs.lock().expect("run cache poisoned").get(&key) {
            let mut t = self.traffic.lock().expect("traffic counters poisoned");
            t.stats.mem_hits += 1;
            telemetry::counter("sweep.cache.mem_hits").inc();
            return Ok(CancellableRun::Done {
                trace: trace.clone(),
                source: TraceSource::Memory,
            });
        }
        if let Some(store) = &self.store {
            let mut outcome = store.load(&key);
            for _ in 0..2 {
                match &outcome {
                    LoadOutcome::Rejected(reason) if reason.starts_with("unreadable entry") => {
                        telemetry::counter("store.load_retries").inc();
                        outcome = store.load(&key);
                    }
                    _ => break,
                }
            }
            match outcome {
                LoadOutcome::Hit(trace) => {
                    let trace = {
                        let mut runs = self.runs.lock().expect("run cache poisoned");
                        runs.entry(key.clone()).or_insert(trace).clone()
                    };
                    self.note_resolved(&key, true);
                    return Ok(CancellableRun::Done {
                        trace,
                        source: TraceSource::Disk,
                    });
                }
                LoadOutcome::Rejected(reason) => {
                    self.warn(format!(
                        "run store: rejected entry for a sweep key ({reason}); recomputing"
                    ));
                    telemetry::emit(|| telemetry::schema::warning_line("run_store", &reason));
                    store.evict(&key);
                    let mut t = self.traffic.lock().expect("traffic counters poisoned");
                    t.stats.rejects += 1;
                    telemetry::counter("sweep.cache.rejects").inc();
                }
                LoadOutcome::Absent => {}
            }
        }
        // Cold everywhere: is there parked work to continue?
        let resume_ck: Option<Box<RunCheckpoint>> = match &self.store {
            Some(store) => match store.load_parked(&key) {
                ParkedOutcome::Hit(ck) => Some(ck),
                ParkedOutcome::Rejected(reason) => {
                    self.warn(format!(
                        "run store: rejected parked checkpoint ({reason}); running fresh"
                    ));
                    store.unpark(&key);
                    None
                }
                ParkedOutcome::Absent => None,
            },
            None => None,
        };
        let supervised = supervisor::run_supervised(&self.supervisor, &key, || {
            let built = self.scenario(&spec.scenario);
            let inflight = telemetry::gauge("sweep.inflight_runs");
            inflight.add(1);
            let run_started = std::time::Instant::now();
            // With periodic parking enabled, the run executes in
            // `park_every` round slices, persisting a resumable
            // checkpoint between slices; otherwise one uninterrupted
            // call. Either way the final trace is bit-identical (resume
            // round-trips are exact by construction).
            let park_every = if self.store.is_some() {
                self.park_every_rounds
            } else {
                None
            };
            let mut resumed = resume_ck.is_some();
            let mut mine: Option<Box<RunCheckpoint>> = None;
            let mut use_initial = resumed;
            let (outcome, resumed) = loop {
                let resume_ref: Option<&RunCheckpoint> = if use_initial {
                    resume_ck.as_deref()
                } else {
                    mine.as_deref()
                };
                let limit = park_every.map(|n| resume_ref.map_or(0, |ck| ck.cluster.rounds) + n);
                match spec.execute_cancellable(&built, resume_ref, limit, stop) {
                    Ok(RunOutcome::Completed(trace)) => {
                        break (RunOutcome::Completed(trace), resumed)
                    }
                    Ok(RunOutcome::Checkpointed(ck)) => {
                        if stop.is_some_and(|s| s()) {
                            // The cooperative stop fired: this is a real
                            // cancellation, handled by the caller.
                            break (RunOutcome::Checkpointed(ck), resumed);
                        }
                        // Slice boundary: persist progress (best-effort)
                        // and keep running.
                        if let Some(store) = &self.store {
                            if store.park(&key, &ck).is_ok() {
                                telemetry::counter("sweep.periodic_parks").inc();
                            }
                        }
                        use_initial = false;
                        mine = Some(ck);
                    }
                    Err(reason) if use_initial => {
                        // A structurally-mismatched checkpoint (different
                        // build semantics, foreign spec): discard and
                        // start over. Fresh runs never fail.
                        self.warn(format!(
                            "run store: parked checkpoint unusable on resume ({reason}); \
                             running fresh"
                        ));
                        use_initial = false;
                        resumed = false;
                    }
                    Err(reason) => {
                        // A checkpoint this very process produced failed
                        // to resume — should be impossible; degrade to a
                        // fresh uninterrupted run rather than loop.
                        self.warn(format!(
                            "run store: mid-run slice checkpoint unusable ({reason}); \
                             restarting the run uninterrupted"
                        ));
                        break (
                            spec.execute_cancellable(&built, None, None, stop)
                                .expect("fresh runs never fail"),
                            false,
                        );
                    }
                }
            };
            telemetry::histogram("sweep.run_secs").observe(run_started.elapsed().as_secs_f64());
            inflight.add(-1);
            (outcome, resumed)
        });
        let (outcome, resumed) = match supervised {
            Ok(pair) => pair,
            Err(reason) => {
                telemetry::gauge("sweep.inflight_runs").set(0);
                self.warn(format!("run failed under supervision ({reason}): {key}"));
                self.failed
                    .lock()
                    .expect("failure map poisoned")
                    .insert(key, reason.clone());
                return Err(reason);
            }
        };
        match outcome {
            RunOutcome::Completed(trace) => {
                if resumed {
                    telemetry::counter("sweep.resumed").inc();
                }
                if let Some(store) = &self.store {
                    if let Err(e) = store.save_with_retry(&key, &trace, 3) {
                        self.warn(format!(
                            "run store: save failed after retries ({e}); cache stays cold \
                             for this key"
                        ));
                    }
                    // The run is complete; any parked remainder is obsolete.
                    store.unpark(&key);
                }
                let trace = {
                    let mut runs = self.runs.lock().expect("run cache poisoned");
                    runs.entry(key.clone()).or_insert(trace).clone()
                };
                self.note_resolved(&key, false);
                Ok(CancellableRun::Done {
                    trace,
                    source: if resumed {
                        TraceSource::Resumed
                    } else {
                        TraceSource::Computed
                    },
                })
            }
            RunOutcome::Checkpointed(ck) => {
                telemetry::counter("sweep.parked").inc();
                match &self.store {
                    Some(store) => {
                        if let Err(e) = store.park(&key, &ck) {
                            self.warn(format!(
                                "run store: park failed ({e}); cancelled progress is lost"
                            ));
                        }
                    }
                    None => self.warn(format!(
                        "no store attached; cancelled progress is lost: {key}"
                    )),
                }
                Ok(CancellableRun::Cancelled)
            }
        }
    }

    /// Warms the cache over `specs` (deduplicated), swallowing terminal
    /// run failures instead of propagating them — the degraded-mode
    /// counterpart of [`SweepEngine::run`] that `reproduce_all`'s sweep
    /// wave uses so one poisoned run cannot abort the whole wave. Failed
    /// keys are recorded (see [`SweepEngine::run_failures`]) and fail
    /// fast when a figure body later requests them.
    pub fn warm(&self, specs: &[SweepSpec]) {
        telemetry::counter("sweep.batches").inc();
        telemetry::gauge("sweep.pool_threads").set(rayon::current_num_threads() as i64);
        let mut seen = std::collections::HashSet::new();
        let mut unique: Vec<&SweepSpec> = specs
            .iter()
            .filter(|spec| seen.insert(spec.key()))
            .collect();
        let queue_depth = telemetry::gauge("sweep.queue_depth");
        queue_depth.add(unique.len() as i64);
        if self.parallel {
            unique.par_iter_mut().with_max_len(1).for_each(|spec| {
                let _ = self.try_trace_for(spec);
                queue_depth.add(-1);
            });
        } else {
            unique.iter().for_each(|spec| {
                let _ = self.try_trace_for(spec);
                queue_depth.add(-1);
            });
        }
    }

    /// Keys whose supervised execution failed terminally so far, with
    /// reasons, sorted by key for deterministic reporting.
    pub fn run_failures(&self) -> Vec<(String, String)> {
        let mut failures: Vec<(String, String)> = self
            .failed
            .lock()
            .expect("failure map poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        failures.sort();
        failures
    }

    /// Builds (or reuses) a scenario suite by spec. Public so free-form
    /// figures can run schedulers whose state must be read back after the
    /// run (e.g. the co-adaptive schedule's final codec) against the same
    /// shared suite the engine's cached runs used. Check-compute-insert
    /// like the run cache (see [`SweepEngine::run`]'s internals): racing
    /// builders of one scenario duplicate the (deterministic) build
    /// rather than risk blocking the pool.
    pub fn scenario(&self, spec: &ScenarioSpec) -> Arc<BuiltScenario> {
        let key = format!("{spec:?}");
        if let Some(built) = self
            .scenarios
            .lock()
            .expect("scenario cache poisoned")
            .get(&key)
        {
            return built.clone();
        }
        let built = {
            let _phase = telemetry::span("phase.scenario_build");
            Arc::new(spec.build())
        };
        let mut scenarios = self.scenarios.lock().expect("scenario cache poisoned");
        scenarios.entry(key).or_insert(built).clone()
    }

    /// Number of distinct runs executed so far (cache size).
    pub fn unique_runs(&self) -> usize {
        self.runs.lock().expect("run cache poisoned").len()
    }

    /// Aggregate statistics over every distinct run executed so far —
    /// what `perf_suite` reports for the in-process reproduction instead
    /// of placeholder zeros. Covers the engine's memoized runs (the sweep
    /// wave plus every figure-body request); free-form simulations that
    /// bypass the engine (e.g. the τ0 grid-search trials) are not
    /// included.
    pub fn run_stats(&self) -> RunStats {
        let runs = self.runs.lock().expect("run cache poisoned");
        let mut stats = RunStats {
            unique_runs: runs.len(),
            ..RunStats::default()
        };
        for trace in runs.values() {
            stats.rounds += trace.rounds;
            if let Some(last) = trace.points.last() {
                stats.local_steps += last.iterations;
                stats.sim_clock_secs += last.clock;
            }
            stats.peak_payload_bytes = stats.peak_payload_bytes.max(trace.peak_payload_bytes);
        }
        stats
    }

    /// Whether this engine executes batches with run-level parallelism.
    pub fn is_parallel(&self) -> bool {
        self.parallel
    }
}

impl Default for SweepEngine {
    fn default() -> Self {
        SweepEngine::new()
    }
}

/// The specs behind the paper's standard method family on a canonical
/// scenario panel: the scenario's fixed-τ baselines (τ = 1 first), then
/// AdaComm — the declarative form of the old imperative
/// `run_standard_panel` loop, one spec per method.
///
/// `with_momentum` reproduces the paper's Section 5.3.1 assignment: τ = 1
/// gets plain momentum 0.9, PASGD methods get block momentum, and every
/// momentum run uses a tenth of the plain learning rate (no batch norm to
/// absorb the 1/(1−β) step-size inflation; see EXPERIMENTS.md).
pub fn standard_panel_specs(
    family: ModelFamily,
    classes: usize,
    workers: usize,
    scale: Scale,
    variable_lr: bool,
    with_momentum: bool,
) -> Vec<SweepSpec> {
    let scenario_spec = ScenarioSpec::Canonical {
        family,
        classes,
        workers,
        scale,
    };
    let lr = |momentum: bool| match (variable_lr, momentum) {
        (false, false) => LrSpec::Fixed,
        (true, false) => LrSpec::Variable,
        (false, true) => LrSpec::fixed_scaled(0.1),
        (true, true) => LrSpec::variable_scaled(0.1),
    };
    let mut specs = Vec::new();
    for &tau in &family.paper_taus() {
        let momentum = if !with_momentum {
            MomentumMode::None
        } else if tau == 1 {
            MomentumMode::Local {
                beta: 0.9,
                reset_at_sync: false,
            }
        } else {
            MomentumMode::paper_block()
        };
        specs.push(
            SweepSpec::new(
                scenario_spec.clone(),
                SchedulerSpec::Fixed { tau },
                lr(with_momentum),
            )
            .with_momentum(momentum)
            // Fixed-τ baselines decay the lr at the scheduled epochs
            // unconditionally; the τ-gating policy belongs to AdaComm.
            .with_gate(false),
        );
    }
    let tau0 = family.tau0();
    let coupling = if variable_lr {
        LrCoupling::Sqrt
    } else {
        LrCoupling::None
    };
    let momentum = if with_momentum {
        MomentumMode::paper_block()
    } else {
        MomentumMode::None
    };
    specs.push(
        SweepSpec::new(
            scenario_spec,
            SchedulerSpec::adacomm_coupled(tau0, coupling),
            lr(with_momentum),
        )
        .with_momentum(momentum)
        .with_gate(true),
    );
    specs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec(tau: usize) -> SweepSpec {
        SweepSpec::new(
            ScenarioSpec::Concept,
            SchedulerSpec::Fixed { tau },
            LrSpec::Fixed,
        )
        .with_budget(40.0, 10.0)
    }

    #[test]
    fn identical_specs_execute_once_and_share_the_trace() {
        let engine = SweepEngine::new();
        let specs = vec![tiny_spec(4), tiny_spec(4).named("again"), tiny_spec(8)];
        let traces = engine.run(&specs);
        assert_eq!(engine.unique_runs(), 2, "tau=4 must be deduplicated");
        assert_eq!(traces[0].points, traces[1].points);
        assert_eq!(traces[1].name, "again");
        assert_ne!(traces[0].points, traces[2].points);
    }

    #[test]
    fn results_come_back_in_spec_order() {
        let engine = SweepEngine::new();
        let specs: Vec<SweepSpec> = [1usize, 16, 2].iter().map(|&t| tiny_spec(t)).collect();
        let traces = engine.run(&specs);
        assert_eq!(traces[0].name, "sync-sgd");
        assert_eq!(traces[1].name, "tau=16");
        assert_eq!(traces[2].name, "tau=2");
    }

    #[test]
    fn rename_does_not_fork_the_cache() {
        let a = tiny_spec(4);
        let b = tiny_spec(4).named("x");
        assert_eq!(a.key(), b.key());
        assert_ne!(a.key(), tiny_spec(5).key());
    }

    #[test]
    fn standard_panel_has_sync_baselines_then_adacomm() {
        let specs = standard_panel_specs(ModelFamily::VggLike, 10, 4, Scale::Quick, false, false);
        assert_eq!(specs.len(), 4);
        assert_eq!(specs[0].scheduler, SchedulerSpec::Fixed { tau: 1 });
        assert!(matches!(
            specs.last().unwrap().scheduler,
            SchedulerSpec::AdaComm { tau0: 24, .. }
        ));
        // Momentum panels: plain momentum for sync, block for PASGD.
        let momentum = standard_panel_specs(ModelFamily::VggLike, 10, 4, Scale::Quick, true, true);
        assert!(matches!(momentum[0].momentum, MomentumMode::Local { .. }));
        assert_eq!(momentum[1].momentum, MomentumMode::paper_block());
    }
}
