//! Fault injection against the persistent run store: every way an entry
//! can rot on disk — truncation, flipped bits, stale versions,
//! zero-length files, entries rewritten under a different key — must
//! degrade to a clean recompute (correct trace, rejected entry evicted
//! and re-saved), proven by the engine's cache-traffic counters. The
//! store may never panic and never serve a wrong figure.

use adacomm_bench::sweep::{LrSpec, ScenarioSpec, SchedulerSpec, SweepEngine, SweepSpec};
use adacomm_bench::{LoadOutcome, RunStore};
use pasgd_sim::RunTrace;
use std::fs;
use std::path::{Path, PathBuf};

/// A per-test store directory under the target tmpdir, wiped on entry so
/// reruns start cold.
fn store_dir(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(format!("store_faults_{name}"));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// The cheapest real run the scenario registry offers.
fn spec(tau: usize) -> SweepSpec {
    SweepSpec::new(
        ScenarioSpec::Concept,
        SchedulerSpec::Fixed { tau },
        LrSpec::Fixed,
    )
    .with_budget(20.0, 5.0)
}

/// A sequential engine (stats are then exact, not racy) over a store at
/// `dir`.
fn engine_on(dir: &Path) -> SweepEngine {
    SweepEngine::with_parallelism(false).with_store(RunStore::new(dir))
}

fn trace_bits(t: &RunTrace) -> Vec<u64> {
    let mut v = vec![t.peak_payload_bytes.to_bits(), t.rounds];
    for p in &t.points {
        v.extend([
            p.clock.to_bits(),
            p.iterations,
            p.epoch.to_bits(),
            u64::from(p.train_loss.to_bits()),
            p.test_accuracy.to_bits(),
            p.tau as u64,
            u64::from(p.lr.to_bits()),
            p.comm_bytes.to_bits(),
        ]);
    }
    v
}

/// Populates the store with one run of `spec`, returning the golden
/// trace and the entry's on-disk path.
fn populate(dir: &Path, s: &SweepSpec) -> (RunTrace, PathBuf) {
    let engine = engine_on(dir);
    let golden = engine.run(std::slice::from_ref(s)).remove(0);
    let path = RunStore::new(dir).entry_path(&s.key());
    assert!(path.exists(), "populate must write {}", path.display());
    (golden, path)
}

/// Asserts a fresh engine over the (damaged) store still produces the
/// golden trace by recomputing: exactly one reject, one miss, no disk
/// hit — and that the recompute healed the entry so a further engine
/// takes a clean disk hit.
fn assert_recovers_by_recompute(dir: &Path, s: &SweepSpec, golden: &RunTrace) {
    let engine = engine_on(dir);
    let got = engine.run(std::slice::from_ref(s)).remove(0);
    assert_eq!(trace_bits(&got), trace_bits(golden), "recompute must match");
    let stats = engine.cache_stats();
    assert_eq!(
        stats.rejects, 1,
        "damaged entry must be rejected: {stats:?}"
    );
    assert_eq!(stats.misses, 1, "rejected key must recompute: {stats:?}");
    assert_eq!(stats.disk_hits, 0, "damaged entry must not hit: {stats:?}");

    // The recompute re-saved a valid entry: the next engine hits disk.
    let healed = engine_on(dir);
    let again = healed.run(std::slice::from_ref(s)).remove(0);
    assert_eq!(trace_bits(&again), trace_bits(golden));
    let stats = healed.cache_stats();
    assert_eq!(
        (stats.disk_hits, stats.misses, stats.rejects),
        (1, 0, 0),
        "healed entry must serve from disk: {stats:?}"
    );
}

#[test]
fn warm_engine_serves_from_disk_bit_identically() {
    let dir = store_dir("warm");
    let cold = engine_on(&dir);
    let specs = [spec(2), spec(4)];
    let golden = cold.run(&specs);
    let stats = cold.cache_stats();
    assert_eq!((stats.disk_hits, stats.misses), (0, 2), "{stats:?}");

    let warm = engine_on(&dir);
    let served = warm.run(&specs);
    let stats = warm.cache_stats();
    assert_eq!(
        (stats.disk_hits, stats.misses, stats.rejects),
        (2, 0, 0),
        "{stats:?}"
    );
    for (g, s) in golden.iter().zip(&served) {
        assert_eq!(g.name, s.name);
        assert_eq!(trace_bits(g), trace_bits(s));
    }

    // Repeat requests on the warm engine come from memory, not disk.
    let _ = warm.run(&specs);
    let stats = warm.cache_stats();
    assert_eq!(stats.disk_hits, 2, "{stats:?}");
    assert_eq!(stats.mem_hits, 2, "{stats:?}");
}

#[test]
fn truncated_entry_recomputes_cleanly() {
    let dir = store_dir("truncated");
    let s = spec(2);
    let (golden, path) = populate(&dir, &s);
    let bytes = fs::read(&path).unwrap();
    fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
    assert_recovers_by_recompute(&dir, &s, &golden);
}

#[test]
fn zero_length_entry_recomputes_cleanly() {
    let dir = store_dir("zero_len");
    let s = spec(2);
    let (golden, path) = populate(&dir, &s);
    fs::write(&path, []).unwrap();
    assert_recovers_by_recompute(&dir, &s, &golden);
}

#[test]
fn flipped_payload_byte_recomputes_cleanly() {
    let dir = store_dir("bit_flip");
    let s = spec(2);
    let (golden, path) = populate(&dir, &s);
    let mut bytes = fs::read(&path).unwrap();
    // Deep in the payload: every header check passes, so only the CRC
    // can catch this flip.
    let at = bytes.len() - 9;
    bytes[at] ^= 0x40;
    fs::write(&path, &bytes).unwrap();
    assert_recovers_by_recompute(&dir, &s, &golden);
}

#[test]
fn stale_version_header_recomputes_cleanly() {
    let dir = store_dir("stale_version");
    let s = spec(2);
    let (golden, path) = populate(&dir, &s);
    // Frame layout: magic [0..4), store format u32 [4..8),
    // code-semantics u32 [8..12). Age the semantics version by one — the
    // entry now claims to predate the current simulation code.
    let mut bytes = fs::read(&path).unwrap();
    bytes[8] = bytes[8].wrapping_add(1);
    fs::write(&path, &bytes).unwrap();
    assert_recovers_by_recompute(&dir, &s, &golden);
}

#[test]
fn entry_rewritten_under_a_different_key_recomputes_cleanly() {
    // A concurrent writer (or a pathological hash collision) can leave a
    // *structurally valid* frame for the wrong spec at this path; the
    // key echo inside the frame is what catches it.
    let dir = store_dir("wrong_key");
    let s2 = spec(2);
    let s4 = spec(4);
    let (golden, path2) = populate(&dir, &s2);
    let (_, path4) = populate(&dir, &s4);
    fs::copy(&path4, &path2).unwrap();
    assert_recovers_by_recompute(&dir, &s2, &golden);
}

#[test]
fn arbitrary_garbage_never_panics_the_loader() {
    let dir = store_dir("garbage");
    let s = spec(2);
    let (golden, path) = populate(&dir, &s);
    let original = fs::read(&path).unwrap();
    // A deterministic xorshift keeps the test reproducible without any
    // wall-clock seeding.
    let mut x = 0x9E37_79B9u32;
    let garbage: Vec<u8> = (0..original.len())
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 17;
            x ^= x << 5;
            x as u8
        })
        .collect();
    fs::write(&path, &garbage).unwrap();
    assert_recovers_by_recompute(&dir, &s, &golden);
}

#[test]
fn direct_store_load_reports_reasons() {
    // The LoadOutcome reasons are what the engine logs; spot-check the
    // classifier end-to-end through real files.
    let dir = store_dir("reasons");
    let s = spec(2);
    let (_, path) = populate(&dir, &s);
    let store = RunStore::new(&dir);
    let key = s.key();

    match store.load(&key) {
        LoadOutcome::Hit(_) => {}
        other => panic!("pristine entry must hit, got {other:?}"),
    }
    match store.load("some other key") {
        LoadOutcome::Absent => {}
        other => panic!("unknown key must be absent, got {other:?}"),
    }
    let bytes = fs::read(&path).unwrap();
    fs::write(&path, &bytes[..10]).unwrap();
    match store.load(&key) {
        LoadOutcome::Rejected(reason) => {
            assert!(!reason.is_empty(), "rejection must carry a reason")
        }
        other => panic!("truncated entry must reject, got {other:?}"),
    }
}
