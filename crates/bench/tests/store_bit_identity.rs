//! Cross-run bit-identity: a reproduction served from the persistent run
//! store must render **byte-identical** CSVs to the cold run that
//! populated it. The store round-trips through real files, so a second
//! engine instance here exercises exactly the path a second process
//! takes (CI additionally runs `reproduce_all --smoke` twice in separate
//! processes and byte-compares the results).

use adacomm_bench::panel_csv;
use adacomm_bench::sweep::{LrSpec, ScenarioSpec, SchedulerSpec, SweepEngine, SweepSpec};
use adacomm_bench::RunStore;
use std::fs;
use std::path::{Path, PathBuf};

fn store_dir(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(format!("store_identity_{name}"));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// A small panel mixing schedulers, codecs and momentum so the stored
/// traces cover tau changes, compressed payload accounting and renames.
fn panel_specs() -> Vec<SweepSpec> {
    let fixed = |tau| {
        SweepSpec::new(
            ScenarioSpec::Concept,
            SchedulerSpec::Fixed { tau },
            LrSpec::Fixed,
        )
        .with_budget(20.0, 5.0)
    };
    vec![
        fixed(1),
        fixed(4).named("renamed-for-report"),
        SweepSpec::new(
            ScenarioSpec::Concept,
            SchedulerSpec::adacomm(4),
            LrSpec::Fixed,
        )
        .with_budget(20.0, 5.0),
    ]
}

#[test]
fn warm_reproduction_renders_byte_identical_csv() {
    let dir = store_dir("csv");
    let specs = panel_specs();

    let cold = SweepEngine::with_parallelism(false).with_store(RunStore::new(&dir));
    let cold_csv = panel_csv(&cold.run(&specs));
    assert_eq!(cold.cache_stats().disk_hits, 0);
    assert!(cold.cache_stats().misses > 0);

    let warm = SweepEngine::with_parallelism(false).with_store(RunStore::new(&dir));
    let warm_csv = panel_csv(&warm.run(&specs));
    let stats = warm.cache_stats();
    assert!(
        stats.disk_hits > 0,
        "warm run must hit the store: {stats:?}"
    );
    assert_eq!(stats.misses, 0, "warm run must not simulate: {stats:?}");

    assert_eq!(
        cold_csv, warm_csv,
        "store-served CSV must be byte-identical to the cold rendering"
    );
}

#[test]
fn store_and_no_store_engines_agree_bitwise() {
    // The store must be invisible in the results: an engine with no
    // store at all renders the same bytes.
    let dir = store_dir("invisible");
    let specs = panel_specs();

    let stored = SweepEngine::with_parallelism(false).with_store(RunStore::new(&dir));
    let with_store_csv = panel_csv(&stored.run(&specs));
    // Second pass over the same dir: disk-served.
    let served = SweepEngine::with_parallelism(false).with_store(RunStore::new(&dir));
    let disk_csv = panel_csv(&served.run(&specs));

    let bare = SweepEngine::with_parallelism(false);
    let bare_csv = panel_csv(&bare.run(&specs));

    assert_eq!(bare_csv, with_store_csv);
    assert_eq!(bare_csv, disk_csv);
}
