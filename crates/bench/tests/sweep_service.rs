//! In-process integration tests for the sweep service: each test binds a
//! real Unix socket via [`Server::start`], talks the wire protocol
//! through ordinary `UnixStream` clients, and asserts the failure
//! semantics the module promises — single-flight dedup, bounded-queue
//! shedding, panic isolation, deadline park + resume, graceful drain,
//! and malformed-input hardening.

use adacomm_bench::server::protocol::{
    encode_request, parse_response, Command, ErrorKind, Request, Response, ResponseBody, RunRequest,
};
use adacomm_bench::server::{Server, ServerConfig, ServerHandle, MAX_LINE_BYTES};
use adacomm_bench::store::RunStore;
use adacomm_bench::sweep::SweepEngine;
use adacomm_bench::Scale;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// A unique socket path per test so the suite can run in parallel.
fn socket_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("adacomm-svc-{}-{tag}.sock", std::process::id()))
}

fn start(tag: &str, workers: usize, queue_limit: usize, engine: SweepEngine) -> ServerHandle {
    let path = socket_path(tag);
    let _ = std::fs::remove_file(&path);
    let config = ServerConfig {
        socket_path: path,
        workers,
        queue_limit,
        scale: Scale::Quick,
        ..ServerConfig::default()
    };
    Server::start(config, Arc::new(engine)).expect("start server")
}

/// One client connection: a buffered read half plus a raw write half.
struct Client {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
}

impl Client {
    fn connect(path: &Path) -> Client {
        let stream = UnixStream::connect(path).expect("connect to service");
        let writer = stream.try_clone().expect("clone stream");
        Client {
            reader: BufReader::new(stream),
            writer,
        }
    }

    fn send_raw(&mut self, bytes: &[u8]) {
        self.writer.write_all(bytes).expect("write request");
        self.writer.flush().expect("flush request");
    }

    fn send(&mut self, request: &Request) {
        let mut line = encode_request(request);
        line.push('\n');
        self.send_raw(line.as_bytes());
    }

    fn recv(&mut self) -> Response {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read response");
        assert!(!line.is_empty(), "server closed the connection");
        parse_response(line.trim()).expect("parse response line")
    }

    fn call(&mut self, request: &Request) -> Response {
        self.send(request);
        self.recv()
    }
}

/// A concept-scenario run request; wall time scales with `budget` (at
/// `tau = 1` the simulated-seconds budget is also the round count), so
/// tests pick small budgets for instant runs and large ones for runs
/// that reliably outlive the surrounding orchestration.
fn run_request(id: u64, budget: f64, deadline_ms: Option<u64>, panic: bool) -> Request {
    Request {
        id: Some(id),
        cmd: Command::Run(RunRequest {
            scenario: "concept".into(),
            scheduler: "fixed".into(),
            tau: 1,
            budget: Some((budget, budget)),
            deadline_ms,
            panic,
        }),
    }
}

fn ping(id: u64) -> Request {
    Request {
        id: Some(id),
        cmd: Command::Ping,
    }
}

fn stats(id: u64) -> Request {
    Request {
        id: Some(id),
        cmd: Command::Stats,
    }
}

fn error_kind(response: &Response) -> Option<ErrorKind> {
    match &response.body {
        ResponseBody::Error { kind, .. } => Some(*kind),
        _ => None,
    }
}

#[test]
fn ping_stats_and_unknown_figure() {
    let handle = start("basic", 1, 8, SweepEngine::default());
    let mut client = Client::connect(handle.socket_path());

    let pong = client.call(&ping(1));
    assert_eq!(pong.id, Some(1));
    assert!(matches!(pong.body, ResponseBody::Pong));

    let response = client.call(&stats(2));
    match response.body {
        ResponseBody::Stats(s) => {
            assert_eq!(s.requests, 2, "ping + this stats call");
            assert!(!s.draining);
        }
        other => panic!("expected stats, got {other:?}"),
    }

    let response = client.call(&Request {
        id: Some(3),
        cmd: Command::Figure {
            name: "no-such-figure".into(),
        },
    });
    assert_eq!(error_kind(&response), Some(ErrorKind::BadRequest));

    handle.join();
}

/// While the single worker is pinned on a long run, identical requests
/// from separate connections join one flight: every client receives the
/// same result, the engine computes it once, and each joiner counts as a
/// dedup hit.
#[test]
fn identical_requests_share_one_flight() {
    let handle = start("dedup", 1, 8, SweepEngine::default());
    let path = handle.socket_path().to_path_buf();

    // Pin the worker so the storm's flight stays queued while it forms.
    let mut pin = Client::connect(&path);
    pin.send(&run_request(1, 600.0, None, false));
    std::thread::sleep(Duration::from_millis(200));

    let mut clients: Vec<Client> = (0..4).map(|_| Client::connect(&path)).collect();
    for (i, client) in clients.iter_mut().enumerate() {
        client.send(&run_request(10 + i as u64, 6.0, None, false));
    }
    let responses: Vec<Response> = clients.iter_mut().map(Client::recv).collect();

    let mut losses = Vec::new();
    for (i, response) in responses.iter().enumerate() {
        assert_eq!(response.id, Some(10 + i as u64), "ids echo per waiter");
        match &response.body {
            ResponseBody::Run(run) => losses.push(run.final_loss),
            other => panic!("expected a run result, got {other:?}"),
        }
    }
    assert!(
        losses.windows(2).all(|w| w[0] == w[1]),
        "all waiters share one computation's result: {losses:?}"
    );

    match pin.recv().body {
        ResponseBody::Run(_) => {}
        other => panic!("pin run failed: {other:?}"),
    }
    match pin.call(&stats(2)).body {
        ResponseBody::Stats(s) => {
            assert_eq!(s.dedup_hits, 3, "3 of 4 identical requests joined");
            assert_eq!(s.unique_runs, 2, "the pin plus one shared computation");
        }
        other => panic!("expected stats, got {other:?}"),
    }

    handle.join();
}

/// With the worker pinned and a queue of 2, a pipelined burst of 6
/// distinct requests sheds exactly 4 with `overloaded`; the 2 admitted
/// ones complete normally once the worker frees up.
#[test]
fn full_queue_sheds_with_overloaded() {
    let handle = start("shed", 1, 2, SweepEngine::default());
    let path = handle.socket_path().to_path_buf();

    let mut pin = Client::connect(&path);
    pin.send(&run_request(1, 600.0, None, false));
    std::thread::sleep(Duration::from_millis(200));

    let mut burst = Client::connect(&path);
    for i in 0..6u64 {
        // Distinct budgets -> distinct spec keys -> no dedup.
        burst.send(&run_request(100 + i, 6.0 + i as f64, None, false));
    }
    let (mut ok, mut shed) = (0, 0);
    for _ in 0..6 {
        let response = burst.recv();
        match response.body {
            ResponseBody::Run(_) => ok += 1,
            ResponseBody::Error {
                kind: ErrorKind::Overloaded,
                ref message,
            } => {
                assert!(message.contains("queue full"), "unexpected: {message}");
                shed += 1;
            }
            other => panic!("expected run or overloaded, got {other:?}"),
        }
    }
    assert_eq!((ok, shed), (2, 4), "queue_limit=2 admits 2, sheds 4");

    handle.join();
}

/// A forced-panic drill degrades exactly one response; the process, the
/// connection, and subsequent requests all survive.
#[test]
fn request_panic_is_isolated() {
    let handle = start("panic", 1, 8, SweepEngine::default());
    let mut client = Client::connect(handle.socket_path());

    let response = client.call(&run_request(1, 6.0, None, true));
    assert_eq!(error_kind(&response), Some(ErrorKind::Panic));

    // Same connection still serves; a fresh connection too.
    assert!(matches!(client.call(&ping(2)).body, ResponseBody::Pong));
    let mut fresh = Client::connect(handle.socket_path());
    match fresh.call(&run_request(3, 6.0, None, false)).body {
        ResponseBody::Run(_) => {}
        other => panic!("service degraded after panic: {other:?}"),
    }
    match fresh.call(&stats(4)).body {
        ResponseBody::Stats(s) => assert_eq!(s.request_panics, 1),
        other => panic!("expected stats, got {other:?}"),
    }

    handle.join();
}

/// A run that overruns its deadline is cancelled, parked in the store,
/// and answered `deadline`; re-requesting the same spec resumes the
/// parked progress instead of starting over.
#[test]
fn deadline_parks_then_resumes() {
    let store_dir =
        std::env::temp_dir().join(format!("adacomm-svc-{}-deadline-store", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let engine = SweepEngine::default().with_store(RunStore::new(&store_dir));
    let handle = start("deadline", 1, 8, engine);
    let mut client = Client::connect(handle.socket_path());

    let response = client.call(&run_request(1, 1000.0, Some(150), false));
    match &response.body {
        ResponseBody::Error {
            kind: ErrorKind::Deadline,
            message,
        } => assert!(message.contains("parked"), "unexpected: {message}"),
        other => panic!("expected a deadline error, got {other:?}"),
    }

    let response = client.call(&run_request(2, 1000.0, None, false));
    match &response.body {
        ResponseBody::Run(run) => assert_eq!(run.source, "resumed", "parked progress must resume"),
        other => panic!("expected the resumed run, got {other:?}"),
    }
    match client.call(&stats(3)).body {
        ResponseBody::Stats(s) => assert_eq!(s.deadline_misses, 1),
        other => panic!("expected stats, got {other:?}"),
    }

    handle.join();
    let _ = std::fs::remove_dir_all(&store_dir);
}

/// Drain answers everything: the in-flight run is cooperatively
/// cancelled and its waiter told `draining`, queued jobs are answered
/// `draining` without running, and `join` returns with the socket file
/// gone.
#[test]
fn drain_answers_in_flight_and_queued() {
    let handle = start("drain", 1, 8, SweepEngine::default());
    let path = handle.socket_path().to_path_buf();

    let mut pin = Client::connect(&path);
    // Far larger than the test could ever wait out: only cooperative
    // cancellation can answer this one.
    pin.send(&run_request(1, 100_000.0, None, false));
    std::thread::sleep(Duration::from_millis(300));

    let mut queued: Vec<Client> = (0..2).map(|_| Client::connect(&path)).collect();
    for (i, client) in queued.iter_mut().enumerate() {
        client.send(&run_request(
            10 + i as u64,
            90_000.0 + i as f64,
            None,
            false,
        ));
    }
    std::thread::sleep(Duration::from_millis(100));

    handle.join();

    assert_eq!(error_kind(&pin.recv()), Some(ErrorKind::Draining));
    for client in &mut queued {
        assert_eq!(error_kind(&client.recv()), Some(ErrorKind::Draining));
    }
    assert!(!path.exists(), "join removes the socket file");
    assert!(
        UnixStream::connect(&path).is_err(),
        "no listener after join"
    );
}

/// Garbage on the wire — invalid JSON, oversized lines, split writes —
/// never desyncs framing or kills the connection.
#[test]
fn malformed_input_keeps_the_connection_alive() {
    let handle = start("garbage", 1, 8, SweepEngine::default());
    let mut client = Client::connect(handle.socket_path());

    client.send_raw(b"this is not json\n");
    assert_eq!(error_kind(&client.recv()), Some(ErrorKind::BadRequest));

    client.send_raw(b"{\"id\":7,\"cmd\":\"warp\"}\n");
    let response = client.recv();
    assert_eq!(response.id, Some(7), "id recovered from a bad command");
    assert_eq!(error_kind(&response), Some(ErrorKind::BadRequest));

    // An oversized line is consumed whole; framing survives.
    let mut huge = vec![b'x'; MAX_LINE_BYTES + 16];
    huge.push(b'\n');
    client.send_raw(&huge);
    let response = client.recv();
    match &response.body {
        ResponseBody::Error {
            kind: ErrorKind::BadRequest,
            message,
        } => assert!(message.contains("exceeds"), "unexpected: {message}"),
        other => panic!("expected bad_request for oversized line, got {other:?}"),
    }

    // A request split across writes with a pause in between still parses
    // once its newline lands.
    let line = encode_request(&ping(9));
    let bytes = line.as_bytes();
    client.send_raw(&bytes[..bytes.len() / 2]);
    std::thread::sleep(Duration::from_millis(100));
    client.send_raw(&bytes[bytes.len() / 2..]);
    client.send_raw(b"\n");
    let response = client.recv();
    assert_eq!(response.id, Some(9));
    assert!(matches!(response.body, ResponseBody::Pong));

    // Blank lines are skipped, not answered.
    client.send_raw(b"\n\n");
    assert!(matches!(client.call(&ping(10)).body, ResponseBody::Pong));

    handle.join();
}

/// A live daemon on the socket path refuses a second bind; a stale
/// socket file (nothing accepting) is reclaimed.
#[test]
fn socket_binding_is_exclusive_but_reclaims_stale() {
    let handle = start("bind", 1, 8, SweepEngine::default());
    let path = handle.socket_path().to_path_buf();

    let config = ServerConfig {
        socket_path: path.clone(),
        workers: 1,
        queue_limit: 8,
        scale: Scale::Quick,
        ..ServerConfig::default()
    };
    let err = Server::start(config, Arc::new(SweepEngine::default()))
        .err()
        .expect("second bind on a live daemon must fail");
    assert_eq!(err.kind(), std::io::ErrorKind::AddrInUse);

    handle.join();

    // Leave a stale socket file behind (bound once, listener dropped):
    // a fresh start must reclaim it.
    let stale = socket_path("bind-stale");
    let _ = std::fs::remove_file(&stale);
    drop(std::os::unix::net::UnixListener::bind(&stale).expect("bind stale"));
    assert!(stale.exists(), "dropped listener leaves its socket file");
    let config = ServerConfig {
        socket_path: stale,
        workers: 1,
        queue_limit: 8,
        scale: Scale::Quick,
        ..ServerConfig::default()
    };
    let handle =
        Server::start(config, Arc::new(SweepEngine::default())).expect("reclaim stale socket");
    let mut client = Client::connect(handle.socket_path());
    assert!(matches!(client.call(&ping(1)).body, ResponseBody::Pong));
    handle.join();
}
