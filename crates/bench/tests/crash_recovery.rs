//! Journaled crash recovery, in process: accepts written by a (simulated)
//! killed daemon are replayed by `server::recover`, the interrupted runs
//! complete — resuming parked checkpoints bit-identically where they
//! exist — and the journal is discarded so the next epoch starts clean.
//! The real-SIGKILL version of this contract runs in `load_suite`
//! (BENCH_10) and the CI chaos drill; this file pins the library-level
//! semantics deterministically.

use adacomm_bench::server::journal::Journal;
use adacomm_bench::server::protocol::{self, Command, Request, Response, ResponseBody, RunRequest};
use adacomm_bench::server::{self, Server, ServerConfig};
use adacomm_bench::sweep::SweepEngine;
use adacomm_bench::{CancellableRun, LoadOutcome, RunStore, Scale};
use pasgd_sim::RunTrace;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn dir_for(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(format!("crash_recovery_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn run_request(tau: u64, budget: f64) -> RunRequest {
    RunRequest {
        scenario: "concept".into(),
        scheduler: "fixed".into(),
        tau,
        budget: Some((budget, budget / 4.0)),
        deadline_ms: None,
        panic: false,
    }
}

fn request(run: RunRequest) -> Request {
    Request {
        id: None,
        cmd: Command::Run(run),
    }
}

fn trace_bits(t: &RunTrace) -> Vec<u64> {
    let mut v = vec![t.peak_payload_bytes.to_bits(), t.rounds];
    for p in &t.points {
        v.extend([
            p.clock.to_bits(),
            p.iterations,
            u64::from(p.train_loss.to_bits()),
        ]);
    }
    v
}

/// A journal holding accepts a dead daemon never discharged: recovery
/// completes each one into the store, reports the counts, and discards
/// the journal so a second pass finds nothing.
#[test]
fn recover_replays_pending_and_discards_journal() {
    let dir = dir_for("replay");
    let journal_path = dir.join("journal.log");
    let scale = Scale::Quick;

    let (run_a, run_b, run_done) = (
        run_request(2, 20.0),
        run_request(4, 20.0),
        run_request(8, 20.0),
    );
    let key = |run: &RunRequest| run.sweep_spec(scale).expect("valid spec").key();
    {
        let journal = Journal::open(&journal_path).expect("open journal");
        journal
            .append_accept(&key(&run_a), &request(run_a.clone()))
            .unwrap();
        journal
            .append_accept(&key(&run_b), &request(run_b.clone()))
            .unwrap();
        journal
            .append_accept(&key(&run_done), &request(run_done.clone()))
            .unwrap();
        journal.append_done(&key(&run_done)).unwrap();
    }

    let engine = SweepEngine::with_parallelism(false).with_store(RunStore::new(&dir));
    let report = server::recover(&journal_path, &engine, scale);
    assert_eq!(report.replayed, 2, "one accept was discharged by its done");
    assert_eq!(report.recovered_runs, 2);
    assert!(report.failed.is_empty(), "failures: {:?}", report.failed);
    assert!(!journal_path.exists(), "recovery must discard the journal");

    // The recovered work is durable: both entries load from the store.
    let store = RunStore::new(&dir);
    for run in [&run_a, &run_b] {
        assert!(
            matches!(store.load(&key(run)), LoadOutcome::Hit(_)),
            "recovered run must be in the store"
        );
    }

    // A second pass over the discarded journal is a no-op.
    let again = server::recover(&journal_path, &engine, scale);
    assert_eq!(again.replayed, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Recovery of a run whose progress was parked mid-flight resumes the
/// checkpoint (reported as `resumed`) and the result is bit-identical to
/// an uninterrupted run of the same spec in a pristine store.
#[test]
fn recover_resumes_parked_progress_bit_identically() {
    let scale = Scale::Quick;
    let run = run_request(3, 40.0);
    let spec = run.sweep_spec(scale).expect("valid spec");
    let key = spec.key();

    // Golden: the uninterrupted run.
    let golden_dir = dir_for("resume_golden");
    let golden_engine = SweepEngine::with_parallelism(false).with_store(RunStore::new(&golden_dir));
    let golden = golden_engine.run(std::slice::from_ref(&spec)).remove(0);

    // Crash site: the run is cancelled mid-flight, parking a checkpoint —
    // the state a SIGKILL between slices leaves behind — and the accept
    // is still in the journal.
    let dir = dir_for("resume");
    let journal_path = dir.join("journal.log");
    let engine = SweepEngine::with_parallelism(false).with_store(RunStore::new(&dir));
    match engine.try_trace_cancellable(&spec, Some(&|| true)) {
        Ok(CancellableRun::Cancelled) => {}
        other => panic!("expected a cancelled run, got {other:?}"),
    }
    Journal::open(&journal_path)
        .expect("open journal")
        .append_accept(&key, &request(run))
        .unwrap();

    // A fresh engine (fresh process after the kill) recovers it.
    let fresh = SweepEngine::with_parallelism(false).with_store(RunStore::new(&dir));
    let report = server::recover(&journal_path, &fresh, scale);
    assert_eq!(report.replayed, 1);
    assert_eq!(report.recovered_runs, 1);
    assert_eq!(report.resumed_runs, 1, "the parked checkpoint must resume");

    match RunStore::new(&dir).load(&key) {
        LoadOutcome::Hit(trace) => assert_eq!(
            trace_bits(&trace),
            trace_bits(&golden),
            "resumed recovery must be bit-identical to the uninterrupted run"
        ),
        other => panic!("recovered run must be stored, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&golden_dir);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The counters a recovery pass reports surface verbatim through a live
/// server's `stats`, and a journaled daemon discharges completed work:
/// after a run completes, its journal has no pending records — while a
/// panic drill never enters the journal at all.
#[test]
fn server_journals_accepts_and_discharges_completions() {
    let dir = dir_for("server");
    let journal_path = dir.join("journal.log");
    let socket = std::env::temp_dir().join(format!(
        "adacomm-recovery-{}-server.sock",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&socket);
    let engine = SweepEngine::default().with_store(RunStore::new(&dir));
    let config = ServerConfig {
        socket_path: socket.clone(),
        workers: 1,
        queue_limit: 8,
        scale: Scale::Quick,
        journal_path: Some(journal_path.clone()),
        recovery: server::RecoveryCounters {
            recovered_runs: 7,
            journal_replays: 5,
            gc_orphans: 3,
        },
        ..ServerConfig::default()
    };
    let handle = Server::start(config, Arc::new(engine)).expect("start server");

    let stream = UnixStream::connect(&socket).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut call = |request: &Request| -> Response {
        let mut writer = &stream;
        writer
            .write_all(protocol::encode_request(request).as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .expect("send");
        let mut line = String::new();
        reader.read_line(&mut line).expect("recv");
        protocol::parse_response(line.trim()).expect("parse response")
    };

    // A completed run leaves records but zero pending entries.
    let response = call(&Request {
        id: Some(1),
        cmd: Command::Run(run_request(2, 10.0)),
    });
    assert!(matches!(response.body, ResponseBody::Run(_)));

    // A panic drill must never be journaled: replaying it after a crash
    // would crash-loop the daemon.
    let response = call(&Request {
        id: Some(2),
        cmd: Command::Run(RunRequest {
            panic: true,
            ..run_request(2, 10.0)
        }),
    });
    assert!(matches!(response.body, ResponseBody::Error { .. }));

    // Recovery counters pass through stats verbatim.
    match call(&Request {
        id: Some(3),
        cmd: Command::Stats,
    })
    .body
    {
        ResponseBody::Stats(s) => {
            assert_eq!(
                (s.recovered_runs, s.journal_replays, s.gc_orphans),
                (7, 5, 3),
                "recovery counters must surface through stats"
            );
        }
        other => panic!("expected stats, got {other:?}"),
    }

    handle.initiate_drain();
    handle.join();

    let replay = Journal::replay(&journal_path);
    assert!(replay.records >= 2, "accept + done must be journaled");
    assert!(
        replay.pending.is_empty(),
        "completed work must be discharged: {:?}",
        replay.pending.iter().map(|(k, _)| k).collect::<Vec<_>>()
    );
    let _ = std::fs::remove_dir_all(&dir);
}
