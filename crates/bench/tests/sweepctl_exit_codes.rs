//! The `sweepctl` exit-code contract, exercised against a real in-process
//! sweep service and the real binary. CI chaos drills branch on these
//! codes, so each one is pinned here:
//!
//! | code | meaning                                        |
//! |------|------------------------------------------------|
//! | 0    | ok response                                    |
//! | 1    | terminal error (`failed`, `panic`, `bad_request`) |
//! | 2    | usage error / connection failure               |
//! | 3    | `overloaded` (after any retries)               |
//! | 4    | `draining` (after any retries)                 |
//! | 5    | `deadline` (run parked resumably)              |

use adacomm_bench::server::protocol::{self, Command, Request, RunRequest};
use adacomm_bench::server::{Server, ServerConfig, ServerHandle};
use adacomm_bench::sweep::SweepEngine;
use adacomm_bench::{RunStore, Scale};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::Command as Proc;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn socket_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("adacomm-ctl-{}-{tag}.sock", std::process::id()))
}

fn start(tag: &str, queue_limit: usize, engine: SweepEngine) -> ServerHandle {
    let path = socket_path(tag);
    let _ = std::fs::remove_file(&path);
    let config = ServerConfig {
        socket_path: path,
        workers: 1,
        queue_limit,
        scale: Scale::Quick,
        ..ServerConfig::default()
    };
    Server::start(config, Arc::new(engine)).expect("start server")
}

/// Runs the real `sweepctl` binary against `socket` and returns
/// `(exit code, stdout, stderr)`.
fn sweepctl(socket: &Path, args: &[&str]) -> (i32, String, String) {
    let output = Proc::new(env!("CARGO_BIN_EXE_sweepctl"))
        .arg("--socket")
        .arg(socket)
        .args(args)
        .output()
        .expect("run sweepctl");
    (
        output.status.code().expect("sweepctl exit code"),
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
    )
}

#[test]
fn ok_response_exits_zero() {
    let handle = start("ok", 8, SweepEngine::default());
    let (code, stdout, stderr) = sweepctl(handle.socket_path(), &["ping"]);
    assert_eq!(code, 0, "stdout: {stdout} stderr: {stderr}");
    assert!(stdout.contains("pong"), "stdout: {stdout}");
    handle.join();
}

#[test]
fn terminal_panic_exits_one() {
    let handle = start("panic", 8, SweepEngine::default());
    let (code, stdout, _) = sweepctl(
        handle.socket_path(),
        &["run", "concept", "--budget", "6", "2", "--panic"],
    );
    assert_eq!(code, 1, "stdout: {stdout}");
    assert!(stdout.contains("error [panic]"), "stdout: {stdout}");
    handle.join();
}

#[test]
fn usage_and_connection_failures_exit_two() {
    // Usage error: no daemon involved at all.
    let (code, _, stderr) = sweepctl(Path::new("/nonexistent.sock"), &["frobnicate"]);
    assert_eq!(code, 2, "stderr: {stderr}");
    assert!(stderr.contains("unknown command"), "stderr: {stderr}");

    // Connection failure, with retries: still 2 once they are exhausted,
    // and the retry attempts are visible on stderr.
    let (code, _, stderr) = sweepctl(
        Path::new("/nonexistent.sock"),
        &["--retries", "2", "--retry-base-ms", "1", "ping"],
    );
    assert_eq!(code, 2, "stderr: {stderr}");
    assert!(stderr.contains("retrying"), "stderr: {stderr}");
    assert!(stderr.contains("cannot connect"), "stderr: {stderr}");
}

#[test]
fn overloaded_exits_three() {
    // queue_limit 0: every distinct job sheds immediately.
    let handle = start("shed", 0, SweepEngine::default());
    let (code, stdout, _) = sweepctl(
        handle.socket_path(),
        &["run", "concept", "--budget", "6", "2"],
    );
    assert_eq!(code, 3, "stdout: {stdout}");
    assert!(stdout.contains("error [overloaded]"), "stdout: {stdout}");
    handle.join();
}

#[test]
fn draining_exits_four() {
    let handle = start("drain", 8, SweepEngine::default());
    let path = handle.socket_path().to_path_buf();

    // Pin the single worker with a slow run over a raw connection so the
    // client's request stays queued when the drain begins.
    let pin = UnixStream::connect(&path).expect("connect pin");
    let request = Request {
        id: Some(1),
        cmd: Command::Run(RunRequest {
            scenario: "concept".into(),
            scheduler: "fixed".into(),
            tau: 4,
            budget: Some((600.0, 10.0)),
            deadline_ms: None,
            panic: false,
        }),
    };
    let mut writer = &pin;
    writer
        .write_all(protocol::encode_request(&request).as_bytes())
        .and_then(|()| writer.write_all(b"\n"))
        .expect("send pin request");

    // The client (distinct budget => distinct key) queues behind it.
    let client =
        std::thread::spawn(move || sweepctl(&path, &["run", "concept", "--budget", "7", "2"]));
    let deadline = Instant::now() + Duration::from_secs(30);
    while handle.stats().queue_depth == 0 {
        assert!(Instant::now() < deadline, "client request never queued");
        std::thread::sleep(Duration::from_millis(10));
    }

    // Drain: the queued request must be answered `draining`, exit 4.
    handle.initiate_drain();
    let (code, stdout, _) = client.join().expect("client thread");
    assert_eq!(code, 4, "stdout: {stdout}");
    assert!(stdout.contains("error [draining]"), "stdout: {stdout}");

    // The pinned connection gets a drain-class answer too, then the
    // server joins cleanly.
    let mut reply = String::new();
    let _ = BufReader::new(&pin).read_line(&mut reply);
    handle.join();
}

#[test]
fn deadline_exits_five_and_rerequest_resumes() {
    let store_dir =
        std::env::temp_dir().join(format!("adacomm-ctl-{}-deadline-store", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let engine = SweepEngine::default().with_store(RunStore::new(&store_dir));
    let handle = start("deadline", 8, engine);

    let (code, stdout, _) = sweepctl(
        handle.socket_path(),
        &[
            "run",
            "concept",
            "--budget",
            "1000",
            "5",
            "--deadline-ms",
            "150",
        ],
    );
    assert_eq!(code, 5, "stdout: {stdout}");
    assert!(stdout.contains("error [deadline]"), "stdout: {stdout}");

    // The contract's promise behind exit 5: re-requesting resumes the
    // parked progress and completes with exit 0.
    let (code, stdout, _) = sweepctl(
        handle.socket_path(),
        &["run", "concept", "--budget", "1000", "5"],
    );
    assert_eq!(code, 0, "stdout: {stdout}");
    assert!(stdout.contains("source resumed"), "stdout: {stdout}");

    handle.join();
    let _ = std::fs::remove_dir_all(&store_dir);
}

#[test]
fn gc_verb_reports_reclaims() {
    let store_dir =
        std::env::temp_dir().join(format!("adacomm-ctl-{}-gc-store", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    std::fs::create_dir_all(&store_dir).expect("mk store dir");
    std::fs::write(store_dir.join("junk.tmp.123"), b"debris").expect("plant orphan");
    let engine = SweepEngine::default().with_store(RunStore::new(&store_dir));
    let handle = start("gc", 8, engine);

    let (code, stdout, _) = sweepctl(handle.socket_path(), &["gc"]);
    assert_eq!(code, 0, "stdout: {stdout}");
    assert!(
        stdout.contains("1 temp files"),
        "orphan must be reclaimed: {stdout}"
    );

    handle.join();
    let _ = std::fs::remove_dir_all(&store_dir);
}
