//! Property tests for the sweep service's wire protocol: arbitrary
//! requests and responses must round-trip exactly through their JSON
//! line encoding, and arbitrary garbage — truncated JSON, wrong field
//! types, huge inputs, random bytes — must fail with a structured error,
//! never a panic.

use adacomm_bench::server::protocol::{
    encode_request, encode_response, parse_request, parse_response, Command, ErrorKind, Request,
    Response, ResponseBody, RunRequest, RunStats, StatsBody, MAX_WIRE_INT,
};
use proptest::prelude::*;

/// Finite f64 via raw bits; non-finite patterns (which the wire format
/// rejects by design) collapse to an ordinary value.
fn any_finite() -> impl Strategy<Value = f64> {
    prop_oneof![
        (0u64..u64::MAX)
            .prop_map(|bits| {
                let f = f64::from_bits(bits);
                if f.is_finite() {
                    f
                } else {
                    -1234.5678e-9
                }
            })
            .boxed(),
        proptest::Just(0.0f64).boxed(),
        proptest::Just(-0.0f64).boxed(),
        proptest::Just(1e300f64).boxed(),
        proptest::Just(f64::MIN_POSITIVE).boxed(),
    ]
}

/// Names exercising escaping: plain ASCII, empty, embedded quotes,
/// backslashes, control characters, and multibyte unicode.
fn any_name() -> impl Strategy<Value = String> {
    prop_oneof![
        proptest::collection::vec(0u8..26, 0..24)
            .prop_map(|v| v.iter().map(|b| (b'a' + b) as char).collect())
            .boxed(),
        proptest::Just(String::new()).boxed(),
        proptest::Just("fig09 \"vgg\" τ→∞ \\ / \u{1}".to_string()).boxed(),
        proptest::Just("line\nbreak\ttab\rret".to_string()).boxed(),
    ]
}

fn any_id() -> impl Strategy<Value = Option<u64>> {
    prop_oneof![
        proptest::Just(None).boxed(),
        (0u64..MAX_WIRE_INT).prop_map(Some).boxed(),
    ]
}

fn any_bool() -> impl Strategy<Value = bool> {
    (0u8..2).prop_map(|b| b == 1)
}

fn any_run_request() -> impl Strategy<Value = RunRequest> {
    (
        (any_name(), any_name(), 0u64..10_000),
        (
            prop_oneof![
                proptest::Just(None).boxed(),
                (any_finite(), any_finite()).prop_map(Some).boxed(),
            ],
            prop_oneof![
                proptest::Just(None).boxed(),
                (0u64..MAX_WIRE_INT).prop_map(Some).boxed(),
            ],
            any_bool(),
        ),
    )
        .prop_map(
            |((scenario, scheduler, tau), (budget, deadline_ms, panic))| RunRequest {
                scenario,
                scheduler,
                tau,
                budget,
                deadline_ms,
                panic,
            },
        )
}

fn any_command() -> impl Strategy<Value = Command> {
    prop_oneof![
        proptest::Just(Command::Ping).boxed(),
        proptest::Just(Command::Stats).boxed(),
        proptest::Just(Command::Shutdown).boxed(),
        any_name().prop_map(|name| Command::Figure { name }).boxed(),
        any_run_request().prop_map(Command::Run).boxed(),
    ]
}

fn any_stats() -> impl Strategy<Value = StatsBody> {
    (
        (0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 40),
        (0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 40, any_bool()),
        (0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 40),
    )
        .prop_map(
            |(
                (requests, shed, dedup_hits, deadline_misses),
                (request_panics, unique_runs, queue_depth, draining),
                (recovered_runs, journal_replays, gc_orphans),
            )| StatsBody {
                requests,
                shed,
                dedup_hits,
                deadline_misses,
                request_panics,
                unique_runs,
                queue_depth,
                draining,
                recovered_runs,
                journal_replays,
                gc_orphans,
            },
        )
}

fn any_kind() -> impl Strategy<Value = ErrorKind> {
    prop_oneof![
        proptest::Just(ErrorKind::BadRequest).boxed(),
        proptest::Just(ErrorKind::Overloaded).boxed(),
        proptest::Just(ErrorKind::Deadline).boxed(),
        proptest::Just(ErrorKind::Draining).boxed(),
        proptest::Just(ErrorKind::Panic).boxed(),
        proptest::Just(ErrorKind::Failed).boxed(),
    ]
}

fn any_body() -> impl Strategy<Value = ResponseBody> {
    prop_oneof![
        proptest::Just(ResponseBody::Pong).boxed(),
        proptest::Just(ResponseBody::ShuttingDown).boxed(),
        any_stats().prop_map(ResponseBody::Stats).boxed(),
        (any_name(), any_finite())
            .prop_map(|(name, wall_ms)| ResponseBody::Figure { name, wall_ms })
            .boxed(),
        (
            any_name(),
            0u64..1 << 40,
            0u64..1 << 40,
            any_finite(),
            any_finite()
        )
            .prop_map(|(source, rounds, points, final_loss, wall_ms)| {
                ResponseBody::Run(RunStats {
                    source,
                    rounds,
                    points,
                    final_loss,
                    wall_ms,
                })
            })
            .boxed(),
        (any_kind(), any_name())
            .prop_map(|(kind, message)| ResponseBody::Error { kind, message })
            .boxed(),
    ]
}

proptest! {
    // Any request — unicode names, quotes, newlines, any finite budget
    // floats — round-trips exactly through its single-line encoding.
    #[test]
    fn request_roundtrips(id in any_id(), cmd in any_command()) {
        let request = Request { id, cmd };
        let line = encode_request(&request);
        prop_assert!(!line.contains('\n'), "a request must encode to one line");
        let back = parse_request(&line)
            .unwrap_or_else(|(_, e)| panic!("own encoding rejected ({e}): {line}"));
        prop_assert_eq!(back, request);
    }

    // Any response round-trips exactly, including exact f64 values.
    #[test]
    fn response_roundtrips(id in any_id(), body in any_body()) {
        let response = Response { id, body };
        let line = encode_response(&response);
        prop_assert!(!line.contains('\n'), "a response must encode to one line");
        let back = parse_response(&line)
            .unwrap_or_else(|e| panic!("own encoding rejected ({e}): {line}"));
        prop_assert_eq!(back, response);
    }

    // Any strict prefix of a valid request line is an error (truncated
    // JSON), never a panic and never a silent partial parse.
    #[test]
    fn truncated_requests_error(id in any_id(), cmd in any_command(), frac in 0.0f64..1.0) {
        let line = encode_request(&Request { id, cmd });
        let mut cut = (((line.len() as f64) * frac) as usize).min(line.len() - 1);
        // Cutting mid-UTF-8 isn't a valid &str; step back to a boundary.
        while !line.is_char_boundary(cut) {
            cut -= 1;
        }
        prop_assert!(parse_request(&line[..cut]).is_err());
    }

    // Arbitrary byte soup never panics either parser.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(0u16..256, 0..512)) {
        let raw: Vec<u8> = bytes.iter().map(|&b| b as u8).collect();
        let text = String::from_utf8_lossy(&raw);
        let _ = parse_request(&text);
        let _ = parse_response(&text);
    }
}

/// A hand-written corpus of structurally plausible but invalid lines:
/// each must produce `Err`, and `parse_request` must still recover the
/// `id` whenever one is legible (so the error response can correlate).
#[test]
fn malformed_request_corpus() {
    let cases: &[(&str, Option<u64>)] = &[
        ("", None),
        ("   ", None),
        ("not json", None),
        ("42", None),
        ("[]", None),
        ("null", None),
        ("{}", None),
        ("{\"id\":3}", Some(3)),
        ("{\"id\":3,\"cmd\":7}", Some(3)),
        ("{\"id\":3,\"cmd\":\"warp\"}", Some(3)),
        ("{\"id\":-1,\"cmd\":\"ping\"}", None),
        ("{\"id\":1.5,\"cmd\":\"ping\"}", None),
        ("{\"id\":1e30,\"cmd\":\"ping\"}", None),
        ("{\"id\":\"x\",\"cmd\":\"ping\"}", None),
        ("{\"id\":4,\"cmd\":\"figure\"}", Some(4)),
        ("{\"id\":4,\"cmd\":\"figure\",\"name\":9}", Some(4)),
        ("{\"id\":5,\"cmd\":\"run\"}", Some(5)),
        ("{\"id\":5,\"cmd\":\"run\",\"scenario\":1}", Some(5)),
        (
            "{\"id\":5,\"cmd\":\"run\",\"scenario\":\"concept\",\"scheduler\":2}",
            Some(5),
        ),
        (
            "{\"id\":5,\"cmd\":\"run\",\"scenario\":\"concept\",\"tau\":-2}",
            Some(5),
        ),
        (
            "{\"id\":5,\"cmd\":\"run\",\"scenario\":\"concept\",\"tau\":2.5}",
            Some(5),
        ),
        (
            "{\"id\":5,\"cmd\":\"run\",\"scenario\":\"concept\",\"total_secs\":1}",
            Some(5),
        ),
        (
            "{\"id\":5,\"cmd\":\"run\",\"scenario\":\"concept\",\"record_secs\":1}",
            Some(5),
        ),
        (
            "{\"id\":5,\"cmd\":\"run\",\"scenario\":\"concept\",\"deadline_ms\":0.5}",
            Some(5),
        ),
        (
            "{\"id\":5,\"cmd\":\"run\",\"scenario\":\"concept\",\"panic\":\"yes\"}",
            Some(5),
        ),
        ("{\"id\":6,\"cmd\":\"pi", None),
        ("{\"id\":6,\"cmd\":\"ping\"", None),
        ("\u{0}\u{1}\u{2}", None),
    ];
    for (line, expect_id) in cases {
        match parse_request(line) {
            Ok(request) => panic!("accepted malformed line {line:?} as {request:?}"),
            Err((id, reason)) => {
                assert_eq!(id, *expect_id, "recovered id for {line:?} ({reason})");
                assert!(!reason.is_empty());
            }
        }
    }
}

#[test]
fn malformed_response_corpus() {
    for line in [
        "",
        "not json",
        "{}",
        "{\"id\":1}",
        "{\"id\":1,\"ok\":\"yes\"}",
        "{\"id\":1,\"ok\":true}",
        "{\"id\":1,\"ok\":true,\"result\":\"mystery\"}",
        "{\"id\":1,\"ok\":true,\"result\":\"run\",\"source\":\"memory\"}",
        "{\"id\":1,\"ok\":true,\"result\":\"stats\",\"requests\":1}",
        "{\"id\":1,\"ok\":false}",
        "{\"id\":1,\"ok\":false,\"kind\":\"weird\",\"message\":\"m\"}",
        "{\"id\":1,\"ok\":false,\"kind\":\"panic\"}",
    ] {
        assert!(
            parse_response(line).is_err(),
            "accepted malformed response {line:?}"
        );
    }
}

/// A line far beyond any real request (a 256 KiB name) parses without
/// panic; deeply repeated garbage errs cleanly. Lines past 1 MiB never
/// reach the parser at all — the server's read cap discards them and
/// answers `bad_request` — so this bounds the parser's work inside the
/// cap, not beyond it.
#[test]
fn huge_lines_are_handled() {
    let huge_name = "x".repeat(256 << 10);
    let line = format!("{{\"id\":1,\"cmd\":\"figure\",\"name\":\"{huge_name}\"}}");
    match parse_request(&line) {
        Ok(Request {
            cmd: Command::Figure { name },
            ..
        }) => assert_eq!(name.len(), huge_name.len()),
        other => panic!("huge valid line misparsed: {other:?}"),
    }
    let garbage = "{".repeat(256 << 10);
    assert!(parse_request(&garbage).is_err());
}
