//! Seeded failpoint sweeps against the persistent run store: every
//! injected fault the `adacomm_bench::failpoint` registry can aim at the
//! store's write path — I/O errors, CRC flips, torn writes, orphaned
//! temp files, failed renames, transient unreadable loads — must degrade
//! to a structured outcome (`Rejected`/`Absent`/`Err`), never a panic
//! and never a silently wrong trace. This is the store half of the
//! crash-consistency contract: BENCH_10's drill asserts the same
//! property end-to-end through the daemon.
//!
//! Failpoint state is process-global, so every test here serializes on
//! one mutex and disarms on entry and exit.

use adacomm_bench::sweep::{LrSpec, ScenarioSpec, SchedulerSpec, SweepEngine, SweepSpec};
use adacomm_bench::{failpoint, CancellableRun, LoadOutcome, ParkedOutcome, RunStore};
use pasgd_sim::RunTrace;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Duration;

/// Serializes tests in this binary: the failpoint registry is global.
static SERIAL: Mutex<()> = Mutex::new(());

fn store_dir(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(format!("store_failpoints_{name}"));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// The cheapest real run the scenario registry offers.
fn spec(tau: usize) -> SweepSpec {
    SweepSpec::new(
        ScenarioSpec::Concept,
        SchedulerSpec::Fixed { tau },
        LrSpec::Fixed,
    )
    .with_budget(20.0, 5.0)
}

fn trace_bits(t: &RunTrace) -> Vec<u64> {
    let mut v = vec![t.peak_payload_bytes.to_bits(), t.rounds];
    for p in &t.points {
        v.extend([
            p.clock.to_bits(),
            p.iterations,
            p.epoch.to_bits(),
            u64::from(p.train_loss.to_bits()),
            p.test_accuracy.to_bits(),
            p.tau as u64,
            u64::from(p.lr.to_bits()),
            p.comm_bytes.to_bits(),
        ]);
    }
    v
}

/// Computes the golden trace once, in a pristine store with no
/// failpoints armed.
fn golden(dir: &Path, s: &SweepSpec) -> RunTrace {
    let engine = SweepEngine::with_parallelism(false).with_store(RunStore::new(dir));
    engine.run(std::slice::from_ref(s)).remove(0)
}

/// The seeded sweep ISSUE's acceptance criterion asks for: >= 20 distinct
/// store-layer failpoint activations, zero corrupted cache loads.
///
/// Each activation arms one site with one (skip, count) schedule, drives
/// a save + load + re-save cycle through it, and asserts the load
/// outcome is structured — a bit-identical `Hit`, an honest `Absent`, or
/// a `Rejected` with a reason — and that a clean re-save always heals
/// the entry back to a bit-identical hit.
#[test]
fn seeded_failpoint_sweep_yields_zero_corrupted_loads() {
    let _serial = SERIAL.lock().unwrap();
    failpoint::disarm_all();

    let s = spec(2);
    let key = s.key();
    let golden_dir = store_dir("sweep_golden");
    let reference = golden(&golden_dir, &s);

    let save_sites = [
        "store.save.io_error",
        "store.save.corrupt",
        "store.save.torn",
        "store.save.orphan_tmp",
        "store.save.rename_fail",
    ];
    let mut activations: Vec<(&str, u32, u32)> = Vec::new();
    for site in save_sites {
        for skip in [0u32, 1] {
            for count in [1u32, 2] {
                activations.push((site, skip, count));
            }
        }
    }
    activations.push(("store.load.unreadable", 0, 1));
    activations.push(("store.load.unreadable", 0, 3));
    assert!(
        activations.len() >= 20,
        "acceptance floor: got {}",
        activations.len()
    );

    let mut corrupted_loads = 0u64;
    let mut rejects = 0u64;
    for (i, (site, skip, count)) in activations.iter().enumerate() {
        let dir = store_dir(&format!("sweep_{i}"));
        let store = RunStore::new(&dir);
        failpoint::arm_after(site, *skip, *count);

        // The armed save may fail or may plant a damaged frame; both are
        // legitimate. What is never legitimate is a wrong load.
        let first_save = store.save(&key, &reference);
        for _ in 0..3 {
            match store.load(&key) {
                LoadOutcome::Hit(trace) => {
                    if trace_bits(&trace) != trace_bits(&reference) {
                        corrupted_loads += 1;
                    }
                }
                LoadOutcome::Absent => {}
                LoadOutcome::Rejected(reason) => {
                    assert!(!reason.is_empty(), "rejects must carry a reason");
                    rejects += 1;
                    store.evict(&key);
                }
            }
        }
        failpoint::disarm_all();

        // An orphaned temp file is exactly what startup GC reclaims.
        if *site == "store.save.orphan_tmp" && first_save.is_err() {
            let gc = store.gc(Duration::from_secs(0));
            assert!(
                gc.tmp_removed >= 1,
                "activation {i}: orphaned tmp must be GC debris"
            );
        }

        // Healing: with the site disarmed, a clean save must round-trip
        // bit-identically no matter what the fault left behind.
        store.save(&key, &reference).expect("clean save succeeds");
        match store.load(&key) {
            LoadOutcome::Hit(trace) => {
                assert_eq!(
                    trace_bits(&trace),
                    trace_bits(&reference),
                    "activation {i} ({site} skip {skip} count {count}): healed entry differs"
                );
            }
            other => panic!("activation {i}: healed load must hit, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }
    assert_eq!(
        corrupted_loads, 0,
        "no activation may ever serve wrong trace bytes"
    );
    assert!(rejects > 0, "the sweep must actually exercise reject paths");
    let _ = fs::remove_dir_all(&golden_dir);
}

/// Failpoint-injected torn writes plus a brute-force truncation/bit-flip
/// corpus over the resulting frame: every damaged frame must load as a
/// structured reject (or an honest absent after eviction), never a panic
/// and never foreign data.
#[test]
fn torn_write_corpus_loads_as_structured_rejects() {
    let _serial = SERIAL.lock().unwrap();
    failpoint::disarm_all();

    let s = spec(3);
    let key = s.key();
    let dir = store_dir("torn_corpus");
    let store = RunStore::new(&dir);
    let reference = golden(&dir, &s);
    let path = store.entry_path(&key);

    // Failpoint-injected tear: the frame on disk is a prefix.
    failpoint::arm("store.save.torn", 1);
    store
        .save(&key, &reference)
        .expect("a torn save reports success — that is the fault model");
    failpoint::disarm_all();
    match store.load(&key) {
        LoadOutcome::Rejected(reason) => {
            assert!(!reason.is_empty(), "torn frame must explain its reject")
        }
        other => panic!("torn frame must reject, got {other:?}"),
    }

    // Restore a whole frame, then grind a corpus out of it: every
    // truncation length (step 7 for speed) and a bit flip at every 7th
    // byte. CRC + field validation must catch each one.
    store.save(&key, &reference).expect("clean save");
    let whole = fs::read(&path).expect("read whole frame");
    let mut cases = 0u64;
    for cut in (0..whole.len()).step_by(7) {
        fs::write(&path, &whole[..cut]).expect("write truncation");
        match store.load(&key) {
            LoadOutcome::Rejected(_) => cases += 1,
            LoadOutcome::Absent => cases += 1,
            LoadOutcome::Hit(_) => panic!("truncation at {cut} bytes loaded as a hit"),
        }
    }
    for byte in (0..whole.len()).step_by(7) {
        let mut flipped = whole.clone();
        flipped[byte] ^= 0x10;
        fs::write(&path, &flipped).expect("write flip");
        match store.load(&key) {
            LoadOutcome::Rejected(_) => cases += 1,
            LoadOutcome::Absent => cases += 1,
            LoadOutcome::Hit(trace) => {
                // A flip the validators cannot see must still decode to
                // the identical bytes — otherwise the frame lied.
                assert_eq!(
                    trace_bits(&trace),
                    trace_bits(&reference),
                    "flip at byte {byte} decoded to different data"
                );
            }
        }
    }
    assert!(cases > 20, "corpus must exercise many damaged frames");
    let _ = fs::remove_dir_all(&dir);
}

/// Park-path failpoints: a failed park write keeps the cancellation
/// clean (no parked frame), and a torn parked frame loads as a
/// structured reject that unparks to absent.
#[test]
fn park_failpoints_degrade_to_clean_cancellation_and_rejects() {
    let _serial = SERIAL.lock().unwrap();
    failpoint::disarm_all();

    let s = spec(5);
    let key = s.key();

    // park I/O error: the cancel still reports cleanly, nothing parked.
    let dir = store_dir("park_io");
    let engine = SweepEngine::with_parallelism(false).with_store(RunStore::new(&dir));
    failpoint::arm("store.park.io_error", 1);
    let outcome = engine
        .try_trace_cancellable(&s, Some(&|| true))
        .expect("cancellable run never fails");
    failpoint::disarm_all();
    assert!(matches!(outcome, CancellableRun::Cancelled));
    assert!(matches!(
        RunStore::new(&dir).load_parked(&key),
        ParkedOutcome::Absent
    ));
    let _ = fs::remove_dir_all(&dir);

    // park torn write: a frame exists but must reject, never panic.
    let dir = store_dir("park_torn");
    let engine = SweepEngine::with_parallelism(false).with_store(RunStore::new(&dir));
    failpoint::arm("store.park.torn", 1);
    let outcome = engine
        .try_trace_cancellable(&s, Some(&|| true))
        .expect("cancellable run never fails");
    failpoint::disarm_all();
    assert!(matches!(outcome, CancellableRun::Cancelled));
    let store = RunStore::new(&dir);
    match store.load_parked(&key) {
        ParkedOutcome::Rejected(reason) => {
            assert!(!reason.is_empty(), "torn park must explain its reject")
        }
        other => panic!("torn parked frame must reject, got {other:?}"),
    }
    store.unpark(&key);
    assert!(matches!(store.load_parked(&key), ParkedOutcome::Absent));

    // And the run is still perfectly recoverable: a fresh request
    // recomputes the full trace.
    match engine
        .try_trace_cancellable(&s, None)
        .expect("fresh run succeeds")
    {
        CancellableRun::Done { trace, .. } => assert!(!trace.points.is_empty()),
        CancellableRun::Cancelled => panic!("no stop predicate, cannot cancel"),
    }
    let _ = fs::remove_dir_all(&dir);
}
