//! Determinism guarantees of the sweep engine.
//!
//! 1. **Parallel ≡ sequential**: one panel of runs executed by the
//!    run-parallel engine is bit-identical (every `RunTrace`, every float)
//!    to the same specs executed strictly one after another. This is the
//!    property that makes `reproduce_all`'s parallel CSVs trustworthy.
//! 2. **Golden fixture**: the engine path's results are pinned bit-exactly
//!    against a committed fixture (loss/clock bits per run), extending the
//!    simulator's golden-trace regression test to cover the sweep engine.
//!    Regenerate after an intentional math change with
//!    `ADACOMM_REGEN_GOLDEN=1 cargo test -p adacomm-bench --test
//!    sweep_determinism`.
//!
//! The pool is pinned to four workers so run-level parallelism is real
//! even on single-core CI machines (nested joins execute on the
//! re-entrant pool).

use adacomm_bench::{LrSpec, ScenarioSpec, SchedulerSpec, SweepEngine, SweepSpec};
use pasgd_sim::RunTrace;
use std::fmt::Write as _;

const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/sweep_engine_golden.txt"
);

/// Pins the pool size before first use (each integration-test file is its
/// own process, so this reliably precedes pool creation).
fn four_worker_pool() {
    std::env::set_var("RAYON_NUM_THREADS", "4");
}

/// A small but non-trivial panel: sync, two fixed periods, AdaComm —
/// enough runs to actually overlap on a four-thread pool, with nested
/// worker fan-out and chunked evaluation inside each run.
fn panel() -> Vec<SweepSpec> {
    let mut specs: Vec<SweepSpec> = [1usize, 4, 16]
        .into_iter()
        .map(|tau| {
            SweepSpec::new(
                ScenarioSpec::Concept,
                SchedulerSpec::Fixed { tau },
                LrSpec::Fixed,
            )
            .with_budget(60.0, 12.0)
        })
        .collect();
    specs.push(
        SweepSpec::new(
            ScenarioSpec::Concept,
            SchedulerSpec::adacomm(16),
            LrSpec::Fixed,
        )
        .with_budget(60.0, 12.0),
    );
    specs
}

#[test]
fn parallel_engine_is_bit_identical_to_sequential() {
    four_worker_pool();
    let specs = panel();
    let sequential = SweepEngine::with_parallelism(false).run(&specs);
    let parallel = SweepEngine::with_parallelism(true).run(&specs);
    assert_eq!(sequential.len(), parallel.len());
    for (s, p) in sequential.iter().zip(&parallel) {
        assert_eq!(s.name, p.name);
        assert_eq!(
            s, p,
            "run {} diverged between sequential and parallel execution",
            s.name
        );
    }
}

#[test]
fn engine_results_match_golden_fixture() {
    four_worker_pool();
    let traces: Vec<RunTrace> = SweepEngine::new().run(&panel());
    let mut got = String::new();
    let _ = writeln!(got, "# run,point,clock_f64_bits,train_loss_f32_bits");
    for trace in &traces {
        for (i, p) in trace.points.iter().enumerate() {
            let _ = writeln!(
                got,
                "{},{i},{:016x},{:08x}",
                trace.name,
                p.clock.to_bits(),
                p.train_loss.to_bits()
            );
        }
    }
    if std::env::var("ADACOMM_REGEN_GOLDEN").is_ok() {
        std::fs::create_dir_all(
            std::path::Path::new(FIXTURE)
                .parent()
                .expect("fixture has a parent dir"),
        )
        .expect("create fixtures dir");
        std::fs::write(FIXTURE, &got).expect("write engine golden fixture");
        eprintln!("regenerated {FIXTURE}");
        return;
    }
    let expected = std::fs::read_to_string(FIXTURE).unwrap_or_else(|e| {
        panic!(
            "missing engine golden fixture {FIXTURE} ({e}); \
             run with ADACOMM_REGEN_GOLDEN=1 to create it"
        )
    });
    for (i, (g, w)) in got.lines().zip(expected.lines()).enumerate() {
        assert_eq!(g, w, "engine golden trace diverged at line {i}");
    }
    assert_eq!(
        got.lines().count(),
        expected.lines().count(),
        "engine golden trace length changed"
    );
}

#[test]
fn cross_figure_requests_hit_the_cache() {
    four_worker_pool();
    let engine = SweepEngine::new();
    let first = engine.run(&panel());
    let ran = engine.unique_runs();
    // A second figure asking for an overlapping panel re-uses every run.
    let second = engine.run(&panel()[1..3]);
    assert_eq!(engine.unique_runs(), ran, "no new simulations");
    assert_eq!(first[1], second[0]);
    assert_eq!(first[2], second[1]);
}
