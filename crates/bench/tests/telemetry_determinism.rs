//! The telemetry registry's merge order is structural (sorted names,
//! integer accumulation), so the deterministic slice of a snapshot —
//! counters, histogram counts/buckets/sums, span activation counts —
//! must be identical whether the instrumented work ran on a one-thread
//! pool or a four-thread pool.
//!
//! The worker pool shim sizes itself from `RAYON_NUM_THREADS` exactly
//! once per process, so the test re-executes its own binary twice as a
//! worker (pool of 1, then pool of 4), has each worker print the
//! deterministic view of its snapshot delta, and compares the two
//! line-for-line.

use adacomm_bench::figures::registry;
use adacomm_bench::sweep::SweepEngine;
use adacomm_bench::Scale;

const WORKER_ENV: &str = "TELEMETRY_DETERMINISM_WORKER";
const VIEW_BEGIN: &str = "TELEMETRY-VIEW-BEGIN";
const VIEW_END: &str = "TELEMETRY-VIEW-END";

/// The thread-count-invariant projection of a snapshot delta: everything
/// except wall-clock durations (span/kernel seconds, the `sweep.run_secs`
/// histogram) and point-in-time gauges.
fn deterministic_view(delta: &telemetry::Snapshot) -> Vec<String> {
    let mut view = Vec::new();
    for (name, value) in &delta.counters {
        view.push(format!("counter {name} = {value}"));
    }
    for hist in &delta.hists {
        if hist.name.starts_with("sim.") {
            view.push(format!(
                "hist {} count {} sum_micros {} buckets {:?}",
                hist.name, hist.count, hist.sum_micros, hist.buckets
            ));
        }
    }
    for span in &delta.spans {
        // The engine's scenario cache is check-compute-insert (it never
        // blocks), so racing threads may build the same scenario more
        // than once — that span's activation count is legitimately
        // thread-count-dependent.
        if span.name == "phase.scenario_build" {
            continue;
        }
        view.push(format!("span {} count {}", span.name, span.count));
    }
    view
}

/// Runs the fixed smoke workload (Figure 9's declared sweep specs) on a
/// fresh run-parallel engine and prints the deterministic view between
/// markers. Pool size comes from `RAYON_NUM_THREADS`.
fn run_worker() {
    let figure = registry()
        .into_iter()
        .find(|f| f.name == "fig09_vgg_adacomm")
        .expect("fig09 is registered");
    let specs = (figure.specs)(Scale::Smoke);
    assert!(!specs.is_empty(), "fig09 declares sweep specs");

    let before = telemetry::snapshot();
    let engine = SweepEngine::with_parallelism(true);
    let _ = engine.run(&specs);
    let delta = telemetry::snapshot().delta_since(&before);

    println!("{VIEW_BEGIN}");
    for line in deterministic_view(&delta) {
        println!("{line}");
    }
    println!("{VIEW_END}");
}

/// Re-runs this test binary in worker mode on a pool of `threads` and
/// returns the deterministic view it printed.
fn child_view(threads: usize) -> Vec<String> {
    let exe = std::env::current_exe().expect("test binary path");
    let output = std::process::Command::new(exe)
        .args([
            "snapshot_delta_is_identical_across_thread_counts",
            "--exact",
            "--nocapture",
        ])
        .env(WORKER_ENV, "1")
        .env("RAYON_NUM_THREADS", threads.to_string())
        .output()
        .expect("spawn worker process");
    assert!(
        output.status.success(),
        "worker with {threads} thread(s) failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    let mut view = Vec::new();
    let mut inside = false;
    // libtest's unflushed `test name ... ` prefix can share a line with
    // the first marker, so markers are matched by containment.
    for line in stdout.lines() {
        if line.contains(VIEW_BEGIN) {
            inside = true;
        } else if line.contains(VIEW_END) {
            inside = false;
        } else if inside {
            view.push(line.to_string());
        }
    }
    assert!(
        !view.is_empty(),
        "worker with {threads} thread(s) printed no view:\n{stdout}"
    );
    view
}

#[test]
fn snapshot_delta_is_identical_across_thread_counts() {
    if !telemetry::is_enabled() {
        return;
    }
    if std::env::var_os(WORKER_ENV).is_some() {
        run_worker();
        return;
    }
    let one = child_view(1);
    let four = child_view(4);
    assert_eq!(
        one, four,
        "telemetry snapshot delta depends on pool thread count"
    );
}
