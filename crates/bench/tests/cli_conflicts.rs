//! CLI argument-conflict contracts: flag combinations that would produce
//! misleading output must fail fast with exit code 2 (usage error), not
//! degrade silently.

use std::process::Command;

/// `--trace` + `--parallel` is a hard error: tracing requires the
/// sequential engine so each telemetry profile is attributable to
/// exactly one figure. Exit code 2, conflict named on stderr, and no
/// figures computed.
#[test]
fn reproduce_all_rejects_trace_plus_parallel() {
    let trace_dir =
        std::env::temp_dir().join(format!("adacomm-cli-conflict-{}-trace", std::process::id()));
    let output = Command::new(env!("CARGO_BIN_EXE_reproduce_all"))
        .args(["--smoke", "--trace"])
        .arg(&trace_dir)
        .args(["--parallel", "--no-cache"])
        .output()
        .expect("run reproduce_all");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert_eq!(
        output.status.code(),
        Some(2),
        "usage-error exit code; stderr: {stderr}"
    );
    assert!(
        stderr.contains("--trace and --parallel conflict"),
        "stderr must name the conflict: {stderr}"
    );
    assert!(
        !trace_dir.exists(),
        "the conflict must abort before any trace output is written"
    );
}

/// `--trace` without its directory argument is the same class of error.
#[test]
fn reproduce_all_rejects_trace_without_dir() {
    let output = Command::new(env!("CARGO_BIN_EXE_reproduce_all"))
        .args(["--smoke", "--trace", "--sequential"])
        .output()
        .expect("run reproduce_all");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert_eq!(output.status.code(), Some(2), "stderr: {stderr}");
    assert!(stderr.contains("requires a directory"), "stderr: {stderr}");
}
