//! The interval-based experiment driver: wall-clock intervals of length
//! `T0`, scheduler consultation at each boundary, learning-rate schedules,
//! and trace recording.

use crate::checkpoint::RunCheckpoint;
use crate::{ClusterConfig, FaultConfig, MomentumMode, PasgdCluster};
use adacomm::{CommSchedule, LrSchedule, ScheduleContext};
use data::TrainTestSplit;
use delay::RuntimeModel;
use gradcomp::CodecSpec;
use nn::Network;

/// One recorded point of a training run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracePoint {
    /// Simulated wall-clock time in seconds.
    pub clock: f64,
    /// Local iterations per worker completed so far.
    pub iterations: u64,
    /// Epochs of the global dataset processed.
    pub epoch: f64,
    /// Training loss of the synchronized model (evaluation subset).
    pub train_loss: f32,
    /// Test accuracy of the synchronized model.
    pub test_accuracy: f64,
    /// Communication period in effect when the point was recorded.
    pub tau: usize,
    /// Learning rate in effect.
    pub lr: f32,
    /// Cumulative per-worker communication payload in bytes (grows by one
    /// encoded message per averaging round; see
    /// [`PasgdCluster::comm_bytes`]).
    pub comm_bytes: f64,
}

/// A complete training trace for one method.
#[derive(Debug, Clone, PartialEq)]
pub struct RunTrace {
    /// Scheduler name (e.g. `"adacomm"`, `"tau=20"`, `"sync-sgd"`).
    pub name: String,
    /// Recorded points, in time order (first point is at `t = 0`).
    pub points: Vec<TracePoint>,
    /// Largest per-worker encoded message transmitted in any single
    /// averaging round of the run (see
    /// [`PasgdCluster::peak_payload_bytes`]).
    pub peak_payload_bytes: f64,
    /// Total averaging rounds completed over the run.
    pub rounds: u64,
}

impl RunTrace {
    /// Final training loss.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    pub fn final_loss(&self) -> f32 {
        self.points.last().expect("non-empty trace").train_loss
    }

    /// Best (highest) test accuracy over the run — the paper's Table 1
    /// metric ("we report the best accuracy within a time budget").
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    pub fn best_test_accuracy(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.test_accuracy)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// First wall-clock time at which the training loss reached `target`,
    /// or `None` if it never did. This is the paper's "X minutes to reach
    /// loss Y" speed-up metric.
    pub fn time_to_loss(&self, target: f32) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.train_loss <= target)
            .map(|p| p.clock)
    }

    /// The sequence of `(clock, tau)` pairs — the communication-period
    /// trace plotted under every figure.
    pub fn tau_trace(&self) -> Vec<(f64, usize)> {
        self.points.iter().map(|p| (p.clock, p.tau)).collect()
    }

    /// Minimum training loss seen over the run.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    pub fn min_loss(&self) -> f32 {
        self.points
            .iter()
            .map(|p| p.train_loss)
            .fold(f32::INFINITY, f32::min)
    }
}

/// Configuration of an interval-driven experiment.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Interval length `T0` in simulated seconds (paper: 60 s).
    pub interval_secs: f64,
    /// Total simulated training budget in seconds.
    pub total_secs: f64,
    /// Record a trace point roughly every this many simulated seconds.
    pub record_every_secs: f64,
    /// Apply the paper's "decay τ to 1 before decaying η" gating
    /// (Section 4.3.2). Only meaningful with a non-constant [`LrSchedule`].
    pub gate_lr_on_tau: bool,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            interval_secs: 60.0,
            total_secs: 600.0,
            record_every_secs: 10.0,
            gate_lr_on_tau: true,
        }
    }
}

/// Drives a [`PasgdCluster`] under a communication scheduler and a
/// learning-rate schedule, producing a [`RunTrace`].
///
/// This is the top-level API the examples and every figure harness use.
///
/// # Example
///
/// ```
/// use pasgd_sim::{run_experiment, ClusterConfig, ExperimentConfig};
/// use adacomm::{FixedComm, LrSchedule};
/// use data::GaussianMixture;
/// use delay::{CommModel, DelayDistribution, RuntimeModel};
/// use nn::models;
///
/// let split = GaussianMixture::small_test().generate(1);
/// let runtime = RuntimeModel::new(
///     DelayDistribution::constant(0.1),
///     CommModel::constant(0.05),
///     2,
/// );
/// let trace = run_experiment(
///     models::mlp_classifier(8, &[16], 3, 0),
///     split,
///     runtime,
///     ClusterConfig { workers: 2, batch_size: 8, ..ClusterConfig::default() },
///     &mut FixedComm::new(4),
///     &LrSchedule::constant(0.05),
///     &ExperimentConfig {
///         interval_secs: 5.0,
///         total_secs: 20.0,
///         record_every_secs: 2.0,
///         gate_lr_on_tau: false,
///     },
/// );
/// assert!(trace.points.len() > 2);
/// assert!(trace.final_loss() < trace.points[0].train_loss);
/// ```
#[allow(clippy::too_many_arguments)]
pub fn run_experiment(
    model: Network,
    split: TrainTestSplit,
    runtime: RuntimeModel,
    cluster_config: ClusterConfig,
    scheduler: &mut dyn CommSchedule,
    lr_schedule: &LrSchedule,
    config: &ExperimentConfig,
) -> RunTrace {
    match run_experiment_resumable(
        model,
        split,
        runtime,
        cluster_config,
        scheduler,
        lr_schedule,
        config,
        None,
        None,
    )
    .expect("a fresh run has no checkpoint to reject")
    {
        RunOutcome::Completed(trace) => trace,
        RunOutcome::Checkpointed(_) => unreachable!("no round limit was requested"),
    }
}

/// Emits one enriched `"point"` JSONL event to the telemetry sink (if one
/// is installed): the recorded [`TracePoint`] plus the cluster's simulated
/// compute/communication time split, which the `TracePoint` wire format
/// deliberately does not carry. The closure is lazy, so with no sink this
/// costs one relaxed atomic load and zero allocation.
fn emit_point_event(scheduler: &dyn CommSchedule, point: &TracePoint, cluster: &PasgdCluster) {
    telemetry::emit(|| {
        let mut obj = telemetry::json::ObjectBuilder::new();
        obj.str_field("type", "point");
        obj.str_field("run", &scheduler.name());
        obj.num_field("clock", point.clock);
        obj.num_field("iterations", point.iterations as f64);
        obj.num_field("epoch", point.epoch);
        obj.num_field("train_loss", f64::from(point.train_loss));
        obj.num_field("test_accuracy", point.test_accuracy);
        obj.num_field("tau", point.tau as f64);
        obj.num_field("lr", f64::from(point.lr));
        obj.num_field("comm_bytes", point.comm_bytes);
        obj.num_field("compute_secs", cluster.compute_time());
        obj.num_field("comm_secs", cluster.comm_time());
        obj.finish()
    });
}

/// How a resumable experiment run ended.
#[derive(Debug, Clone)]
pub enum RunOutcome {
    /// The simulated time budget was exhausted; the full trace follows.
    Completed(RunTrace),
    /// The requested round limit was reached mid-run; the snapshot resumes
    /// the run bit-identically via the `resume` argument of
    /// [`run_experiment_resumable`].
    Checkpointed(Box<RunCheckpoint>),
}

/// [`run_experiment`] with mid-run checkpoint/resume.
///
/// * `resume` — continue from a [`RunCheckpoint`] instead of starting at
///   `t = 0`. The scheduler is `reset()` and fed the checkpoint's exported
///   state, the cluster is rebuilt from the same model/data/seed and then
///   restored, so the continuation is **bit-identical** to the run that
///   produced the checkpoint. The caller must pass the same model, split,
///   runtime and configuration as the original run; structural mismatches
///   are rejected with `Err` (and the run should be recomputed fresh).
/// * `stop_after_rounds` — return [`RunOutcome::Checkpointed`] once the
///   cluster has completed this many averaging rounds **in total** (resumed
///   rounds included), unless the time budget is exhausted first.
///
/// Fresh runs (`resume = None`) never return `Err`.
#[allow(clippy::too_many_arguments)]
pub fn run_experiment_resumable(
    model: Network,
    split: TrainTestSplit,
    runtime: RuntimeModel,
    cluster_config: ClusterConfig,
    scheduler: &mut dyn CommSchedule,
    lr_schedule: &LrSchedule,
    config: &ExperimentConfig,
    resume: Option<&RunCheckpoint>,
    stop_after_rounds: Option<u64>,
) -> Result<RunOutcome, String> {
    run_experiment_cancellable(
        model,
        split,
        runtime,
        cluster_config,
        scheduler,
        lr_schedule,
        config,
        resume,
        stop_after_rounds,
        None,
    )
}

/// [`run_experiment_resumable`] with a cooperative stop predicate.
///
/// `stop` is polled at every averaging-round boundary (the only points
/// where the cluster state is checkpointable); once it returns `true`
/// while simulated time remains, the run returns
/// [`RunOutcome::Checkpointed`] exactly as if a round limit had been hit.
/// The checkpoint resumes bit-identically, so a deadline-cancelled or
/// drain-preempted run loses no work — the predicate only decides *when*
/// the run parks, never *what* it computes. A run whose final round
/// exhausts the budget completes normally even if `stop` fires on the
/// same round.
#[allow(clippy::too_many_arguments)]
pub fn run_experiment_cancellable(
    model: Network,
    split: TrainTestSplit,
    runtime: RuntimeModel,
    cluster_config: ClusterConfig,
    scheduler: &mut dyn CommSchedule,
    lr_schedule: &LrSchedule,
    config: &ExperimentConfig,
    resume: Option<&RunCheckpoint>,
    stop_after_rounds: Option<u64>,
    stop: Option<&(dyn Fn() -> bool + Sync)>,
) -> Result<RunOutcome, String> {
    assert!(
        config.interval_secs > 0.0 && config.total_secs > 0.0,
        "experiment durations must be positive"
    );
    // Root span of a run: its *self* time is the driver-loop and
    // scheduler overhead left over after the compute/codec/average/eval
    // phases inside claim theirs.
    let _run_span = telemetry::span("phase.simulate");
    telemetry::counter("sim.runs").inc();
    let mut cluster = PasgdCluster::new(model, split, runtime, cluster_config);

    let mut points;
    let mut interval;
    let mut last_loss;
    let mut tau;
    let mut next_record;
    let initial_loss;
    let initial_lr;
    if let Some(ck) = resume {
        cluster.restore(&ck.cluster)?;
        if ck.points.is_empty() {
            return Err("checkpoint records no trace points".to_string());
        }
        if ck.tau == 0 {
            return Err("checkpoint has a zero communication period".to_string());
        }
        if !(ck.next_record.is_finite() && ck.next_record > 0.0) {
            return Err(format!("invalid recording deadline {}", ck.next_record));
        }
        scheduler.reset();
        scheduler.import_state(&ck.scheduler);
        points = ck.points.clone();
        interval = ck.interval;
        last_loss = ck.last_loss;
        tau = ck.tau;
        next_record = ck.next_record;
        initial_loss = ck.initial_loss;
        initial_lr = ck.initial_lr;
    } else {
        initial_lr = lr_schedule.initial();
        cluster.set_lr(initial_lr);

        initial_loss = f64::from(cluster.eval_train_loss());
        points = vec![TracePoint {
            clock: 0.0,
            iterations: 0,
            epoch: 0.0,
            train_loss: initial_loss as f32,
            test_accuracy: cluster.eval_test_accuracy(),
            tau: 0,
            lr: initial_lr,
            comm_bytes: 0.0,
        }];

        interval = 0usize;
        last_loss = initial_loss;
        let initial_ctx = ScheduleContext {
            interval_index: 0,
            wall_clock: 0.0,
            current_loss: initial_loss,
            initial_loss,
            current_lr: initial_lr,
            initial_lr,
            degraded_frac: 0.0,
        };
        tau = scheduler.next_tau(&initial_ctx);
        if let Some(codec) = scheduler.codec_override(&initial_ctx) {
            cluster.set_codec(codec);
        }
        points[0].tau = tau;
        next_record = config.record_every_secs;
    }

    while cluster.clock() < config.total_secs {
        // Interval boundary: consult the scheduler with the latest loss.
        let boundary = (interval + 1) as f64 * config.interval_secs;
        if cluster.clock() >= boundary {
            interval = (cluster.clock() / config.interval_secs) as usize;
            // The boundary loss feeds only the scheduler; skip the
            // evaluation forward pass for schedulers that never read it
            // (fixed-τ baselines). `last_loss` then carries the most
            // recent recorded loss, which such schedulers ignore.
            if scheduler.needs_loss() {
                last_loss = f64::from(cluster.eval_train_loss());
            }
            let ctx = ScheduleContext {
                interval_index: interval,
                wall_clock: cluster.clock(),
                current_loss: last_loss,
                initial_loss,
                current_lr: cluster.lr(),
                initial_lr,
                degraded_frac: cluster.degraded_frac(),
            };
            tau = scheduler.next_tau(&ctx);
            if let Some(codec) = scheduler.codec_override(&ctx) {
                cluster.set_codec(codec);
            }
        }

        // Learning-rate schedule (optionally gated on tau reaching 1).
        let epoch = cluster.epochs();
        let lr = if config.gate_lr_on_tau {
            lr_schedule.lr_at_gated(epoch, tau)
        } else {
            lr_schedule.lr_at(epoch)
        };
        if (lr - cluster.lr()).abs() > f32::EPSILON * lr.abs() {
            cluster.set_lr(lr);
        }

        let _ = cluster.run_round(tau);

        if cluster.clock() >= next_record {
            points.push(TracePoint {
                clock: cluster.clock(),
                iterations: cluster.iterations(),
                epoch: cluster.epochs(),
                train_loss: cluster.eval_train_loss(),
                test_accuracy: cluster.eval_test_accuracy(),
                tau,
                lr: cluster.lr(),
                comm_bytes: cluster.comm_bytes(),
            });
            emit_point_event(&*scheduler, points.last().expect("just pushed"), &cluster);
            while next_record <= cluster.clock() {
                next_record += config.record_every_secs;
            }
            last_loss = f64::from(points.last().expect("just pushed").train_loss);
        }

        // Round-boundary checkpoint: only while the budget has time left —
        // a run whose last round exhausted the budget completes normally.
        if cluster.clock() < config.total_secs {
            let limit_hit = stop_after_rounds.is_some_and(|limit| cluster.rounds() >= limit);
            let cancelled = !limit_hit && stop.is_some_and(|s| s());
            if cancelled {
                telemetry::counter("sim.cancelled_runs").inc();
            }
            if limit_hit || cancelled {
                return Ok(RunOutcome::Checkpointed(Box::new(RunCheckpoint {
                    points,
                    interval,
                    last_loss,
                    tau,
                    next_record,
                    initial_loss,
                    initial_lr,
                    scheduler: scheduler.export_state(),
                    cluster: cluster.checkpoint(),
                })));
            }
        }
    }
    // Always record the terminal state.
    points.push(TracePoint {
        clock: cluster.clock(),
        iterations: cluster.iterations(),
        epoch: cluster.epochs(),
        train_loss: cluster.eval_train_loss(),
        test_accuracy: cluster.eval_test_accuracy(),
        tau,
        lr: cluster.lr(),
        comm_bytes: cluster.comm_bytes(),
    });
    emit_point_event(&*scheduler, points.last().expect("just pushed"), &cluster);
    let _ = last_loss;

    Ok(RunOutcome::Completed(RunTrace {
        name: scheduler.name(),
        points,
        peak_payload_bytes: cluster.peak_payload_bytes(),
        rounds: cluster.rounds(),
    }))
}

/// Everything needed to build identical clusters for a family of methods —
/// the comparison harness behind Figures 9–13.
///
/// Each call to [`ExperimentSuite::run`] constructs a fresh cluster from the
/// same model/data/seed so that methods differ *only* in their scheduler,
/// learning-rate schedule and momentum mode.
pub struct ExperimentSuite {
    model: Network,
    split: TrainTestSplit,
    runtime: RuntimeModel,
    cluster_config: ClusterConfig,
    experiment_config: ExperimentConfig,
}

impl ExperimentSuite {
    /// Creates a suite with shared model, data and delay model.
    pub fn new(
        model: Network,
        split: TrainTestSplit,
        runtime: RuntimeModel,
        cluster_config: ClusterConfig,
        experiment_config: ExperimentConfig,
    ) -> Self {
        ExperimentSuite {
            model,
            split,
            runtime,
            cluster_config,
            experiment_config,
        }
    }

    /// Runs one method and returns its trace.
    pub fn run(&self, scheduler: &mut dyn CommSchedule, lr_schedule: &LrSchedule) -> RunTrace {
        self.run_with_options(scheduler, lr_schedule, None, None)
    }

    /// Runs one method with an overridden momentum mode (the momentum
    /// figures give τ = 1 plain momentum but PASGD block momentum).
    pub fn run_with_momentum(
        &self,
        scheduler: &mut dyn CommSchedule,
        lr_schedule: &LrSchedule,
        momentum: MomentumMode,
    ) -> RunTrace {
        self.run_with_options(scheduler, lr_schedule, Some(momentum), None)
    }

    /// Runs one method with a fixed gradient-compression codec applied to
    /// every averaging message (the compression-sweep harness).
    pub fn run_with_codec(
        &self,
        scheduler: &mut dyn CommSchedule,
        lr_schedule: &LrSchedule,
        codec: CodecSpec,
    ) -> RunTrace {
        let mut cluster_config = self.cluster_config.clone();
        cluster_config.codec = codec;
        run_experiment(
            self.model.clone(),
            self.split.clone(),
            self.runtime,
            cluster_config,
            scheduler,
            lr_schedule,
            &self.experiment_config,
        )
    }

    /// Runs one method with optional per-run overrides.
    ///
    /// `gate_lr_on_tau` matters because the paper's "decay τ to 1 before
    /// decaying η" policy (Section 4.3.2) applies to the *adaptive* method;
    /// fixed-τ baselines decay the learning rate at the scheduled epochs
    /// unconditionally.
    pub fn run_with_options(
        &self,
        scheduler: &mut dyn CommSchedule,
        lr_schedule: &LrSchedule,
        momentum: Option<MomentumMode>,
        gate_lr_on_tau: Option<bool>,
    ) -> RunTrace {
        self.run_configured(
            scheduler,
            lr_schedule,
            momentum,
            gate_lr_on_tau,
            None,
            None,
            None,
        )
    }

    /// The fully-general run entry point: every per-run override in one
    /// place. `None` keeps the suite's configured value. This is what the
    /// bench crate's sweep engine calls to execute a declarative
    /// `SweepSpec`; the narrower `run_*` helpers all delegate here.
    #[allow(clippy::too_many_arguments)]
    pub fn run_configured(
        &self,
        scheduler: &mut dyn CommSchedule,
        lr_schedule: &LrSchedule,
        momentum: Option<MomentumMode>,
        gate_lr_on_tau: Option<bool>,
        codec: Option<CodecSpec>,
        budget: Option<(f64, f64)>,
        fault: Option<FaultConfig>,
    ) -> RunTrace {
        match self
            .run_configured_resumable(
                scheduler,
                lr_schedule,
                momentum,
                gate_lr_on_tau,
                codec,
                budget,
                fault,
                None,
                None,
            )
            .expect("a fresh run has no checkpoint to reject")
        {
            RunOutcome::Completed(trace) => trace,
            RunOutcome::Checkpointed(_) => unreachable!("no round limit was requested"),
        }
    }

    /// [`ExperimentSuite::run_configured`] with mid-run checkpoint/resume —
    /// see [`run_experiment_resumable`] for the `resume` /
    /// `stop_after_rounds` semantics. A resumed run must pass the same
    /// overrides as the run that produced the checkpoint.
    #[allow(clippy::too_many_arguments)]
    pub fn run_configured_resumable(
        &self,
        scheduler: &mut dyn CommSchedule,
        lr_schedule: &LrSchedule,
        momentum: Option<MomentumMode>,
        gate_lr_on_tau: Option<bool>,
        codec: Option<CodecSpec>,
        budget: Option<(f64, f64)>,
        fault: Option<FaultConfig>,
        resume: Option<&RunCheckpoint>,
        stop_after_rounds: Option<u64>,
    ) -> Result<RunOutcome, String> {
        self.run_configured_cancellable(
            scheduler,
            lr_schedule,
            momentum,
            gate_lr_on_tau,
            codec,
            budget,
            fault,
            resume,
            stop_after_rounds,
            None,
        )
    }

    /// [`ExperimentSuite::run_configured_resumable`] with a cooperative
    /// stop predicate — see [`run_experiment_cancellable`]. This is the
    /// entry point the sweep service uses for deadline- and
    /// drain-preemptible runs.
    #[allow(clippy::too_many_arguments)]
    pub fn run_configured_cancellable(
        &self,
        scheduler: &mut dyn CommSchedule,
        lr_schedule: &LrSchedule,
        momentum: Option<MomentumMode>,
        gate_lr_on_tau: Option<bool>,
        codec: Option<CodecSpec>,
        budget: Option<(f64, f64)>,
        fault: Option<FaultConfig>,
        resume: Option<&RunCheckpoint>,
        stop_after_rounds: Option<u64>,
        stop: Option<&(dyn Fn() -> bool + Sync)>,
    ) -> Result<RunOutcome, String> {
        let mut cluster_config = self.cluster_config.clone();
        if let Some(m) = momentum {
            cluster_config.momentum = m;
        }
        if let Some(c) = codec {
            cluster_config.codec = c;
        }
        if let Some(f) = fault {
            cluster_config.fault = f;
        }
        let mut experiment_config = self.experiment_config.clone();
        if let Some(g) = gate_lr_on_tau {
            experiment_config.gate_lr_on_tau = g;
        }
        if let Some((total_secs, record_every_secs)) = budget {
            assert!(
                total_secs > 0.0 && record_every_secs > 0.0,
                "budget durations must be positive"
            );
            experiment_config.total_secs = total_secs;
            experiment_config.record_every_secs = record_every_secs;
        }
        run_experiment_cancellable(
            self.model.clone(),
            self.split.clone(),
            self.runtime,
            cluster_config,
            scheduler,
            lr_schedule,
            &experiment_config,
            resume,
            stop_after_rounds,
            stop,
        )
    }

    /// The experiment configuration (for reporting).
    pub fn experiment_config(&self) -> &ExperimentConfig {
        &self.experiment_config
    }

    /// The runtime (delay) model runs execute under (for reporting).
    pub fn runtime(&self) -> &RuntimeModel {
        &self.runtime
    }

    /// Trainable parameter count of the shared model — the size one
    /// full-precision averaging message is priced on.
    pub fn model_param_count(&self) -> usize {
        self.model.param_count()
    }

    /// Returns the suite with a replaced simulated-time budget and
    /// recording cadence — the hook the perf harness uses to run smoke
    /// slices of the canonical scenarios without rebuilding them.
    ///
    /// # Panics
    ///
    /// Panics if either duration is not positive.
    pub fn with_budget(mut self, total_secs: f64, record_every_secs: f64) -> Self {
        assert!(
            total_secs > 0.0 && record_every_secs > 0.0,
            "budget durations must be positive"
        );
        self.experiment_config.total_secs = total_secs;
        self.experiment_config.record_every_secs = record_every_secs;
        self
    }

    /// Returns the suite with a replaced scheduler-consultation interval
    /// `T0` — the knob the interval-length ablation sweeps.
    ///
    /// # Panics
    ///
    /// Panics if `interval_secs` is not positive.
    pub fn with_interval(mut self, interval_secs: f64) -> Self {
        assert!(interval_secs > 0.0, "interval must be positive");
        self.experiment_config.interval_secs = interval_secs;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adacomm::{AdaComm, FixedComm};
    use data::GaussianMixture;
    use delay::{CommModel, DelayDistribution};

    fn quick_suite(seed: u64) -> ExperimentSuite {
        let split = GaussianMixture::small_test().generate(seed);
        let runtime = RuntimeModel::new(
            DelayDistribution::constant(0.1),
            CommModel::constant(0.1),
            2,
        );
        ExperimentSuite::new(
            nn::models::mlp_classifier(8, &[16], 3, 5),
            split,
            runtime,
            ClusterConfig {
                workers: 2,
                batch_size: 8,
                lr: 0.05,
                weight_decay: 0.0,
                momentum: MomentumMode::None,
                averaging: crate::AveragingStrategy::FullAverage,
                codec: gradcomp::CodecSpec::Identity,
                seed,
                eval_subset: 96,
                fault: FaultConfig::NONE,
            },
            ExperimentConfig {
                interval_secs: 4.0,
                total_secs: 24.0,
                record_every_secs: 2.0,
                gate_lr_on_tau: false,
            },
        )
    }

    #[test]
    fn trace_is_time_ordered_and_loss_drops() {
        let suite = quick_suite(1);
        let trace = suite.run(&mut FixedComm::new(4), &adacomm::LrSchedule::constant(0.05));
        assert!(trace.points.len() >= 4);
        for w in trace.points.windows(2) {
            assert!(w[1].clock >= w[0].clock, "trace must be time-ordered");
            assert!(w[1].iterations >= w[0].iterations);
        }
        assert!(trace.final_loss() < trace.points[0].train_loss);
        assert_eq!(trace.name, "tau=4");
    }

    #[test]
    fn budget_is_respected() {
        let suite = quick_suite(2);
        let trace = suite.run(&mut FixedComm::new(2), &adacomm::LrSchedule::constant(0.05));
        let last = trace.points.last().unwrap();
        // The run can overshoot by at most one round.
        assert!(
            last.clock >= 24.0 && last.clock < 30.0,
            "clock {}",
            last.clock
        );
    }

    #[test]
    fn adacomm_tau_decreases_over_run() {
        let suite = quick_suite(3);
        let trace = suite.run(
            &mut AdaComm::with_tau0(8),
            &adacomm::LrSchedule::constant(0.05),
        );
        let taus: Vec<usize> = trace.tau_trace().iter().map(|&(_, t)| t).collect();
        assert_eq!(*taus.first().unwrap(), 8);
        assert!(
            taus.last().unwrap() < taus.first().unwrap(),
            "tau should decrease: {taus:?}"
        );
        // Monotone non-increasing under fixed lr.
        for w in taus.windows(2) {
            assert!(w[1] <= w[0], "tau increased: {taus:?}");
        }
    }

    #[test]
    fn time_to_loss_is_monotone_in_target() {
        let suite = quick_suite(4);
        let trace = suite.run(&mut FixedComm::new(4), &adacomm::LrSchedule::constant(0.05));
        let loose = trace.time_to_loss(trace.points[0].train_loss);
        let tight = trace.time_to_loss(trace.min_loss());
        assert!(loose.unwrap() <= tight.unwrap());
        assert_eq!(trace.time_to_loss(-1.0), None);
    }

    #[test]
    fn identical_seeds_give_identical_traces() {
        let t1 = quick_suite(5).run(&mut FixedComm::new(4), &adacomm::LrSchedule::constant(0.05));
        let t2 = quick_suite(5).run(&mut FixedComm::new(4), &adacomm::LrSchedule::constant(0.05));
        assert_eq!(t1, t2);
    }

    #[test]
    fn momentum_override_applies() {
        let suite = quick_suite(6);
        let plain = suite.run(&mut FixedComm::new(4), &adacomm::LrSchedule::constant(0.05));
        let block = suite.run_with_momentum(
            &mut FixedComm::new(4),
            &adacomm::LrSchedule::constant(0.05),
            MomentumMode::paper_block(),
        );
        assert_ne!(plain, block, "momentum must change the trajectory");
    }

    #[test]
    fn best_accuracy_at_least_first() {
        let suite = quick_suite(7);
        let trace = suite.run(&mut FixedComm::new(2), &adacomm::LrSchedule::constant(0.05));
        assert!(trace.best_test_accuracy() >= trace.points[0].test_accuracy);
    }

    #[test]
    fn cancelled_run_resumes_bit_identically() {
        use std::sync::atomic::{AtomicU32, Ordering};

        let lr = adacomm::LrSchedule::constant(0.05);
        let straight = quick_suite(8).run(&mut FixedComm::new(4), &lr);

        // Cancel after the stop predicate has been polled three times
        // (i.e. at the third round boundary), then resume to completion.
        let polls = AtomicU32::new(0);
        let stop = move || polls.fetch_add(1, Ordering::SeqCst) + 1 >= 3;
        let suite = quick_suite(8);
        let outcome = suite
            .run_configured_cancellable(
                &mut FixedComm::new(4),
                &lr,
                None,
                None,
                None,
                None,
                None,
                None,
                None,
                Some(&stop),
            )
            .expect("fresh run");
        let ck = match outcome {
            RunOutcome::Checkpointed(ck) => ck,
            RunOutcome::Completed(_) => panic!("stop predicate must park the run"),
        };
        assert!(ck.cluster.clock < 24.0, "parked mid-run");

        let resumed = suite
            .run_configured_cancellable(
                &mut FixedComm::new(4),
                &lr,
                None,
                None,
                None,
                None,
                None,
                Some(&ck),
                None,
                None,
            )
            .expect("checkpoint matches the suite");
        match resumed {
            RunOutcome::Completed(trace) => assert_eq!(trace, straight),
            RunOutcome::Checkpointed(_) => panic!("no stop requested on resume"),
        }
    }

    #[test]
    fn stop_predicate_never_fires_means_completed() {
        let lr = adacomm::LrSchedule::constant(0.05);
        let straight = quick_suite(9).run(&mut FixedComm::new(4), &lr);
        let stop = || false;
        let outcome = quick_suite(9)
            .run_configured_cancellable(
                &mut FixedComm::new(4),
                &lr,
                None,
                None,
                None,
                None,
                None,
                None,
                None,
                Some(&stop),
            )
            .expect("fresh run");
        match outcome {
            RunOutcome::Completed(trace) => assert_eq!(trace, straight),
            RunOutcome::Checkpointed(_) => panic!("predicate never fired"),
        }
    }
}
