//! A single PASGD worker: local model replica, optimizer, and data shard.

use data::{BatchIter, Dataset};
use nn::{Network, Sgd};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tensor::Tensor;

/// One worker node: a model replica, a local SGD optimizer and a shuffled
/// batch iterator over the worker's data shard.
///
/// Workers are deliberately self-contained (own RNG, own shard) so that the
/// cluster can run their local-update phases on independent threads with
/// bit-identical results regardless of scheduling.
#[derive(Debug, Clone)]
pub struct Worker {
    id: usize,
    model: Network,
    optimizer: Sgd,
    batches: BatchIter,
    rng: StdRng,
    steps_taken: u64,
}

impl Worker {
    /// Creates a worker from a model replica and its data shard.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is empty or `batch_size == 0` (via [`BatchIter`]).
    pub fn new(
        id: usize,
        model: Network,
        optimizer: Sgd,
        shard: Dataset,
        batch_size: usize,
        seed: u64,
    ) -> Self {
        Worker {
            id,
            model,
            optimizer,
            batches: BatchIter::new(shard, batch_size),
            // Worker RNGs are decorrelated by id; the golden ratio constant
            // avoids accidental seed collisions between adjacent ids.
            rng: StdRng::seed_from_u64(seed ^ (id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            steps_taken: 0,
        }
    }

    /// Worker id (0-based).
    pub fn id(&self) -> usize {
        self.id
    }

    /// Number of local SGD steps taken so far.
    pub fn steps_taken(&self) -> u64 {
        self.steps_taken
    }

    /// Epochs completed over this worker's shard.
    pub fn epochs_completed(&self) -> usize {
        self.batches.epochs_completed()
    }

    /// Borrow the local model.
    pub fn model(&self) -> &Network {
        &self.model
    }

    /// Mutably borrow the local model (used by evaluation helpers).
    pub fn model_mut(&mut self) -> &mut Network {
        &mut self.model
    }

    /// Performs `count` local mini-batch SGD steps (eq. 2 applied locally),
    /// returning the mean training loss over those batches.
    ///
    /// # Panics
    ///
    /// Panics if `count == 0`.
    pub fn local_steps(&mut self, count: usize) -> f32 {
        assert!(count > 0, "must take at least one local step");
        let mut total = 0.0f64;
        for _ in 0..count {
            let (x, y) = self.batches.next_batch(&mut self.rng);
            let loss = self.model.train_step(&x, &y);
            self.optimizer.step(&mut self.model);
            total += f64::from(loss);
            self.steps_taken += 1;
        }
        (total / count as f64) as f32
    }

    /// Updates the learning rate of the local optimizer.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive and finite.
    pub fn set_lr(&mut self, lr: f32) {
        self.optimizer.set_lr(lr);
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.optimizer.lr()
    }

    /// Clears the local momentum buffer (the paper's restart-at-sync rule
    /// for block momentum, Section 5.3.1).
    pub fn reset_momentum(&mut self) {
        self.optimizer.reset_momentum();
    }

    /// Snapshot of the local model parameters.
    pub fn params_snapshot(&self) -> Vec<Tensor> {
        self.model.params_snapshot()
    }

    /// Overwrites the local model with `params` (the post-averaging
    /// broadcast).
    ///
    /// # Panics
    ///
    /// Panics if the snapshot does not match the model structure.
    pub fn load_params(&mut self, params: &[Tensor]) {
        self.model.load_params(params);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use data::GaussianMixture;
    use nn::models;

    fn toy_worker(id: usize, seed: u64) -> Worker {
        let split = GaussianMixture::small_test().generate(7);
        Worker::new(
            id,
            models::mlp_classifier(8, &[16], 3, 42),
            Sgd::new(0.05),
            split.train,
            8,
            seed,
        )
    }

    #[test]
    fn local_steps_advance_the_model() {
        let mut w = toy_worker(0, 1);
        let before = w.params_snapshot();
        let loss = w.local_steps(5);
        assert!(loss > 0.0 && loss.is_finite());
        assert_eq!(w.steps_taken(), 5);
        let after = w.params_snapshot();
        assert_ne!(before, after);
    }

    #[test]
    fn workers_with_same_seed_and_id_are_identical() {
        let mut a = toy_worker(0, 1);
        let mut b = toy_worker(0, 1);
        let la = a.local_steps(3);
        let lb = b.local_steps(3);
        assert_eq!(la, lb);
        assert_eq!(a.params_snapshot(), b.params_snapshot());
    }

    #[test]
    fn workers_with_different_ids_diverge() {
        // Same model init, same shard, but decorrelated batch order.
        let mut a = toy_worker(0, 1);
        let mut b = toy_worker(1, 1);
        a.local_steps(3);
        b.local_steps(3);
        assert_ne!(a.params_snapshot(), b.params_snapshot());
    }

    #[test]
    fn load_params_synchronises() {
        let mut a = toy_worker(0, 1);
        let mut b = toy_worker(1, 1);
        a.local_steps(2);
        b.load_params(&a.params_snapshot());
        assert_eq!(a.params_snapshot(), b.params_snapshot());
    }

    #[test]
    fn set_lr_propagates() {
        let mut w = toy_worker(0, 2);
        w.set_lr(0.5);
        assert_eq!(w.lr(), 0.5);
    }

    #[test]
    fn training_reduces_loss_over_time() {
        let mut w = toy_worker(0, 3);
        let early = w.local_steps(5);
        for _ in 0..20 {
            w.local_steps(5);
        }
        let late = w.local_steps(5);
        assert!(
            late < early,
            "loss should drop on an easy task: {early} -> {late}"
        );
    }
}
