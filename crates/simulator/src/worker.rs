//! A single PASGD worker: local model replica, optimizer, data shard, and
//! per-worker gradient-compression state (error feedback + sync reference).

use crate::checkpoint::WorkerCheckpoint;
use data::{BatchIter, Dataset};
use gradcomp::{Compressor, ErrorFeedback};
use nn::{Network, Sgd};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tensor::Tensor;

/// One worker node: a model replica, a local SGD optimizer and a shuffled
/// batch iterator over the worker's data shard.
///
/// Workers are deliberately self-contained (own RNG, own shard) so that the
/// cluster can run their local-update phases on independent threads with
/// bit-identical results regardless of scheduling.
///
/// For compressed averaging each worker additionally keeps the
/// gradient-compression state that is local by construction: the
/// error-feedback residual memory ([`ErrorFeedback`]) and the *sync
/// reference* — the parameters the worker held right after the previous
/// averaging step, against which the transmitted model delta is formed.
/// The reference is only recorded while tracking is enabled
/// ([`Worker::set_reference_tracking`]), so full-precision runs never pay
/// the extra parameter copy.
#[derive(Debug, Clone)]
pub struct Worker {
    id: usize,
    model: Network,
    optimizer: Sgd,
    batches: BatchIter,
    rng: StdRng,
    /// RNG driving stochastic codecs (Random-K, QSGD). Separate from the
    /// batch RNG so enabling compression never perturbs the data order.
    comm_rng: StdRng,
    feedback: ErrorFeedback,
    /// Last post-averaging parameters as a flat plane; empty unless
    /// tracking is on.
    sync_reference: Vec<f32>,
    /// Reused buffer holding the model delta during encoding.
    delta_scratch: Vec<f32>,
    /// Reused mini-batch buffers for the per-step hot loop.
    batch_x: Tensor,
    batch_y: Vec<usize>,
    track_reference: bool,
    steps_taken: u64,
}

impl Worker {
    /// Creates a worker from a model replica and its data shard.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is empty or `batch_size == 0` (via [`BatchIter`]).
    pub fn new(
        id: usize,
        model: Network,
        optimizer: Sgd,
        shard: Dataset,
        batch_size: usize,
        seed: u64,
    ) -> Self {
        let batch_x = Tensor::zeros(&[batch_size, shard.feature_dim()]);
        Worker {
            id,
            model,
            optimizer,
            batches: BatchIter::new(shard, batch_size),
            batch_x,
            batch_y: Vec::with_capacity(batch_size),
            // Worker RNGs are decorrelated by id; the golden ratio constant
            // avoids accidental seed collisions between adjacent ids.
            rng: StdRng::seed_from_u64(seed ^ (id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            comm_rng: StdRng::seed_from_u64(
                seed ^ (id as u64).wrapping_mul(0xC0DE_C0DE_C0DE_C0DF) ^ 0x6772_6164_636F_6D70,
            ),
            feedback: ErrorFeedback::new(),
            sync_reference: Vec::new(),
            delta_scratch: Vec::new(),
            track_reference: false,
            steps_taken: 0,
        }
    }

    /// Worker id (0-based).
    pub fn id(&self) -> usize {
        self.id
    }

    /// Number of local SGD steps taken so far.
    pub fn steps_taken(&self) -> u64 {
        self.steps_taken
    }

    /// Epochs completed over this worker's shard.
    pub fn epochs_completed(&self) -> usize {
        self.batches.epochs_completed()
    }

    /// Borrow the local model.
    pub fn model(&self) -> &Network {
        &self.model
    }

    /// Mutably borrow the local model (used by evaluation helpers).
    pub fn model_mut(&mut self) -> &mut Network {
        &mut self.model
    }

    /// Performs `count` local mini-batch SGD steps (eq. 2 applied locally),
    /// returning the mean training loss over those batches.
    ///
    /// # Panics
    ///
    /// Panics if `count == 0`.
    pub fn local_steps(&mut self, count: usize) -> f32 {
        assert!(count > 0, "must take at least one local step");
        let mut total = 0.0f64;
        for _ in 0..count {
            // Reused batch buffers: the per-step loop allocates nothing.
            self.batches
                .next_batch_into(&mut self.rng, &mut self.batch_x, &mut self.batch_y);
            let loss = self.model.train_step(&self.batch_x, &self.batch_y);
            self.optimizer.step(&mut self.model);
            total += f64::from(loss);
            self.steps_taken += 1;
        }
        (total / count as f64) as f32
    }

    /// Updates the learning rate of the local optimizer.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive and finite.
    pub fn set_lr(&mut self, lr: f32) {
        self.optimizer.set_lr(lr);
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.optimizer.lr()
    }

    /// Clears the local momentum buffer (the paper's restart-at-sync rule
    /// for block momentum, Section 5.3.1).
    pub fn reset_momentum(&mut self) {
        self.optimizer.reset_momentum();
    }

    /// Snapshot of the local model parameters.
    pub fn params_snapshot(&self) -> Vec<Tensor> {
        self.model.params_snapshot()
    }

    /// Copies the local model parameters into the flat plane `out` — the
    /// allocation-free counterpart of [`Worker::params_snapshot`].
    ///
    /// # Panics
    ///
    /// Panics if `out.len()` differs from the model's parameter count.
    pub fn copy_params_into(&self, out: &mut [f32]) {
        self.model.copy_params_into(out);
    }

    /// Adds the local model parameters into the flat plane `acc` — the
    /// accumulate half of full averaging (see
    /// [`nn::Network::add_params_to`]).
    ///
    /// # Panics
    ///
    /// Panics if `acc.len()` differs from the model's parameter count.
    pub fn add_params_to(&self, acc: &mut [f32]) {
        self.model.add_params_to(acc);
    }

    /// Overwrites the local model with `params` (the post-averaging
    /// broadcast). While reference tracking is enabled they are also
    /// recorded as the new sync reference for the next compressed round.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot does not match the model structure.
    pub fn load_params(&mut self, params: &[Tensor]) {
        self.model.load_params(params);
        if self.track_reference {
            self.sync_reference.resize(self.model.param_count(), 0.0);
            self.model.copy_params_into(&mut self.sync_reference);
        }
    }

    /// Overwrites the local model from the flat broadcast plane `plane`
    /// (the layout of [`Worker::copy_params_into`]), re-anchoring the sync
    /// reference when tracking is on — the cluster's zero-allocation
    /// broadcast path.
    ///
    /// # Panics
    ///
    /// Panics if `plane.len()` differs from the model's parameter count.
    pub fn load_params_from(&mut self, plane: &[f32]) {
        self.model.load_params_from(plane);
        if self.track_reference {
            self.sync_reference.resize(plane.len(), 0.0);
            self.sync_reference.copy_from_slice(plane);
        }
    }

    /// Turns sync-reference tracking on or off. Enabling snapshots the
    /// *current* parameters as the reference (callers do this at a
    /// synchronization point, where they equal the last broadcast);
    /// disabling drops the stored copy so full-precision runs hold no
    /// duplicate parameter set.
    pub fn set_reference_tracking(&mut self, on: bool) {
        if on && !self.track_reference {
            self.sync_reference = self.model.params_flat();
        } else if !on {
            self.sync_reference = Vec::new();
        }
        self.track_reference = on;
    }

    /// Encodes this worker's averaging message under `codec` into the flat
    /// plane `out`: the model delta since the last sync reference is
    /// compressed segment-by-segment (`segments` is the model's parameter
    /// layout, see [`nn::Network::param_sizes`]), and `out` receives the
    /// *reconstruction* the receivers would decode — `reference +
    /// transmitted`. Returns the encoded payload size in bytes.
    ///
    /// Biased codecs (Top-K, sign) go through the worker's error-feedback
    /// memory (whose compensated target is formed in `scratch`), which
    /// assumes the codec is norm-contractive; whatever is dropped is
    /// compensated on the next round. Unbiased codecs (Random-K, QSGD) are
    /// applied directly — their compensation is in expectation, and
    /// feeding their (non-contractive) error into the residual memory
    /// would make it oscillate.
    ///
    /// The caller (the cluster) mixes the reconstructions and broadcasts
    /// the result back via [`Worker::load_params_from`], which re-anchors
    /// the reference. In steady state this path allocates nothing.
    ///
    /// # Panics
    ///
    /// Panics if reference tracking is not enabled (see
    /// [`Worker::set_reference_tracking`]) or the plane lengths disagree.
    pub fn encode_update_into(
        &mut self,
        codec: &dyn Compressor,
        segments: &[usize],
        scratch: &mut [f32],
        out: &mut [f32],
    ) -> usize {
        assert!(
            self.track_reference,
            "encode_update requires sync-reference tracking; \
             call set_reference_tracking(true) at a synchronization point first"
        );
        let n = self.sync_reference.len();
        assert_eq!(out.len(), n, "message plane length mismatch");
        self.delta_scratch.resize(n, 0.0);
        self.model.copy_params_into(&mut self.delta_scratch);
        for (d, &r) in self.delta_scratch.iter_mut().zip(&self.sync_reference) {
            *d -= r;
        }
        let bytes = if codec.is_unbiased() {
            let mut bytes = 0usize;
            let mut offset = 0usize;
            for &len in segments {
                bytes += codec.compress_slice(
                    &self.delta_scratch[offset..offset + len],
                    &mut out[offset..offset + len],
                    &mut self.comm_rng,
                );
                offset += len;
            }
            assert_eq!(offset, n, "segments must cover the parameter plane");
            bytes
        } else {
            self.feedback.compress_flat(
                codec,
                &self.delta_scratch,
                segments,
                scratch,
                out,
                &mut self.comm_rng,
            )
        };
        // Build the reconstruction in the transmitted plane (sent +
        // reference) rather than copying the reference again.
        for (o, &r) in out.iter_mut().zip(&self.sync_reference) {
            *o += r;
        }
        bytes
    }

    /// Tensor-based convenience around [`Worker::encode_update_into`]
    /// (used by tests and diagnostics; the cluster uses the flat entry
    /// point).
    ///
    /// # Panics
    ///
    /// Panics if reference tracking is not enabled.
    pub fn encode_update(&mut self, codec: &dyn Compressor) -> (Vec<Tensor>, usize) {
        let segments = self.model.param_sizes();
        let n: usize = segments.iter().sum();
        let mut scratch = vec![0.0f32; n];
        let mut out = vec![0.0f32; n];
        let bytes = self.encode_update_into(codec, &segments, &mut scratch, &mut out);
        let shapes: Vec<Vec<usize>> = self
            .model
            .params_snapshot()
            .iter()
            .map(|t| t.dims().to_vec())
            .collect();
        let mut sent = Vec::with_capacity(shapes.len());
        let mut offset = 0usize;
        for dims in shapes {
            let len: usize = dims.iter().product();
            sent.push(
                Tensor::from_vec(out[offset..offset + len].to_vec(), &dims)
                    .expect("segment matches tensor shape"),
            );
            offset += len;
        }
        (sent, bytes)
    }

    /// Total `ℓ2` norm of the error-feedback residual (0 when compression
    /// has not run or the codec is lossless).
    pub fn residual_norm(&self) -> f32 {
        self.feedback.residual_norm()
    }

    /// Drops the error-feedback residuals (e.g. when the codec family
    /// changes mid-run).
    pub fn reset_feedback(&mut self) {
        self.feedback.reset();
    }

    /// Captures the worker's complete training state for a run checkpoint:
    /// parameters, momentum buffers, both RNG streams, the batch-shuffle
    /// state, error-feedback residuals and the sync reference.
    pub fn export_checkpoint(&self) -> WorkerCheckpoint {
        let (order, cursor, epochs) = self.batches.shuffle_state();
        WorkerCheckpoint {
            params: self.model.params_flat(),
            momentum_buffers: self.optimizer.momentum_buffers().to_vec(),
            rng: self.rng.state(),
            comm_rng: self.comm_rng.state(),
            steps_taken: self.steps_taken,
            shuffle_order: order.to_vec(),
            shuffle_cursor: cursor,
            epochs_completed: epochs,
            feedback: self.feedback.clone(),
            sync_reference: self.sync_reference.clone(),
            track_reference: self.track_reference,
        }
    }

    /// Restores state captured by [`Worker::export_checkpoint`], making the
    /// worker continue bit-identically to the uninterrupted run.
    ///
    /// Every structural property is validated against *this* worker's model
    /// and shard before anything is applied: parameter-plane and
    /// sync-reference lengths, momentum-buffer shapes, the error-feedback
    /// segment layout, and the shuffle permutation. A checkpoint that fails
    /// any check returns `Err` with the worker untouched — corrupted or
    /// mismatched checkpoints degrade to recompute, never a panic.
    pub fn restore_checkpoint(&mut self, ck: &WorkerCheckpoint) -> Result<(), String> {
        let n = self.model.param_count();
        if ck.params.len() != n {
            return Err(format!(
                "parameter plane of {} entries for a model of {n}",
                ck.params.len()
            ));
        }
        if !ck.momentum_buffers.is_empty() {
            let shapes = self.model.params_snapshot();
            if ck.momentum_buffers.len() != shapes.len() {
                return Err(format!(
                    "{} momentum buffers for {} parameter tensors",
                    ck.momentum_buffers.len(),
                    shapes.len()
                ));
            }
            for (buf, p) in ck.momentum_buffers.iter().zip(&shapes) {
                if buf.dims() != p.dims() {
                    return Err(format!(
                        "momentum buffer shape {:?} does not match parameter {:?}",
                        buf.dims(),
                        p.dims()
                    ));
                }
            }
        }
        if ck.track_reference {
            if ck.sync_reference.len() != n {
                return Err(format!(
                    "sync reference of {} entries for a model of {n}",
                    ck.sync_reference.len()
                ));
            }
        } else if !ck.sync_reference.is_empty() {
            return Err("sync reference recorded without tracking".to_string());
        }
        if !ck.feedback.is_empty() && ck.feedback.segments() != self.model.param_sizes() {
            return Err("error-feedback segment layout does not match the model".to_string());
        }
        // Fallible mutation first: the batch iterator validates and leaves
        // itself untouched on rejection, so a failure here still leaves the
        // whole worker unmodified.
        self.batches.restore_shuffle_state(
            ck.shuffle_order.clone(),
            ck.shuffle_cursor,
            ck.epochs_completed,
        )?;
        self.model.load_params_from(&ck.params);
        self.optimizer
            .restore_momentum_buffers(ck.momentum_buffers.clone());
        self.rng = StdRng::from_state(ck.rng);
        self.comm_rng = StdRng::from_state(ck.comm_rng);
        self.steps_taken = ck.steps_taken;
        self.feedback = ck.feedback.clone();
        // Assign the reference directly rather than via
        // set_reference_tracking: the checkpointed reference is the last
        // *broadcast*, which mid-restore need not equal the current params.
        self.sync_reference = ck.sync_reference.clone();
        self.track_reference = ck.track_reference;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use data::GaussianMixture;
    use nn::models;

    fn toy_worker(id: usize, seed: u64) -> Worker {
        let split = GaussianMixture::small_test().generate(7);
        Worker::new(
            id,
            models::mlp_classifier(8, &[16], 3, 42),
            Sgd::new(0.05),
            split.train,
            8,
            seed,
        )
    }

    #[test]
    fn local_steps_advance_the_model() {
        let mut w = toy_worker(0, 1);
        let before = w.params_snapshot();
        let loss = w.local_steps(5);
        assert!(loss > 0.0 && loss.is_finite());
        assert_eq!(w.steps_taken(), 5);
        let after = w.params_snapshot();
        assert_ne!(before, after);
    }

    #[test]
    fn workers_with_same_seed_and_id_are_identical() {
        let mut a = toy_worker(0, 1);
        let mut b = toy_worker(0, 1);
        let la = a.local_steps(3);
        let lb = b.local_steps(3);
        assert_eq!(la, lb);
        assert_eq!(a.params_snapshot(), b.params_snapshot());
    }

    #[test]
    fn workers_with_different_ids_diverge() {
        // Same model init, same shard, but decorrelated batch order.
        let mut a = toy_worker(0, 1);
        let mut b = toy_worker(1, 1);
        a.local_steps(3);
        b.local_steps(3);
        assert_ne!(a.params_snapshot(), b.params_snapshot());
    }

    #[test]
    fn load_params_synchronises() {
        let mut a = toy_worker(0, 1);
        let mut b = toy_worker(1, 1);
        a.local_steps(2);
        b.load_params(&a.params_snapshot());
        assert_eq!(a.params_snapshot(), b.params_snapshot());
    }

    #[test]
    fn set_lr_propagates() {
        let mut w = toy_worker(0, 2);
        w.set_lr(0.5);
        assert_eq!(w.lr(), 0.5);
    }

    #[test]
    fn identity_encoding_is_lossless() {
        let mut w = toy_worker(0, 4);
        w.set_reference_tracking(true);
        w.local_steps(3);
        let snapshot = w.params_snapshot();
        let (reconstruction, bytes) = w.encode_update(&gradcomp::Identity);
        // reference + (x − reference) re-associates float additions, so
        // compare up to rounding noise.
        let drift: f32 = reconstruction
            .iter()
            .zip(snapshot.iter())
            .map(|(a, b)| a.distance(b))
            .sum();
        assert!(drift < 1e-6, "identity roundtrip drifted by {drift}");
        let total: usize = snapshot.iter().map(|t| t.len() * 4).sum();
        assert_eq!(bytes, total);
        assert_eq!(w.residual_norm(), 0.0);
    }

    #[test]
    fn biased_encoding_leaves_residual_and_shrinks_payload() {
        let mut w = toy_worker(0, 5);
        w.set_reference_tracking(true);
        w.local_steps(3);
        let snapshot = w.params_snapshot();
        let full: usize = snapshot.iter().map(|t| t.len() * 4).sum();
        let (reconstruction, bytes) = w.encode_update(&gradcomp::TopK::new(0.05));
        assert!(bytes < full / 5, "payload {bytes} vs full {full}");
        assert_ne!(reconstruction, snapshot);
        assert!(w.residual_norm() > 0.0);
        // Re-anchoring at the reconstruction then encoding a zero delta
        // flushes residual mass, not nothing.
        w.load_params(&reconstruction);
        let (flushed, _) = w.encode_update(&gradcomp::TopK::new(0.05));
        assert_ne!(flushed, reconstruction);
    }

    #[test]
    fn reset_feedback_clears_residual() {
        let mut w = toy_worker(0, 6);
        w.set_reference_tracking(true);
        w.local_steps(2);
        let _ = w.encode_update(&gradcomp::SignOneBit);
        assert!(w.residual_norm() > 0.0);
        w.reset_feedback();
        assert_eq!(w.residual_norm(), 0.0);
    }

    #[test]
    #[should_panic(expected = "requires sync-reference tracking")]
    fn encode_without_tracking_rejected() {
        let mut w = toy_worker(0, 7);
        w.local_steps(1);
        let _ = w.encode_update(&gradcomp::Identity);
    }

    #[test]
    fn training_reduces_loss_over_time() {
        let mut w = toy_worker(0, 3);
        let early = w.local_steps(5);
        for _ in 0..20 {
            w.local_steps(5);
        }
        let late = w.local_steps(5);
        assert!(
            late < early,
            "loss should drop on an easy task: {early} -> {late}"
        );
    }
}
