//! Mid-run checkpoints: a complete, bit-exact snapshot of an experiment at
//! an averaging-round boundary, plus the binary wire format for traces.
//!
//! A [`RunCheckpoint`] captures *everything* the interval driver and the
//! cluster evolve over a run — worker parameter planes, momentum buffers,
//! error-feedback residuals, RNG stream states, batch-shuffle state, the
//! simulated clock and counters, block-momentum planes, and the driver's
//! own loop variables (recorded points, interval index, τ, the scheduler's
//! exported state). Resuming from a checkpoint therefore continues the run
//! **bit-identically**: the trace of an interrupted-and-resumed run equals
//! the trace of the uninterrupted run float-for-float (see the
//! `checkpoint_resume` integration tests).
//!
//! The byte format is explicit little-endian (via `binio`), framed with a
//! magic tag, a format version, a payload length and a CRC-32 — every
//! decode path is fallible and validated, so a truncated or bit-flipped
//! checkpoint surfaces as a recoverable [`Err`], never a panic and never a
//! silently wrong resume. Floats travel as raw bits, which is what makes
//! resumed traces (and the cached [`RunTrace`]s the bench run store
//! persists with [`write_run_trace`]) byte-identical across processes.

use crate::{FaultCheckpoint, RunTrace, TracePoint};
use adacomm::SchedulerState;
use binio::{ByteReader, ByteWriter, ReadError, ReadResult};
use gradcomp::{CodecSpec, ErrorFeedback};
use tensor::Tensor;

/// Magic tag opening every serialized checkpoint ("AdaComm ChecKPoint").
const MAGIC: &[u8; 4] = b"ACKP";

/// Version of the checkpoint byte format. Bump on any layout change:
/// readers reject other versions and the caller recomputes from scratch.
/// Version 2 added the optional fault-injection frame.
pub const CHECKPOINT_FORMAT_VERSION: u32 = 2;

/// Full training state of one worker at a round boundary.
#[derive(Debug, Clone)]
pub struct WorkerCheckpoint {
    /// Flat parameter plane (layout of `Network::copy_params_into`).
    pub params: Vec<f32>,
    /// SGD momentum buffers, one per parameter tensor; empty before the
    /// first momentum step (or for momentum-free runs).
    pub momentum_buffers: Vec<Tensor>,
    /// Batch-RNG stream state.
    pub rng: [u64; 4],
    /// Codec-RNG stream state.
    pub comm_rng: [u64; 4],
    /// Local SGD steps taken so far.
    pub steps_taken: u64,
    /// Current epoch permutation of the worker's shard.
    pub shuffle_order: Vec<usize>,
    /// Position within the epoch permutation.
    pub shuffle_cursor: usize,
    /// Epoch boundaries crossed.
    pub epochs_completed: usize,
    /// Error-feedback residual memory.
    pub feedback: ErrorFeedback,
    /// Post-averaging reference parameters (empty unless tracking is on).
    pub sync_reference: Vec<f32>,
    /// Whether sync-reference tracking was enabled.
    pub track_reference: bool,
}

/// Full state of a [`PasgdCluster`](crate::PasgdCluster) at a round
/// boundary.
#[derive(Debug, Clone)]
pub struct ClusterCheckpoint {
    /// Simulated wall-clock seconds.
    pub clock: f64,
    /// Local iterations per worker.
    pub iterations: u64,
    /// Averaging rounds completed.
    pub rounds: u64,
    /// Cumulative simulated communication time.
    pub comm_time: f64,
    /// Cumulative simulated computation time.
    pub compute_time: f64,
    /// Cumulative per-worker payload bytes.
    pub comm_bytes: f64,
    /// Largest single-round payload so far.
    pub peak_payload_bytes: f64,
    /// Learning rate in effect.
    pub current_lr: f32,
    /// Codec in effect (may differ from the configured one mid-run under a
    /// co-adaptive schedule).
    pub codec: CodecSpec,
    /// Delay-stream RNG state.
    pub delay_rng: [u64; 4],
    /// Block-momentum `(buffer, prev_sync)` planes, if configured.
    pub block: Option<(Vec<f32>, Vec<f32>)>,
    /// Fault-injection state (RNG stream, outage table, staleness
    /// counters, cumulative stats), present iff faults are active.
    pub fault: Option<FaultCheckpoint>,
    /// Per-worker state, in worker-id order.
    pub workers: Vec<WorkerCheckpoint>,
}

/// A resumable snapshot of an interval-driven experiment run: the
/// cluster's full state plus the driver loop's own variables.
#[derive(Debug, Clone)]
pub struct RunCheckpoint {
    /// Trace points recorded so far (never empty: the `t = 0` point is
    /// recorded before the first round).
    pub points: Vec<TracePoint>,
    /// Interval index the scheduler was last consulted at.
    pub interval: usize,
    /// Loss last fed to the scheduler.
    pub last_loss: f64,
    /// Communication period currently in effect.
    pub tau: usize,
    /// Next trace-recording deadline (simulated seconds).
    pub next_record: f64,
    /// Loss at `t = 0` (the schedule's `F(x_0)`).
    pub initial_loss: f64,
    /// Learning rate at `t = 0`.
    pub initial_lr: f32,
    /// The communication scheduler's exported state.
    pub scheduler: SchedulerState,
    /// The cluster's full state.
    pub cluster: ClusterCheckpoint,
}

// ----------------------------------------------------------------------
// Trace wire format (shared with the bench run store)
// ----------------------------------------------------------------------

/// Appends one [`TracePoint`] (floats as raw bits, so decoded traces are
/// bit-identical to the originals).
pub fn write_trace_point(w: &mut ByteWriter, p: &TracePoint) {
    w.put_f64(p.clock);
    w.put_u64(p.iterations);
    w.put_f64(p.epoch);
    w.put_f32(p.train_loss);
    w.put_f64(p.test_accuracy);
    w.put_len(p.tau);
    w.put_f32(p.lr);
    w.put_f64(p.comm_bytes);
}

/// Reads one [`TracePoint`] written by [`write_trace_point`].
pub fn read_trace_point(r: &mut ByteReader<'_>) -> ReadResult<TracePoint> {
    Ok(TracePoint {
        clock: r.f64()?,
        iterations: r.u64()?,
        epoch: r.f64()?,
        train_loss: r.f32()?,
        test_accuracy: r.f64()?,
        tau: r.len()?,
        lr: r.f32()?,
        comm_bytes: r.f64()?,
    })
}

/// Every encoded trace point occupies at least this many bytes — the
/// pre-allocation guard for point counts.
const MIN_POINT_BYTES: usize = 56;

/// Appends a point list with a length prefix.
fn write_points(w: &mut ByteWriter, points: &[TracePoint]) {
    w.put_len(points.len());
    for p in points {
        write_trace_point(w, p);
    }
}

/// Reads a point list, rejecting counts the remaining bytes cannot hold.
fn read_points(r: &mut ByteReader<'_>) -> ReadResult<Vec<TracePoint>> {
    let count = r.len()?;
    if count > r.remaining() / MIN_POINT_BYTES {
        return Err(ReadError::BadLength(count as u64));
    }
    let mut points = Vec::with_capacity(count);
    for _ in 0..count {
        points.push(read_trace_point(r)?);
    }
    Ok(points)
}

/// Appends a complete [`RunTrace`] — the frame the content-addressed run
/// store persists per scenario.
pub fn write_run_trace(w: &mut ByteWriter, t: &RunTrace) {
    w.put_str(&t.name);
    w.put_f64(t.peak_payload_bytes);
    w.put_u64(t.rounds);
    write_points(w, &t.points);
}

/// Reads a [`RunTrace`] written by [`write_run_trace`].
pub fn read_run_trace(r: &mut ByteReader<'_>) -> ReadResult<RunTrace> {
    Ok(RunTrace {
        name: r.str()?.to_string(),
        peak_payload_bytes: r.f64()?,
        rounds: r.u64()?,
        points: read_points(r)?,
    })
}

// ----------------------------------------------------------------------
// Checkpoint wire format
// ----------------------------------------------------------------------

fn write_rng_state(w: &mut ByteWriter, s: &[u64; 4]) {
    for &word in s {
        w.put_u64(word);
    }
}

fn read_rng_state(r: &mut ByteReader<'_>) -> ReadResult<[u64; 4]> {
    Ok([r.u64()?, r.u64()?, r.u64()?, r.u64()?])
}

fn write_worker(w: &mut ByteWriter, ck: &WorkerCheckpoint) {
    w.put_f32_slice(&ck.params);
    w.put_len(ck.momentum_buffers.len());
    for t in &ck.momentum_buffers {
        tensor::serde::write_tensor(w, t);
    }
    write_rng_state(w, &ck.rng);
    write_rng_state(w, &ck.comm_rng);
    w.put_u64(ck.steps_taken);
    w.put_len_slice(&ck.shuffle_order);
    w.put_len(ck.shuffle_cursor);
    w.put_len(ck.epochs_completed);
    ck.feedback.write_state(w);
    w.put_f32_slice(&ck.sync_reference);
    w.put_u8(u8::from(ck.track_reference));
}

fn read_worker(r: &mut ByteReader<'_>) -> ReadResult<WorkerCheckpoint> {
    let params = r.f32_vec()?;
    let buffer_count = r.len()?;
    // A tensor frame is at least 16 bytes (rank + element count).
    if buffer_count > r.remaining() / 16 {
        return Err(ReadError::BadLength(buffer_count as u64));
    }
    let mut momentum_buffers = Vec::with_capacity(buffer_count);
    for _ in 0..buffer_count {
        momentum_buffers.push(tensor::serde::read_tensor(r)?);
    }
    let rng = read_rng_state(r)?;
    let comm_rng = read_rng_state(r)?;
    let steps_taken = r.u64()?;
    let shuffle_order = r.len_vec()?;
    let shuffle_cursor = r.len()?;
    let epochs_completed = r.len()?;
    let feedback = ErrorFeedback::read_state(r)?;
    let sync_reference = r.f32_vec()?;
    let track_reference = match r.u8()? {
        0 => false,
        1 => true,
        flag => return Err(ReadError::BadLength(u64::from(flag))),
    };
    Ok(WorkerCheckpoint {
        params,
        momentum_buffers,
        rng,
        comm_rng,
        steps_taken,
        shuffle_order,
        shuffle_cursor,
        epochs_completed,
        feedback,
        sync_reference,
        track_reference,
    })
}

fn write_fault(w: &mut ByteWriter, ck: &FaultCheckpoint) {
    write_rng_state(w, &ck.rng);
    w.put_len(ck.down_until.len());
    for &round in &ck.down_until {
        w.put_u64(round);
    }
    w.put_len(ck.missed.len());
    for &count in &ck.missed {
        w.put_u64(count);
    }
    w.put_u64(ck.stats.crashes);
    w.put_u64(ck.stats.rejoins);
    w.put_u64(ck.stats.drops);
    w.put_u64(ck.stats.corruptions);
    w.put_u64(ck.stats.stragglers);
    w.put_u64(ck.stats.retransmits);
    w.put_u64(ck.stats.degraded_rounds);
}

fn read_u64_table(r: &mut ByteReader<'_>) -> ReadResult<Vec<u64>> {
    let count = r.len()?;
    if count > r.remaining() / 8 {
        return Err(ReadError::BadLength(count as u64));
    }
    let mut table = Vec::with_capacity(count);
    for _ in 0..count {
        table.push(r.u64()?);
    }
    Ok(table)
}

fn read_fault(r: &mut ByteReader<'_>) -> ReadResult<FaultCheckpoint> {
    let rng = read_rng_state(r)?;
    let down_until = read_u64_table(r)?;
    let missed = read_u64_table(r)?;
    let stats = crate::FaultStats {
        crashes: r.u64()?,
        rejoins: r.u64()?,
        drops: r.u64()?,
        corruptions: r.u64()?,
        stragglers: r.u64()?,
        retransmits: r.u64()?,
        degraded_rounds: r.u64()?,
    };
    Ok(FaultCheckpoint {
        rng,
        down_until,
        missed,
        stats,
    })
}

fn write_cluster(w: &mut ByteWriter, ck: &ClusterCheckpoint) {
    w.put_f64(ck.clock);
    w.put_u64(ck.iterations);
    w.put_u64(ck.rounds);
    w.put_f64(ck.comm_time);
    w.put_f64(ck.compute_time);
    w.put_f64(ck.comm_bytes);
    w.put_f64(ck.peak_payload_bytes);
    w.put_f32(ck.current_lr);
    gradcomp::wire::write_codec(w, &ck.codec);
    write_rng_state(w, &ck.delay_rng);
    match &ck.block {
        Some((buffer, prev_sync)) => {
            w.put_u8(1);
            w.put_f32_slice(buffer);
            w.put_f32_slice(prev_sync);
        }
        None => w.put_u8(0),
    }
    match &ck.fault {
        Some(fault) => {
            w.put_u8(1);
            write_fault(w, fault);
        }
        None => w.put_u8(0),
    }
    w.put_len(ck.workers.len());
    for worker in &ck.workers {
        write_worker(w, worker);
    }
}

fn read_cluster(r: &mut ByteReader<'_>) -> ReadResult<ClusterCheckpoint> {
    let clock = r.f64()?;
    let iterations = r.u64()?;
    let rounds = r.u64()?;
    let comm_time = r.f64()?;
    let compute_time = r.f64()?;
    let comm_bytes = r.f64()?;
    let peak_payload_bytes = r.f64()?;
    let current_lr = r.f32()?;
    let codec = gradcomp::wire::read_codec(r)?;
    let delay_rng = read_rng_state(r)?;
    let block = match r.u8()? {
        0 => None,
        1 => {
            let buffer = r.f32_vec()?;
            let prev_sync = r.f32_vec()?;
            Some((buffer, prev_sync))
        }
        flag => return Err(ReadError::BadLength(u64::from(flag))),
    };
    let fault = match r.u8()? {
        0 => None,
        1 => Some(read_fault(r)?),
        flag => return Err(ReadError::BadLength(u64::from(flag))),
    };
    let worker_count = r.len()?;
    // A worker frame is at least ~100 bytes; 64 is a safe floor.
    if worker_count > r.remaining() / 64 {
        return Err(ReadError::BadLength(worker_count as u64));
    }
    let mut workers = Vec::with_capacity(worker_count);
    for _ in 0..worker_count {
        workers.push(read_worker(r)?);
    }
    Ok(ClusterCheckpoint {
        clock,
        iterations,
        rounds,
        comm_time,
        compute_time,
        comm_bytes,
        peak_payload_bytes,
        current_lr,
        codec,
        delay_rng,
        block,
        fault,
        workers,
    })
}

impl RunCheckpoint {
    /// Serializes the checkpoint into a self-validating frame:
    /// `magic | version | payload_len | crc32(payload) | payload`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut payload = ByteWriter::new();
        write_points(&mut payload, &self.points);
        payload.put_len(self.interval);
        payload.put_f64(self.last_loss);
        payload.put_len(self.tau);
        payload.put_f64(self.next_record);
        payload.put_f64(self.initial_loss);
        payload.put_f32(self.initial_lr);
        self.scheduler.write_into(&mut payload);
        write_cluster(&mut payload, &self.cluster);
        let payload = payload.into_vec();

        let mut w = ByteWriter::with_capacity(payload.len() + 16);
        w.put_bytes(MAGIC);
        w.put_u32(CHECKPOINT_FORMAT_VERSION);
        w.put_u64(payload.len() as u64);
        w.put_u32(binio::crc32(&payload));
        w.put_bytes(&payload);
        w.into_vec()
    }

    /// Decodes a frame produced by [`RunCheckpoint::to_bytes`].
    ///
    /// Every failure mode — wrong magic, unknown version, truncation,
    /// trailing garbage, checksum mismatch, malformed payload — returns a
    /// descriptive `Err`; this function never panics on any input.
    pub fn from_bytes(bytes: &[u8]) -> Result<RunCheckpoint, String> {
        let mut r = ByteReader::new(bytes);
        let magic = r
            .bytes(4)
            .map_err(|e| format!("checkpoint header truncated: {e}"))?;
        if magic != MAGIC {
            return Err("not a checkpoint frame (bad magic)".to_string());
        }
        let version = r.u32().map_err(|e| format!("checkpoint header: {e}"))?;
        if version != CHECKPOINT_FORMAT_VERSION {
            return Err(format!(
                "checkpoint format version {version} (expected {CHECKPOINT_FORMAT_VERSION})"
            ));
        }
        let payload_len = r.u64().map_err(|e| format!("checkpoint header: {e}"))? as usize;
        let crc = r.u32().map_err(|e| format!("checkpoint header: {e}"))?;
        if r.remaining() != payload_len {
            return Err(format!(
                "checkpoint payload is {} bytes but the header promises {payload_len}",
                r.remaining()
            ));
        }
        let payload = r
            .bytes(payload_len)
            .map_err(|e| format!("checkpoint payload truncated: {e}"))?;
        if binio::crc32(payload) != crc {
            return Err("checkpoint checksum mismatch".to_string());
        }

        let mut p = ByteReader::new(payload);
        let ck = (|| -> ReadResult<RunCheckpoint> {
            Ok(RunCheckpoint {
                points: read_points(&mut p)?,
                interval: p.len()?,
                last_loss: p.f64()?,
                tau: p.len()?,
                next_record: p.f64()?,
                initial_loss: p.f64()?,
                initial_lr: p.f32()?,
                scheduler: SchedulerState::read_from(&mut p)?,
                cluster: read_cluster(&mut p)?,
            })
        })()
        .map_err(|e| format!("malformed checkpoint payload: {e}"))?;
        if !p.is_empty() {
            return Err(format!(
                "checkpoint payload has {} trailing bytes",
                p.remaining()
            ));
        }
        if ck.points.is_empty() {
            return Err("checkpoint records no trace points".to_string());
        }
        if ck.tau == 0 {
            return Err("checkpoint has a zero communication period".to_string());
        }
        Ok(ck)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_point(k: u64) -> TracePoint {
        TracePoint {
            clock: k as f64 * 1.5,
            iterations: k * 10,
            epoch: k as f64 * 0.25,
            train_loss: 1.0 / (k + 1) as f32,
            test_accuracy: 0.5 + 0.01 * k as f64,
            tau: (k + 1) as usize,
            lr: 0.1,
            comm_bytes: k as f64 * 780.0,
        }
    }

    fn toy_checkpoint() -> RunCheckpoint {
        RunCheckpoint {
            points: vec![toy_point(0), toy_point(1)],
            interval: 3,
            last_loss: 0.42,
            tau: 4,
            next_record: 12.0,
            initial_loss: 1.3,
            initial_lr: 0.1,
            scheduler: SchedulerState {
                prev_tau: Some(4),
                prev_lr_bits: Some(0.1f32.to_bits()),
                codec: Some(CodecSpec::TopK { ratio: 0.05 }),
            },
            cluster: ClusterCheckpoint {
                clock: 11.25,
                iterations: 20,
                rounds: 5,
                comm_time: 2.5,
                compute_time: 8.75,
                comm_bytes: 3900.0,
                peak_payload_bytes: 780.0,
                current_lr: 0.1,
                codec: CodecSpec::TopK { ratio: 0.05 },
                delay_rng: [1, 2, 3, 4],
                block: Some((vec![0.5, -0.5], vec![1.0, f32::NAN])),
                fault: Some(FaultCheckpoint {
                    rng: [13, 14, 15, 16],
                    down_until: vec![0, 9],
                    missed: vec![0, 3],
                    stats: crate::FaultStats {
                        crashes: 2,
                        rejoins: 1,
                        drops: 4,
                        corruptions: 1,
                        stragglers: 3,
                        retransmits: 5,
                        degraded_rounds: 6,
                    },
                }),
                workers: vec![WorkerCheckpoint {
                    params: vec![1.0, -0.0],
                    momentum_buffers: vec![Tensor::from_vec(vec![0.25, 0.75], &[2]).unwrap()],
                    rng: [5, 6, 7, 8],
                    comm_rng: [9, 10, 11, 12],
                    steps_taken: 20,
                    shuffle_order: vec![1, 0, 2],
                    shuffle_cursor: 2,
                    epochs_completed: 6,
                    feedback: ErrorFeedback::new(),
                    sync_reference: vec![1.0, -0.0],
                    track_reference: true,
                }],
            },
        }
    }

    #[test]
    fn trace_roundtrip_is_bit_exact() {
        let trace = RunTrace {
            name: "adacomm".to_string(),
            points: vec![toy_point(0), toy_point(1), toy_point(2)],
            peak_payload_bytes: 780.0,
            rounds: 17,
        };
        let mut w = ByteWriter::new();
        write_run_trace(&mut w, &trace);
        let bytes = w.into_vec();
        let back = read_run_trace(&mut ByteReader::new(&bytes)).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn checkpoint_roundtrip_preserves_every_field() {
        let ck = toy_checkpoint();
        let back = RunCheckpoint::from_bytes(&ck.to_bytes()).unwrap();
        assert_eq!(back.points, ck.points);
        assert_eq!(back.interval, ck.interval);
        assert_eq!(back.last_loss.to_bits(), ck.last_loss.to_bits());
        assert_eq!(back.tau, ck.tau);
        assert_eq!(back.scheduler, ck.scheduler);
        assert_eq!(back.cluster.delay_rng, ck.cluster.delay_rng);
        assert_eq!(back.cluster.codec, ck.cluster.codec);
        let (buf, prev) = back.cluster.block.as_ref().unwrap();
        assert_eq!(buf, &[0.5, -0.5]);
        assert_eq!(back.cluster.fault, ck.cluster.fault);
        // NaN travels bit-exactly through the raw-bit encoding.
        assert!(prev[1].is_nan());
        let w = &back.cluster.workers[0];
        assert_eq!(w.params[1].to_bits(), (-0.0f32).to_bits());
        assert_eq!(w.shuffle_order, vec![1, 0, 2]);
        assert!(w.track_reference);
        assert_eq!(w.momentum_buffers[0].as_slice(), &[0.25, 0.75]);
    }

    #[test]
    fn every_truncation_is_rejected() {
        let bytes = toy_checkpoint().to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                RunCheckpoint::from_bytes(&bytes[..cut]).is_err(),
                "truncation at {cut} of {} decoded",
                bytes.len()
            );
        }
    }

    #[test]
    fn every_single_bit_flip_in_the_header_or_payload_is_rejected() {
        let bytes = toy_checkpoint().to_bytes();
        // Flipping any payload bit trips the CRC; flipping header bits
        // trips magic/version/length checks. (Exhaustive over bytes,
        // one bit each, to keep the test fast.)
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 1;
            assert!(
                RunCheckpoint::from_bytes(&corrupt).is_err(),
                "bit flip at byte {i} decoded"
            );
        }
    }

    #[test]
    fn stale_version_is_rejected() {
        let mut bytes = toy_checkpoint().to_bytes();
        bytes[4] = bytes[4].wrapping_add(1);
        let err = RunCheckpoint::from_bytes(&bytes).unwrap_err();
        assert!(err.contains("version"), "got: {err}");
    }

    #[test]
    fn wrong_magic_and_empty_input_are_rejected() {
        assert!(RunCheckpoint::from_bytes(b"").is_err());
        assert!(RunCheckpoint::from_bytes(b"RIFF").is_err());
        let mut bytes = toy_checkpoint().to_bytes();
        bytes[0] = b'X';
        let err = RunCheckpoint::from_bytes(&bytes).unwrap_err();
        assert!(err.contains("magic"), "got: {err}");
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = toy_checkpoint().to_bytes();
        bytes.push(0);
        assert!(RunCheckpoint::from_bytes(&bytes).is_err());
    }
}
