//! Seeded, deterministic fault injection and graceful-degradation
//! aggregation for the PASGD cluster.
//!
//! The paper's premise is that local-update SGD must tolerate "inherent
//! system variability", yet the baseline simulator models a perfect
//! cluster. This module adds the missing failure modes as a *pure function
//! of the run's seed*:
//!
//! * **crashes** — a worker goes down mid-round and rejoins `k` rounds
//!   later with stale parameters (it missed the intervening averages);
//! * **upload loss** — a worker's averaging message is dropped or
//!   corrupted in flight; the transport detects it and retransmits, so the
//!   round's average is unchanged but the simulated clock and byte counters
//!   are charged one extra bytes-aware communication delay per retransmit;
//! * **stragglers** — a worker's compute time for the round is multiplied
//!   by a spike factor.
//!
//! Paired with the fault model is an [`AggregationPolicy`] deciding *who*
//! is averaged each round: the classic full barrier, quorum-of-m partial
//! averaging with a per-round deadline, or bounded-staleness inclusion
//! that force-includes workers left behind too many rounds.
//!
//! Determinism contract: all fault draws come from a dedicated
//! `StdRng` seeded with `config.seed ^` [`FAULT_SEED_SALT`], advanced a
//! fixed number of times per round given the cluster state, and the whole
//! fault state (RNG words, downtime table, staleness table, counters) is
//! captured in [`FaultCheckpoint`] so a resumed run replays bit-identically
//! even when a fault fires in the round straddling the checkpoint. A
//! [`FaultConfig`] that [`FaultConfig::is_active`] returns `false` for is
//! **provably a no-op**: the cluster never constructs the fault state and
//! takes the exact pre-fault code path with zero extra RNG draws.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// XOR salt applied to the run seed to derive the fault RNG stream,
/// keeping it independent of the model, data, and delay streams.
pub const FAULT_SEED_SALT: u64 = 0xFA17_FA17_FA17_FA17;

/// Per-round fault probabilities and magnitudes, all drawn from the run's
/// dedicated fault RNG stream.
///
/// The default ([`FaultSpec::NONE`]) injects nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Per-round probability that an up worker crashes before the round.
    pub crash_prob: f64,
    /// Rounds a crashed worker stays down before rejoining with stale
    /// parameters. Must be at least 1.
    pub rejoin_after: u64,
    /// Per-participant probability that an upload is dropped in flight
    /// (detected and retransmitted at full cost).
    pub drop_prob: f64,
    /// Per-participant probability that an upload arrives corrupted
    /// (checksum fails; retransmitted at full cost).
    pub corrupt_prob: f64,
    /// Per-round probability that an up worker straggles this round.
    pub straggler_prob: f64,
    /// Multiplier applied to a straggler's compute time. Must be ≥ 1.
    pub straggler_factor: f64,
}

impl FaultSpec {
    /// The no-fault spec: every probability zero.
    pub const NONE: FaultSpec = FaultSpec {
        crash_prob: 0.0,
        rejoin_after: 1,
        drop_prob: 0.0,
        corrupt_prob: 0.0,
        straggler_prob: 0.0,
        straggler_factor: 1.0,
    };

    /// Whether this spec injects nothing at all.
    pub fn is_noop(&self) -> bool {
        self.crash_prob == 0.0
            && self.drop_prob == 0.0
            && self.corrupt_prob == 0.0
            && self.straggler_prob == 0.0
    }

    /// Validates the spec.
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `[0, 1)`, `rejoin_after == 0`,
    /// or `straggler_factor < 1`.
    pub fn validate(&self) {
        for (name, p) in [
            ("crash_prob", self.crash_prob),
            ("drop_prob", self.drop_prob),
            ("corrupt_prob", self.corrupt_prob),
            ("straggler_prob", self.straggler_prob),
        ] {
            assert!(
                p.is_finite() && (0.0..1.0).contains(&p),
                "{name} must be in [0, 1), got {p}"
            );
        }
        assert!(self.rejoin_after >= 1, "rejoin_after must be at least 1");
        assert!(
            self.straggler_factor.is_finite() && self.straggler_factor >= 1.0,
            "straggler_factor must be at least 1, got {}",
            self.straggler_factor
        );
    }
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec::NONE
    }
}

/// Who gets averaged each round when workers are slow or down.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum AggregationPolicy {
    /// Wait for every up worker (the paper's eq. 3 barrier).
    #[default]
    FullBarrier,
    /// Average the fastest `quorum` up workers, but never wait past
    /// `deadline_secs` of round compute time; workers that miss the cutoff
    /// are excluded from this round's average.
    Quorum {
        /// Workers to wait for (clamped to the number currently up).
        quorum: usize,
        /// Per-round compute-time deadline in simulated seconds.
        deadline_secs: f64,
    },
    /// Quorum cutoff plus forced inclusion of any up worker that has
    /// already missed `max_staleness` consecutive averages, bounding how
    /// stale a worker's contribution can get.
    BoundedStaleness {
        /// Workers to wait for (clamped to the number currently up).
        quorum: usize,
        /// Missed-round bound that forces a late worker into the average.
        max_staleness: u64,
    },
}

impl AggregationPolicy {
    /// Validates the policy.
    ///
    /// # Panics
    ///
    /// Panics if a quorum is zero, a deadline is not positive and finite,
    /// or `max_staleness == 0`.
    pub fn validate(&self) {
        match *self {
            AggregationPolicy::FullBarrier => {}
            AggregationPolicy::Quorum {
                quorum,
                deadline_secs,
            } => {
                assert!(quorum >= 1, "quorum must be at least 1");
                assert!(
                    deadline_secs.is_finite() && deadline_secs > 0.0,
                    "deadline_secs must be positive and finite, got {deadline_secs}"
                );
            }
            AggregationPolicy::BoundedStaleness {
                quorum,
                max_staleness,
            } => {
                assert!(quorum >= 1, "quorum must be at least 1");
                assert!(max_staleness >= 1, "max_staleness must be at least 1");
            }
        }
    }

    /// Selects the participant set for one round.
    ///
    /// `up` lists the indices of up workers in ascending order, `times[i]`
    /// is worker `i`'s compute time for the round, and `missed[i]` counts
    /// how many consecutive averages worker `i` has missed. Returns
    /// participant indices in ascending order; the set is never empty when
    /// `up` is non-empty (a quorum that nobody meets degrades to the single
    /// fastest worker).
    pub fn select(&self, up: &[usize], times: &[f64], missed: &[u64]) -> Vec<usize> {
        if up.is_empty() {
            return Vec::new();
        }
        match *self {
            AggregationPolicy::FullBarrier => up.to_vec(),
            AggregationPolicy::Quorum {
                quorum,
                deadline_secs,
            } => {
                let cutoff = Self::quorum_cutoff(up, times, quorum).min(deadline_secs);
                let mut chosen: Vec<usize> =
                    up.iter().copied().filter(|&i| times[i] <= cutoff).collect();
                if chosen.is_empty() {
                    chosen.push(Self::fastest(up, times));
                }
                chosen
            }
            AggregationPolicy::BoundedStaleness {
                quorum,
                max_staleness,
            } => {
                let cutoff = Self::quorum_cutoff(up, times, quorum);
                let mut chosen: Vec<usize> = up
                    .iter()
                    .copied()
                    .filter(|&i| times[i] <= cutoff || missed[i] >= max_staleness)
                    .collect();
                if chosen.is_empty() {
                    chosen.push(Self::fastest(up, times));
                }
                chosen
            }
        }
    }

    /// Compute time of the `quorum`-th fastest up worker (ties broken by
    /// worker index), with the quorum clamped into `[1, up.len()]`.
    fn quorum_cutoff(up: &[usize], times: &[f64], quorum: usize) -> f64 {
        let q = quorum.min(up.len()).max(1);
        let mut order: Vec<usize> = up.to_vec();
        order.sort_by(|&a, &b| times[a].total_cmp(&times[b]).then(a.cmp(&b)));
        times[order[q - 1]]
    }

    /// The up worker with the smallest compute time (ties → lowest index).
    fn fastest(up: &[usize], times: &[f64]) -> usize {
        *up.iter()
            .min_by(|&&a, &&b| times[a].total_cmp(&times[b]).then(a.cmp(&b)))
            .expect("fastest() requires a non-empty up set")
    }
}

/// The full fault-injection configuration attached to a cluster: what can
/// go wrong ([`FaultSpec`]) and how aggregation degrades when it does
/// ([`AggregationPolicy`]).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultConfig {
    /// What faults fire, and how often.
    pub spec: FaultSpec,
    /// Who is averaged each round.
    pub policy: AggregationPolicy,
}

impl FaultConfig {
    /// The default fault-free configuration: no injection, full barrier.
    pub const NONE: FaultConfig = FaultConfig {
        spec: FaultSpec::NONE,
        policy: AggregationPolicy::FullBarrier,
    };

    /// Whether this configuration changes cluster behaviour at all. When
    /// `false` the cluster takes the exact fault-free code path with zero
    /// extra RNG draws.
    pub fn is_active(&self) -> bool {
        !self.spec.is_noop() || self.policy != AggregationPolicy::FullBarrier
    }

    /// Validates both halves.
    ///
    /// # Panics
    ///
    /// Panics if either the spec or the policy is invalid.
    pub fn validate(&self) {
        self.spec.validate();
        self.policy.validate();
    }
}

/// Cumulative fault-event counters for one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// Workers crashed.
    pub crashes: u64,
    /// Workers rejoined after a crash.
    pub rejoins: u64,
    /// Uploads dropped in flight.
    pub drops: u64,
    /// Uploads corrupted in flight.
    pub corruptions: u64,
    /// Straggler spikes applied.
    pub stragglers: u64,
    /// Retransmissions charged (one per drop or corruption).
    pub retransmits: u64,
    /// Rounds averaged over a strict subset of the cluster.
    pub degraded_rounds: u64,
}

/// The resumable fault state captured in a cluster checkpoint: the fault
/// RNG words plus the downtime/staleness tables and counters.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultCheckpoint {
    /// Raw xoshiro256++ state of the fault RNG.
    pub rng: [u64; 4],
    /// Per-worker round index before which the worker stays down
    /// (0 = up, since a crash at round `r` sets this to `r + k ≥ 1`).
    pub down_until: Vec<u64>,
    /// Per-worker count of consecutive missed averages.
    pub missed: Vec<u64>,
    /// Cumulative fault counters.
    pub stats: FaultStats,
}

/// Live fault-injection state owned by a cluster with an active
/// [`FaultConfig`].
#[derive(Debug, Clone)]
pub(crate) struct FaultState {
    pub(crate) rng: StdRng,
    pub(crate) down_until: Vec<u64>,
    pub(crate) missed: Vec<u64>,
    pub(crate) stats: FaultStats,
}

impl FaultState {
    /// Creates the fault state for `workers` nodes from the run seed.
    pub(crate) fn new(seed: u64, workers: usize) -> Self {
        FaultState {
            rng: StdRng::seed_from_u64(seed ^ FAULT_SEED_SALT),
            down_until: vec![0; workers],
            missed: vec![0; workers],
            stats: FaultStats::default(),
        }
    }

    /// Indices of up workers in ascending order at round `round_index`.
    pub(crate) fn up_workers(&self, round_index: u64) -> Vec<usize> {
        (0..self.down_until.len())
            .filter(|&i| round_index >= self.down_until[i])
            .collect()
    }

    /// Rejoin sweep at the start of round `round_index`: any worker whose
    /// downtime has elapsed comes back up (with whatever stale parameters
    /// it last held).
    pub(crate) fn sweep_rejoins(&mut self, round_index: u64) -> u64 {
        let mut rejoined = 0;
        for down in self.down_until.iter_mut() {
            if *down != 0 && round_index >= *down {
                *down = 0;
                rejoined += 1;
            }
        }
        self.stats.rejoins += rejoined;
        rejoined
    }

    /// Crash draws for round `round_index`: one Bernoulli draw per up
    /// worker in worker order. If every worker would be down afterwards the
    /// first up worker is deterministically revived so training can
    /// continue (a cluster with zero survivors has no meaningful round).
    pub(crate) fn draw_crashes(&mut self, round_index: u64, spec: &FaultSpec) -> u64 {
        let mut crashed = 0;
        let mut survivor: Option<usize> = None;
        for i in 0..self.down_until.len() {
            if round_index < self.down_until[i] {
                continue; // already down
            }
            if self.rng.gen_bool(spec.crash_prob) {
                self.down_until[i] = round_index + spec.rejoin_after;
                crashed += 1;
            } else if survivor.is_none() {
                survivor = Some(i);
            }
        }
        if survivor.is_none() {
            if let Some(first) = self
                .down_until
                .iter()
                .position(|&down| down == round_index + spec.rejoin_after)
            {
                self.down_until[first] = 0;
                crashed -= 1;
            }
        }
        self.stats.crashes += crashed;
        crashed
    }

    /// Updates the staleness table after a round: participants reset to
    /// zero, everyone else (down workers included) accrues one miss.
    pub(crate) fn note_participants(&mut self, participants: &[usize]) {
        for m in self.missed.iter_mut() {
            *m += 1;
        }
        for &i in participants {
            self.missed[i] = 0;
        }
    }

    /// Captures the state for a checkpoint.
    pub(crate) fn export_checkpoint(&self) -> FaultCheckpoint {
        FaultCheckpoint {
            rng: self.rng.state(),
            down_until: self.down_until.clone(),
            missed: self.missed.clone(),
            stats: self.stats,
        }
    }

    /// Restores state captured by [`FaultState::export_checkpoint`].
    pub(crate) fn restore_checkpoint(&mut self, frame: &FaultCheckpoint) {
        self.rng = StdRng::from_state(frame.rng);
        self.down_until = frame.down_until.clone();
        self.missed = frame.missed.clone();
        self.stats = frame.stats;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_inactive() {
        let config = FaultConfig::default();
        assert!(!config.is_active());
        assert!(config.spec.is_noop());
        config.validate();
        assert_eq!(config, FaultConfig::NONE);
    }

    #[test]
    fn any_probability_activates() {
        for spec in [
            FaultSpec {
                crash_prob: 0.1,
                ..FaultSpec::NONE
            },
            FaultSpec {
                drop_prob: 0.1,
                ..FaultSpec::NONE
            },
            FaultSpec {
                corrupt_prob: 0.1,
                ..FaultSpec::NONE
            },
            FaultSpec {
                straggler_prob: 0.1,
                straggler_factor: 4.0,
                ..FaultSpec::NONE
            },
        ] {
            let config = FaultConfig {
                spec,
                policy: AggregationPolicy::FullBarrier,
            };
            assert!(config.is_active(), "{spec:?}");
            config.validate();
        }
    }

    #[test]
    fn non_barrier_policy_activates_without_faults() {
        let config = FaultConfig {
            spec: FaultSpec::NONE,
            policy: AggregationPolicy::Quorum {
                quorum: 2,
                deadline_secs: 10.0,
            },
        };
        assert!(config.is_active());
    }

    #[test]
    #[should_panic(expected = "crash_prob must be in [0, 1)")]
    fn crash_prob_one_rejected() {
        FaultSpec {
            crash_prob: 1.0,
            ..FaultSpec::NONE
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "rejoin_after must be at least 1")]
    fn zero_rejoin_rejected() {
        FaultSpec {
            rejoin_after: 0,
            ..FaultSpec::NONE
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "straggler_factor must be at least 1")]
    fn shrinking_straggler_rejected() {
        FaultSpec {
            straggler_factor: 0.5,
            ..FaultSpec::NONE
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "quorum must be at least 1")]
    fn zero_quorum_rejected() {
        AggregationPolicy::Quorum {
            quorum: 0,
            deadline_secs: 1.0,
        }
        .validate();
    }

    #[test]
    fn full_barrier_selects_all_up() {
        let policy = AggregationPolicy::FullBarrier;
        let times = [3.0, 1.0, 2.0, 4.0];
        assert_eq!(policy.select(&[0, 2, 3], &times, &[0; 4]), vec![0, 2, 3]);
        assert!(policy.select(&[], &times, &[0; 4]).is_empty());
    }

    #[test]
    fn quorum_takes_fastest_q() {
        let policy = AggregationPolicy::Quorum {
            quorum: 2,
            deadline_secs: 100.0,
        };
        let times = [3.0, 1.0, 2.0, 4.0];
        // Fastest two of all four are workers 1 (1.0) and 2 (2.0).
        assert_eq!(policy.select(&[0, 1, 2, 3], &times, &[0; 4]), vec![1, 2]);
    }

    #[test]
    fn quorum_ties_admit_equal_times() {
        let policy = AggregationPolicy::Quorum {
            quorum: 1,
            deadline_secs: 100.0,
        };
        // Both workers tie at the cutoff: both get in (cutoff is a time,
        // not a head-count), keeping selection order-independent.
        let times = [2.0, 2.0];
        assert_eq!(policy.select(&[0, 1], &times, &[0; 2]), vec![0, 1]);
    }

    #[test]
    fn quorum_deadline_beats_quorum_time() {
        let policy = AggregationPolicy::Quorum {
            quorum: 3,
            deadline_secs: 2.5,
        };
        let times = [3.0, 1.0, 2.0, 4.0];
        // The 3rd-fastest time is 3.0 but the deadline is 2.5, so only
        // workers under 2.5 participate.
        assert_eq!(policy.select(&[0, 1, 2, 3], &times, &[0; 4]), vec![1, 2]);
    }

    #[test]
    fn quorum_never_empty() {
        let policy = AggregationPolicy::Quorum {
            quorum: 2,
            deadline_secs: 0.5,
        };
        let times = [3.0, 1.0, 2.0];
        // Nobody beats the deadline: degrade to the single fastest worker.
        assert_eq!(policy.select(&[0, 1, 2], &times, &[0; 3]), vec![1]);
    }

    #[test]
    fn quorum_clamps_to_up_count() {
        let policy = AggregationPolicy::Quorum {
            quorum: 8,
            deadline_secs: 100.0,
        };
        let times = [3.0, 1.0];
        assert_eq!(policy.select(&[0, 1], &times, &[0; 2]), vec![0, 1]);
    }

    #[test]
    fn bounded_staleness_forces_late_workers_in() {
        let policy = AggregationPolicy::BoundedStaleness {
            quorum: 1,
            max_staleness: 2,
        };
        let times = [1.0, 5.0, 9.0];
        let missed = [0, 2, 1];
        // Quorum of 1 admits only worker 0, but worker 1 hit the staleness
        // bound and is forced in; worker 2 (1 miss) still waits.
        assert_eq!(policy.select(&[0, 1, 2], &times, &missed), vec![0, 1]);
    }

    #[test]
    fn fault_state_round_trips_through_checkpoint() {
        let spec = FaultSpec {
            crash_prob: 0.5,
            rejoin_after: 2,
            ..FaultSpec::NONE
        };
        let mut state = FaultState::new(42, 4);
        for round in 0..6 {
            state.sweep_rejoins(round);
            state.draw_crashes(round, &spec);
            let up = state.up_workers(round);
            assert!(!up.is_empty(), "survivor guarantee violated");
            state.note_participants(&up);
        }
        let frame = state.export_checkpoint();
        let mut restored = FaultState::new(7, 4);
        restored.restore_checkpoint(&frame);
        assert_eq!(restored.export_checkpoint(), frame);
        // Both replicas must draw identically from here on.
        let mut a = state;
        let mut b = restored;
        for round in 6..12 {
            a.sweep_rejoins(round);
            b.sweep_rejoins(round);
            assert_eq!(a.draw_crashes(round, &spec), b.draw_crashes(round, &spec));
            assert_eq!(a.up_workers(round), b.up_workers(round));
        }
    }

    #[test]
    fn survivor_guarantee_revives_first_crashed_worker() {
        let spec = FaultSpec {
            crash_prob: 0.999,
            rejoin_after: 3,
            ..FaultSpec::NONE
        };
        let mut state = FaultState::new(1, 3);
        for round in 0..50 {
            state.sweep_rejoins(round);
            state.draw_crashes(round, &spec);
            assert!(
                !state.up_workers(round).is_empty(),
                "round {round}: every worker down"
            );
        }
    }

    #[test]
    fn staleness_table_tracks_missed_rounds() {
        let mut state = FaultState::new(3, 3);
        state.note_participants(&[0, 2]);
        assert_eq!(state.missed, vec![0, 1, 0]);
        state.note_participants(&[0]);
        assert_eq!(state.missed, vec![0, 2, 1]);
        state.note_participants(&[0, 1, 2]);
        assert_eq!(state.missed, vec![0, 0, 0]);
    }
}
