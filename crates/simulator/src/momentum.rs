//! Momentum handling at averaging steps, including the paper's block
//! momentum (Section 5.3.1, eqs. 24–25).

/// How momentum interacts with periodic averaging.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MomentumMode {
    /// No momentum anywhere (the paper's Section 5.2 setting).
    None,
    /// Plain local momentum on every worker.
    ///
    /// With `reset_at_sync = false` this is the *naive* scheme the paper
    /// warns about: the buffer built before an averaging step "can
    /// side-track the SGD descent direction" right after it. Kept for the
    /// ablation benches. With `reset_at_sync = true`, buffers are cleared at
    /// every averaging step but no global momentum is added.
    Local {
        /// Momentum factor β for the local buffers.
        beta: f32,
        /// Whether to clear local buffers at each averaging step.
        reset_at_sync: bool,
    },
    /// The paper's block momentum (eqs. 24–25): a *global* buffer over the
    /// accumulated per-round step, plus local momentum that restarts at
    /// every averaging step.
    Block {
        /// Global momentum factor `β_glob` (paper: 0.3).
        global: f32,
        /// Local momentum factor (paper: 0.9), reset at each sync.
        local: f32,
    },
}

impl MomentumMode {
    /// The paper's block-momentum configuration (`β_glob = 0.3`,
    /// local `0.9`), following Lin et al. (2018).
    pub fn paper_block() -> Self {
        MomentumMode::Block {
            global: 0.3,
            local: 0.9,
        }
    }

    /// The local momentum factor workers should run with (0 for `None`).
    pub fn local_beta(&self) -> f32 {
        match *self {
            MomentumMode::None => 0.0,
            MomentumMode::Local { beta, .. } => beta,
            MomentumMode::Block { local, .. } => local,
        }
    }

    /// Whether worker momentum buffers are cleared at an averaging step
    /// that closed a local-update period of length `tau`.
    ///
    /// For block momentum the reset only applies to genuine local-update
    /// periods (`tau > 1`): the paper notes that "in the fully synchronous
    /// case, there is no need to introduce the block momentum", and
    /// clearing the buffer after every single step would strip a τ = 1
    /// phase of momentum entirely.
    pub fn resets_local_at_sync(&self, tau: usize) -> bool {
        match *self {
            MomentumMode::None => false,
            MomentumMode::Local { reset_at_sync, .. } => reset_at_sync && tau > 1,
            MomentumMode::Block { .. } => tau > 1,
        }
    }

    /// Validates the factors.
    ///
    /// # Panics
    ///
    /// Panics if any factor is outside `[0, 1)`.
    pub fn validate(&self) {
        let check = |v: f32, name: &str| {
            assert!(
                (0.0..1.0).contains(&v),
                "{name} momentum factor must be in [0, 1), got {v}"
            );
        };
        match *self {
            MomentumMode::None => {}
            MomentumMode::Local { beta, .. } => check(beta, "local"),
            MomentumMode::Block { global, local } => {
                check(global, "global");
                check(local, "local");
            }
        }
    }
}

/// State for the global (block) momentum buffer of eqs. 24–25.
///
/// At the `j`-th averaging step, with `x_sync` the parameters broadcast at
/// the previous step and `x_avg` the plain average of the local models, the
/// accumulated round gradient is `G_j = (x_sync − x_avg)/η`. The update is
///
/// ```text
/// u_j     = β_glob · u_{j−1} + G_j          (24)
/// x_next  = x_sync − η · u_j                 (25)
/// ```
///
/// With `β_glob = 0` this reduces exactly to plain averaging.
///
/// The state lives on flat parameter planes (see
/// [`Network::copy_params_into`](nn::Network::copy_params_into)); the
/// per-element float sequence matches the earlier tensor-by-tensor
/// implementation exactly, so block-momentum runs are bit-identical across
/// the flat-plane refactor.
#[derive(Debug, Clone)]
pub struct BlockMomentum {
    global_beta: f32,
    buffer: Vec<f32>,
    prev_sync: Vec<f32>,
}

impl BlockMomentum {
    /// Creates block-momentum state anchored at the initial synchronized
    /// parameter plane.
    ///
    /// # Panics
    ///
    /// Panics if `global_beta` is outside `[0, 1)` or `initial` is empty.
    pub fn new(global_beta: f32, initial: Vec<f32>) -> Self {
        assert!(
            (0.0..1.0).contains(&global_beta),
            "global momentum factor must be in [0, 1), got {global_beta}"
        );
        assert!(!initial.is_empty(), "empty parameter snapshot");
        BlockMomentum {
            global_beta,
            buffer: vec![0.0f32; initial.len()],
            prev_sync: initial,
        }
    }

    /// Records a τ = 1 synchronization without applying global momentum,
    /// keeping the anchor point current so a later τ > 1 period computes
    /// its accumulated step `G_j` from the right base.
    ///
    /// # Panics
    ///
    /// Panics if the parameter plane length changed.
    pub fn observe_sync(&mut self, averaged: &[f32]) {
        assert_eq!(
            averaged.len(),
            self.prev_sync.len(),
            "parameter structure changed between rounds"
        );
        self.prev_sync.copy_from_slice(averaged);
    }

    /// Applies eqs. 24–25 into `out`: consumes the plain average of the
    /// local models and writes the parameters to broadcast, updating the
    /// momentum buffer and anchor in place (no allocation).
    ///
    /// `lr` must be the learning rate the workers used during the round
    /// (needed to reconstruct `G_j` from the parameter displacement).
    ///
    /// # Panics
    ///
    /// Panics if the lengths mismatch or `lr` is not positive.
    pub fn apply_into(&mut self, averaged: &[f32], lr: f32, out: &mut [f32]) {
        assert!(lr > 0.0 && lr.is_finite(), "invalid learning rate {lr}");
        assert_eq!(
            averaged.len(),
            self.prev_sync.len(),
            "parameter structure changed between rounds"
        );
        assert_eq!(out.len(), self.prev_sync.len(), "output plane length");
        let beta = self.global_beta;
        let inv_lr = 1.0 / lr;
        for ((prev, &avg), (buf, o)) in self
            .prev_sync
            .iter_mut()
            .zip(averaged)
            .zip(self.buffer.iter_mut().zip(out.iter_mut()))
        {
            // G_j = (prev − avg)/η.
            let g = (*prev - avg) * inv_lr;
            // u = β·u + G.
            *buf = *buf * beta + g;
            // x_next = prev − η·u.
            let x = *prev + (-lr) * *buf;
            *o = x;
            *prev = x;
        }
    }

    /// Allocating convenience around [`BlockMomentum::apply_into`].
    pub fn apply(&mut self, averaged: &[f32], lr: f32) -> Vec<f32> {
        let mut out = vec![0.0f32; averaged.len()];
        self.apply_into(averaged, lr, &mut out);
        out
    }

    /// Borrows the `(buffer, prev_sync)` planes for a run checkpoint.
    pub fn state(&self) -> (&[f32], &[f32]) {
        (&self.buffer, &self.prev_sync)
    }

    /// Restores planes captured by [`BlockMomentum::state`].
    ///
    /// Returns an error (leaving the state untouched) if either plane's
    /// length disagrees with the anchored parameter plane — corrupted
    /// checkpoints must surface as recoverable failures, not panics.
    pub fn restore_state(&mut self, buffer: Vec<f32>, prev_sync: Vec<f32>) -> Result<(), String> {
        let n = self.prev_sync.len();
        if buffer.len() != n || prev_sync.len() != n {
            return Err(format!(
                "block-momentum planes of {}/{} entries for a model of {n} parameters",
                buffer.len(),
                prev_sync.len()
            ));
        }
        self.buffer = buffer;
        self.prev_sync = prev_sync;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_global_beta_is_plain_averaging() {
        let mut bm = BlockMomentum::new(0.0, vec![1.0, 1.0]);
        let avg = [0.5f32, 0.7];
        let out = bm.apply(&avg, 0.1);
        for (o, a) in out.iter().zip(avg.iter()) {
            assert!((o - a).abs() < 1e-6, "got {out:?}");
        }
    }

    #[test]
    fn momentum_amplifies_consistent_progress() {
        // Two rounds moving in the same direction: with beta > 0 the second
        // broadcast overshoots the plain average (heavy-ball behaviour).
        let mut bm = BlockMomentum::new(0.5, vec![1.0]);
        let lr = 0.1;
        let first = bm.apply(&[0.8], lr);
        assert!((first[0] - 0.8).abs() < 1e-6, "first round unchanged");
        // Second round: plain average would be 0.6.
        let second = bm.apply(&[0.6], lr);
        assert!(
            second[0] < 0.6 - 1e-6,
            "expected overshoot below 0.6, got {}",
            second[0]
        );
        // Exactly: G1 = (1-0.8)/.1 = 2, u1 = 2, x1 = 0.8.
        // G2 = (0.8-0.6)/.1 = 2, u2 = 0.5*2+2 = 3, x2 = 0.8 - 0.3 = 0.5.
        assert!((second[0] - 0.5).abs() < 1e-5);
    }

    #[test]
    fn paper_block_factors() {
        let m = MomentumMode::paper_block();
        assert_eq!(m.local_beta(), 0.9);
        assert!(m.resets_local_at_sync(5));
        assert!(!m.resets_local_at_sync(1));
        m.validate();
    }

    #[test]
    fn local_mode_flags() {
        let naive = MomentumMode::Local {
            beta: 0.9,
            reset_at_sync: false,
        };
        assert!(!naive.resets_local_at_sync(5));
        assert_eq!(naive.local_beta(), 0.9);
        assert_eq!(MomentumMode::None.local_beta(), 0.0);
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1)")]
    fn invalid_global_beta_rejected() {
        let _ = BlockMomentum::new(1.0, vec![0.0]);
    }

    #[test]
    #[should_panic(expected = "parameter structure changed")]
    fn structure_change_detected() {
        let mut bm = BlockMomentum::new(0.3, vec![0.0]);
        let _ = bm.apply(&[0.0, 1.0], 0.1);
    }
}
