//! Distributed periodic-averaging SGD (PASGD) simulator with a simulated
//! wall clock — the training substrate of the AdaComm reproduction.
//!
//! The paper runs PASGD on a 4/8-node GPU cluster; this crate reproduces the
//! *algorithm* faithfully while replacing the physical cluster with:
//!
//! * **real training mathematics** — each [`Worker`] runs genuine mini-batch
//!   SGD (with optional momentum and weight decay) on its own shard of the
//!   dataset, and averaging steps genuinely average the model parameters
//!   (eq. 3 of the paper);
//! * **a simulated clock** — wall-clock time advances according to the
//!   paper's own delay model (`delay::RuntimeModel`): a round of `τ` local
//!   steps costs `max_i(Σ_k Y_{i,k}) + D`.
//!
//! The two-layer API mirrors how the experiments are written:
//!
//! * [`PasgdCluster`] — one averaging round at a time, full control
//!   (used by the Figure 14 local-vs-synchronized probe);
//! * [`run_experiment`] / [`ExperimentSuite`] — the paper's interval
//!   protocol: consult a `CommSchedule` every `T0` seconds, apply a
//!   learning-rate schedule, record a [`RunTrace`].
//!
//! Block momentum (Section 5.3.1, eqs. 24–25) is implemented in
//! [`BlockMomentum`] and selected via [`MomentumMode`].
//!
//! # Example
//!
//! ```
//! use pasgd_sim::{run_experiment, ClusterConfig, ExperimentConfig};
//! use adacomm::{AdaComm, LrSchedule};
//! use data::GaussianMixture;
//! use delay::{CommModel, DelayDistribution, RuntimeModel};
//!
//! let split = GaussianMixture::small_test().generate(0);
//! let runtime = RuntimeModel::new(
//!     DelayDistribution::constant(0.1),
//!     CommModel::constant(0.1),
//!     2,
//! );
//! let trace = run_experiment(
//!     nn::models::mlp_classifier(8, &[16], 3, 0),
//!     split,
//!     runtime,
//!     ClusterConfig { workers: 2, batch_size: 8, ..ClusterConfig::default() },
//!     &mut AdaComm::with_tau0(8),
//!     &LrSchedule::constant(0.05),
//!     &ExperimentConfig {
//!         interval_secs: 5.0,
//!         total_secs: 15.0,
//!         record_every_secs: 5.0,
//!         gate_lr_on_tau: false,
//!     },
//! );
//! assert_eq!(trace.name, "adacomm");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
mod cluster;
mod experiment;
mod fault;
mod momentum;
mod topology;
mod worker;

pub use checkpoint::{ClusterCheckpoint, RunCheckpoint, WorkerCheckpoint};
pub use cluster::{ClusterConfig, PasgdCluster};
pub use experiment::{
    run_experiment, run_experiment_cancellable, run_experiment_resumable, ExperimentConfig,
    ExperimentSuite, RunOutcome, RunTrace, TracePoint,
};
pub use fault::{
    AggregationPolicy, FaultCheckpoint, FaultConfig, FaultSpec, FaultStats, FAULT_SEED_SALT,
};
pub use momentum::{BlockMomentum, MomentumMode};
pub use topology::AveragingStrategy;
pub use worker::Worker;
