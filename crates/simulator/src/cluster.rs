//! The PASGD cluster: local-update rounds, periodic averaging, and the
//! simulated wall clock.

use crate::checkpoint::ClusterCheckpoint;
use crate::fault::FaultState;
use crate::{AveragingStrategy, BlockMomentum, FaultConfig, FaultStats, MomentumMode, Worker};
use delay::RuntimeModel;
use gradcomp::CodecSpec;
use nn::{Network, Sgd};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use tensor::Tensor;

/// Rows per evaluation chunk job. Evaluation sets larger than one chunk
/// run their forward passes as parallel pool jobs (see
/// [`PasgdCluster::eval_train_loss`]); the fixed chunk size keeps the
/// row partition — and therefore every float — independent of the
/// machine's core count.
const EVAL_CHUNK_ROWS: usize = 256;

/// An evaluation set pre-split into row chunks for pool jobs.
struct EvalSet {
    chunks: Vec<(Tensor, Vec<usize>)>,
    rows: usize,
}

impl EvalSet {
    fn gather(ds: &data::Dataset, rows: usize) -> Self {
        let mut chunks = Vec::new();
        let mut start = 0;
        while start < rows {
            let end = (start + EVAL_CHUNK_ROWS).min(rows);
            chunks.push(ds.gather(&(start..end).collect::<Vec<_>>()));
            start = end;
        }
        EvalSet { chunks, rows }
    }
}

/// One chunked-evaluation pool job: a model replica and its row chunk.
struct EvalJob<'a> {
    model: &'a mut Network,
    x: &'a Tensor,
    labels: &'a [usize],
}

/// Static configuration of a [`PasgdCluster`].
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of workers `m`.
    pub workers: usize,
    /// Per-worker mini-batch size.
    pub batch_size: usize,
    /// Initial learning rate `η0`.
    pub lr: f32,
    /// L2 weight decay (paper: 5e-4).
    pub weight_decay: f32,
    /// Momentum scheme.
    pub momentum: MomentumMode,
    /// How local models are combined at synchronization points.
    pub averaging: AveragingStrategy,
    /// Gradient-compression codec applied to every averaging message
    /// ([`CodecSpec::Identity`] reproduces the paper's full-precision
    /// setting exactly).
    pub codec: CodecSpec,
    /// Base RNG seed; worker RNGs and the delay stream derive from it.
    pub seed: u64,
    /// Cap on the number of examples used when evaluating training loss
    /// (keeps evaluation cheap; 0 means the full training set).
    pub eval_subset: usize,
    /// Fault injection and degradation policy. The default
    /// ([`FaultConfig::NONE`]) is provably a no-op: the cluster takes the
    /// exact fault-free code path with zero extra RNG draws.
    pub fault: FaultConfig,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            workers: 4,
            batch_size: 32,
            lr: 0.1,
            weight_decay: 5e-4,
            momentum: MomentumMode::None,
            averaging: AveragingStrategy::FullAverage,
            codec: CodecSpec::Identity,
            seed: 0,
            eval_subset: 1024,
            fault: FaultConfig::NONE,
        }
    }
}

/// An `m`-worker periodic-averaging SGD cluster with a simulated wall clock.
///
/// The *training mathematics* is real — every worker runs genuine SGD on its
/// own shard and the models are genuinely averaged — while *time* comes from
/// the paper's delay model ([`RuntimeModel`]): a round of `τ` local steps
/// advances the clock by `max_i(Σ_k Y_{i,k}) + D`.
///
/// The cluster is deliberately scheduler-agnostic: callers decide `τ` per
/// round (see [`run_experiment`](crate::run_experiment) for the interval-based driver).
///
/// # Example
///
/// ```
/// use pasgd_sim::{ClusterConfig, PasgdCluster};
/// use data::GaussianMixture;
/// use delay::{CommModel, DelayDistribution, RuntimeModel};
/// use nn::models;
///
/// let split = GaussianMixture::small_test().generate(1);
/// let runtime = RuntimeModel::new(
///     DelayDistribution::constant(1.0),
///     CommModel::constant(0.5),
///     2,
/// );
/// let mut cluster = PasgdCluster::new(
///     models::mlp_classifier(8, &[16], 3, 0),
///     split,
///     runtime,
///     ClusterConfig { workers: 2, ..ClusterConfig::default() },
/// );
/// let loss = cluster.run_round(4);
/// assert!(loss > 0.0);
/// assert!((cluster.clock() - 4.5).abs() < 1e-9); // 4 steps + 0.5 comm
/// ```
pub struct PasgdCluster {
    workers: Vec<Worker>,
    runtime: RuntimeModel,
    momentum: MomentumMode,
    averaging: AveragingStrategy,
    codec: CodecSpec,
    block: Option<BlockMomentum>,
    /// Active fault-injection state, or `None` for the fault-free
    /// fast path (the [`FaultConfig::NONE`] default): rounds then run the
    /// exact pre-fault code with zero extra RNG draws.
    fault: Option<FaultState>,
    fault_config: FaultConfig,
    delay_rng: StdRng,
    clock: f64,
    iterations: u64,
    rounds: u64,
    comm_time: f64,
    compute_time: f64,
    comm_bytes: f64,
    peak_payload_bytes: f64,
    full_payload_bytes: usize,
    current_lr: f32,
    batch_size: usize,
    train_eval: EvalSet,
    test_eval: EvalSet,
    /// Model replicas for chunked evaluation (one per chunk job, empty
    /// when every evaluation set fits a single chunk).
    eval_replicas: Vec<Network>,
    /// `(worker, iterations, rounds)` the replicas were last synced from;
    /// consecutive loss + accuracy evaluations at one trace point skip the
    /// second parameter copy.
    eval_synced_for: Option<(usize, u64, u64)>,
    /// Memoized evaluation results keyed by the same training state: the
    /// experiment driver evaluates at interval boundaries *and* at trace
    /// points, and when both fall between the same two rounds the second
    /// forward pass would recompute identical numbers.
    eval_loss_cache: Option<((usize, u64, u64), f32)>,
    eval_acc_cache: Option<((usize, u64, u64), f64)>,
    /// Output width of the model's logits (the MSE row-loss divisor).
    eval_classes: usize,
    train_size: usize,
    /// Per-tensor segment lengths of the flat parameter plane.
    param_sizes: Vec<usize>,
    /// One reused message plane per worker (averaging messages / mixing).
    msg_planes: Vec<Vec<f32>>,
    /// Reused averaging accumulator, which doubles as the broadcast plane.
    accum: Vec<f32>,
    /// Reused general scratch plane (error-feedback targets, block
    /// momentum output, partial sums).
    scratch: Vec<f32>,
}

impl PasgdCluster {
    /// Builds a cluster: shards the training split across workers (each
    /// worker gets an equal slice, reshuffled locally every epoch), clones
    /// the initial model onto every worker (the paper's common
    /// initialisation `x₁`), and prepares evaluation sets.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (zero workers/batch, more
    /// workers than examples, invalid momentum factors) or the runtime
    /// model's worker count differs from `config.workers`.
    pub fn new(
        model: Network,
        split: data::TrainTestSplit,
        runtime: RuntimeModel,
        config: ClusterConfig,
    ) -> Self {
        assert!(config.workers > 0, "need at least one worker");
        assert_eq!(
            runtime.workers(),
            config.workers,
            "runtime model is for {} workers but the cluster has {}",
            runtime.workers(),
            config.workers
        );
        config.momentum.validate();
        config.averaging.validate();
        config.codec.validate();
        config.fault.validate();
        assert!(
            matches!(config.averaging, AveragingStrategy::FullAverage)
                || !matches!(config.momentum, MomentumMode::Block { .. }),
            "block momentum is defined over the all-node average (eq. 24); \
             use MomentumMode::None or Local with other averaging strategies"
        );
        assert!(
            !config.fault.is_active() || !matches!(config.momentum, MomentumMode::Block { .. }),
            "block momentum is defined over the all-node average (eq. 24), \
             which partial/faulty aggregation cannot guarantee; use \
             MomentumMode::None or Local with an active FaultConfig"
        );
        let train = split.train;
        let test = split.test;
        let train_size = train.len();

        let shards = train.shard(config.workers);
        let base_opt = {
            let mut opt = Sgd::new(config.lr).with_weight_decay(config.weight_decay);
            let beta = config.momentum.local_beta();
            if beta > 0.0 {
                opt = opt.with_momentum(beta);
            }
            opt
        };
        let mut workers: Vec<Worker> = shards
            .into_iter()
            .enumerate()
            .map(|(id, shard)| {
                Worker::new(
                    id,
                    model.clone(),
                    base_opt.clone(),
                    shard,
                    config.batch_size,
                    config.seed,
                )
            })
            .collect();
        if !matches!(config.codec, CodecSpec::Identity) {
            for w in &mut workers {
                w.set_reference_tracking(true);
            }
        }

        let block = match config.momentum {
            MomentumMode::Block { global, .. } => {
                Some(BlockMomentum::new(global, model.params_flat()))
            }
            _ => None,
        };

        let eval_n = if config.eval_subset == 0 {
            train_size
        } else {
            config.eval_subset.min(train_size)
        };
        let train_eval = EvalSet::gather(&train, eval_n);
        let test_eval = EvalSet::gather(&test, test.len());
        let max_chunks = train_eval.chunks.len().max(test_eval.chunks.len());
        let eval_replicas = if max_chunks > 1 {
            vec![model.clone(); max_chunks]
        } else {
            Vec::new()
        };
        // Probe the logits width once (MSE's row-loss divisor).
        let eval_classes = {
            let mut probe = model.clone();
            let (one_x, _) = train.gather(&[0]);
            probe.forward(&one_x).dims()[1]
        };

        let plane_len = model.param_count();
        let full_payload_bytes = plane_len * std::mem::size_of::<f32>();
        let param_sizes = model.param_sizes();
        PasgdCluster {
            workers,
            runtime,
            momentum: config.momentum,
            averaging: config.averaging,
            codec: config.codec,
            block,
            fault: config
                .fault
                .is_active()
                .then(|| FaultState::new(config.seed, config.workers)),
            fault_config: config.fault,
            delay_rng: StdRng::seed_from_u64(config.seed ^ 0xD15C_0C1C_D15C_0C1C),
            clock: 0.0,
            iterations: 0,
            rounds: 0,
            comm_time: 0.0,
            compute_time: 0.0,
            comm_bytes: 0.0,
            peak_payload_bytes: 0.0,
            full_payload_bytes,
            current_lr: config.lr,
            batch_size: config.batch_size,
            train_eval,
            test_eval,
            eval_replicas,
            eval_synced_for: None,
            eval_loss_cache: None,
            eval_acc_cache: None,
            eval_classes,
            train_size,
            param_sizes,
            msg_planes: vec![vec![0.0f32; plane_len]; config.workers],
            accum: vec![0.0f32; plane_len],
            scratch: vec![0.0f32; plane_len],
        }
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// Simulated wall-clock time in seconds.
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// Local iterations completed per worker (the paper's `k`).
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// Averaging rounds completed.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Cumulative simulated communication time.
    pub fn comm_time(&self) -> f64 {
        self.comm_time
    }

    /// Cumulative simulated computation time (slowest-worker path).
    pub fn compute_time(&self) -> f64 {
        self.compute_time
    }

    /// Cumulative per-worker communication payload in bytes: the sum over
    /// rounds of the (largest) encoded message one worker transmitted.
    pub fn comm_bytes(&self) -> f64 {
        self.comm_bytes
    }

    /// Largest per-worker encoded message transmitted in any single
    /// averaging round so far (equals [`PasgdCluster::full_payload_bytes`]
    /// for full-precision runs).
    pub fn peak_payload_bytes(&self) -> f64 {
        self.peak_payload_bytes
    }

    /// Size in bytes of one full-precision averaging message (4 bytes per
    /// model parameter).
    pub fn full_payload_bytes(&self) -> usize {
        self.full_payload_bytes
    }

    /// The codec currently applied to averaging messages.
    pub fn codec(&self) -> CodecSpec {
        self.codec
    }

    /// Replaces the codec for subsequent averaging steps — the hook a
    /// τ×compression co-adaptive schedule uses at interval boundaries.
    ///
    /// Error-feedback residuals are kept across ratio changes within the
    /// same codec family (they remain valid compensation state) and
    /// dropped when the codec family changes.
    ///
    /// # Panics
    ///
    /// Panics if `codec` has invalid parameters.
    pub fn set_codec(&mut self, codec: CodecSpec) {
        codec.validate();
        let same_family = std::mem::discriminant(&self.codec) == std::mem::discriminant(&codec);
        if !same_family {
            for w in &mut self.workers {
                w.reset_feedback();
            }
        }
        // Reference tracking follows the codec: compressed runs need the
        // per-worker sync reference, full-precision runs should not pay
        // for the duplicate parameter copy. Enabling is a no-op when
        // already on (the stored reference stays anchored).
        let tracking = !matches!(codec, CodecSpec::Identity);
        for w in &mut self.workers {
            w.set_reference_tracking(tracking);
        }
        self.codec = codec;
    }

    /// Mean error-feedback residual norm across workers (0 under the
    /// identity codec).
    pub fn mean_residual_norm(&self) -> f32 {
        let total: f32 = self.workers.iter().map(Worker::residual_norm).sum();
        total / self.workers.len() as f32
    }

    /// Number of workers.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Epochs of the global dataset processed so far (total samples
    /// consumed across workers divided by the training-set size).
    pub fn epochs(&self) -> f64 {
        let consumed: u64 = self
            .workers
            .iter()
            .map(|w| w.steps_taken() * self.batch_size() as u64)
            .sum();
        consumed as f64 / self.train_size as f64
    }

    /// Per-worker batch size.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.current_lr
    }

    /// The runtime (delay) model in use.
    pub fn runtime(&self) -> &RuntimeModel {
        &self.runtime
    }

    /// Cumulative fault-event counters (all zero on the fault-free path).
    pub fn fault_stats(&self) -> FaultStats {
        self.fault.as_ref().map(|f| f.stats).unwrap_or_default()
    }

    /// Fraction of completed rounds that were averaged over a strict
    /// subset of the cluster (0 on the fault-free path). Schedulers
    /// consult this through
    /// [`ScheduleContext::degraded_frac`](adacomm::ScheduleContext) to
    /// hold the communication period steady while the cluster is degraded.
    pub fn degraded_frac(&self) -> f64 {
        if self.rounds == 0 {
            return 0.0;
        }
        self.fault_stats().degraded_rounds as f64 / self.rounds as f64
    }

    // ------------------------------------------------------------------
    // Training
    // ------------------------------------------------------------------

    /// Sets the learning rate on every worker.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive and finite.
    pub fn set_lr(&mut self, lr: f32) {
        for w in &mut self.workers {
            w.set_lr(lr);
        }
        self.current_lr = lr;
    }

    /// Runs one PASGD round: `tau` local steps on every worker (in
    /// parallel), then an averaging step (eq. 3), block momentum if
    /// configured, and the clock advance `max_i(Σ Y) + D`.
    ///
    /// Returns the mean local training loss observed during the round.
    /// This observational mean is folded inside the parallel map, so its
    /// last float bits can vary with the machine's core count (unlike the
    /// training state and clock, which are bit-deterministic per seed;
    /// compare with [`PasgdCluster::eval_train_loss`] for a
    /// parameter-derived loss).
    ///
    /// # Panics
    ///
    /// Panics if `tau == 0`.
    pub fn run_round(&mut self, tau: usize) -> f32 {
        assert!(tau >= 1, "communication period must be at least 1");
        if self.fault.is_some() {
            return self.run_round_faulty(tau);
        }
        let mean_loss = self.local_fanout(tau);
        let bytes = self.average_models(tau);
        telemetry::counter("sim.rounds").inc();
        telemetry::histogram("sim.round_tau").observe(tau as f64);
        telemetry::histogram("sim.round_payload_bytes").observe(bytes);
        let round = self
            .runtime
            .sample_round_bytes(tau, bytes, &mut self.delay_rng);
        self.clock += round.total();
        self.compute_time += round.compute;
        self.comm_time += round.comm;
        self.comm_bytes += bytes;
        self.peak_payload_bytes = self.peak_payload_bytes.max(bytes);
        self.rounds += 1;
        mean_loss
    }

    /// The fault-injected variant of [`PasgdCluster::run_round`], taken
    /// whenever the cluster was configured with an active [`FaultConfig`].
    ///
    /// Round order (each step draws a deterministic number of values from
    /// the dedicated fault RNG stream given the cluster state):
    ///
    /// 1. rejoin sweep — crashed workers whose downtime elapsed come back
    ///    up with the stale parameters they last held;
    /// 2. crash draws — one Bernoulli per up worker in worker order, with
    ///    a deterministic survivor guarantee (never zero up workers);
    /// 3. `tau` local steps on the up workers only (a down worker's batch
    ///    stream does not advance until it rejoins);
    /// 4. per-worker compute times from the delay model — the decomposed
    ///    form of the fused fault-free sampler — plus straggler spikes;
    /// 5. the [`AggregationPolicy`](crate::AggregationPolicy) picks the
    ///    participant set from the up workers' times and staleness;
    /// 6. the participants' models are averaged (codec included) and the
    ///    result broadcast *to the participants*; everyone else keeps its
    ///    local model;
    /// 7. drop/corrupt draws per participant charge retransmit cost
    ///    through the bytes-aware comm model;
    /// 8. the clock advances by the slowest *participant* plus the round's
    ///    communication delays, and the staleness table updates.
    ///
    /// The fault layer covers only this entry point: the mid-round probes
    /// [`PasgdCluster::average_now`] and [`PasgdCluster::run_local_only`]
    /// bypass it, and evaluation still reads worker 0 (whose model can be
    /// stale while worker 0 is down).
    fn run_round_faulty(&mut self, tau: usize) -> f32 {
        let spec = self.fault_config.spec;
        let policy = self.fault_config.policy;
        let round_index = self.rounds;
        // take/put-back: the fault state cannot stay borrowed while
        // `&mut self` round methods run.
        let mut fault = self
            .fault
            .take()
            .expect("run_round_faulty requires active fault state");

        let rejoined = fault.sweep_rejoins(round_index);
        if rejoined > 0 {
            telemetry::counter("sim.faults.rejoins").add(rejoined);
        }
        let crashed = fault.draw_crashes(round_index, &spec);
        if crashed > 0 {
            telemetry::counter("sim.faults.crashes").add(crashed);
        }
        let up = fault.up_workers(round_index);
        debug_assert!(!up.is_empty(), "survivor guarantee violated");

        let mean_loss = self.local_fanout_subset(tau, &up);

        // Per-worker compute times, drawn for the whole cluster in worker
        // order — the same delay-stream structure as the fused fault-free
        // sampler, so the per-round draw count is constant.
        let mut times = self
            .runtime
            .sample_worker_compute_times(tau, &mut self.delay_rng);
        let mut stragglers = 0u64;
        if spec.straggler_prob > 0.0 {
            for &i in &up {
                if fault.rng.gen_bool(spec.straggler_prob) {
                    times[i] *= spec.straggler_factor;
                    stragglers += 1;
                }
            }
        }
        fault.stats.stragglers += stragglers;
        if stragglers > 0 {
            telemetry::counter("sim.faults.stragglers").add(stragglers);
        }

        let participants = policy.select(&up, &times, &fault.missed);
        let degraded = participants.len() < self.workers.len();

        let bytes = if degraded {
            let _degraded_phase = telemetry::span("phase.degraded");
            telemetry::counter("sim.degraded_rounds").inc();
            fault.stats.degraded_rounds += 1;
            self.average_subset(tau, &participants)
        } else {
            self.average_models(tau)
        };
        telemetry::counter("sim.rounds").inc();
        telemetry::histogram("sim.round_tau").observe(tau as f64);
        telemetry::histogram("sim.round_payload_bytes").observe(bytes);

        // Transport faults: each participant's upload may be dropped or
        // corrupted in flight. The transport detects the loss and
        // retransmits, so the average above is unaffected — but every
        // loss costs one extra bytes-aware communication delay below.
        let mut drops = 0u64;
        let mut corruptions = 0u64;
        if spec.drop_prob > 0.0 || spec.corrupt_prob > 0.0 {
            for _ in &participants {
                if fault.rng.gen_bool(spec.drop_prob) {
                    drops += 1;
                }
                if fault.rng.gen_bool(spec.corrupt_prob) {
                    corruptions += 1;
                }
            }
        }
        let retransmits = drops + corruptions;
        fault.stats.drops += drops;
        fault.stats.corruptions += corruptions;
        fault.stats.retransmits += retransmits;
        if drops > 0 {
            telemetry::counter("sim.faults.drops").add(drops);
        }
        if corruptions > 0 {
            telemetry::counter("sim.faults.corruptions").add(corruptions);
        }
        if retransmits > 0 {
            telemetry::counter("sim.faults.retransmits").add(retransmits);
        }

        // Clock advance: the round waits for its slowest participant, then
        // pays one communication delay over the participant group plus one
        // per retransmit.
        let elapsed_compute = participants
            .iter()
            .map(|&i| times[i])
            .fold(f64::NEG_INFINITY, f64::max);
        let mut comm =
            self.runtime
                .comm()
                .sample_bytes(participants.len(), bytes, &mut self.delay_rng);
        let mut round_bytes = bytes;
        for _ in 0..retransmits {
            comm +=
                self.runtime
                    .comm()
                    .sample_bytes(participants.len(), bytes, &mut self.delay_rng);
            round_bytes += bytes;
        }
        self.clock += elapsed_compute + comm;
        self.compute_time += elapsed_compute;
        self.comm_time += comm;
        self.comm_bytes += round_bytes;
        self.peak_payload_bytes = self.peak_payload_bytes.max(bytes);
        self.rounds += 1;

        fault.note_participants(&participants);
        self.fault = Some(fault);
        mean_loss
    }

    /// Runs `steps` local steps on every worker *without* averaging,
    /// advancing the clock by the slowest worker's compute time only.
    /// Used by the Figure 14 experiment to probe local-model quality
    /// mid-round. The returned mean loss carries the same core-count
    /// caveat as [`PasgdCluster::run_round`].
    ///
    /// # Panics
    ///
    /// Panics if `steps == 0`.
    pub fn run_local_only(&mut self, steps: usize) -> f32 {
        assert!(steps >= 1, "must take at least one step");
        let mean_loss = self.local_fanout(steps);
        let round = self.runtime.sample_round(steps, &mut self.delay_rng);
        self.clock += round.compute; // no communication happened
        self.compute_time += round.compute;
        mean_loss
    }

    /// The shared local-update fan-out of [`PasgdCluster::run_round`] and
    /// [`PasgdCluster::run_local_only`]: every worker takes `steps` local
    /// SGD steps in parallel on the persistent pool, and the per-worker
    /// losses are folded inside the parallel map (no per-round `Vec`).
    /// Returns the mean local training loss.
    fn local_fanout(&mut self, steps: usize) -> f32 {
        let _phase = telemetry::span("phase.compute");
        telemetry::counter("sim.local_steps").add((steps * self.workers.len()) as u64);
        let total: f32 = self
            .workers
            .par_iter_mut()
            .map(|w| w.local_steps(steps))
            .sum();
        self.iterations += steps as u64;
        total / self.workers.len() as f32
    }

    /// The fault-path local-update fan-out: only the `up` workers
    /// (ascending indices) take `steps` local SGD steps; a down worker's
    /// batch stream does not advance. The iteration counter still moves by
    /// the nominal `steps`, keeping the paper's iteration axis meaningful,
    /// and the returned loss is the mean over the workers that actually
    /// stepped.
    fn local_fanout_subset(&mut self, steps: usize, up: &[usize]) -> f32 {
        let _phase = telemetry::span("phase.compute");
        telemetry::counter("sim.local_steps").add((steps * up.len()) as u64);
        let mut active: Vec<&mut Worker> = self
            .workers
            .iter_mut()
            .enumerate()
            .filter(|(i, _)| up.binary_search(i).is_ok())
            .map(|(_, w)| w)
            .collect();
        let total: f32 = active.par_iter_mut().map(|w| w.local_steps(steps)).sum();
        self.iterations += steps as u64;
        total / up.len() as f32
    }

    /// Performs the averaging step immediately (eq. 3's first case),
    /// including block momentum and local-momentum resets, and pays one
    /// communication delay.
    pub fn average_now(&mut self) {
        // A direct averaging call closes whatever local stretch preceded
        // it; treat it as a genuine local-update period for momentum
        // purposes.
        let bytes = self.average_models(2);
        let d =
            self.runtime
                .comm()
                .sample_bytes(self.runtime.workers(), bytes, &mut self.delay_rng);
        self.clock += d;
        self.comm_time += d;
        self.comm_bytes += bytes;
        self.peak_payload_bytes = self.peak_payload_bytes.max(bytes);
        self.rounds += 1;
    }

    /// Collects each worker's averaging message (compressing it when a
    /// codec is configured), applies the averaging strategy, and
    /// broadcasts. Returns the round's per-worker payload in bytes — the
    /// size the communication model charges for.
    ///
    /// The entire path runs over reused flat parameter planes: in steady
    /// state a full-precision round performs no heap allocation. All
    /// averaging reduces through the one shared
    /// [`mean_plane_into`](crate::topology::mean_plane_into) helper, whose
    /// per-element float sequence matches the old snapshot-based path
    /// exactly, so full-precision results are bit-identical (golden-trace
    /// test).
    fn average_models(&mut self, tau: usize) -> f64 {
        let _phase = telemetry::span("phase.average");
        let identity = matches!(self.codec, CodecSpec::Identity);
        let full_average = matches!(self.averaging, AveragingStrategy::FullAverage);
        let mut payload_bytes = self.full_payload_bytes as f64;

        // Fast path: full-precision full averaging accumulates straight
        // from the worker models into the reused accumulator — same
        // per-element float sequence as staging each worker's plane first
        // (worker order, then one 1/m scale), minus two plane passes per
        // worker per round.
        if identity && full_average {
            self.workers[0].copy_params_into(&mut self.accum);
            for w in &self.workers[1..] {
                w.add_params_to(&mut self.accum);
            }
            let inv = 1.0 / self.workers.len() as f32;
            for a in self.accum.iter_mut() {
                *a *= inv;
            }
            self.broadcast_accum(tau);
            return payload_bytes;
        }

        // Fill one message plane per worker. Under the identity codec the
        // parameters are the messages; under a codec each worker encodes
        // its delta (error feedback included) into its plane.
        if identity {
            for (w, plane) in self.workers.iter().zip(self.msg_planes.iter_mut()) {
                w.copy_params_into(plane);
            }
        } else {
            // Codec encode/decode is its own phase nested inside averaging:
            // `phase.average` self time excludes it.
            let _codec_phase = telemetry::span("phase.codec");
            let codec = self.codec;
            let mut max_bytes = 0usize;
            for (w, plane) in self.workers.iter_mut().zip(self.msg_planes.iter_mut()) {
                let bytes =
                    w.encode_update_into(&codec, &self.param_sizes, &mut self.scratch, plane);
                max_bytes = max_bytes.max(bytes);
            }
            payload_bytes = max_bytes as f64;
        }

        if !full_average {
            // Extension strategies (ring gossip, partial participation,
            // elastic averaging) mix in place and are momentum-agnostic.
            //
            // Under a codec, a worker the mix left untouched (e.g. a
            // partial-participation non-participant) must keep its exact
            // local parameters: its lossy self-reconstruction was a
            // message for *others*, and overwriting the worker with it
            // would discard real local progress nothing compensates. Its
            // error-feedback residual is cleared rather than kept — the
            // worker was not re-anchored, so the un-transmitted mass is
            // still wholly contained in its next delta, and carrying the
            // residual too would double-count it.
            let compressed = !identity;
            let touched = self
                .averaging
                .mix_tracked(&mut self.msg_planes, &mut self.delay_rng);
            for ((w, plane), touched) in self
                .workers
                .iter_mut()
                .zip(self.msg_planes.iter())
                .zip(touched)
            {
                if touched {
                    w.load_params_from(plane);
                } else if compressed {
                    w.reset_feedback();
                }
                if self.momentum.resets_local_at_sync(tau) {
                    w.reset_momentum();
                }
            }
            return payload_bytes;
        }

        // Full average of the (reconstructed) messages into the reused
        // accumulator, in worker order — the shared reduction that keeps
        // results bit-identical to snapshot averaging.
        crate::topology::mean_plane_into(
            &mut self.accum,
            &self.msg_planes[0],
            self.msg_planes[1..].iter().map(|p| p.as_slice()),
            self.workers.len(),
        );
        self.broadcast_accum(tau);
        payload_bytes
    }

    /// Degraded-round averaging over a strict subset of the cluster: only
    /// the `participants` (ascending worker indices, non-empty) exchange
    /// messages and receive the result; every other worker keeps its local
    /// — possibly stale — parameters. Returns the round's per-worker
    /// payload bytes.
    ///
    /// Mix-based strategies run on a compacted view: the participants'
    /// message planes are swapped into the leading slots, mixed as a
    /// `p`-worker cluster, and swapped back (reverse order restores the
    /// layout exactly because `slot ≤ participants[slot]` for ascending
    /// indices). Block momentum is rejected for fault-active clusters, so
    /// there is no global-buffer step here.
    fn average_subset(&mut self, tau: usize, participants: &[usize]) -> f64 {
        debug_assert!(!participants.is_empty(), "no participants to average");
        debug_assert!(participants.len() < self.workers.len());
        let _phase = telemetry::span("phase.average");
        let identity = matches!(self.codec, CodecSpec::Identity);
        let full_average = matches!(self.averaging, AveragingStrategy::FullAverage);
        let count = participants.len();
        let mut payload_bytes = self.full_payload_bytes as f64;

        // Fast-path mirror of `average_models`: full-precision full
        // averaging accumulates the participants straight into the reused
        // accumulator in participant order.
        if identity && full_average {
            self.workers[participants[0]].copy_params_into(&mut self.accum);
            for &i in &participants[1..] {
                self.workers[i].add_params_to(&mut self.accum);
            }
            let inv = 1.0 / count as f32;
            for a in self.accum.iter_mut() {
                *a *= inv;
            }
            self.broadcast_accum_to(tau, participants);
            return payload_bytes;
        }

        // Fill the participants' message planes (identity copies, codecs
        // encode the error-feedback-compensated delta).
        if identity {
            for &i in participants {
                let (workers, planes) = (&self.workers, &mut self.msg_planes);
                workers[i].copy_params_into(&mut planes[i]);
            }
        } else {
            let _codec_phase = telemetry::span("phase.codec");
            let codec = self.codec;
            let mut max_bytes = 0usize;
            let workers = &mut self.workers;
            let planes = &mut self.msg_planes;
            let scratch = &mut self.scratch;
            let param_sizes = &self.param_sizes;
            for &i in participants {
                let bytes =
                    workers[i].encode_update_into(&codec, param_sizes, scratch, &mut planes[i]);
                max_bytes = max_bytes.max(bytes);
            }
            payload_bytes = max_bytes as f64;
        }

        if !full_average {
            // Swap-compact, mix as a `count`-worker cluster, swap back.
            let compressed = !identity;
            for (slot, &i) in participants.iter().enumerate() {
                self.msg_planes.swap(slot, i);
            }
            let touched = self
                .averaging
                .mix_tracked(&mut self.msg_planes[..count], &mut self.delay_rng);
            for (slot, &i) in participants.iter().enumerate().rev() {
                self.msg_planes.swap(slot, i);
            }
            for (slot, &i) in participants.iter().enumerate() {
                let plane = &self.msg_planes[i];
                let w = &mut self.workers[i];
                if touched[slot] {
                    w.load_params_from(plane);
                } else if compressed {
                    w.reset_feedback();
                }
                if self.momentum.resets_local_at_sync(tau) {
                    w.reset_momentum();
                }
            }
            return payload_bytes;
        }

        // Full average of the participants' (reconstructed) messages, in
        // participant order, through the shared mean reduction.
        let planes = &self.msg_planes;
        crate::topology::mean_plane_into(
            &mut self.accum,
            &planes[participants[0]],
            participants[1..].iter().map(|&i| planes[i].as_slice()),
            count,
        );
        self.broadcast_accum_to(tau, participants);
        payload_bytes
    }

    /// Broadcasts the accumulator to the `participants` only — the
    /// degraded-round counterpart of [`PasgdCluster::broadcast_accum`].
    fn broadcast_accum_to(&mut self, tau: usize, participants: &[usize]) {
        for &i in participants {
            let w = &mut self.workers[i];
            w.load_params_from(&self.accum);
            if self.momentum.resets_local_at_sync(tau) {
                w.reset_momentum();
            }
        }
    }

    /// Applies block momentum to the averaged plane in `self.accum` (if
    /// configured) and broadcasts the result to every worker.
    fn broadcast_accum(&mut self, tau: usize) {
        let broadcast: &[f32] = match &mut self.block {
            // The global buffer only accumulates over genuine local-update
            // periods; with tau = 1 the scheme degenerates to plain
            // momentum SGD (Section 5.3.1).
            Some(block) if tau > 1 => {
                block.apply_into(&self.accum, self.current_lr, &mut self.scratch);
                &self.scratch
            }
            Some(block) => {
                block.observe_sync(&self.accum);
                &self.accum
            }
            None => &self.accum,
        };
        for w in &mut self.workers {
            w.load_params_from(broadcast);
            if self.momentum.resets_local_at_sync(tau) {
                w.reset_momentum();
            }
        }
    }

    // ------------------------------------------------------------------
    // Evaluation
    // ------------------------------------------------------------------

    /// Training loss of the synchronized model on the evaluation subset.
    ///
    /// Callers should invoke this right after a round (models agree then);
    /// mid-round it reports worker 0's local model.
    ///
    /// Evaluation sets beyond one 256-row chunk run as parallel
    /// pool chunk jobs (one model replica per chunk) whose per-row losses
    /// are reduced in row order — bit-identical to a single whole-batch
    /// forward pass (see [`nn::Network::eval_row_losses`]), on any number
    /// of pool threads.
    pub fn eval_train_loss(&mut self) -> f32 {
        let state = (0usize, self.iterations, self.rounds);
        if let Some((cached_state, loss)) = self.eval_loss_cache {
            if cached_state == state {
                return loss;
            }
        }
        let loss = self.eval_train_loss_uncached();
        self.eval_loss_cache = Some((state, loss));
        loss
    }

    fn eval_train_loss_uncached(&mut self) -> f32 {
        let _phase = telemetry::span("phase.eval");
        if self.train_eval.chunks.len() <= 1 {
            let (x, y) = &self.train_eval.chunks[0];
            return self.workers[0].model_mut().eval_loss(x, y);
        }
        self.sync_eval_replicas(0);
        let per_chunk: Vec<Vec<f64>> = {
            let mut jobs: Vec<EvalJob> = self
                .eval_replicas
                .iter_mut()
                .zip(&self.train_eval.chunks)
                .map(|(model, (x, labels))| EvalJob { model, x, labels })
                .collect();
            jobs.par_iter_mut()
                .with_max_len(1)
                .map(|j| j.model.eval_row_losses(j.x, j.labels))
                .collect()
        };
        let rows: Vec<f64> = per_chunk.concat();
        let kind = self.workers[0].model().loss_kind();
        kind.reduce_rows(&rows, self.eval_classes)
    }

    /// Test accuracy of the synchronized model (worker 0's replica).
    ///
    /// Chunked and pooled like [`PasgdCluster::eval_train_loss`]; the
    /// reduction is an integer match count, so chunking is trivially
    /// exact.
    pub fn eval_test_accuracy(&mut self) -> f64 {
        let state = (0usize, self.iterations, self.rounds);
        if let Some((cached_state, acc)) = self.eval_acc_cache {
            if cached_state == state {
                return acc;
            }
        }
        let acc = self.test_accuracy_of(0);
        self.eval_acc_cache = Some((state, acc));
        acc
    }

    /// Test accuracy of one worker's *local* model (differs from the
    /// synchronized model mid-round) — the Figure 14 probe.
    ///
    /// # Panics
    ///
    /// Panics if `worker` is out of range.
    pub fn eval_local_test_accuracy(&mut self, worker: usize) -> f64 {
        assert!(worker < self.workers.len(), "worker {worker} out of range");
        self.test_accuracy_of(worker)
    }

    /// Shared test-accuracy path: evaluates `worker`'s model over the test
    /// chunks (in parallel when there is more than one chunk).
    fn test_accuracy_of(&mut self, worker: usize) -> f64 {
        let _phase = telemetry::span("phase.eval");
        if self.test_eval.chunks.len() <= 1 {
            let (x, y) = &self.test_eval.chunks[0];
            return self.workers[worker].model_mut().accuracy(x, y);
        }
        self.sync_eval_replicas(worker);
        let correct: usize = {
            let mut jobs: Vec<EvalJob> = self
                .eval_replicas
                .iter_mut()
                .zip(&self.test_eval.chunks)
                .map(|(model, (x, labels))| EvalJob { model, x, labels })
                .collect();
            jobs.par_iter_mut()
                .with_max_len(1)
                .map(|j| j.model.correct_count(j.x, j.labels))
                .sum()
        };
        correct as f64 / self.test_eval.rows as f64
    }

    /// Loads `worker`'s current parameters into every evaluation replica
    /// (via the reused scratch plane; no allocation in steady state).
    /// Skipped entirely when the replicas already hold this worker's
    /// parameters at the current training state — the common
    /// loss-then-accuracy pair at a trace point pays one copy, not two.
    fn sync_eval_replicas(&mut self, worker: usize) {
        let state = (worker, self.iterations, self.rounds);
        if self.eval_synced_for == Some(state) {
            return;
        }
        self.workers[worker].copy_params_into(&mut self.scratch);
        for replica in &mut self.eval_replicas {
            replica.load_params_from(&self.scratch);
        }
        self.eval_synced_for = Some(state);
    }

    // ------------------------------------------------------------------
    // Checkpoint / resume
    // ------------------------------------------------------------------

    /// Captures the cluster's complete mutable state — counters, clock,
    /// codec, delay stream, block-momentum planes, and every worker — for
    /// a run checkpoint taken at a round boundary.
    pub fn checkpoint(&self) -> ClusterCheckpoint {
        let _phase = telemetry::span("phase.checkpoint");
        ClusterCheckpoint {
            clock: self.clock,
            iterations: self.iterations,
            rounds: self.rounds,
            comm_time: self.comm_time,
            compute_time: self.compute_time,
            comm_bytes: self.comm_bytes,
            peak_payload_bytes: self.peak_payload_bytes,
            current_lr: self.current_lr,
            codec: self.codec,
            delay_rng: self.delay_rng.state(),
            block: self.block.as_ref().map(|b| {
                let (buffer, prev_sync) = b.state();
                (buffer.to_vec(), prev_sync.to_vec())
            }),
            fault: self.fault.as_ref().map(|f| f.export_checkpoint()),
            workers: self.workers.iter().map(Worker::export_checkpoint).collect(),
        }
    }

    /// Restores state captured by [`PasgdCluster::checkpoint`] onto a
    /// freshly built cluster of the *same* configuration, after which
    /// training continues bit-identically to the uninterrupted run.
    ///
    /// Structural mismatches (worker count, plane lengths, block-momentum
    /// presence, invalid learning rate or codec parameters) return `Err` —
    /// callers must treat the cluster as unusable on failure and recompute
    /// from scratch. Evaluation memoization is dropped so no stale cached
    /// figure can survive a restore.
    pub fn restore(&mut self, ck: &ClusterCheckpoint) -> Result<(), String> {
        if ck.workers.len() != self.workers.len() {
            return Err(format!(
                "checkpoint has {} workers but the cluster has {}",
                ck.workers.len(),
                self.workers.len()
            ));
        }
        if !(ck.current_lr > 0.0 && ck.current_lr.is_finite()) {
            return Err(format!(
                "invalid checkpointed learning rate {}",
                ck.current_lr
            ));
        }
        let codec_ok = match ck.codec {
            CodecSpec::TopK { ratio } | CodecSpec::RandomK { ratio } => {
                ratio.is_finite() && ratio > 0.0 && ratio <= 1.0
            }
            CodecSpec::Qsgd { bits } => (1..=16).contains(&bits),
            CodecSpec::Identity | CodecSpec::Sign => true,
        };
        if !codec_ok {
            return Err(format!("invalid checkpointed codec {:?}", ck.codec));
        }
        match (&self.block, &ck.block) {
            (Some(_), Some(_)) | (None, None) => {}
            (Some(_), None) => {
                return Err("block momentum configured but absent from checkpoint".to_string())
            }
            (None, Some(_)) => {
                return Err("checkpoint has block momentum but the cluster does not".to_string())
            }
        }
        match (&self.fault, &ck.fault) {
            (Some(_), Some(_)) | (None, None) => {}
            (Some(_), None) => {
                return Err("fault injection configured but absent from checkpoint".to_string())
            }
            (None, Some(_)) => {
                return Err("checkpoint has fault state but the cluster does not".to_string())
            }
        }
        if let Some(fck) = &ck.fault {
            if fck.down_until.len() != self.workers.len() || fck.missed.len() != self.workers.len()
            {
                return Err(format!(
                    "fault checkpoint tables sized for {}/{} workers but the cluster has {}",
                    fck.down_until.len(),
                    fck.missed.len(),
                    self.workers.len()
                ));
            }
        }
        for (w, wck) in self.workers.iter_mut().zip(&ck.workers) {
            w.restore_checkpoint(wck)?;
        }
        if let (Some(block), Some((buffer, prev_sync))) = (&mut self.block, &ck.block) {
            block.restore_state(buffer.clone(), prev_sync.clone())?;
        }
        if let (Some(fault), Some(fck)) = (&mut self.fault, &ck.fault) {
            fault.restore_checkpoint(fck);
        }
        self.clock = ck.clock;
        self.iterations = ck.iterations;
        self.rounds = ck.rounds;
        self.comm_time = ck.comm_time;
        self.compute_time = ck.compute_time;
        self.comm_bytes = ck.comm_bytes;
        self.peak_payload_bytes = ck.peak_payload_bytes;
        self.codec = ck.codec;
        self.delay_rng = StdRng::from_state(ck.delay_rng);
        self.set_lr(ck.current_lr);
        self.eval_synced_for = None;
        self.eval_loss_cache = None;
        self.eval_acc_cache = None;
        Ok(())
    }

    /// Mean pairwise parameter distance between local models (a direct
    /// measure of the model discrepancy that grows with `τ`, Figure 2).
    pub fn model_discrepancy(&self) -> f32 {
        let snaps: Vec<Vec<Tensor>> = self.workers.iter().map(Worker::params_snapshot).collect();
        if snaps.len() < 2 {
            return 0.0;
        }
        let mut total = 0.0f32;
        let mut pairs = 0u32;
        for i in 0..snaps.len() {
            for j in i + 1..snaps.len() {
                let dist_sq: f32 = snaps[i]
                    .iter()
                    .zip(snaps[j].iter())
                    .map(|(a, b)| {
                        let d = a.distance(b);
                        d * d
                    })
                    .sum();
                total += dist_sq.sqrt();
                pairs += 1;
            }
        }
        total / pairs as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use data::GaussianMixture;
    use delay::{CommModel, DelayDistribution};
    use nn::models;

    fn constant_runtime(y: f64, d: f64, m: usize) -> RuntimeModel {
        RuntimeModel::new(DelayDistribution::constant(y), CommModel::constant(d), m)
    }

    fn toy_cluster(momentum: MomentumMode, seed: u64) -> PasgdCluster {
        let split = GaussianMixture::small_test().generate(3);
        PasgdCluster::new(
            models::mlp_classifier(8, &[16], 3, 11),
            split,
            constant_runtime(1.0, 0.5, 2),
            ClusterConfig {
                workers: 2,
                batch_size: 8,
                lr: 0.05,
                weight_decay: 0.0,
                momentum,
                averaging: crate::AveragingStrategy::FullAverage,
                codec: gradcomp::CodecSpec::Identity,
                seed,
                eval_subset: 64,
                fault: FaultConfig::NONE,
            },
        )
    }

    #[test]
    fn clock_advances_by_delay_model() {
        let mut c = toy_cluster(MomentumMode::None, 0);
        c.run_round(4);
        // Constant delays: 4 * 1.0 compute + 0.5 comm.
        assert!((c.clock() - 4.5).abs() < 1e-9);
        assert_eq!(c.iterations(), 4);
        assert_eq!(c.rounds(), 1);
        c.run_round(1);
        assert!((c.clock() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn comm_and_compute_time_split() {
        let mut c = toy_cluster(MomentumMode::None, 0);
        c.run_round(10);
        assert!((c.compute_time() - 10.0).abs() < 1e-9);
        assert!((c.comm_time() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn models_agree_after_round() {
        let mut c = toy_cluster(MomentumMode::None, 1);
        c.run_round(5);
        assert!(
            c.model_discrepancy() < 1e-6,
            "post-averaging discrepancy {}",
            c.model_discrepancy()
        );
    }

    #[test]
    fn discrepancy_grows_during_local_steps() {
        let mut c = toy_cluster(MomentumMode::None, 2);
        c.run_round(1); // sync first
        let d0 = c.model_discrepancy();
        c.run_local_only(5);
        let d5 = c.model_discrepancy();
        assert!(d5 > d0, "discrepancy should grow: {d0} -> {d5}");
        c.average_now();
        assert!(c.model_discrepancy() < 1e-6);
    }

    #[test]
    fn training_reduces_loss() {
        let mut c = toy_cluster(MomentumMode::None, 3);
        let before = c.eval_train_loss();
        for _ in 0..30 {
            c.run_round(4);
        }
        let after = c.eval_train_loss();
        assert!(after < before * 0.8, "loss {before} -> {after}");
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut c = toy_cluster(MomentumMode::None, seed);
            for _ in 0..5 {
                c.run_round(3);
            }
            (c.eval_train_loss(), c.clock())
        };
        let (l1, t1) = run(7);
        let (l2, t2) = run(7);
        assert_eq!(l1, l2);
        assert_eq!(t1, t2);
        let (l3, _) = run(8);
        assert_ne!(l1, l3);
    }

    #[test]
    fn block_momentum_runs_and_syncs() {
        let mut c = toy_cluster(MomentumMode::paper_block(), 4);
        for _ in 0..10 {
            c.run_round(4);
        }
        assert!(c.model_discrepancy() < 1e-6);
        assert!(c.eval_train_loss().is_finite());
    }

    #[test]
    fn block_momentum_with_zero_global_matches_plain_averaging() {
        // With beta_glob = 0 and local momentum 0, block momentum reduces to
        // plain PASGD exactly.
        let mk = |momentum| {
            let split = GaussianMixture::small_test().generate(5);
            PasgdCluster::new(
                models::mlp_classifier(8, &[8], 3, 13),
                split,
                constant_runtime(1.0, 0.5, 2),
                ClusterConfig {
                    workers: 2,
                    batch_size: 8,
                    lr: 0.05,
                    weight_decay: 0.0,
                    momentum,
                    averaging: crate::AveragingStrategy::FullAverage,
                    codec: gradcomp::CodecSpec::Identity,
                    seed: 21,
                    eval_subset: 64,
                    fault: FaultConfig::NONE,
                },
            )
        };
        let mut plain = mk(MomentumMode::None);
        let mut block = mk(MomentumMode::Block {
            global: 0.0,
            local: 0.0,
        });
        for _ in 0..4 {
            plain.run_round(3);
            block.run_round(3);
        }
        let dl = (plain.eval_train_loss() - block.eval_train_loss()).abs();
        assert!(dl < 1e-5, "losses diverged by {dl}");
    }

    #[test]
    fn set_lr_applies_to_all_workers() {
        let mut c = toy_cluster(MomentumMode::None, 6);
        c.set_lr(0.005);
        assert_eq!(c.lr(), 0.005);
        c.run_round(2); // must not panic, workers updated
    }

    #[test]
    fn epochs_track_consumed_samples() {
        let mut c = toy_cluster(MomentumMode::None, 9);
        // 96 training examples, 2 workers x batch 8: one round of 6 steps
        // consumes 96 samples = 1 epoch.
        c.run_round(6);
        assert!((c.epochs() - 1.0).abs() < 1e-9, "epochs {}", c.epochs());
    }

    #[test]
    fn eval_accuracy_in_unit_range() {
        let mut c = toy_cluster(MomentumMode::None, 10);
        let acc = c.eval_test_accuracy();
        assert!((0.0..=1.0).contains(&acc));
        let local = c.eval_local_test_accuracy(1);
        assert!((0.0..=1.0).contains(&local));
    }

    #[test]
    fn compressed_round_synchronizes_and_shrinks_payload() {
        let split = GaussianMixture::small_test().generate(3);
        let mut c = PasgdCluster::new(
            models::mlp_classifier(8, &[16], 3, 11),
            split,
            constant_runtime(1.0, 0.5, 2),
            ClusterConfig {
                workers: 2,
                batch_size: 8,
                codec: CodecSpec::TopK { ratio: 0.1 },
                seed: 4,
                eval_subset: 64,
                ..ClusterConfig::default()
            },
        );
        c.run_round(4);
        assert!(
            c.model_discrepancy() < 1e-6,
            "full averaging of reconstructions must still synchronize"
        );
        assert!(c.mean_residual_norm() > 0.0, "Top-K must leave a residual");
        let full = c.full_payload_bytes() as f64;
        assert!(
            c.comm_bytes() < 0.25 * full,
            "10% Top-K payload {} must be far below full {}",
            c.comm_bytes(),
            full
        );
    }

    #[test]
    fn bandwidth_model_makes_compressed_rounds_cheaper() {
        let run = |codec| {
            let split = GaussianMixture::small_test().generate(3);
            // Bandwidth-dominated regime: 5 ms latency, ~78 ms transfer
            // for the ~195-parameter toy model at 0.1 ms/byte.
            let comm = CommModel::constant(0.005).with_bandwidth(1e-4);
            let mut c = PasgdCluster::new(
                models::mlp_classifier(8, &[16], 3, 11),
                split,
                RuntimeModel::new(DelayDistribution::constant(1.0), comm, 2),
                ClusterConfig {
                    workers: 2,
                    batch_size: 8,
                    codec,
                    seed: 4,
                    eval_subset: 64,
                    ..ClusterConfig::default()
                },
            );
            for _ in 0..3 {
                c.run_round(4);
            }
            (c.clock(), c.comm_time())
        };
        let (full_clock, full_comm) = run(CodecSpec::Identity);
        let (sparse_clock, sparse_comm) = run(CodecSpec::TopK { ratio: 0.01 });
        assert!(
            sparse_comm < full_comm * 0.2,
            "compressed comm {sparse_comm} vs full {full_comm}"
        );
        assert!(sparse_clock < full_clock);
    }

    #[test]
    fn compressed_training_still_reduces_loss() {
        let split = GaussianMixture::small_test().generate(5);
        let mut c = PasgdCluster::new(
            models::mlp_classifier(8, &[16], 3, 11),
            split,
            constant_runtime(1.0, 0.5, 2),
            ClusterConfig {
                workers: 2,
                batch_size: 8,
                lr: 0.05,
                weight_decay: 0.0,
                codec: CodecSpec::TopK { ratio: 0.25 },
                seed: 3,
                eval_subset: 64,
                ..ClusterConfig::default()
            },
        );
        let before = c.eval_train_loss();
        for _ in 0..30 {
            c.run_round(4);
        }
        let after = c.eval_train_loss();
        assert!(
            after < before * 0.8,
            "error feedback must keep Top-K converging: {before} -> {after}"
        );
    }

    #[test]
    fn compression_composes_with_extension_averaging() {
        for averaging in [
            crate::AveragingStrategy::Ring,
            crate::AveragingStrategy::Elastic { alpha: 0.5 },
            crate::AveragingStrategy::PartialParticipation { fraction: 0.5 },
        ] {
            let split = GaussianMixture::small_test().generate(6);
            let mut c = PasgdCluster::new(
                models::mlp_classifier(8, &[16], 3, 11),
                split,
                constant_runtime(1.0, 0.5, 4),
                ClusterConfig {
                    workers: 4,
                    batch_size: 8,
                    averaging,
                    codec: CodecSpec::Sign,
                    seed: 8,
                    eval_subset: 64,
                    ..ClusterConfig::default()
                },
            );
            for _ in 0..3 {
                c.run_round(2);
            }
            assert!(c.eval_train_loss().is_finite(), "{averaging:?} diverged");
            assert!(c.comm_bytes() > 0.0);
            assert!(c.comm_bytes() < 0.2 * 3.0 * c.full_payload_bytes() as f64);
        }
    }

    #[test]
    fn unbiased_codec_leaves_non_participants_untouched() {
        // PartialParticipation with fraction 0.25 of 4 workers samples a
        // single participant, whose "average" is itself — so no worker's
        // parameters may change at the sync point. With the n/k-scaled
        // Random-K at 1%, overwriting idle workers with their own lossy
        // self-reconstruction (the pre-fix behaviour) injects ~100x-variance
        // noise every round and visibly blows the loss up.
        let split = GaussianMixture::small_test().generate(9);
        let mut c = PasgdCluster::new(
            models::mlp_classifier(8, &[16], 3, 11),
            split,
            constant_runtime(1.0, 0.5, 4),
            ClusterConfig {
                workers: 4,
                batch_size: 8,
                lr: 0.05,
                weight_decay: 0.0,
                averaging: crate::AveragingStrategy::PartialParticipation { fraction: 0.25 },
                codec: CodecSpec::RandomK { ratio: 0.01 },
                seed: 10,
                eval_subset: 64,
                ..ClusterConfig::default()
            },
        );
        let before = c.eval_train_loss();
        for _ in 0..12 {
            c.run_round(3);
        }
        let after = c.eval_train_loss();
        // With nobody actually mixing, this is local-only SGD: the loss
        // must improve, not explode under self-reconstruction noise.
        assert!(
            after.is_finite() && after < before,
            "idle workers were noised by their own codec: {before} -> {after}"
        );
        // The messages were still priced on the wire.
        assert!(c.comm_bytes() > 0.0);
    }

    #[test]
    fn set_codec_keeps_residuals_within_family_and_drops_across() {
        let split = GaussianMixture::small_test().generate(7);
        let mut c = PasgdCluster::new(
            models::mlp_classifier(8, &[16], 3, 11),
            split,
            constant_runtime(1.0, 0.5, 2),
            ClusterConfig {
                workers: 2,
                batch_size: 8,
                codec: CodecSpec::TopK { ratio: 0.05 },
                seed: 9,
                eval_subset: 64,
                ..ClusterConfig::default()
            },
        );
        c.run_round(2);
        assert!(c.mean_residual_norm() > 0.0);
        // Ratio change within Top-K keeps the compensation state.
        c.set_codec(CodecSpec::TopK { ratio: 0.2 });
        assert!(c.mean_residual_norm() > 0.0);
        assert_eq!(c.codec(), CodecSpec::TopK { ratio: 0.2 });
        // Family change drops it.
        c.set_codec(CodecSpec::Qsgd { bits: 4 });
        assert_eq!(c.mean_residual_norm(), 0.0);
    }

    #[test]
    #[should_panic(expected = "communication period must be at least 1")]
    fn zero_tau_rejected() {
        let mut c = toy_cluster(MomentumMode::None, 11);
        let _ = c.run_round(0);
    }

    // ------------------------------------------------------------------
    // Fault injection
    // ------------------------------------------------------------------

    use crate::{AggregationPolicy, FaultSpec};

    fn faulty_cluster(seed: u64, fault: FaultConfig, m: usize) -> PasgdCluster {
        let split = GaussianMixture::small_test().generate(3);
        PasgdCluster::new(
            models::mlp_classifier(8, &[16], 3, 11),
            split,
            constant_runtime(1.0, 0.5, m),
            ClusterConfig {
                workers: m,
                batch_size: 8,
                lr: 0.05,
                weight_decay: 0.0,
                seed,
                eval_subset: 64,
                fault,
                ..ClusterConfig::default()
            },
        )
    }

    #[test]
    fn crashes_rejoin_and_training_survives() {
        let fault = FaultConfig {
            spec: FaultSpec {
                crash_prob: 0.3,
                rejoin_after: 2,
                ..FaultSpec::NONE
            },
            policy: AggregationPolicy::FullBarrier,
        };
        let mut c = faulty_cluster(5, fault, 4);
        for _ in 0..20 {
            c.run_round(3);
        }
        let stats = c.fault_stats();
        assert!(
            stats.crashes > 0,
            "crash_prob 0.3 over 20 rounds: {stats:?}"
        );
        assert!(stats.rejoins > 0, "rejoin_after 2 must fire: {stats:?}");
        assert!(stats.degraded_rounds > 0);
        assert!(c.degraded_frac() > 0.0 && c.degraded_frac() <= 1.0);
        assert!(c.eval_train_loss().is_finite());
    }

    #[test]
    fn faulty_runs_are_deterministic_given_seed() {
        let fault = FaultConfig {
            spec: FaultSpec {
                crash_prob: 0.2,
                rejoin_after: 2,
                drop_prob: 0.1,
                corrupt_prob: 0.05,
                straggler_prob: 0.2,
                straggler_factor: 4.0,
            },
            policy: AggregationPolicy::Quorum {
                quorum: 3,
                deadline_secs: 50.0,
            },
        };
        let run = |seed| {
            let mut c = faulty_cluster(seed, fault, 4);
            for _ in 0..12 {
                c.run_round(2);
            }
            (c.eval_train_loss(), c.clock(), c.fault_stats())
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn quorum_policy_caps_straggler_compute_time() {
        // Same seed and spec, two policies: the fault draws are identical,
        // so the quorum run must wait strictly less compute time whenever
        // a straggler fired.
        let spec = FaultSpec {
            straggler_prob: 0.3,
            straggler_factor: 100.0,
            ..FaultSpec::NONE
        };
        let run = |policy| {
            let mut c = faulty_cluster(11, FaultConfig { spec, policy }, 4);
            for _ in 0..10 {
                c.run_round(2);
            }
            (c.compute_time(), c.fault_stats())
        };
        let (barrier_time, barrier_stats) = run(AggregationPolicy::FullBarrier);
        let (quorum_time, quorum_stats) = run(AggregationPolicy::Quorum {
            quorum: 3,
            deadline_secs: 1000.0,
        });
        assert_eq!(barrier_stats.stragglers, quorum_stats.stragglers);
        assert!(barrier_stats.stragglers > 0, "seed 11 must straggle");
        assert!(
            quorum_time < barrier_time,
            "quorum {quorum_time} vs barrier {barrier_time}"
        );
        assert!(quorum_stats.degraded_rounds > 0);
    }

    #[test]
    fn bounded_staleness_forces_slow_workers_back_in() {
        let spec = FaultSpec {
            straggler_prob: 0.4,
            straggler_factor: 50.0,
            ..FaultSpec::NONE
        };
        let mut c = faulty_cluster(
            13,
            FaultConfig {
                spec,
                policy: AggregationPolicy::BoundedStaleness {
                    quorum: 2,
                    max_staleness: 2,
                },
            },
            4,
        );
        for _ in 0..15 {
            c.run_round(2);
        }
        // The staleness bound means nobody can miss 3+ consecutive
        // averages; with quorum 2 of 4 there must be degraded rounds.
        assert!(c.fault_stats().degraded_rounds > 0);
        assert!(c.eval_train_loss().is_finite());
    }

    #[test]
    fn retransmits_charge_extra_bytes_and_comm_time() {
        let spec = FaultSpec {
            drop_prob: 0.5,
            corrupt_prob: 0.2,
            ..FaultSpec::NONE
        };
        let mut c = faulty_cluster(
            17,
            FaultConfig {
                spec,
                policy: AggregationPolicy::FullBarrier,
            },
            2,
        );
        for _ in 0..10 {
            c.run_round(2);
        }
        let stats = c.fault_stats();
        assert!(stats.drops > 0 && stats.corruptions > 0);
        assert_eq!(stats.retransmits, stats.drops + stats.corruptions);
        let full = c.full_payload_bytes() as f64;
        assert!(
            c.comm_bytes() > 10.0 * full,
            "retransmits must charge extra bytes: {} vs base {}",
            c.comm_bytes(),
            10.0 * full
        );
        // One 0.5 s constant delay per round plus one per retransmit.
        let want = 0.5 * (10 + stats.retransmits) as f64;
        assert!((c.comm_time() - want).abs() < 1e-9);
    }

    #[test]
    fn down_workers_keep_stale_models() {
        let fault = FaultConfig {
            spec: FaultSpec {
                crash_prob: 0.5,
                rejoin_after: 3,
                ..FaultSpec::NONE
            },
            policy: AggregationPolicy::FullBarrier,
        };
        let mut c = faulty_cluster(19, fault, 4);
        let mut saw_degraded = false;
        for _ in 0..20 {
            let before = c.fault_stats().degraded_rounds;
            c.run_round(2);
            if c.fault_stats().degraded_rounds > before {
                saw_degraded = true;
                assert!(
                    c.model_discrepancy() > 0.0,
                    "a down worker must hold stale parameters after a degraded round"
                );
                break;
            }
        }
        assert!(saw_degraded, "seed 19 must produce a degraded round");
    }

    #[test]
    fn fault_state_survives_checkpoint_restore() {
        let fault = FaultConfig {
            spec: FaultSpec {
                crash_prob: 0.25,
                rejoin_after: 2,
                drop_prob: 0.2,
                straggler_prob: 0.2,
                straggler_factor: 8.0,
                ..FaultSpec::NONE
            },
            policy: AggregationPolicy::Quorum {
                quorum: 3,
                deadline_secs: 500.0,
            },
        };
        let mut golden = faulty_cluster(23, fault, 4);
        let mut interrupted = faulty_cluster(23, fault, 4);
        for _ in 0..6 {
            golden.run_round(2);
            interrupted.run_round(2);
        }
        let ck = interrupted.checkpoint();
        assert!(ck.fault.is_some(), "active faults must checkpoint state");
        let mut resumed = faulty_cluster(23, fault, 4);
        resumed.restore(&ck).expect("restore must succeed");
        for _ in 0..6 {
            golden.run_round(2);
            resumed.run_round(2);
        }
        assert_eq!(golden.clock(), resumed.clock());
        assert_eq!(golden.eval_train_loss(), resumed.eval_train_loss());
        assert_eq!(golden.fault_stats(), resumed.fault_stats());
    }

    #[test]
    fn restore_rejects_fault_presence_mismatch() {
        let fault = FaultConfig {
            spec: FaultSpec {
                crash_prob: 0.2,
                ..FaultSpec::NONE
            },
            policy: AggregationPolicy::FullBarrier,
        };
        let mut plain = toy_cluster(MomentumMode::None, 1);
        let mut faulty = faulty_cluster(1, fault, 2);
        let ck_plain = plain.checkpoint();
        let ck_faulty = faulty.checkpoint();
        assert!(faulty.restore(&ck_plain).is_err());
        assert!(plain.restore(&ck_faulty).is_err());
    }

    #[test]
    #[should_panic(expected = "block momentum is defined over the all-node average")]
    fn block_momentum_rejected_with_active_faults() {
        let fault = FaultConfig {
            spec: FaultSpec {
                crash_prob: 0.1,
                ..FaultSpec::NONE
            },
            policy: AggregationPolicy::FullBarrier,
        };
        let _ = faulty_cluster_with_momentum(fault);
    }

    fn faulty_cluster_with_momentum(fault: FaultConfig) -> PasgdCluster {
        let split = GaussianMixture::small_test().generate(3);
        PasgdCluster::new(
            models::mlp_classifier(8, &[16], 3, 11),
            split,
            constant_runtime(1.0, 0.5, 2),
            ClusterConfig {
                workers: 2,
                batch_size: 8,
                momentum: MomentumMode::paper_block(),
                seed: 1,
                eval_subset: 64,
                fault,
                ..ClusterConfig::default()
            },
        )
    }

    #[test]
    fn subset_averaging_composes_with_codecs_and_strategies() {
        // Degraded rounds through the compressed mix path and the shared
        // mean reduction must keep training finite for every strategy.
        for (averaging, codec) in [
            (crate::AveragingStrategy::FullAverage, CodecSpec::Identity),
            (
                crate::AveragingStrategy::FullAverage,
                CodecSpec::TopK { ratio: 0.25 },
            ),
            (crate::AveragingStrategy::Ring, CodecSpec::Sign),
            (
                crate::AveragingStrategy::Elastic { alpha: 0.5 },
                CodecSpec::Identity,
            ),
            (
                crate::AveragingStrategy::PartialParticipation { fraction: 0.5 },
                CodecSpec::Identity,
            ),
        ] {
            let split = GaussianMixture::small_test().generate(6);
            let mut c = PasgdCluster::new(
                models::mlp_classifier(8, &[16], 3, 11),
                split,
                constant_runtime(1.0, 0.5, 4),
                ClusterConfig {
                    workers: 4,
                    batch_size: 8,
                    averaging,
                    codec,
                    seed: 8,
                    eval_subset: 64,
                    fault: FaultConfig {
                        spec: FaultSpec {
                            crash_prob: 0.3,
                            rejoin_after: 2,
                            ..FaultSpec::NONE
                        },
                        policy: AggregationPolicy::FullBarrier,
                    },
                    ..ClusterConfig::default()
                },
            );
            for _ in 0..6 {
                c.run_round(2);
            }
            assert!(
                c.eval_train_loss().is_finite(),
                "{averaging:?}/{codec:?} diverged under faults"
            );
            assert!(
                c.fault_stats().degraded_rounds > 0,
                "{averaging:?}/{codec:?}: seed 8 must degrade at least one round"
            );
        }
    }
}
