//! Averaging strategies beyond the paper's all-node broadcast.
//!
//! The paper's concluding remarks note that adapting the communication
//! frequency "can be easily extended to other SGD frameworks including
//! elastic-averaging, decentralized SGD (e.g., adapting network sparsity)
//! and parameter server-based training". This module implements those
//! synchronization patterns so the extension experiments can compare them
//! under the same schedulers.

use rand::seq::SliceRandom;
use rand::Rng;
use tensor::Tensor;

/// How local models are combined at a synchronization point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AveragingStrategy {
    /// The paper's PASGD: every worker receives the all-node average
    /// (eq. 3).
    FullAverage,
    /// Federated-averaging-style partial participation: only a sampled
    /// subset of workers takes part in the round's average; the rest keep
    /// their local models (McMahan et al., 2016).
    PartialParticipation {
        /// Fraction of workers sampled per synchronization, in `(0, 1]`.
        fraction: f64,
    },
    /// Decentralized ring gossip (Lian et al., 2017): worker `i` mixes with
    /// its ring neighbours using the doubly stochastic weights
    /// `[1/3, 1/3, 1/3]`. Models agree only in the limit of many rounds.
    Ring,
    /// Elastic averaging (Zhang et al., 2015): every worker moves a step
    /// `α` toward the group mean, `x_i ← x_i − α (x_i − x̄)`, retaining some
    /// exploration around it.
    Elastic {
        /// Elasticity in `(0, 1]`; `1` recovers full averaging.
        alpha: f32,
    },
}

impl AveragingStrategy {
    /// Validates the parameters.
    ///
    /// # Panics
    ///
    /// Panics if a fraction/elasticity is outside `(0, 1]`.
    pub fn validate(&self) {
        match *self {
            AveragingStrategy::FullAverage | AveragingStrategy::Ring => {}
            AveragingStrategy::PartialParticipation { fraction } => {
                assert!(
                    fraction > 0.0 && fraction <= 1.0,
                    "participation fraction must be in (0, 1], got {fraction}"
                );
            }
            AveragingStrategy::Elastic { alpha } => {
                assert!(
                    alpha > 0.0 && alpha <= 1.0,
                    "elasticity must be in (0, 1], got {alpha}"
                );
            }
        }
    }

    /// Whether this strategy leaves all workers with identical parameters
    /// after every synchronization.
    pub fn fully_synchronizes(&self) -> bool {
        matches!(self, AveragingStrategy::FullAverage)
            || matches!(self, AveragingStrategy::Elastic { alpha } if *alpha >= 1.0)
    }

    /// Applies the strategy to the per-worker parameter snapshots in
    /// place. `rng` drives participant sampling for
    /// [`AveragingStrategy::PartialParticipation`].
    ///
    /// # Panics
    ///
    /// Panics if `snapshots` is empty or shapes are inconsistent.
    pub fn mix<R: Rng + ?Sized>(&self, snapshots: &mut [Vec<Tensor>], rng: &mut R) {
        let _ = self.mix_tracked(snapshots, rng);
    }

    /// Like [`AveragingStrategy::mix`], additionally reporting which
    /// workers the synchronization actually touched: `touched[i]` is true
    /// iff worker `i`'s snapshot was (re)written by the mix. Partial
    /// participation leaves sampled-out workers untouched; a degenerate
    /// participant group of one exchanges nothing and counts as untouched
    /// too. The compressed-averaging path uses this to decide which
    /// workers adopt a mixed (lossy) model and which keep their exact
    /// local parameters.
    ///
    /// # Panics
    ///
    /// Panics if `snapshots` is empty or shapes are inconsistent.
    pub fn mix_tracked<R: Rng + ?Sized>(
        &self,
        snapshots: &mut [Vec<Tensor>],
        rng: &mut R,
    ) -> Vec<bool> {
        assert!(!snapshots.is_empty(), "no models to mix");
        let m = snapshots.len();
        match *self {
            AveragingStrategy::FullAverage => {
                let avg = nn::average_params(snapshots);
                for s in snapshots.iter_mut() {
                    copy_into(s, &avg);
                }
                vec![true; m]
            }
            AveragingStrategy::PartialParticipation { fraction } => {
                let k = ((fraction * m as f64).round() as usize).clamp(1, m);
                let mut touched = vec![false; m];
                let mut ids: Vec<usize> = (0..m).collect();
                ids.shuffle(rng);
                ids.truncate(k);
                if k < 2 {
                    // One participant averages with nobody; the round
                    // moves no parameters. (The sampling draw above still
                    // happens, keeping the RNG stream identical.)
                    return touched;
                }
                let participating: Vec<Vec<Tensor>> =
                    ids.iter().map(|&i| snapshots[i].clone()).collect();
                let avg = nn::average_params(&participating);
                for &i in &ids {
                    copy_into(&mut snapshots[i], &avg);
                    touched[i] = true;
                }
                touched
            }
            AveragingStrategy::Ring => {
                if m < 3 {
                    // A ring of 1 or 2 degenerates to full averaging.
                    let avg = nn::average_params(snapshots);
                    for s in snapshots.iter_mut() {
                        copy_into(s, &avg);
                    }
                    return vec![true; m];
                }
                let originals: Vec<Vec<Tensor>> = snapshots.to_vec();
                for i in 0..m {
                    let left = (i + m - 1) % m;
                    let right = (i + 1) % m;
                    for (t, target) in snapshots[i].iter_mut().enumerate() {
                        let mut mixed = originals[left][t].clone();
                        mixed.add_assign(&originals[i][t]);
                        mixed.add_assign(&originals[right][t]);
                        mixed.scale(1.0 / 3.0);
                        target.copy_from(&mixed);
                    }
                }
                vec![true; m]
            }
            AveragingStrategy::Elastic { alpha } => {
                let avg = nn::average_params(snapshots);
                for s in snapshots.iter_mut() {
                    for (t, target) in s.iter_mut().enumerate() {
                        target.lerp_toward(&avg[t], alpha);
                    }
                }
                vec![true; m]
            }
        }
    }
}

fn copy_into(dst: &mut [Tensor], src: &[Tensor]) {
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        d.copy_from(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn snapshots(values: &[f32]) -> Vec<Vec<Tensor>> {
        values
            .iter()
            .map(|&v| vec![Tensor::full(&[2], v)])
            .collect()
    }

    fn firsts(snaps: &[Vec<Tensor>]) -> Vec<f32> {
        snaps.iter().map(|s| s[0].at(0)).collect()
    }

    #[test]
    fn full_average_synchronizes() {
        let mut snaps = snapshots(&[0.0, 2.0, 4.0]);
        let mut rng = StdRng::seed_from_u64(0);
        AveragingStrategy::FullAverage.mix(&mut snaps, &mut rng);
        assert_eq!(firsts(&snaps), vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn ring_preserves_global_mean() {
        let mut snaps = snapshots(&[0.0, 3.0, 6.0, 9.0]);
        let mut rng = StdRng::seed_from_u64(1);
        AveragingStrategy::Ring.mix(&mut snaps, &mut rng);
        let vals = firsts(&snaps);
        let mean: f32 = vals.iter().sum::<f32>() / 4.0;
        assert!((mean - 4.5).abs() < 1e-6, "ring must preserve the mean");
        // Not fully synchronized after one round.
        assert!(vals.iter().any(|&v| (v - 4.5).abs() > 1e-6));
    }

    #[test]
    fn ring_contracts_toward_consensus() {
        let mut snaps = snapshots(&[0.0, 4.0, 8.0, 12.0]);
        let mut rng = StdRng::seed_from_u64(2);
        let spread = |snaps: &[Vec<Tensor>]| {
            let v = firsts(snaps);
            let max = v.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let min = v.iter().copied().fold(f32::INFINITY, f32::min);
            max - min
        };
        let before = spread(&snaps);
        for _ in 0..20 {
            AveragingStrategy::Ring.mix(&mut snaps, &mut rng);
        }
        assert!(
            spread(&snaps) < before * 0.05,
            "repeated gossip must reach near-consensus"
        );
    }

    #[test]
    fn ring_of_two_is_full_average() {
        let mut snaps = snapshots(&[1.0, 3.0]);
        let mut rng = StdRng::seed_from_u64(3);
        AveragingStrategy::Ring.mix(&mut snaps, &mut rng);
        assert_eq!(firsts(&snaps), vec![2.0, 2.0]);
    }

    #[test]
    fn elastic_moves_partway() {
        let mut snaps = snapshots(&[0.0, 4.0]);
        let mut rng = StdRng::seed_from_u64(4);
        AveragingStrategy::Elastic { alpha: 0.5 }.mix(&mut snaps, &mut rng);
        assert_eq!(firsts(&snaps), vec![1.0, 3.0]);
    }

    #[test]
    fn elastic_with_alpha_one_is_full_average() {
        let mut snaps = snapshots(&[0.0, 4.0, 8.0]);
        let mut rng = StdRng::seed_from_u64(5);
        AveragingStrategy::Elastic { alpha: 1.0 }.mix(&mut snaps, &mut rng);
        assert_eq!(firsts(&snaps), vec![4.0, 4.0, 4.0]);
    }

    #[test]
    fn partial_participation_touches_only_sampled_workers() {
        let mut snaps = snapshots(&[0.0, 10.0, 20.0, 30.0]);
        let mut rng = StdRng::seed_from_u64(6);
        AveragingStrategy::PartialParticipation { fraction: 0.5 }.mix(&mut snaps, &mut rng);
        let vals = firsts(&snaps);
        // Exactly two workers share a new common value; two keep theirs.
        let originals = [0.0f32, 10.0, 20.0, 30.0];
        let kept = vals
            .iter()
            .zip(originals.iter())
            .filter(|(v, o)| (**v - **o).abs() < 1e-6)
            .count();
        assert_eq!(kept, 2, "half the workers must be untouched: {vals:?}");
    }

    #[test]
    fn full_participation_fraction_is_full_average() {
        let mut snaps = snapshots(&[1.0, 2.0, 3.0]);
        let mut rng = StdRng::seed_from_u64(7);
        AveragingStrategy::PartialParticipation { fraction: 1.0 }.mix(&mut snaps, &mut rng);
        assert_eq!(firsts(&snaps), vec![2.0, 2.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "participation fraction must be in (0, 1]")]
    fn zero_fraction_rejected() {
        AveragingStrategy::PartialParticipation { fraction: 0.0 }.validate();
    }

    #[test]
    fn mix_tracked_reports_participants() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut snaps = snapshots(&[0.0, 1.0, 2.0]);
        assert_eq!(
            AveragingStrategy::FullAverage.mix_tracked(&mut snaps, &mut rng),
            vec![true; 3]
        );
        assert_eq!(
            AveragingStrategy::Ring.mix_tracked(&mut snaps, &mut rng),
            vec![true; 3]
        );
        let mut snaps = snapshots(&[0.0, 10.0, 20.0, 30.0]);
        let touched = AveragingStrategy::PartialParticipation { fraction: 0.5 }
            .mix_tracked(&mut snaps, &mut rng);
        assert_eq!(touched.iter().filter(|&&t| t).count(), 2);
        // Untouched workers keep their exact values.
        for (i, t) in touched.iter().enumerate() {
            if !t {
                assert_eq!(snaps[i][0].at(0), [0.0, 10.0, 20.0, 30.0][i]);
            }
        }
    }

    #[test]
    fn lone_participant_touches_nobody() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut snaps = snapshots(&[1.0, 2.0, 3.0, 4.0]);
        let touched = AveragingStrategy::PartialParticipation { fraction: 0.25 }
            .mix_tracked(&mut snaps, &mut rng);
        assert_eq!(touched, vec![false; 4]);
        assert_eq!(firsts(&snaps), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn fully_synchronizes_flags() {
        assert!(AveragingStrategy::FullAverage.fully_synchronizes());
        assert!(!AveragingStrategy::Ring.fully_synchronizes());
        assert!(!AveragingStrategy::Elastic { alpha: 0.5 }.fully_synchronizes());
    }
}
