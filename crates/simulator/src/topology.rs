//! Averaging strategies beyond the paper's all-node broadcast.
//!
//! The paper's concluding remarks note that adapting the communication
//! frequency "can be easily extended to other SGD frameworks including
//! elastic-averaging, decentralized SGD (e.g., adapting network sparsity)
//! and parameter server-based training". This module implements those
//! synchronization patterns so the extension experiments can compare them
//! under the same schedulers.
//!
//! Strategies operate on **flat parameter planes** — one `Vec<f32>` per
//! worker, the concatenation of that worker's parameter tensors — which is
//! how the cluster's zero-allocation averaging path represents models.

use rand::seq::SliceRandom;
use rand::Rng;

/// How local models are combined at a synchronization point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AveragingStrategy {
    /// The paper's PASGD: every worker receives the all-node average
    /// (eq. 3).
    FullAverage,
    /// Federated-averaging-style partial participation: only a sampled
    /// subset of workers takes part in the round's average; the rest keep
    /// their local models (McMahan et al., 2016).
    PartialParticipation {
        /// Fraction of workers sampled per synchronization, in `(0, 1]`.
        fraction: f64,
    },
    /// Decentralized ring gossip (Lian et al., 2017): worker `i` mixes with
    /// its ring neighbours using the doubly stochastic weights
    /// `[1/3, 1/3, 1/3]`. Models agree only in the limit of many rounds.
    Ring,
    /// Elastic averaging (Zhang et al., 2015): every worker moves a step
    /// `α` toward the group mean, `x_i ← x_i − α (x_i − x̄)`, retaining some
    /// exploration around it.
    Elastic {
        /// Elasticity in `(0, 1]`; `1` recovers full averaging.
        alpha: f32,
    },
}

impl AveragingStrategy {
    /// Validates the parameters.
    ///
    /// # Panics
    ///
    /// Panics if a fraction/elasticity is outside `(0, 1]`.
    pub fn validate(&self) {
        match *self {
            AveragingStrategy::FullAverage | AveragingStrategy::Ring => {}
            AveragingStrategy::PartialParticipation { fraction } => {
                assert!(
                    fraction > 0.0 && fraction <= 1.0,
                    "participation fraction must be in (0, 1], got {fraction}"
                );
            }
            AveragingStrategy::Elastic { alpha } => {
                assert!(
                    alpha > 0.0 && alpha <= 1.0,
                    "elasticity must be in (0, 1], got {alpha}"
                );
            }
        }
    }

    /// Whether this strategy leaves all workers with identical parameters
    /// after every synchronization.
    pub fn fully_synchronizes(&self) -> bool {
        matches!(self, AveragingStrategy::FullAverage)
            || matches!(self, AveragingStrategy::Elastic { alpha } if *alpha >= 1.0)
    }

    /// Applies the strategy to the per-worker parameter planes in place.
    /// `rng` drives participant sampling for
    /// [`AveragingStrategy::PartialParticipation`].
    ///
    /// # Panics
    ///
    /// Panics if `planes` is empty or the plane lengths differ.
    pub fn mix<R: Rng + ?Sized>(&self, planes: &mut [Vec<f32>], rng: &mut R) {
        let _ = self.mix_tracked(planes, rng);
    }

    /// Like [`AveragingStrategy::mix`], additionally reporting which
    /// workers the synchronization actually touched: `touched[i]` is true
    /// iff worker `i`'s plane was (re)written by the mix. Partial
    /// participation leaves sampled-out workers untouched; a degenerate
    /// participant group of one exchanges nothing and counts as untouched
    /// too. The compressed-averaging path uses this to decide which
    /// workers adopt a mixed (lossy) model and which keep their exact
    /// local parameters.
    ///
    /// # Panics
    ///
    /// Panics if `planes` is empty or the plane lengths differ.
    pub fn mix_tracked<R: Rng + ?Sized>(&self, planes: &mut [Vec<f32>], rng: &mut R) -> Vec<bool> {
        assert!(!planes.is_empty(), "no models to mix");
        let m = planes.len();
        let n = planes[0].len();
        for p in planes.iter() {
            assert_eq!(p.len(), n, "inconsistent plane lengths: {} vs {n}", p.len());
        }
        match *self {
            AveragingStrategy::FullAverage => {
                let avg = average_planes(planes, (0..m).collect::<Vec<_>>().as_slice());
                for p in planes.iter_mut() {
                    p.copy_from_slice(&avg);
                }
                vec![true; m]
            }
            AveragingStrategy::PartialParticipation { fraction } => {
                let k = ((fraction * m as f64).round() as usize).clamp(1, m);
                let mut touched = vec![false; m];
                let mut ids: Vec<usize> = (0..m).collect();
                ids.shuffle(rng);
                ids.truncate(k);
                if k < 2 {
                    // One participant averages with nobody; the round
                    // moves no parameters. (The sampling draw above still
                    // happens, keeping the RNG stream identical.)
                    return touched;
                }
                let avg = average_planes(planes, &ids);
                for &i in &ids {
                    planes[i].copy_from_slice(&avg);
                    touched[i] = true;
                }
                touched
            }
            AveragingStrategy::Ring => {
                if m < 3 {
                    // A ring of 1 or 2 degenerates to full averaging.
                    let avg = average_planes(planes, (0..m).collect::<Vec<_>>().as_slice());
                    for p in planes.iter_mut() {
                        p.copy_from_slice(&avg);
                    }
                    return vec![true; m];
                }
                let originals: Vec<Vec<f32>> = planes.to_vec();
                for (i, plane) in planes.iter_mut().enumerate() {
                    let left = &originals[(i + m - 1) % m];
                    let mid = &originals[i];
                    let right = &originals[(i + 1) % m];
                    for (((t, &l), &c), &r) in plane.iter_mut().zip(left).zip(mid).zip(right) {
                        let mut mixed = l;
                        mixed += c;
                        mixed += r;
                        *t = mixed * (1.0 / 3.0);
                    }
                }
                vec![true; m]
            }
            AveragingStrategy::Elastic { alpha } => {
                let avg = average_planes(planes, (0..m).collect::<Vec<_>>().as_slice());
                for p in planes.iter_mut() {
                    for (t, &a) in p.iter_mut().zip(&avg) {
                        *t += alpha * (a - *t);
                    }
                }
                vec![true; m]
            }
        }
    }
}

/// The one shared mean reduction every averaging path uses: `acc` is
/// overwritten with `first`, the `rest` planes are accumulated **in
/// iteration order**, and the result is scaled by `1/count`.
///
/// The golden-trace bit-exactness guarantee depends on this exact
/// per-element float sequence (it matches the seed's tensor-based
/// `tensor::average`): copy, add in order, multiply by the reciprocal.
/// Keep every averaging site on this helper rather than hand-rolling the
/// loop.
///
/// # Panics
///
/// Panics if `count` disagrees with the number of planes provided.
pub(crate) fn mean_plane_into<'a>(
    acc: &mut [f32],
    first: &[f32],
    rest: impl Iterator<Item = &'a [f32]>,
    count: usize,
) {
    acc.copy_from_slice(first);
    let mut seen = 1usize;
    for plane in rest {
        for (a, &p) in acc.iter_mut().zip(plane) {
            *a += p;
        }
        seen += 1;
    }
    assert_eq!(seen, count, "mean over {count} planes but {seen} provided");
    let inv = 1.0 / count as f32;
    for a in acc.iter_mut() {
        *a *= inv;
    }
}

/// Averages the planes selected by `ids`, in `ids` order, into a fresh
/// plane (see [`mean_plane_into`]).
fn average_planes(planes: &[Vec<f32>], ids: &[usize]) -> Vec<f32> {
    let mut acc = vec![0.0f32; planes[ids[0]].len()];
    mean_plane_into(
        &mut acc,
        &planes[ids[0]],
        ids[1..].iter().map(|&i| planes[i].as_slice()),
        ids.len(),
    );
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn planes(values: &[f32]) -> Vec<Vec<f32>> {
        values.iter().map(|&v| vec![v; 2]).collect()
    }

    fn firsts(planes: &[Vec<f32>]) -> Vec<f32> {
        planes.iter().map(|p| p[0]).collect()
    }

    #[test]
    fn full_average_synchronizes() {
        let mut snaps = planes(&[0.0, 2.0, 4.0]);
        let mut rng = StdRng::seed_from_u64(0);
        AveragingStrategy::FullAverage.mix(&mut snaps, &mut rng);
        assert_eq!(firsts(&snaps), vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn ring_preserves_global_mean() {
        let mut snaps = planes(&[0.0, 3.0, 6.0, 9.0]);
        let mut rng = StdRng::seed_from_u64(1);
        AveragingStrategy::Ring.mix(&mut snaps, &mut rng);
        let vals = firsts(&snaps);
        let mean: f32 = vals.iter().sum::<f32>() / 4.0;
        assert!((mean - 4.5).abs() < 1e-6, "ring must preserve the mean");
        // Not fully synchronized after one round.
        assert!(vals.iter().any(|&v| (v - 4.5).abs() > 1e-6));
    }

    #[test]
    fn ring_contracts_toward_consensus() {
        let mut snaps = planes(&[0.0, 4.0, 8.0, 12.0]);
        let mut rng = StdRng::seed_from_u64(2);
        let spread = |snaps: &[Vec<f32>]| {
            let v = firsts(snaps);
            let max = v.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let min = v.iter().copied().fold(f32::INFINITY, f32::min);
            max - min
        };
        let before = spread(&snaps);
        for _ in 0..20 {
            AveragingStrategy::Ring.mix(&mut snaps, &mut rng);
        }
        assert!(
            spread(&snaps) < before * 0.05,
            "repeated gossip must reach near-consensus"
        );
    }

    #[test]
    fn ring_of_two_is_full_average() {
        let mut snaps = planes(&[1.0, 3.0]);
        let mut rng = StdRng::seed_from_u64(3);
        AveragingStrategy::Ring.mix(&mut snaps, &mut rng);
        assert_eq!(firsts(&snaps), vec![2.0, 2.0]);
    }

    #[test]
    fn elastic_moves_partway() {
        let mut snaps = planes(&[0.0, 4.0]);
        let mut rng = StdRng::seed_from_u64(4);
        AveragingStrategy::Elastic { alpha: 0.5 }.mix(&mut snaps, &mut rng);
        assert_eq!(firsts(&snaps), vec![1.0, 3.0]);
    }

    #[test]
    fn elastic_with_alpha_one_is_full_average() {
        let mut snaps = planes(&[0.0, 4.0, 8.0]);
        let mut rng = StdRng::seed_from_u64(5);
        AveragingStrategy::Elastic { alpha: 1.0 }.mix(&mut snaps, &mut rng);
        assert_eq!(firsts(&snaps), vec![4.0, 4.0, 4.0]);
    }

    #[test]
    fn partial_participation_touches_only_sampled_workers() {
        let mut snaps = planes(&[0.0, 10.0, 20.0, 30.0]);
        let mut rng = StdRng::seed_from_u64(6);
        AveragingStrategy::PartialParticipation { fraction: 0.5 }.mix(&mut snaps, &mut rng);
        let vals = firsts(&snaps);
        // Exactly two workers share a new common value; two keep theirs.
        let originals = [0.0f32, 10.0, 20.0, 30.0];
        let kept = vals
            .iter()
            .zip(originals.iter())
            .filter(|(v, o)| (**v - **o).abs() < 1e-6)
            .count();
        assert_eq!(kept, 2, "half the workers must be untouched: {vals:?}");
    }

    #[test]
    fn full_participation_fraction_is_full_average() {
        let mut snaps = planes(&[1.0, 2.0, 3.0]);
        let mut rng = StdRng::seed_from_u64(7);
        AveragingStrategy::PartialParticipation { fraction: 1.0 }.mix(&mut snaps, &mut rng);
        assert_eq!(firsts(&snaps), vec![2.0, 2.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "participation fraction must be in (0, 1]")]
    fn zero_fraction_rejected() {
        AveragingStrategy::PartialParticipation { fraction: 0.0 }.validate();
    }

    #[test]
    fn mix_tracked_reports_participants() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut snaps = planes(&[0.0, 1.0, 2.0]);
        assert_eq!(
            AveragingStrategy::FullAverage.mix_tracked(&mut snaps, &mut rng),
            vec![true; 3]
        );
        assert_eq!(
            AveragingStrategy::Ring.mix_tracked(&mut snaps, &mut rng),
            vec![true; 3]
        );
        let mut snaps = planes(&[0.0, 10.0, 20.0, 30.0]);
        let touched = AveragingStrategy::PartialParticipation { fraction: 0.5 }
            .mix_tracked(&mut snaps, &mut rng);
        assert_eq!(touched.iter().filter(|&&t| t).count(), 2);
        // Untouched workers keep their exact values.
        for (i, t) in touched.iter().enumerate() {
            if !t {
                assert_eq!(snaps[i][0], [0.0, 10.0, 20.0, 30.0][i]);
            }
        }
    }

    #[test]
    fn lone_participant_touches_nobody() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut snaps = planes(&[1.0, 2.0, 3.0, 4.0]);
        let touched = AveragingStrategy::PartialParticipation { fraction: 0.25 }
            .mix_tracked(&mut snaps, &mut rng);
        assert_eq!(touched, vec![false; 4]);
        assert_eq!(firsts(&snaps), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn fully_synchronizes_flags() {
        assert!(AveragingStrategy::FullAverage.fully_synchronizes());
        assert!(!AveragingStrategy::Ring.fully_synchronizes());
        assert!(!AveragingStrategy::Elastic { alpha: 0.5 }.fully_synchronizes());
    }

    #[test]
    #[should_panic(expected = "inconsistent plane lengths")]
    fn mismatched_planes_rejected() {
        let mut snaps = vec![vec![0.0f32; 2], vec![0.0f32; 3]];
        let mut rng = StdRng::seed_from_u64(10);
        AveragingStrategy::FullAverage.mix(&mut snaps, &mut rng);
    }
}
