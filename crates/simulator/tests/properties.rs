//! Property-based tests for the PASGD simulator.

use data::GaussianMixture;
use delay::{CommModel, DelayDistribution, RuntimeModel};
use nn::models;
use pasgd_sim::{ClusterConfig, MomentumMode, PasgdCluster};
use proptest::prelude::*;

fn cluster(workers: usize, seed: u64, y: f64, d: f64) -> PasgdCluster {
    let split = GaussianMixture::small_test().generate(17);
    PasgdCluster::new(
        models::mlp_classifier(8, &[8], 3, 23),
        split,
        RuntimeModel::new(
            DelayDistribution::constant(y),
            CommModel::constant(d),
            workers,
        ),
        ClusterConfig {
            workers,
            batch_size: 8,
            lr: 0.05,
            weight_decay: 0.0,
            momentum: MomentumMode::None,
            averaging: pasgd_sim::AveragingStrategy::FullAverage,
            codec: gradcomp::CodecSpec::Identity,
            seed,
            eval_subset: 48,
            fault: pasgd_sim::FaultConfig::NONE,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn clock_is_monotone_and_exact_for_constants(
        taus in proptest::collection::vec(1usize..6, 1..5),
        y in 0.1f64..2.0,
        d in 0.0f64..2.0,
    ) {
        let mut c = cluster(2, 0, y, d);
        let mut prev = 0.0;
        let mut expected = 0.0;
        for &tau in &taus {
            c.run_round(tau);
            expected += y * tau as f64 + d;
            prop_assert!(c.clock() > prev);
            prop_assert!((c.clock() - expected).abs() < 1e-9);
            prev = c.clock();
        }
        let total_iters: u64 = taus.iter().map(|&t| t as u64).sum();
        prop_assert_eq!(c.iterations(), total_iters);
        prop_assert_eq!(c.rounds(), taus.len() as u64);
    }

    #[test]
    fn averaging_collapses_discrepancy(tau in 1usize..8, seed in 0u64..20) {
        let mut c = cluster(3, seed, 0.5, 0.1);
        c.run_round(tau);
        prop_assert!(c.model_discrepancy() < 1e-6);
    }

    #[test]
    fn same_seed_same_trajectory(tau in 1usize..5) {
        let run = |seed: u64| {
            let mut c = cluster(2, seed, 1.0, 0.5);
            for _ in 0..3 {
                c.run_round(tau);
            }
            c.eval_train_loss()
        };
        prop_assert_eq!(run(5), run(5));
    }

    #[test]
    fn loss_is_always_finite(tau in 1usize..10, seed in 0u64..10) {
        let mut c = cluster(2, seed, 1.0, 0.5);
        for _ in 0..4 {
            let loss = c.run_round(tau);
            prop_assert!(loss.is_finite(), "round loss not finite");
        }
        prop_assert!(c.eval_train_loss().is_finite());
    }

    #[test]
    fn epochs_are_consistent_with_iterations(tau in 1usize..6) {
        let mut c = cluster(2, 3, 1.0, 0.1);
        for _ in 0..3 {
            c.run_round(tau);
        }
        // 2 workers x batch 8 x iterations samples consumed; train size 96.
        let expected = (2 * 8 * c.iterations()) as f64 / 96.0;
        prop_assert!((c.epochs() - expected).abs() < 1e-9);
    }
}
