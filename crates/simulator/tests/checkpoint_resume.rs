//! Checkpoint/resume determinism: a run interrupted at round `k` and
//! resumed from its (serialized and re-decoded) checkpoint must produce a
//! trace bit-identical to the uninterrupted run.

use adacomm::{AdaComm, AdaCommCompress, AdaCommConfig, CommSchedule, FixedComm, LrSchedule};
use data::GaussianMixture;
use delay::{CommModel, DelayDistribution, RuntimeModel};
use gradcomp::CodecSpec;
use pasgd_sim::{
    ClusterConfig, ExperimentConfig, ExperimentSuite, MomentumMode, RunCheckpoint, RunOutcome,
    RunTrace,
};

fn suite(seed: u64, momentum: MomentumMode) -> ExperimentSuite {
    let split = GaussianMixture::small_test().generate(seed);
    let runtime = RuntimeModel::new(
        DelayDistribution::exponential(0.08),
        CommModel::constant(0.1),
        2,
    );
    ExperimentSuite::new(
        nn::models::mlp_classifier(8, &[16], 3, 5),
        split,
        runtime,
        ClusterConfig {
            workers: 2,
            batch_size: 8,
            lr: 0.05,
            weight_decay: 5e-4,
            momentum,
            averaging: pasgd_sim::AveragingStrategy::FullAverage,
            codec: CodecSpec::Identity,
            seed,
            eval_subset: 96,
            fault: pasgd_sim::FaultConfig::NONE,
        },
        ExperimentConfig {
            interval_secs: 4.0,
            total_secs: 30.0,
            record_every_secs: 2.0,
            gate_lr_on_tau: false,
        },
    )
}

/// Runs `scheduler` straight through, then re-runs it interrupted at
/// `stop_rounds` with the checkpoint round-tripped through bytes, and
/// asserts the two traces are equal float-for-float.
fn assert_resume_is_bit_identical<S, F>(
    suite: &ExperimentSuite,
    make_scheduler: F,
    codec: Option<CodecSpec>,
    momentum: Option<MomentumMode>,
    fault: Option<pasgd_sim::FaultConfig>,
    stop_rounds: u64,
) where
    S: CommSchedule,
    F: Fn() -> S,
{
    let lr = LrSchedule::constant(0.05);
    let mut golden_sched = make_scheduler();
    let golden = match suite
        .run_configured_resumable(
            &mut golden_sched,
            &lr,
            momentum,
            None,
            codec,
            None,
            fault,
            None,
            None,
        )
        .unwrap()
    {
        RunOutcome::Completed(t) => t,
        RunOutcome::Checkpointed(_) => panic!("no round limit requested"),
    };

    let mut interrupted_sched = make_scheduler();
    let ck = match suite
        .run_configured_resumable(
            &mut interrupted_sched,
            &lr,
            momentum,
            None,
            codec,
            None,
            fault,
            None,
            Some(stop_rounds),
        )
        .unwrap()
    {
        RunOutcome::Checkpointed(ck) => ck,
        RunOutcome::Completed(_) => panic!("run finished before round {stop_rounds}"),
    };
    assert!(ck.cluster.rounds >= stop_rounds);
    // The fault frame (fault RNG stream, outage table, staleness counters,
    // stats) rides the checkpoint exactly when faults are active.
    assert_eq!(
        ck.cluster.fault.is_some(),
        fault.is_some_and(|f| f.is_active()),
        "fault frame presence must match fault activity"
    );

    // Serialize and decode: resume must survive the byte format, not just
    // the in-memory struct.
    let bytes = ck.to_bytes();
    let decoded = RunCheckpoint::from_bytes(&bytes).expect("checkpoint frame decodes");

    // A *fresh* scheduler instance: resume imports the exported state.
    let mut resumed_sched = make_scheduler();
    let resumed = match suite
        .run_configured_resumable(
            &mut resumed_sched,
            &lr,
            momentum,
            None,
            codec,
            None,
            fault,
            Some(&decoded),
            None,
        )
        .unwrap()
    {
        RunOutcome::Completed(t) => t,
        RunOutcome::Checkpointed(_) => panic!("no round limit requested on resume"),
    };

    assert_traces_bit_identical(&golden, &resumed);
}

fn assert_traces_bit_identical(a: &RunTrace, b: &RunTrace) {
    assert_eq!(a.name, b.name);
    assert_eq!(a.rounds, b.rounds);
    assert_eq!(
        a.peak_payload_bytes.to_bits(),
        b.peak_payload_bytes.to_bits()
    );
    assert_eq!(a.points.len(), b.points.len());
    for (i, (p, q)) in a.points.iter().zip(&b.points).enumerate() {
        assert_eq!(p.clock.to_bits(), q.clock.to_bits(), "clock at point {i}");
        assert_eq!(p.iterations, q.iterations, "iterations at point {i}");
        assert_eq!(p.epoch.to_bits(), q.epoch.to_bits(), "epoch at point {i}");
        assert_eq!(
            p.train_loss.to_bits(),
            q.train_loss.to_bits(),
            "train_loss at point {i}"
        );
        assert_eq!(
            p.test_accuracy.to_bits(),
            q.test_accuracy.to_bits(),
            "test_accuracy at point {i}"
        );
        assert_eq!(p.tau, q.tau, "tau at point {i}");
        assert_eq!(p.lr.to_bits(), q.lr.to_bits(), "lr at point {i}");
        assert_eq!(
            p.comm_bytes.to_bits(),
            q.comm_bytes.to_bits(),
            "comm_bytes at point {i}"
        );
    }
}

#[test]
fn fixed_tau_resume_is_bit_identical() {
    let s = suite(1, MomentumMode::None);
    assert_resume_is_bit_identical(&s, || FixedComm::new(4), None, None, None, 7);
}

#[test]
fn adacomm_resume_is_bit_identical() {
    // The scheduler's prev_tau memory crosses the checkpoint: resuming with
    // a fresh AdaComm must not re-raise tau.
    let s = suite(2, MomentumMode::None);
    assert_resume_is_bit_identical(&s, || AdaComm::with_tau0(8), None, None, None, 9);
}

#[test]
fn compressed_block_momentum_resume_is_bit_identical() {
    // The hardest case: Top-K error-feedback residuals, per-worker sync
    // references, the codec RNG stream, SGD momentum buffers, and the
    // global block-momentum planes all cross the checkpoint.
    let s = suite(3, MomentumMode::paper_block());
    assert_resume_is_bit_identical(
        &s,
        || FixedComm::new(4),
        Some(CodecSpec::TopK { ratio: 0.25 }),
        Some(MomentumMode::paper_block()),
        None,
        6,
    );
}

#[test]
fn co_adaptive_codec_resume_is_bit_identical() {
    // AdaCommCompress sharpens the codec mid-run; the sharpened ratio and
    // the monotone-fidelity floor must survive the checkpoint.
    let s = suite(4, MomentumMode::None);
    assert_resume_is_bit_identical(
        &s,
        || {
            AdaCommCompress::new(
                AdaCommConfig {
                    tau0: 8,
                    ..AdaCommConfig::default()
                },
                CodecSpec::TopK { ratio: 0.1 },
            )
        },
        None,
        None,
        None,
        8,
    );
}

#[test]
fn resume_at_different_rounds_always_matches() {
    let s = suite(5, MomentumMode::None);
    for stop in [1, 3, 11] {
        assert_resume_is_bit_identical(&s, || FixedComm::new(2), None, None, None, stop);
    }
}

#[test]
fn corrupted_checkpoint_is_rejected_by_the_driver() {
    let s = suite(6, MomentumMode::None);
    let lr = LrSchedule::constant(0.05);
    let mut sched = FixedComm::new(4);
    let ck = match s
        .run_configured_resumable(&mut sched, &lr, None, None, None, None, None, None, Some(3))
        .unwrap()
    {
        RunOutcome::Checkpointed(ck) => ck,
        RunOutcome::Completed(_) => panic!("run finished before round 3"),
    };

    // Structural mismatch: a checkpoint from a 2-worker run cannot restore
    // onto a different cluster shape.
    let mut wrong = (*ck).clone();
    wrong.cluster.workers.pop();
    let mut sched2 = FixedComm::new(4);
    assert!(s
        .run_configured_resumable(
            &mut sched2,
            &lr,
            None,
            None,
            None,
            None,
            None,
            Some(&wrong),
            None
        )
        .is_err());

    // Mismatched parameter plane inside one worker.
    let mut bad_params = (*ck).clone();
    bad_params.cluster.workers[0].params.pop();
    let mut sched3 = FixedComm::new(4);
    assert!(s
        .run_configured_resumable(
            &mut sched3,
            &lr,
            None,
            None,
            None,
            None,
            None,
            Some(&bad_params),
            None
        )
        .is_err());

    // The original checkpoint still resumes fine afterwards.
    let mut sched4 = FixedComm::new(4);
    assert!(s
        .run_configured_resumable(
            &mut sched4,
            &lr,
            None,
            None,
            None,
            None,
            None,
            Some(&ck),
            None
        )
        .is_ok());
}

// ---------------------------------------------------------------------------
// Property: a fault firing in (or straddling) the stopped round must not
// break resume bit-identity. The injection rates below are high enough
// that crashes, drops, and straggler spikes land in nearly every round —
// including the round the checkpoint cuts through — so worker outages
// whose rejoin deadline crosses the boundary, in-flight retransmit
// charges, and the fault RNG stream all have to survive the byte format.

use proptest::prelude::*;

// The profiles cover each fault axis and each aggregation policy family
// (quorum = 1 of 2 workers keeps the toy cluster making progress even
// when the other worker is down).
fn aggressive_fault_profile(idx: usize) -> pasgd_sim::FaultConfig {
    use pasgd_sim::{AggregationPolicy, FaultConfig, FaultSpec};
    match idx {
        0 => FaultConfig {
            spec: FaultSpec {
                crash_prob: 0.4,
                rejoin_after: 2,
                ..FaultSpec::NONE
            },
            policy: AggregationPolicy::FullBarrier,
        },
        1 => FaultConfig {
            spec: FaultSpec {
                drop_prob: 0.5,
                corrupt_prob: 0.2,
                ..FaultSpec::NONE
            },
            policy: AggregationPolicy::FullBarrier,
        },
        _ => FaultConfig {
            spec: FaultSpec {
                crash_prob: 0.3,
                rejoin_after: 3,
                straggler_prob: 0.5,
                straggler_factor: 4.0,
                ..FaultSpec::NONE
            },
            policy: AggregationPolicy::BoundedStaleness {
                quorum: 1,
                max_staleness: 2,
            },
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]
    #[test]
    fn faulty_resume_is_bit_identical(
        stop in 1u64..6,
        seed in 0u64..64,
        profile in 0usize..3,
    ) {
        let s = suite(seed, MomentumMode::None);
        assert_resume_is_bit_identical(
            &s,
            || FixedComm::new(3),
            None,
            None,
            Some(aggressive_fault_profile(profile)),
            stop,
        );
    }
}
