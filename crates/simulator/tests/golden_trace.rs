//! Golden-trace regression test for the training hot path.
//!
//! A fixed-seed, full-precision quick run is recorded bit-exactly — every
//! per-round evaluation loss (`f32` bits) and simulated clock (`f64` bits)
//! — and compared against a committed fixture. The fixture pins the
//! FMA-folded kernel semantics introduced in PR 4 (`f32::mul_add`
//! accumulation — an intentional, accuracy-improving math change that
//! required regenerating the PR 3 fixture); everything since — four-row
//! register blocking, direct full averaging, chunked parallel trace-point
//! evaluation, reused batch buffers, evaluation-result memoization —
//! provably left full-precision results bit-identical, on any pool size.
//!
//! Only parameter-derived quantities are recorded (evaluation loss, test
//! accuracy, simulated clock). The *mean local loss* returned by
//! `run_round` is deliberately excluded: it is a purely observational
//! reduction whose float summation order is allowed to change with the
//! parallel fold.
//!
//! To regenerate after an *intentional* math change:
//!
//! ```sh
//! ADACOMM_REGEN_GOLDEN=1 cargo test -p pasgd-sim --test golden_trace
//! ```

use data::GaussianMixture;
use delay::{CommModel, DelayDistribution, RuntimeModel};
use gradcomp::CodecSpec;
use pasgd_sim::{AveragingStrategy, ClusterConfig, MomentumMode, PasgdCluster};
use std::fmt::Write as _;

const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/golden_trace_quick.txt"
);

/// Communication periods exercised per section: a mix of τ = 1 (sync),
/// short and long local-update periods.
const TAUS: [usize; 10] = [1, 4, 2, 8, 3, 5, 1, 6, 2, 4];

fn build_cluster(
    workers: usize,
    momentum: MomentumMode,
    averaging: AveragingStrategy,
    seed: u64,
) -> PasgdCluster {
    let split = GaussianMixture::small_test().generate(seed);
    let runtime = RuntimeModel::new(
        DelayDistribution::exponential(0.5),
        CommModel::constant(0.3),
        workers,
    );
    PasgdCluster::new(
        nn::models::mlp_classifier(8, &[16], 3, 42),
        split,
        runtime,
        ClusterConfig {
            workers,
            batch_size: 8,
            lr: 0.05,
            weight_decay: 5e-4,
            momentum,
            averaging,
            codec: CodecSpec::Identity,
            seed,
            eval_subset: 64,
            fault: pasgd_sim::FaultConfig::NONE,
        },
    )
}

fn record_round(out: &mut String, section: &str, round: usize, c: &mut PasgdCluster) {
    let loss = c.eval_train_loss();
    let _ = writeln!(
        out,
        "{section},{round},{iters},{clock:016x},{loss:08x}",
        iters = c.iterations(),
        clock = c.clock().to_bits(),
        loss = loss.to_bits(),
    );
}

fn run_section(out: &mut String, section: &str, mut c: PasgdCluster) {
    for (round, &tau) in TAUS.iter().enumerate() {
        let _ = c.run_round(tau);
        record_round(out, section, round, &mut c);
    }
    let acc = c.eval_test_accuracy();
    let _ = writeln!(out, "{section},accuracy,{:016x}", acc.to_bits());
}

/// Generates the full golden trace with the current code.
fn golden_trace() -> String {
    let mut out = String::new();
    out.push_str("# section,round,iterations,clock_f64_bits,train_loss_f32_bits\n");

    run_section(
        &mut out,
        "full-average",
        build_cluster(3, MomentumMode::None, AveragingStrategy::FullAverage, 7),
    );
    run_section(
        &mut out,
        "block-momentum",
        build_cluster(
            2,
            MomentumMode::paper_block(),
            AveragingStrategy::FullAverage,
            8,
        ),
    );
    run_section(
        &mut out,
        "local-momentum",
        build_cluster(
            2,
            MomentumMode::Local {
                beta: 0.9,
                reset_at_sync: true,
            },
            AveragingStrategy::FullAverage,
            9,
        ),
    );
    run_section(
        &mut out,
        "ring",
        build_cluster(4, MomentumMode::None, AveragingStrategy::Ring, 10),
    );
    run_section(
        &mut out,
        "elastic",
        build_cluster(
            3,
            MomentumMode::None,
            AveragingStrategy::Elastic { alpha: 0.5 },
            11,
        ),
    );
    run_section(
        &mut out,
        "partial",
        build_cluster(
            4,
            MomentumMode::None,
            AveragingStrategy::PartialParticipation { fraction: 0.5 },
            12,
        ),
    );

    // The Figure 14 probe path: local-only stretches closed by explicit
    // averaging calls.
    let mut c = build_cluster(2, MomentumMode::None, AveragingStrategy::FullAverage, 13);
    for round in 0..6 {
        let _ = c.run_local_only(3);
        record_round(&mut out, "local-only", round, &mut c);
        c.average_now();
        record_round(&mut out, "local-only-avg", round, &mut c);
    }
    let acc = c.eval_test_accuracy();
    let _ = writeln!(out, "local-only,accuracy,{:016x}", acc.to_bits());

    out
}

#[test]
fn full_precision_trace_is_bit_identical_to_fixture() {
    let trace = golden_trace();
    if std::env::var("ADACOMM_REGEN_GOLDEN").is_ok() {
        std::fs::create_dir_all(
            std::path::Path::new(FIXTURE)
                .parent()
                .expect("fixture has a parent dir"),
        )
        .expect("create fixtures dir");
        std::fs::write(FIXTURE, &trace).expect("write golden fixture");
        eprintln!("regenerated {FIXTURE}");
        return;
    }
    let expected = std::fs::read_to_string(FIXTURE).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {FIXTURE} ({e}); \
             run with ADACOMM_REGEN_GOLDEN=1 to create it"
        )
    });
    // Compare line-by-line for a readable diff on mismatch.
    for (i, (got, want)) in trace.lines().zip(expected.lines()).enumerate() {
        assert_eq!(got, want, "golden trace diverged at line {} (0-indexed)", i);
    }
    assert_eq!(
        trace.lines().count(),
        expected.lines().count(),
        "golden trace length changed"
    );
}
