//! Property tests for the trace wire format behind the checkpoint layer
//! and the persistent run store: arbitrary traces — any float bits
//! including NaN / ±inf / −0.0, empty point lists, unicode names — must
//! round-trip bit-exactly, and arbitrary truncation or garbage must fail
//! cleanly, never panic.

use binio::{ByteReader, ByteWriter};
use pasgd_sim::checkpoint::{read_run_trace, write_run_trace};
use pasgd_sim::{RunTrace, TracePoint};
use proptest::prelude::*;

/// f64 by raw bits — random patterns (covering NaN payloads, subnormals,
/// huge exponents) plus the named special values explicitly.
fn any_f64() -> impl Strategy<Value = f64> {
    prop_oneof![
        (0u64..u64::MAX).prop_map(f64::from_bits).boxed(),
        proptest::Just(f64::NAN).boxed(),
        proptest::Just(f64::INFINITY).boxed(),
        proptest::Just(f64::NEG_INFINITY).boxed(),
        proptest::Just(-0.0f64).boxed(),
    ]
}

fn any_f32() -> impl Strategy<Value = f32> {
    prop_oneof![
        (0u32..u32::MAX).prop_map(f32::from_bits).boxed(),
        proptest::Just(f32::NAN).boxed(),
        proptest::Just(f32::NEG_INFINITY).boxed(),
        proptest::Just(-0.0f32).boxed(),
    ]
}

fn any_point() -> impl Strategy<Value = TracePoint> {
    (
        (any_f64(), 0u64..u64::MAX, any_f64(), any_f32()),
        (any_f64(), 0usize..1 << 20, any_f32(), any_f64()),
    )
        .prop_map(
            |((clock, iterations, epoch, train_loss), (test_accuracy, tau, lr, comm_bytes))| {
                TracePoint {
                    clock,
                    iterations,
                    epoch,
                    train_loss,
                    test_accuracy,
                    tau,
                    lr,
                    comm_bytes,
                }
            },
        )
}

fn any_name() -> impl Strategy<Value = String> {
    prop_oneof![
        proptest::collection::vec(0u8..26, 0..12)
            .prop_map(|v| v.iter().map(|b| (b'a' + b) as char).collect())
            .boxed(),
        proptest::Just(String::new()).boxed(),
        proptest::Just("τ=∞ — smoke".to_string()).boxed(),
    ]
}

fn any_trace() -> impl Strategy<Value = RunTrace> {
    (
        any_name(),
        proptest::collection::vec(any_point(), 0..16),
        any_f64(),
        0u64..u64::MAX,
    )
        .prop_map(|(name, points, peak_payload_bytes, rounds)| RunTrace {
            name,
            points,
            peak_payload_bytes,
            rounds,
        })
}

fn point_bits(p: &TracePoint) -> [u64; 8] {
    [
        p.clock.to_bits(),
        p.iterations,
        p.epoch.to_bits(),
        u64::from(p.train_loss.to_bits()),
        p.test_accuracy.to_bits(),
        p.tau as u64,
        u64::from(p.lr.to_bits()),
        p.comm_bytes.to_bits(),
    ]
}

proptest! {
    // Any trace — any float bit patterns, empty or not — round-trips
    // bit-exactly through the wire format.
    #[test]
    fn trace_roundtrip_is_bit_exact(trace in any_trace()) {
        let mut w = ByteWriter::new();
        write_run_trace(&mut w, &trace);
        let bytes = w.into_vec();
        let mut r = ByteReader::new(&bytes);
        let back = read_run_trace(&mut r).unwrap();
        prop_assert!(r.is_empty(), "reader must consume the whole frame");
        prop_assert_eq!(&back.name, &trace.name);
        prop_assert_eq!(back.rounds, trace.rounds);
        prop_assert_eq!(
            back.peak_payload_bytes.to_bits(),
            trace.peak_payload_bytes.to_bits()
        );
        prop_assert_eq!(back.points.len(), trace.points.len());
        for (a, b) in back.points.iter().zip(&trace.points) {
            prop_assert_eq!(point_bits(a), point_bits(b));
        }
    }

    // Every strict prefix of a frame must error cleanly: the point count
    // and name length are written up front, so a cut anywhere leaves the
    // reader short.
    #[test]
    fn any_truncation_errors_cleanly(trace in any_trace(), frac in 0.0f64..1.0) {
        let mut w = ByteWriter::new();
        write_run_trace(&mut w, &trace);
        let bytes = w.into_vec();
        // A frame is never empty (lengths are written unconditionally),
        // so a strict prefix always exists.
        let cut = (((bytes.len() as f64) * frac) as usize).min(bytes.len() - 1);
        let mut r = ByteReader::new(&bytes[..cut]);
        prop_assert!(read_run_trace(&mut r).is_err());
    }

    // Arbitrary bytes fed to the reader must never panic — they either
    // decode (vacuously fine) or error.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(0u16..256, 0..256)) {
        let raw: Vec<u8> = bytes.iter().map(|&b| b as u8).collect();
        let mut r = ByteReader::new(&raw);
        let _ = read_run_trace(&mut r);
    }
}
