//! Ordered container of layers.

use crate::Layer;
use tensor::Tensor;

/// A stack of layers applied in order.
///
/// `Sequential` itself implements [`Layer`], so stacks nest (residual
/// blocks contain a `Sequential`, models contain the outer one).
///
/// # Example
///
/// ```
/// use nn::{Dense, Layer, Relu, Sequential};
/// use rand::SeedableRng;
/// use tensor::Tensor;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut net = Sequential::new(vec![
///     Box::new(Dense::new(8, 16, &mut rng)),
///     Box::new(Relu::new()),
///     Box::new(Dense::new(16, 3, &mut rng)),
/// ]);
/// let logits = net.forward(&Tensor::zeros(&[5, 8]), true);
/// assert_eq!(logits.dims(), &[5, 3]);
/// ```
#[derive(Clone, Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Creates a stack from boxed layers.
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Self {
        Sequential { layers }
    }

    /// Creates an empty stack (push layers with [`Sequential::push`]).
    pub fn empty() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Appends a layer to the end of the stack.
    pub fn push(&mut self, layer: Box<dyn Layer>) -> &mut Self {
        self.layers.push(layer);
        self
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the stack is empty.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Layer names in order, for debugging.
    pub fn layer_names(&self) -> Vec<&'static str> {
        self.layers.iter().map(|l| l.name()).collect()
    }
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sequential")
            .field("layers", &self.layer_names())
            .finish()
    }
}

impl Layer for Sequential {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        // Feed the input straight into the first layer instead of cloning
        // it; only the empty stack still needs the identity copy.
        let mut layers = self.layers.iter_mut();
        let Some(first) = layers.next() else {
            return x.clone();
        };
        let mut h = first.forward(x, train);
        for layer in layers {
            h = layer.forward(&h, train);
        }
        h
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut layers = self.layers.iter_mut().rev();
        let Some(last) = layers.next() else {
            return grad_out.clone();
        };
        let mut g = last.backward(grad_out);
        for layer in layers {
            g = layer.backward(&g);
        }
        g
    }

    fn backward_param_only(&mut self, grad_out: &Tensor) -> Tensor {
        // All layers but the first back-propagate normally; the first
        // layer's input gradient feeds nothing, so it may skip its dx GEMM
        // (recursing into a nested Sequential head, if any).
        let Some((first, rest)) = self.layers.split_first_mut() else {
            return grad_out.clone();
        };
        let mut layers = rest.iter_mut().rev();
        let Some(last) = layers.next() else {
            return first.backward_param_only(grad_out);
        };
        let mut g = last.backward(grad_out);
        for layer in layers {
            g = layer.backward(&g);
        }
        first.backward_param_only(&g)
    }

    fn visit_params(&self, f: &mut dyn FnMut(&Tensor)) {
        for layer in &self.layers {
            layer.visit_params(f);
        }
    }

    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        for layer in &mut self.layers {
            layer.visit_params_mut(f);
        }
    }

    fn visit_param_grad_pairs(&mut self, f: &mut dyn FnMut(&mut Tensor, &Tensor)) {
        for layer in &mut self.layers {
            layer.visit_param_grad_pairs(f);
        }
    }

    fn zero_grads(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grads();
        }
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "sequential"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dense, Relu};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_composes_layers() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = Sequential::new(vec![
            Box::new(Dense::new(2, 3, &mut rng)),
            Box::new(Relu::new()),
            Box::new(Dense::new(3, 1, &mut rng)),
        ]);
        let y = net.forward(&Tensor::ones(&[4, 2]), true);
        assert_eq!(y.dims(), &[4, 1]);
    }

    #[test]
    fn empty_sequential_is_identity() {
        let mut net = Sequential::empty();
        let x = Tensor::from_slice(&[1.0, 2.0]).reshape(&[1, 2]);
        assert_eq!(net.forward(&x, true), x);
        assert_eq!(net.backward(&x), x);
    }

    #[test]
    fn push_builds_incrementally() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = Sequential::empty();
        net.push(Box::new(Dense::new(2, 2, &mut rng)))
            .push(Box::new(Relu::new()));
        assert_eq!(net.len(), 2);
        assert_eq!(net.layer_names(), vec!["dense", "relu"]);
    }

    #[test]
    fn visitors_cover_all_layers() {
        let mut rng = StdRng::seed_from_u64(2);
        let net = Sequential::new(vec![
            Box::new(Dense::new(2, 3, &mut rng)),
            Box::new(Dense::new(3, 4, &mut rng)),
        ]);
        let mut count = 0;
        net.visit_params(&mut |_| count += 1);
        assert_eq!(count, 4); // two weights + two biases
    }

    #[test]
    fn backward_runs_in_reverse() {
        // A two-dense stack: gradient shapes confirm ordering.
        let mut rng = StdRng::seed_from_u64(3);
        let mut net = Sequential::new(vec![
            Box::new(Dense::new(5, 3, &mut rng)),
            Box::new(Dense::new(3, 2, &mut rng)),
        ]);
        let _ = net.forward(&Tensor::zeros(&[1, 5]), true);
        let dx = net.backward(&Tensor::ones(&[1, 2]));
        assert_eq!(dx.dims(), &[1, 5]);
    }
}
