//! A trainable network: a layer stack plus a loss.

use crate::{Layer, Loss, Sequential};
use tensor::Tensor;

/// A supervised classification model: a [`Sequential`] feature extractor
/// producing class logits, trained against a [`Loss`].
///
/// `Network` is what the PASGD simulator replicates onto each worker: it
/// exposes parameter snapshot/load (for model averaging), a combined
/// forward+backward training step, and evaluation helpers.
///
/// # Example
///
/// ```
/// use nn::{models, Network};
/// use tensor::Tensor;
///
/// let mut net = models::mlp_classifier(8, &[16], 3, 42);
/// let x = Tensor::zeros(&[4, 8]);
/// let loss = net.train_step(&x, &[0, 1, 2, 0]);
/// assert!(loss > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Network {
    stack: Sequential,
    loss: Loss,
}

impl Network {
    /// Creates a network from a layer stack and a loss.
    pub fn new(stack: Sequential, loss: Loss) -> Self {
        Network { stack, loss }
    }

    /// The loss this network optimises.
    pub fn loss_kind(&self) -> Loss {
        self.loss
    }

    /// Borrow the underlying layer stack.
    pub fn stack(&self) -> &Sequential {
        &self.stack
    }

    /// Mutably borrow the underlying layer stack.
    pub fn stack_mut(&mut self) -> &mut Sequential {
        &mut self.stack
    }

    /// Total number of trainable parameters.
    pub fn param_count(&self) -> usize {
        let mut count = 0;
        self.stack.visit_params(&mut |p| count += p.len());
        count
    }

    /// Forward pass producing logits, in training mode.
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        self.stack.forward(x, true)
    }

    /// One training step: forward, loss, backward. Parameter gradients are
    /// left in the layers for an optimizer to consume; returns the batch
    /// loss.
    ///
    /// # Panics
    ///
    /// Panics if the batch shapes disagree with the network.
    pub fn train_step(&mut self, x: &Tensor, labels: &[usize]) -> f32 {
        let logits = self.stack.forward(x, true);
        let (loss, dlogits) = self.loss.loss_and_grad(&logits, labels);
        // The first layer's input gradient feeds nothing in a training
        // step; backward_param_only lets it skip that GEMM.
        let _ = self.stack.backward_param_only(&dlogits);
        loss
    }

    /// Mean loss on a batch without computing gradients (evaluation mode).
    pub fn eval_loss(&mut self, x: &Tensor, labels: &[usize]) -> f32 {
        let logits = self.stack.forward(x, false);
        self.loss.loss(&logits, labels)
    }

    /// Per-row loss summands on a batch (evaluation mode), in row order —
    /// the chunkable half of [`Network::eval_loss`]. Because the forward
    /// pass and the per-row loss are row-independent, evaluating a batch
    /// as row chunks and reducing the concatenated summands with
    /// [`Loss::reduce_rows`](crate::Loss::reduce_rows) is bit-identical
    /// to one whole-batch [`Network::eval_loss`] call; the PASGD cluster
    /// relies on this to run trace-point evaluation as parallel chunk
    /// jobs.
    pub fn eval_row_losses(&mut self, x: &Tensor, labels: &[usize]) -> Vec<f64> {
        let logits = self.stack.forward(x, false);
        self.loss.row_losses(&logits, labels)
    }

    /// Predicted class per row (argmax of logits), evaluation mode.
    pub fn predict(&mut self, x: &Tensor) -> Vec<usize> {
        self.stack.forward(x, false).argmax_rows()
    }

    /// Fraction of rows whose argmax prediction matches the label.
    pub fn accuracy(&mut self, x: &Tensor, labels: &[usize]) -> f64 {
        let preds = self.predict(x);
        crate::metrics::accuracy(&preds, labels)
    }

    /// Number of rows whose argmax prediction matches the label — the
    /// chunkable (integer, order-free) half of [`Network::accuracy`].
    pub fn correct_count(&mut self, x: &Tensor, labels: &[usize]) -> usize {
        self.predict(x)
            .iter()
            .zip(labels)
            .filter(|(p, l)| p == l)
            .count()
    }

    // ------------------------------------------------------------------
    // Parameter plumbing for distributed averaging
    // ------------------------------------------------------------------

    /// Snapshots every parameter tensor, in visitor order.
    pub fn params_snapshot(&self) -> Vec<Tensor> {
        let mut out = Vec::new();
        self.stack.visit_params(&mut |p| out.push(p.clone()));
        out
    }

    /// Loads parameters previously produced by [`Network::params_snapshot`]
    /// (or an average of several snapshots).
    ///
    /// # Panics
    ///
    /// Panics if the snapshot length or any tensor shape disagrees.
    pub fn load_params(&mut self, params: &[Tensor]) {
        let mut idx = 0;
        self.stack.visit_params_mut(&mut |p| {
            assert!(
                idx < params.len(),
                "snapshot has too few tensors ({} provided)",
                params.len()
            );
            p.copy_from(&params[idx]);
            idx += 1;
        });
        assert_eq!(
            idx,
            params.len(),
            "snapshot has {} tensors but the network has {idx}",
            params.len()
        );
    }

    /// Lengths of every parameter tensor in visitor order — the segment
    /// layout of the flat parameter plane used by
    /// [`Network::copy_params_into`] / [`Network::load_params_from`].
    pub fn param_sizes(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.stack.visit_params(&mut |p| out.push(p.len()));
        out
    }

    /// Copies every parameter into the flat plane `out` (row-major within
    /// each tensor, visitor order across tensors). The allocation-free
    /// counterpart of [`Network::params_snapshot`]; the PASGD cluster keeps
    /// one preallocated plane per worker and refills it every round.
    ///
    /// # Panics
    ///
    /// Panics if `out.len()` differs from [`Network::param_count`].
    pub fn copy_params_into(&self, out: &mut [f32]) {
        let mut offset = 0;
        self.stack.visit_params(&mut |p| {
            let next = offset + p.len();
            assert!(
                next <= out.len(),
                "flat plane holds {} values but the network has more",
                out.len()
            );
            out[offset..next].copy_from_slice(p.as_slice());
            offset = next;
        });
        assert_eq!(
            offset,
            out.len(),
            "flat plane holds {} values but the network has {offset}",
            out.len()
        );
    }

    /// Adds every parameter into the flat plane `acc` (`acc[i] += p[i]` in
    /// the [`Network::copy_params_into`] layout) — the accumulate half of
    /// distributed averaging, reading parameters in place instead of
    /// materialising a flat copy first.
    ///
    /// # Panics
    ///
    /// Panics if `acc.len()` differs from [`Network::param_count`].
    pub fn add_params_to(&self, acc: &mut [f32]) {
        let mut offset = 0;
        self.stack.visit_params(&mut |p| {
            let next = offset + p.len();
            assert!(
                next <= acc.len(),
                "flat plane holds {} values but the network has more",
                acc.len()
            );
            for (a, &v) in acc[offset..next].iter_mut().zip(p.as_slice()) {
                *a += v;
            }
            offset = next;
        });
        assert_eq!(
            offset,
            acc.len(),
            "flat plane holds {} values but the network has {offset}",
            acc.len()
        );
    }

    /// Allocating convenience around [`Network::copy_params_into`].
    pub fn params_flat(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.param_count()];
        self.copy_params_into(&mut out);
        out
    }

    /// Overwrites every parameter from the flat plane `src` (the layout
    /// produced by [`Network::copy_params_into`]). The allocation-free
    /// counterpart of [`Network::load_params`].
    ///
    /// # Panics
    ///
    /// Panics if `src.len()` differs from [`Network::param_count`].
    pub fn load_params_from(&mut self, src: &[f32]) {
        let mut offset = 0;
        self.stack.visit_params_mut(&mut |p| {
            let next = offset + p.len();
            assert!(
                next <= src.len(),
                "flat snapshot holds {} values but the network has more",
                src.len()
            );
            p.as_mut_slice().copy_from_slice(&src[offset..next]);
            offset = next;
        });
        assert_eq!(
            offset,
            src.len(),
            "flat snapshot holds {} values but the network has {offset}",
            src.len()
        );
    }

    /// Snapshots every gradient tensor, in the same order as
    /// [`Network::params_snapshot`].
    pub fn grads_snapshot(&mut self) -> Vec<Tensor> {
        let mut out = Vec::new();
        self.stack
            .visit_param_grad_pairs(&mut |_, g| out.push(g.clone()));
        out
    }

    /// Squared L2 norm of the current gradient.
    pub fn grad_sq_norm(&mut self) -> f32 {
        let mut total = 0.0;
        self.stack
            .visit_param_grad_pairs(&mut |_, g| total += g.norm_sq());
        total
    }

    /// Sets all gradients to zero.
    pub fn zero_grads(&mut self) {
        self.stack.zero_grads();
    }

    /// Visits `(parameter, gradient)` pairs — the optimizer entry point.
    pub fn visit_param_grad_pairs(&mut self, f: &mut dyn FnMut(&mut Tensor, &Tensor)) {
        self.stack.visit_param_grad_pairs(f);
    }
}

/// Averages the parameter snapshots of several replicas — eq. 3's averaging
/// step, operating tensor-by-tensor.
///
/// # Panics
///
/// Panics if `snapshots` is empty or shapes are inconsistent.
///
/// # Example
///
/// ```
/// use nn::{average_params, models};
///
/// let a = models::mlp_classifier(4, &[8], 2, 1).params_snapshot();
/// let b = models::mlp_classifier(4, &[8], 2, 2).params_snapshot();
/// let avg = average_params(&[a, b]);
/// assert_eq!(avg.len(), 4); // two dense layers x (weight, bias)
/// ```
pub fn average_params(snapshots: &[Vec<Tensor>]) -> Vec<Tensor> {
    assert!(!snapshots.is_empty(), "cannot average zero snapshots");
    let n = snapshots[0].len();
    for s in snapshots {
        assert_eq!(
            s.len(),
            n,
            "inconsistent snapshot lengths: {} vs {n}",
            s.len()
        );
    }
    (0..n)
        .map(|i| {
            let tensors: Vec<Tensor> = snapshots.iter().map(|s| s[i].clone()).collect();
            tensor::average(&tensors)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn snapshot_load_roundtrip() {
        let net = models::mlp_classifier(4, &[6], 3, 0);
        let snap = net.params_snapshot();
        let mut other = models::mlp_classifier(4, &[6], 3, 99);
        assert_ne!(other.params_snapshot(), snap);
        other.load_params(&snap);
        assert_eq!(other.params_snapshot(), snap);
    }

    #[test]
    fn identical_params_give_identical_predictions() {
        let mut a = models::mlp_classifier(4, &[6], 3, 0);
        let mut b = models::mlp_classifier(4, &[6], 3, 1);
        b.load_params(&a.params_snapshot());
        let mut rng = StdRng::seed_from_u64(2);
        let x = tensor::Tensor::randn(&[8, 4], 1.0, &mut rng);
        assert_eq!(a.predict(&x), b.predict(&x));
    }

    #[test]
    fn train_step_populates_gradients() {
        let mut net = models::mlp_classifier(4, &[6], 3, 0);
        let mut rng = StdRng::seed_from_u64(3);
        let x = tensor::Tensor::randn(&[8, 4], 1.0, &mut rng);
        let loss = net.train_step(&x, &[0, 1, 2, 0, 1, 2, 0, 1]);
        assert!(loss > 0.0);
        assert!(net.grad_sq_norm() > 0.0);
        net.zero_grads();
        assert_eq!(net.grad_sq_norm(), 0.0);
    }

    #[test]
    fn average_params_midpoint() {
        let a = vec![tensor::Tensor::full(&[2], 0.0)];
        let b = vec![tensor::Tensor::full(&[2], 4.0)];
        let avg = average_params(&[a, b]);
        assert_eq!(avg[0].as_slice(), &[2.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "too few tensors")]
    fn load_rejects_short_snapshot() {
        let mut net = models::mlp_classifier(4, &[6], 3, 0);
        net.load_params(&[]);
    }

    #[test]
    fn flat_plane_roundtrip_matches_snapshot() {
        let net = models::mlp_classifier(4, &[6], 3, 0);
        let plane = net.params_flat();
        assert_eq!(plane.len(), net.param_count());
        assert_eq!(net.param_sizes(), vec![24, 6, 18, 3]);
        // The plane is the concatenation of the snapshot tensors.
        let concat: Vec<f32> = net
            .params_snapshot()
            .iter()
            .flat_map(|t| t.as_slice().to_vec())
            .collect();
        assert_eq!(plane, concat);
        let mut other = models::mlp_classifier(4, &[6], 3, 99);
        other.load_params_from(&plane);
        assert_eq!(other.params_flat(), plane);
        assert_eq!(other.params_snapshot(), net.params_snapshot());
    }

    #[test]
    #[should_panic(expected = "flat snapshot holds")]
    fn load_from_rejects_short_plane() {
        let mut net = models::mlp_classifier(4, &[6], 3, 0);
        net.load_params_from(&[0.0; 3]);
    }

    #[test]
    fn chunked_eval_is_bit_identical_to_whole_batch() {
        // The contract trace-point parallel evaluation rests on: forward
        // passes and per-row losses are row-independent, so evaluating a
        // batch as row chunks and reducing the concatenated summands
        // matches the whole-batch loss bit for bit.
        let mut rng = StdRng::seed_from_u64(11);
        let x = tensor::Tensor::randn(&[70, 4], 1.0, &mut rng);
        let labels: Vec<usize> = (0..70).map(|i| i % 3).collect();
        for loss in [crate::Loss::CrossEntropy, crate::Loss::MeanSquaredError] {
            let mut net = models::mlp_classifier(4, &[6], 3, 5);
            let mut net = Network::new(net.stack_mut().clone(), loss);
            let whole = net.eval_loss(&x, &labels);
            let mut rows = Vec::new();
            let mut correct = 0usize;
            for start in (0..70).step_by(16) {
                let end = (start + 16).min(70);
                let idx: Vec<usize> = ((start * 4)..(end * 4)).collect();
                let cx = tensor::Tensor::from_vec(
                    idx.iter().map(|&i| x.as_slice()[i]).collect(),
                    &[end - start, 4],
                )
                .unwrap();
                // A fresh replica per chunk, like the cluster's eval pool.
                let mut replica = net.clone();
                rows.extend(replica.eval_row_losses(&cx, &labels[start..end]));
                correct += replica.correct_count(&cx, &labels[start..end]);
            }
            let chunked = loss.reduce_rows(&rows, 3);
            assert_eq!(
                whole.to_bits(),
                chunked.to_bits(),
                "{loss:?} chunked eval diverged"
            );
            let whole_acc = net.accuracy(&x, &labels);
            assert_eq!(whole_acc, correct as f64 / 70.0);
        }
    }

    #[test]
    fn param_count_matches_architecture() {
        let net = models::mlp_classifier(4, &[6], 3, 0);
        // dense(4->6): 24+6, dense(6->3): 18+3.
        assert_eq!(net.param_count(), 24 + 6 + 18 + 3);
    }
}
