//! Loss functions: softmax cross-entropy and mean squared error.

use tensor::Tensor;

/// Which loss a [`Network`](crate::Network) optimises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Loss {
    /// Softmax + cross-entropy over class logits (classification).
    CrossEntropy,
    /// Mean squared error against one-hot targets (used for regression-style
    /// heads and in tests).
    MeanSquaredError,
}

impl Loss {
    /// Computes the mean loss over a batch and the gradient w.r.t. the
    /// logits.
    ///
    /// `logits` is `[batch, classes]`; `labels` has one class index per row.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree or a label is out of range.
    pub fn loss_and_grad(&self, logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
        match self {
            Loss::CrossEntropy => cross_entropy(logits, labels),
            Loss::MeanSquaredError => mse_one_hot(logits, labels),
        }
    }

    /// Computes only the mean loss (no gradient). Reduces
    /// [`Loss::row_losses`] with [`Loss::reduce_rows`], skipping the
    /// gradient work and its allocation entirely — the evaluation path.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree or a label is out of range.
    pub fn loss(&self, logits: &Tensor, labels: &[usize]) -> f32 {
        let (_, classes) = check(logits, labels);
        self.reduce_rows(&self.row_losses(logits, labels), classes)
    }

    /// The per-row loss summands, in row order.
    ///
    /// The batch loss is defined as `reduce_rows(row_losses)`; splitting a
    /// batch into row chunks, computing `row_losses` per chunk and reducing
    /// the concatenation gives **bit-identical** results to the one-shot
    /// batch loss (the float sequence per row and the row-order reduction
    /// are unchanged), which is what lets trace-point evaluation run as
    /// parallel chunk jobs.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree or a label is out of range.
    pub fn row_losses(&self, logits: &Tensor, labels: &[usize]) -> Vec<f64> {
        let (_, classes) = check(logits, labels);
        match self {
            Loss::CrossEntropy => labels
                .iter()
                .enumerate()
                .map(|(r, &label)| {
                    let row = logits.row(r);
                    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                    // Same exp/sum sequence as the gradient path: the label
                    // term re-derives exps[label] from the same inputs.
                    let sum = row.iter().fold(0.0f32, |acc, &v| acc + (v - max).exp());
                    let _ = classes;
                    -f64::from(((row[label] - max).exp() / sum).max(f32::MIN_POSITIVE).ln())
                })
                .collect(),
            Loss::MeanSquaredError => labels
                .iter()
                .enumerate()
                .map(|(r, &label)| {
                    let row = logits.row(r);
                    let mut row_total = 0.0f64;
                    for (c, &v) in row.iter().enumerate() {
                        let target = if c == label { 1.0 } else { 0.0 };
                        let diff = v - target;
                        row_total += f64::from(diff * diff);
                    }
                    row_total
                })
                .collect(),
        }
    }

    /// Reduces per-row loss summands (from [`Loss::row_losses`], possibly
    /// concatenated across row chunks) to the mean batch loss.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or `classes == 0`.
    pub fn reduce_rows(&self, rows: &[f64], classes: usize) -> f32 {
        assert!(
            !rows.is_empty() && classes > 0,
            "cannot reduce an empty batch"
        );
        let total: f64 = rows.iter().fold(0.0f64, |acc, &v| acc + v);
        match self {
            Loss::CrossEntropy => (total / rows.len() as f64) as f32,
            Loss::MeanSquaredError => (total / (rows.len() * classes) as f64) as f32,
        }
    }
}

/// Numerically stable softmax cross-entropy.
///
/// Returns `(mean loss, d loss / d logits)` with the gradient already
/// averaged over the batch (`(softmax − onehot)/batch`).
fn cross_entropy(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    let (batch, classes) = check(logits, labels);
    let mut grad = Tensor::zeros(&[batch, classes]);
    let mut total = 0.0f64;
    for (r, &label) in labels.iter().enumerate() {
        let row = logits.row(r);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        // Stage the exponentials in the gradient row (no per-row buffer),
        // then transform them to `(softmax − onehot)/batch` in place.
        let grow = grad.row_mut(r);
        for (g, &v) in grow.iter_mut().zip(row) {
            *g = (v - max).exp();
        }
        let sum: f32 = grow.iter().sum();
        // loss = -log softmax[label]
        total += -f64::from((grow[label] / sum).max(f32::MIN_POSITIVE).ln());
        for (c, g) in grow.iter_mut().enumerate() {
            let softmax = *g / sum;
            let onehot = if c == label { 1.0 } else { 0.0 };
            *g = (softmax - onehot) / batch as f32;
        }
    }
    ((total / batch as f64) as f32, grad)
}

/// MSE against one-hot targets: `mean((logits − onehot)²)`.
fn mse_one_hot(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    let (batch, classes) = check(logits, labels);
    let n = (batch * classes) as f32;
    let mut grad = Tensor::zeros(&[batch, classes]);
    let mut total = 0.0f64;
    for (r, &label) in labels.iter().enumerate() {
        let row = logits.row(r);
        let grow = grad.row_mut(r);
        for c in 0..classes {
            let target = if c == label { 1.0 } else { 0.0 };
            let diff = row[c] - target;
            total += f64::from(diff * diff);
            grow[c] = 2.0 * diff / n;
        }
    }
    ((total / f64::from(n)) as f32, grad)
}

fn check(logits: &Tensor, labels: &[usize]) -> (usize, usize) {
    assert_eq!(
        logits.shape().rank(),
        2,
        "logits must be [batch, classes], got {}",
        logits.shape()
    );
    let (batch, classes) = (logits.dims()[0], logits.dims()[1]);
    assert_eq!(
        batch,
        labels.len(),
        "batch size {batch} does not match {} labels",
        labels.len()
    );
    if let Some(&bad) = labels.iter().find(|&&l| l >= classes) {
        panic!("label {bad} out of range for {classes} classes");
    }
    (batch, classes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_entropy_of_perfect_prediction_is_small() {
        let logits = Tensor::from_vec(vec![10.0, -10.0, -10.0], &[1, 3]).unwrap();
        let (loss, _) = Loss::CrossEntropy.loss_and_grad(&logits, &[0]);
        assert!(loss < 1e-6, "loss {loss}");
    }

    #[test]
    fn cross_entropy_of_uniform_logits_is_log_k() {
        let logits = Tensor::zeros(&[2, 4]);
        let (loss, _) = Loss::CrossEntropy.loss_and_grad(&logits, &[1, 3]);
        assert!((loss - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_gradient_rows_sum_to_zero() {
        let logits = Tensor::from_vec(vec![0.3, -0.2, 0.9, 0.1, 0.1, 0.4], &[2, 3]).unwrap();
        let (_, grad) = Loss::CrossEntropy.loss_and_grad(&logits, &[2, 0]);
        for r in 0..2 {
            let s: f32 = grad.row(r).iter().sum();
            assert!(s.abs() < 1e-6, "row {r} sums to {s}");
        }
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_difference() {
        let logits = Tensor::from_vec(vec![0.5, -1.0, 2.0, 0.1], &[2, 2]).unwrap();
        let labels = [1usize, 0];
        let (_, grad) = Loss::CrossEntropy.loss_and_grad(&logits, &labels);
        let eps = 1e-3f32;
        for idx in 0..4 {
            let mut lp = logits.clone();
            lp.as_mut_slice()[idx] += eps;
            let mut lm = logits.clone();
            lm.as_mut_slice()[idx] -= eps;
            let fp = Loss::CrossEntropy.loss(&lp, &labels);
            let fm = Loss::CrossEntropy.loss(&lm, &labels);
            let fd = (fp - fm) / (2.0 * eps);
            assert!(
                (fd - grad.at(idx)).abs() < 1e-3,
                "idx {idx}: fd {fd} vs {}",
                grad.at(idx)
            );
        }
    }

    #[test]
    fn mse_gradient_matches_finite_difference() {
        let logits = Tensor::from_vec(vec![0.5, -1.0, 2.0, 0.1], &[2, 2]).unwrap();
        let labels = [1usize, 0];
        let (_, grad) = Loss::MeanSquaredError.loss_and_grad(&logits, &labels);
        let eps = 1e-3f32;
        for idx in 0..4 {
            let mut lp = logits.clone();
            lp.as_mut_slice()[idx] += eps;
            let mut lm = logits.clone();
            lm.as_mut_slice()[idx] -= eps;
            let fp = Loss::MeanSquaredError.loss(&lp, &labels);
            let fm = Loss::MeanSquaredError.loss(&lm, &labels);
            let fd = (fp - fm) / (2.0 * eps);
            assert!(
                (fd - grad.at(idx)).abs() < 1e-3,
                "idx {idx}: fd {fd} vs {}",
                grad.at(idx)
            );
        }
    }

    #[test]
    fn mse_zero_at_exact_one_hot() {
        let logits = Tensor::from_vec(vec![0.0, 1.0], &[1, 2]).unwrap();
        let (loss, grad) = Loss::MeanSquaredError.loss_and_grad(&logits, &[1]);
        assert_eq!(loss, 0.0);
        assert_eq!(grad.norm(), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn label_out_of_range_panics() {
        let logits = Tensor::zeros(&[1, 2]);
        let _ = Loss::CrossEntropy.loss_and_grad(&logits, &[5]);
    }

    #[test]
    fn cross_entropy_is_stable_for_large_logits() {
        let logits = Tensor::from_vec(vec![1e4, -1e4], &[1, 2]).unwrap();
        let (loss, grad) = Loss::CrossEntropy.loss_and_grad(&logits, &[0]);
        assert!(loss.is_finite());
        assert!(!grad.has_non_finite());
    }
}
