//! Loss functions: softmax cross-entropy and mean squared error.

use tensor::Tensor;

/// Which loss a [`Network`](crate::Network) optimises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Loss {
    /// Softmax + cross-entropy over class logits (classification).
    CrossEntropy,
    /// Mean squared error against one-hot targets (used for regression-style
    /// heads and in tests).
    MeanSquaredError,
}

impl Loss {
    /// Computes the mean loss over a batch and the gradient w.r.t. the
    /// logits.
    ///
    /// `logits` is `[batch, classes]`; `labels` has one class index per row.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree or a label is out of range.
    pub fn loss_and_grad(&self, logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
        match self {
            Loss::CrossEntropy => cross_entropy(logits, labels),
            Loss::MeanSquaredError => mse_one_hot(logits, labels),
        }
    }

    /// Computes only the mean loss (no gradient).
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree or a label is out of range.
    pub fn loss(&self, logits: &Tensor, labels: &[usize]) -> f32 {
        self.loss_and_grad(logits, labels).0
    }
}

/// Numerically stable softmax cross-entropy.
///
/// Returns `(mean loss, d loss / d logits)` with the gradient already
/// averaged over the batch (`(softmax − onehot)/batch`).
fn cross_entropy(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    let (batch, classes) = check(logits, labels);
    let mut grad = Tensor::zeros(&[batch, classes]);
    let mut total = 0.0f64;
    for (r, &label) in labels.iter().enumerate() {
        let row = logits.row(r);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = row.iter().map(|&v| (v - max).exp()).collect();
        let sum: f32 = exps.iter().sum();
        // loss = -log softmax[label]
        total += -f64::from((exps[label] / sum).max(f32::MIN_POSITIVE).ln());
        let grow = grad.row_mut(r);
        for (c, g) in grow.iter_mut().enumerate() {
            let softmax = exps[c] / sum;
            let onehot = if c == label { 1.0 } else { 0.0 };
            *g = (softmax - onehot) / batch as f32;
        }
    }
    ((total / batch as f64) as f32, grad)
}

/// MSE against one-hot targets: `mean((logits − onehot)²)`.
fn mse_one_hot(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    let (batch, classes) = check(logits, labels);
    let n = (batch * classes) as f32;
    let mut grad = Tensor::zeros(&[batch, classes]);
    let mut total = 0.0f64;
    for (r, &label) in labels.iter().enumerate() {
        let row = logits.row(r);
        let grow = grad.row_mut(r);
        for c in 0..classes {
            let target = if c == label { 1.0 } else { 0.0 };
            let diff = row[c] - target;
            total += f64::from(diff * diff);
            grow[c] = 2.0 * diff / n;
        }
    }
    ((total / f64::from(n)) as f32, grad)
}

fn check(logits: &Tensor, labels: &[usize]) -> (usize, usize) {
    assert_eq!(
        logits.shape().rank(),
        2,
        "logits must be [batch, classes], got {}",
        logits.shape()
    );
    let (batch, classes) = (logits.dims()[0], logits.dims()[1]);
    assert_eq!(
        batch,
        labels.len(),
        "batch size {batch} does not match {} labels",
        labels.len()
    );
    if let Some(&bad) = labels.iter().find(|&&l| l >= classes) {
        panic!("label {bad} out of range for {classes} classes");
    }
    (batch, classes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_entropy_of_perfect_prediction_is_small() {
        let logits = Tensor::from_vec(vec![10.0, -10.0, -10.0], &[1, 3]).unwrap();
        let (loss, _) = Loss::CrossEntropy.loss_and_grad(&logits, &[0]);
        assert!(loss < 1e-6, "loss {loss}");
    }

    #[test]
    fn cross_entropy_of_uniform_logits_is_log_k() {
        let logits = Tensor::zeros(&[2, 4]);
        let (loss, _) = Loss::CrossEntropy.loss_and_grad(&logits, &[1, 3]);
        assert!((loss - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_gradient_rows_sum_to_zero() {
        let logits = Tensor::from_vec(vec![0.3, -0.2, 0.9, 0.1, 0.1, 0.4], &[2, 3]).unwrap();
        let (_, grad) = Loss::CrossEntropy.loss_and_grad(&logits, &[2, 0]);
        for r in 0..2 {
            let s: f32 = grad.row(r).iter().sum();
            assert!(s.abs() < 1e-6, "row {r} sums to {s}");
        }
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_difference() {
        let logits = Tensor::from_vec(vec![0.5, -1.0, 2.0, 0.1], &[2, 2]).unwrap();
        let labels = [1usize, 0];
        let (_, grad) = Loss::CrossEntropy.loss_and_grad(&logits, &labels);
        let eps = 1e-3f32;
        for idx in 0..4 {
            let mut lp = logits.clone();
            lp.as_mut_slice()[idx] += eps;
            let mut lm = logits.clone();
            lm.as_mut_slice()[idx] -= eps;
            let fp = Loss::CrossEntropy.loss(&lp, &labels);
            let fm = Loss::CrossEntropy.loss(&lm, &labels);
            let fd = (fp - fm) / (2.0 * eps);
            assert!(
                (fd - grad.at(idx)).abs() < 1e-3,
                "idx {idx}: fd {fd} vs {}",
                grad.at(idx)
            );
        }
    }

    #[test]
    fn mse_gradient_matches_finite_difference() {
        let logits = Tensor::from_vec(vec![0.5, -1.0, 2.0, 0.1], &[2, 2]).unwrap();
        let labels = [1usize, 0];
        let (_, grad) = Loss::MeanSquaredError.loss_and_grad(&logits, &labels);
        let eps = 1e-3f32;
        for idx in 0..4 {
            let mut lp = logits.clone();
            lp.as_mut_slice()[idx] += eps;
            let mut lm = logits.clone();
            lm.as_mut_slice()[idx] -= eps;
            let fp = Loss::MeanSquaredError.loss(&lp, &labels);
            let fm = Loss::MeanSquaredError.loss(&lm, &labels);
            let fd = (fp - fm) / (2.0 * eps);
            assert!(
                (fd - grad.at(idx)).abs() < 1e-3,
                "idx {idx}: fd {fd} vs {}",
                grad.at(idx)
            );
        }
    }

    #[test]
    fn mse_zero_at_exact_one_hot() {
        let logits = Tensor::from_vec(vec![0.0, 1.0], &[1, 2]).unwrap();
        let (loss, grad) = Loss::MeanSquaredError.loss_and_grad(&logits, &[1]);
        assert_eq!(loss, 0.0);
        assert_eq!(grad.norm(), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn label_out_of_range_panics() {
        let logits = Tensor::zeros(&[1, 2]);
        let _ = Loss::CrossEntropy.loss_and_grad(&logits, &[5]);
    }

    #[test]
    fn cross_entropy_is_stable_for_large_logits() {
        let logits = Tensor::from_vec(vec![1e4, -1e4], &[1, 2]).unwrap();
        let (loss, grad) = Loss::CrossEntropy.loss_and_grad(&logits, &[0]);
        assert!(loss.is_finite());
        assert!(!grad.has_non_finite());
    }
}
