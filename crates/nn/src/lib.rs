//! From-scratch neural-network substrate for the AdaComm reproduction.
//!
//! The paper trains VGG-16 and ResNet-50 in PyTorch; this offline
//! reproduction needs a self-contained trainable-model stack, so this crate
//! implements one: layers with explicit forward/backward passes
//! ([`Dense`], [`Conv2d`], [`MaxPool2d`], [`Relu`], [`Tanh`], [`Residual`]),
//! losses ([`Loss`]), an SGD optimizer with momentum and weight decay
//! ([`Sgd`]), and a [`Network`] container exposing the parameter
//! snapshot/load plumbing that periodic model averaging needs.
//!
//! The [`models`] module provides the architectures the experiments use:
//! [`models::vgg_like`] (plain conv stack, heavy dense head —
//! communication-bound) and [`models::resnet_like`] (residual blocks, small
//! head — computation-bound), plus MLP/softmax baselines.
//!
//! # Example
//!
//! ```
//! use nn::{models, Sgd};
//! use tensor::Tensor;
//!
//! let mut net = models::mlp_classifier(8, &[16], 3, 42);
//! let mut opt = Sgd::new(0.1).with_momentum(0.9);
//! let x = Tensor::zeros(&[4, 8]);
//! let labels = [0, 1, 2, 0];
//! let loss_before = net.train_step(&x, &labels);
//! opt.step(&mut net);
//! let loss_after = net.eval_loss(&x, &labels);
//! assert!(loss_after <= loss_before);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod activation;
mod conv;
mod dense;
mod layer;
mod loss;
pub mod metrics;
mod network;
mod optim;
mod residual;
mod sequential;
mod zoo;

pub use activation::{Relu, Tanh};
pub use conv::{Conv2d, ImageDims, MaxPool2d};
pub use dense::Dense;
pub use layer::{param_count, Layer};
pub use loss::Loss;
pub use network::{average_params, Network};
pub use optim::Sgd;
pub use residual::Residual;
pub use sequential::Sequential;

/// The model zoo used by the reproduction experiments.
pub mod models {
    pub use crate::zoo::{mlp_classifier, resnet_like, softmax_regression, vgg_like};
}
