//! Model zoo: the architectures used by the reproduction experiments.
//!
//! The paper trains VGG-16 (~138 M parameters) and ResNet-50 (~25.6 M). We
//! keep the architectural *families* — a plain deep conv stack with large
//! dense head (VGG-like) and a residual conv network (ResNet-like) — at a
//! scale where the full figure suite runs on a laptop. Wall-clock behaviour
//! is supplied by the calibrated delay profiles in the `delay` crate, not by
//! the raw FLOPs of these networks (see `DESIGN.md`).

use crate::{Conv2d, Dense, Loss, MaxPool2d, Network, Relu, Residual, Sequential};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A multi-layer perceptron classifier with ReLU activations.
///
/// `hidden` lists the hidden-layer widths; an empty slice yields softmax
/// regression (a single affine layer).
///
/// # Panics
///
/// Panics if `input_dim == 0` or `classes == 0`.
///
/// # Example
///
/// ```
/// use nn::models::mlp_classifier;
///
/// let net = mlp_classifier(256, &[128, 64], 10, 0);
/// assert!(net.param_count() > 256 * 128);
/// ```
pub fn mlp_classifier(input_dim: usize, hidden: &[usize], classes: usize, seed: u64) -> Network {
    assert!(input_dim > 0 && classes > 0, "degenerate classifier");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stack = Sequential::empty();
    let mut dim = input_dim;
    for &h in hidden {
        stack.push(Box::new(Dense::new(dim, h, &mut rng)));
        stack.push(Box::new(Relu::new()));
        dim = h;
    }
    stack.push(Box::new(Dense::new(dim, classes, &mut rng)));
    Network::new(stack, Loss::CrossEntropy)
}

/// Softmax regression: a single affine layer plus cross-entropy. The
/// smallest convex-ish workload; used for fast theory-facing experiments.
pub fn softmax_regression(input_dim: usize, classes: usize, seed: u64) -> Network {
    mlp_classifier(input_dim, &[], classes, seed)
}

/// A VGG-style network: plain 3×3 conv blocks, max-pooling, and a large
/// dense head — the communication-heavy architecture family of the paper.
///
/// Input is a flattened `[channels, side, side]` image; `side` must be
/// divisible by 4.
///
/// # Panics
///
/// Panics if `side % 4 != 0`, or any dimension is zero.
pub fn vgg_like(channels: usize, side: usize, classes: usize, seed: u64) -> Network {
    assert!(
        channels > 0 && side > 0 && classes > 0,
        "degenerate network"
    );
    assert_eq!(side % 4, 0, "side must be divisible by 4, got {side}");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stack = Sequential::empty();
    // Block 1: conv-relu-conv-relu-pool.
    stack.push(Box::new(Conv2d::new(
        (channels, side, side),
        8,
        3,
        1,
        &mut rng,
    )));
    stack.push(Box::new(Relu::new()));
    stack.push(Box::new(Conv2d::new((8, side, side), 8, 3, 1, &mut rng)));
    stack.push(Box::new(Relu::new()));
    stack.push(Box::new(MaxPool2d::new((8, side, side))));
    let s2 = side / 2;
    // Block 2: conv-relu-pool.
    stack.push(Box::new(Conv2d::new((8, s2, s2), 16, 3, 1, &mut rng)));
    stack.push(Box::new(Relu::new()));
    stack.push(Box::new(MaxPool2d::new((16, s2, s2))));
    let s4 = side / 4;
    // Large dense head — the VGG signature that makes the model
    // communication-bound.
    let flat = 16 * s4 * s4;
    stack.push(Box::new(Dense::new(flat, 128, &mut rng)));
    stack.push(Box::new(Relu::new()));
    stack.push(Box::new(Dense::new(128, classes, &mut rng)));
    Network::new(stack, Loss::CrossEntropy)
}

/// A ResNet-style network: an initial conv, two residual blocks with
/// identity skips, pooling, and a small dense head.
///
/// # Panics
///
/// Panics if `side % 4 != 0`, or any dimension is zero.
pub fn resnet_like(channels: usize, side: usize, classes: usize, seed: u64) -> Network {
    assert!(
        channels > 0 && side > 0 && classes > 0,
        "degenerate network"
    );
    assert_eq!(side % 4, 0, "side must be divisible by 4, got {side}");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stack = Sequential::empty();
    stack.push(Box::new(Conv2d::new(
        (channels, side, side),
        8,
        3,
        1,
        &mut rng,
    )));
    stack.push(Box::new(Relu::new()));
    // Residual block 1 at full resolution.
    stack.push(Box::new(Residual::new(Sequential::new(vec![
        Box::new(Conv2d::new((8, side, side), 8, 3, 1, &mut rng)),
        Box::new(Relu::new()),
        Box::new(Conv2d::new((8, side, side), 8, 3, 1, &mut rng)),
    ]))));
    stack.push(Box::new(Relu::new()));
    stack.push(Box::new(MaxPool2d::new((8, side, side))));
    let s2 = side / 2;
    // Residual block 2 at half resolution.
    stack.push(Box::new(Residual::new(Sequential::new(vec![
        Box::new(Conv2d::new((8, s2, s2), 8, 3, 1, &mut rng)),
        Box::new(Relu::new()),
        Box::new(Conv2d::new((8, s2, s2), 8, 3, 1, &mut rng)),
    ]))));
    stack.push(Box::new(Relu::new()));
    stack.push(Box::new(MaxPool2d::new((8, s2, s2))));
    let s4 = side / 4;
    // Small dense head — ResNets avoid VGG's parameter-heavy head.
    stack.push(Box::new(Dense::new(8 * s4 * s4, classes, &mut rng)));
    Network::new(stack, Loss::CrossEntropy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor::Tensor;

    #[test]
    fn mlp_shapes() {
        let mut net = mlp_classifier(10, &[20, 5], 3, 0);
        let y = net.forward(&Tensor::zeros(&[2, 10]));
        assert_eq!(y.dims(), &[2, 3]);
    }

    #[test]
    fn softmax_regression_is_single_layer() {
        let net = softmax_regression(10, 3, 0);
        assert_eq!(net.param_count(), 10 * 3 + 3);
    }

    #[test]
    fn vgg_like_forward_shape() {
        let mut net = vgg_like(1, 8, 10, 0);
        let y = net.forward(&Tensor::zeros(&[2, 64]));
        assert_eq!(y.dims(), &[2, 10]);
    }

    #[test]
    fn resnet_like_forward_shape() {
        let mut net = resnet_like(1, 8, 10, 0);
        let y = net.forward(&Tensor::zeros(&[2, 64]));
        assert_eq!(y.dims(), &[2, 10]);
    }

    #[test]
    fn vgg_has_heavier_head_than_resnet() {
        // The defining difference the paper leans on: VGG's dense head makes
        // it parameter- (and thus communication-) heavy relative to ResNet.
        let vgg = vgg_like(1, 8, 10, 0);
        let resnet = resnet_like(1, 8, 10, 0);
        assert!(
            vgg.param_count() > 2 * resnet.param_count(),
            "vgg {} vs resnet {}",
            vgg.param_count(),
            resnet.param_count()
        );
    }

    #[test]
    fn deterministic_construction() {
        let a = mlp_classifier(6, &[4], 2, 11);
        let b = mlp_classifier(6, &[4], 2, 11);
        assert_eq!(a.params_snapshot(), b.params_snapshot());
    }

    #[test]
    fn conv_models_train_one_step() {
        for mut net in [vgg_like(1, 8, 3, 1), resnet_like(1, 8, 3, 1)] {
            let mut rng = rand::rngs::StdRng::seed_from_u64(2);
            use rand::SeedableRng;
            let x = Tensor::randn(&[4, 64], 1.0, &mut rng);
            let loss = net.train_step(&x, &[0, 1, 2, 0]);
            assert!(loss.is_finite() && loss > 0.0);
            assert!(net.grad_sq_norm() > 0.0);
        }
    }
}
