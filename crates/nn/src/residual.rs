//! Residual (skip-connection) wrapper, the defining block of ResNets.

use crate::{Layer, Sequential};
use tensor::Tensor;

/// A residual block `y = x + F(x)` where `F` is an inner stack of layers
/// whose output shape equals its input shape.
///
/// # Example
///
/// ```
/// use nn::{Dense, Layer, Relu, Residual, Sequential};
/// use rand::SeedableRng;
/// use tensor::Tensor;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let inner = Sequential::new(vec![
///     Box::new(Dense::new(4, 4, &mut rng)),
///     Box::new(Relu::new()),
/// ]);
/// let mut block = Residual::new(inner);
/// let x = Tensor::zeros(&[2, 4]);
/// assert_eq!(block.forward(&x, true).dims(), &[2, 4]);
/// ```
#[derive(Clone)]
pub struct Residual {
    inner: Sequential,
}

impl Residual {
    /// Wraps `inner` with an identity skip connection.
    pub fn new(inner: Sequential) -> Self {
        Residual { inner }
    }

    /// Borrow the inner stack.
    pub fn inner(&self) -> &Sequential {
        &self.inner
    }
}

impl std::fmt::Debug for Residual {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Residual")
            .field("inner_layers", &self.inner.len())
            .finish()
    }
}

impl Layer for Residual {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let fx = self.inner.forward(x, train);
        assert_eq!(
            fx.shape(),
            x.shape(),
            "residual inner stack changed shape {} -> {}",
            x.shape(),
            fx.shape()
        );
        fx.add(x)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        // d(x + F(x)) = grad_out + F'(x)·grad_out.
        let through = self.inner.backward(grad_out);
        through.add(grad_out)
    }

    fn visit_params(&self, f: &mut dyn FnMut(&Tensor)) {
        self.inner.visit_params(f);
    }

    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        self.inner.visit_params_mut(f);
    }

    fn visit_param_grad_pairs(&mut self, f: &mut dyn FnMut(&mut Tensor, &Tensor)) {
        self.inner.visit_param_grad_pairs(f);
    }

    fn zero_grads(&mut self) {
        self.inner.zero_grads();
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "residual"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Dense;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn block(seed: u64) -> Residual {
        let mut rng = StdRng::seed_from_u64(seed);
        Residual::new(Sequential::new(vec![
            Box::new(Dense::new(3, 3, &mut rng)),
            Box::new(crate::Relu::new()),
            Box::new(Dense::new(3, 3, &mut rng)),
        ]))
    }

    #[test]
    fn zero_inner_weights_give_identity() {
        let mut b = block(0);
        b.visit_params_mut(&mut |p| p.fill_zero());
        let x = Tensor::from_vec(vec![1.0, -2.0, 3.0], &[1, 3]).unwrap();
        let y = b.forward(&x, true);
        assert_eq!(y, x);
    }

    #[test]
    fn gradient_flows_through_skip_even_when_inner_is_dead() {
        // With all-zero inner weights and ReLU dead, the skip still passes
        // gradient 1:1 — the vanishing-gradient fix ResNets exist for.
        let mut b = block(1);
        b.visit_params_mut(&mut |p| p.fill_zero());
        let x = Tensor::from_vec(vec![1.0, 1.0, 1.0], &[1, 3]).unwrap();
        let _ = b.forward(&x, true);
        let dx = b.backward(&Tensor::ones(&[1, 3]));
        assert_eq!(dx.as_slice(), &[1.0, 1.0, 1.0]);
    }

    #[test]
    fn gradients_match_finite_difference() {
        let mut b = block(2);
        let mut rng = StdRng::seed_from_u64(3);
        let x = Tensor::randn(&[2, 3], 1.0, &mut rng);
        let _ = b.forward(&x, true);
        let dx = b.backward(&Tensor::ones(&[2, 3]));
        let eps = 1e-2f32;
        for idx in [0usize, 3, 5] {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let fd = (b.clone().forward(&xp, true).sum() - b.clone().forward(&xm, true).sum())
                / (2.0 * eps);
            assert!(
                (fd - dx.at(idx)).abs() < 5e-2 * (1.0 + fd.abs()),
                "dx[{idx}]: fd {fd} vs analytic {}",
                dx.at(idx)
            );
        }
    }

    #[test]
    #[should_panic(expected = "changed shape")]
    fn shape_changing_inner_rejected() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut b = Residual::new(Sequential::new(vec![Box::new(Dense::new(3, 4, &mut rng))]));
        let _ = b.forward(&Tensor::zeros(&[1, 3]), true);
    }
}
