//! Stochastic-gradient-descent optimizers.

use crate::Network;
use tensor::Tensor;

/// SGD with optional heavy-ball momentum and decoupled weight decay —
/// exactly the local optimizer the paper runs on each worker.
///
/// The momentum buffer follows the common deep-learning convention
/// (`v ← β·v + g; p ← p − η·v`). [`Sgd::reset_momentum`] clears the buffers,
/// which the simulator calls at every averaging step when running the
/// paper's block-momentum scheme ("local momentum buffer will be cleared at
/// the beginning of each local update period", Section 5.3.1).
///
/// # Example
///
/// ```
/// use nn::{models, Sgd};
/// use tensor::Tensor;
///
/// let mut net = models::mlp_classifier(4, &[8], 2, 0);
/// let mut opt = Sgd::new(0.1).with_momentum(0.9).with_weight_decay(5e-4);
/// let x = Tensor::zeros(&[2, 4]);
/// let before = net.params_snapshot();
/// net.train_step(&x, &[0, 1]);
/// opt.step(&mut net);
/// assert_ne!(net.params_snapshot(), before);
/// ```
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    buffers: Vec<Tensor>,
}

impl Sgd {
    /// Plain SGD with the given learning rate.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive and finite.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0 && lr.is_finite(), "invalid learning rate {lr}");
        Sgd {
            lr,
            momentum: 0.0,
            weight_decay: 0.0,
            buffers: Vec::new(),
        }
    }

    /// Enables heavy-ball momentum with factor `beta ∈ [0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `beta` is outside `[0, 1)`.
    pub fn with_momentum(mut self, beta: f32) -> Self {
        assert!((0.0..1.0).contains(&beta), "invalid momentum {beta}");
        self.momentum = beta;
        self
    }

    /// Enables L2 weight decay with the given coefficient.
    ///
    /// # Panics
    ///
    /// Panics if `wd` is negative or non-finite.
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        assert!(wd >= 0.0 && wd.is_finite(), "invalid weight decay {wd}");
        self.weight_decay = wd;
        self
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Updates the learning rate (for decay schedules).
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive and finite.
    pub fn set_lr(&mut self, lr: f32) {
        assert!(lr > 0.0 && lr.is_finite(), "invalid learning rate {lr}");
        self.lr = lr;
    }

    /// Momentum factor.
    pub fn momentum(&self) -> f32 {
        self.momentum
    }

    /// Clears the momentum buffers (no-op for momentum 0).
    pub fn reset_momentum(&mut self) {
        for b in &mut self.buffers {
            b.fill_zero();
        }
    }

    /// The momentum buffers, one per parameter tensor — empty until the
    /// first momentum step (they are created lazily). Exposed so run
    /// checkpoints can capture optimizer state.
    pub fn momentum_buffers(&self) -> &[Tensor] {
        &self.buffers
    }

    /// Restores momentum buffers captured by [`Sgd::momentum_buffers`].
    /// An empty vector returns the optimizer to its pre-first-step state;
    /// shape agreement with the network is enforced by the next
    /// [`Sgd::step`], which panics on parameter-structure changes.
    pub fn restore_momentum_buffers(&mut self, buffers: Vec<Tensor>) {
        self.buffers = buffers;
    }

    /// Applies one update using the gradients currently stored in `net`.
    ///
    /// # Panics
    ///
    /// Panics if the network's parameter structure changed since the first
    /// `step` (buffer shapes no longer match).
    pub fn step(&mut self, net: &mut Network) {
        let lr = self.lr;
        let momentum = self.momentum;
        let wd = self.weight_decay;
        if momentum == 0.0 {
            let decay = 1.0 - lr * wd;
            net.visit_param_grad_pairs(&mut |p, g| {
                if wd > 0.0 {
                    // p ← p − η(g + wd·p), fused into one pass: per
                    // element this is exactly `scale(1 − η·wd)` followed
                    // by `axpy(−η, g)`, so results are bit-identical to
                    // the two-pass form at half the parameter traffic.
                    for (a, &b) in p.as_mut_slice().iter_mut().zip(g.as_slice()) {
                        *a = *a * decay + -lr * b;
                    }
                } else {
                    p.axpy(-lr, g);
                }
            });
            return;
        }
        // Lazily create buffers on first use.
        if self.buffers.is_empty() {
            net.visit_param_grad_pairs(&mut |_, g| {
                self.buffers.push(Tensor::zeros(g.dims()));
            });
        }
        let mut idx = 0;
        let buffers = &mut self.buffers;
        net.visit_param_grad_pairs(&mut |p, g| {
            assert!(
                idx < buffers.len(),
                "parameter structure changed after first step"
            );
            let buf = &mut buffers[idx];
            // v ← β·v + (g + wd·p)
            buf.scale(momentum);
            buf.axpy(1.0, g);
            if wd > 0.0 {
                buf.axpy(wd, p);
            }
            p.axpy(-lr, buf);
            idx += 1;
        });
        assert_eq!(idx, buffers.len(), "parameter structure changed");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tensor::Tensor;

    fn toy_batch(seed: u64) -> (Tensor, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        (
            Tensor::randn(&[8, 4], 1.0, &mut rng),
            vec![0, 1, 1, 0, 1, 0, 0, 1],
        )
    }

    #[test]
    fn sgd_reduces_loss_on_fixed_batch() {
        let mut net = models::mlp_classifier(4, &[16], 2, 0);
        let mut opt = Sgd::new(0.1);
        let (x, y) = toy_batch(1);
        let first = net.train_step(&x, &y);
        opt.step(&mut net);
        for _ in 0..50 {
            net.train_step(&x, &y);
            opt.step(&mut net);
        }
        let last = net.eval_loss(&x, &y);
        assert!(last < first * 0.5, "loss {first} -> {last}");
    }

    #[test]
    fn momentum_accelerates_on_fixed_batch() {
        let (x, y) = toy_batch(2);
        let run = |beta: f32| {
            let mut net = models::mlp_classifier(4, &[16], 2, 7);
            let mut opt = Sgd::new(0.02);
            if beta > 0.0 {
                opt = opt.with_momentum(beta);
            }
            for _ in 0..40 {
                net.train_step(&x, &y);
                opt.step(&mut net);
            }
            net.eval_loss(&x, &y)
        };
        let plain = run(0.0);
        let heavy = run(0.9);
        assert!(
            heavy < plain,
            "momentum should help on a smooth problem: {plain} vs {heavy}"
        );
    }

    #[test]
    fn weight_decay_shrinks_parameters() {
        let mut net = models::mlp_classifier(4, &[8], 2, 3);
        let norm_before: f32 = net.params_snapshot().iter().map(Tensor::norm_sq).sum();
        let mut opt = Sgd::new(0.1).with_weight_decay(0.1);
        // Zero gradients: only decay acts.
        net.zero_grads();
        for _ in 0..10 {
            opt.step(&mut net);
        }
        let norm_after: f32 = net.params_snapshot().iter().map(Tensor::norm_sq).sum();
        assert!(norm_after < norm_before * 0.9);
    }

    #[test]
    fn reset_momentum_clears_buffers() {
        let mut net = models::mlp_classifier(4, &[8], 2, 4);
        let mut opt = Sgd::new(0.1).with_momentum(0.9);
        let (x, y) = toy_batch(5);
        net.train_step(&x, &y);
        opt.step(&mut net);
        opt.reset_momentum();
        // After reset with zero grads, a step must not move parameters
        // (other than nothing: buffers are zero, grads are stale but we
        // zero them first).
        net.zero_grads();
        let before = net.params_snapshot();
        opt.step(&mut net);
        let after = net.params_snapshot();
        for (a, b) in before.iter().zip(after.iter()) {
            assert!(a.distance(b) < 1e-7);
        }
    }

    #[test]
    fn restored_momentum_buffers_reproduce_the_trajectory() {
        let (x, y) = toy_batch(6);
        // Straight-through run.
        let mut net_a = models::mlp_classifier(4, &[8], 2, 11);
        let mut opt_a = Sgd::new(0.05).with_momentum(0.9);
        // Interrupted run: identical up to step 5, then checkpointed.
        let mut net_b = models::mlp_classifier(4, &[8], 2, 11);
        let mut opt_b = Sgd::new(0.05).with_momentum(0.9);
        for _ in 0..5 {
            net_a.train_step(&x, &y);
            opt_a.step(&mut net_a);
            net_b.train_step(&x, &y);
            opt_b.step(&mut net_b);
        }
        let buffers = opt_b.momentum_buffers().to_vec();
        let params = net_b.params_snapshot();
        // "Resume" into fresh objects.
        let mut net_c = models::mlp_classifier(4, &[8], 2, 11);
        net_c.load_params(&params);
        let mut opt_c = Sgd::new(0.05).with_momentum(0.9);
        opt_c.restore_momentum_buffers(buffers);
        for _ in 0..5 {
            net_a.train_step(&x, &y);
            opt_a.step(&mut net_a);
            net_c.train_step(&x, &y);
            opt_c.step(&mut net_c);
        }
        for (a, c) in net_a
            .params_snapshot()
            .iter()
            .zip(net_c.params_snapshot().iter())
        {
            assert_eq!(a.as_slice(), c.as_slice(), "resume diverged");
        }
    }

    #[test]
    fn set_lr_takes_effect() {
        let mut opt = Sgd::new(0.1);
        opt.set_lr(0.01);
        assert_eq!(opt.lr(), 0.01);
    }

    #[test]
    #[should_panic(expected = "invalid learning rate")]
    fn zero_lr_rejected() {
        let _ = Sgd::new(0.0);
    }
}
