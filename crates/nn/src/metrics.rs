//! Classification metrics.

/// Fraction of predictions equal to the labels.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
///
/// # Example
///
/// ```
/// use nn::metrics::accuracy;
///
/// assert_eq!(accuracy(&[0, 1, 2], &[0, 1, 1]), 2.0 / 3.0);
/// ```
pub fn accuracy(predictions: &[usize], labels: &[usize]) -> f64 {
    assert_eq!(
        predictions.len(),
        labels.len(),
        "prediction count {} does not match label count {}",
        predictions.len(),
        labels.len()
    );
    assert!(!labels.is_empty(), "cannot compute accuracy of nothing");
    let correct = predictions
        .iter()
        .zip(labels.iter())
        .filter(|(p, l)| p == l)
        .count();
    correct as f64 / labels.len() as f64
}

/// Running mean over a stream of values (used for smoothed training-loss
/// reporting, mirroring the paper's "recorded every 100 iterations").
#[derive(Debug, Clone, Default)]
pub struct RunningMean {
    sum: f64,
    count: u64,
}

impl RunningMean {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, value: f64) {
        self.sum += value;
        self.count += 1;
    }

    /// Current mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Clears the accumulator.
    pub fn reset(&mut self) {
        self.sum = 0.0;
        self.count = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_accuracy() {
        assert_eq!(accuracy(&[1, 2], &[1, 2]), 1.0);
    }

    #[test]
    fn zero_accuracy() {
        assert_eq!(accuracy(&[0, 0], &[1, 2]), 0.0);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn mismatched_lengths_panic() {
        let _ = accuracy(&[1], &[1, 2]);
    }

    #[test]
    fn running_mean_accumulates() {
        let mut m = RunningMean::new();
        m.push(1.0);
        m.push(3.0);
        assert_eq!(m.mean(), 2.0);
        assert_eq!(m.count(), 2);
        m.reset();
        assert_eq!(m.mean(), 0.0);
    }
}
