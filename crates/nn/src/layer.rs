//! The layer abstraction: forward/backward passes plus parameter visitors.

use tensor::Tensor;

/// A differentiable layer.
///
/// Layers cache whatever they need during [`Layer::forward`] so that
/// [`Layer::backward`] can compute input gradients and (over)write parameter
/// gradients. The parameter/gradient *visitor* methods let containers,
/// optimizers and the PASGD averaging step walk a model's state without the
/// layer exposing its internals.
///
/// This trait is object-safe; models are built as `Vec<Box<dyn Layer>>`
/// (see [`Sequential`](crate::Sequential)).
pub trait Layer: Send + Sync {
    /// Computes the layer output for a `[batch, …]` input.
    ///
    /// `train` distinguishes training-mode from evaluation-mode behaviour
    /// (e.g. batch-norm statistics); pure layers may ignore it.
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor;

    /// Back-propagates `grad_out` (gradient w.r.t. this layer's output),
    /// storing parameter gradients internally and returning the gradient
    /// w.r.t. the layer's input.
    ///
    /// # Panics
    ///
    /// Implementations panic if called before `forward` (no cached
    /// activations).
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Like [`Layer::backward`], but the caller promises never to read the
    /// returned input gradient. Parameter gradients must still be computed
    /// in full; the return value is unspecified (layers with an expensive
    /// input-gradient GEMM, like [`Dense`](crate::Dense) and
    /// [`Conv2d`](crate::Conv2d), return an empty tensor instead of paying
    /// for it). The training loop uses this for the *first* layer of a
    /// model, whose input gradient nothing consumes.
    fn backward_param_only(&mut self, grad_out: &Tensor) -> Tensor {
        self.backward(grad_out)
    }

    /// Visits every parameter tensor (immutably), outermost layer first.
    fn visit_params(&self, f: &mut dyn FnMut(&Tensor));

    /// Visits every parameter tensor mutably.
    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Tensor));

    /// Visits every `(parameter, gradient)` pair mutably (parameters
    /// mutable, gradients read-only) in the same order as
    /// [`Layer::visit_params`].
    fn visit_param_grad_pairs(&mut self, f: &mut dyn FnMut(&mut Tensor, &Tensor));

    /// Sets all stored gradients to zero.
    fn zero_grads(&mut self);

    /// Clones the layer into a box (layers are cloned when the simulator
    /// replicates a model across workers).
    fn clone_box(&self) -> Box<dyn Layer>;

    /// Short human-readable layer name for debugging output.
    fn name(&self) -> &'static str;
}

impl Clone for Box<dyn Layer> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Counts the parameters of any layer via the visitor.
pub fn param_count(layer: &dyn Layer) -> usize {
    let mut count = 0;
    layer.visit_params(&mut |p| count += p.len());
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Dense;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn param_count_counts_weights_and_bias() {
        let mut rng = StdRng::seed_from_u64(0);
        let dense = Dense::new(3, 5, &mut rng);
        assert_eq!(param_count(&dense), 3 * 5 + 5);
    }

    #[test]
    fn boxed_layer_clones() {
        let mut rng = StdRng::seed_from_u64(1);
        let layer: Box<dyn Layer> = Box::new(Dense::new(2, 2, &mut rng));
        let copy = layer.clone();
        assert_eq!(param_count(layer.as_ref()), param_count(copy.as_ref()));
    }
}
